"""Critical path tracing (CPT) for robust gate delay faults.

Given a fully specified two-pattern test, the simulator determines every gate
delay fault that the pattern detects robustly, without targeting them one by
one:

* within fanout-free regions, criticality is decided locally: an input of a
  gate lies on a robust critical path if replacing its transition by the
  fault-carrying variant still yields a fault-carrying gate output (this is a
  direct application of the algebra's Table 1 rules);
* at fanout stems, where reconvergence can mask or multiply the effect, the
  stem is resolved exactly by injecting the stem fault and re-simulating the
  two frames (the standard stem-analysis refinement of CPT);
* faults that are observable only through a pseudo primary output are
  additionally checked for *state invalidation*: the fault effect must not
  disturb any pseudo primary output whose value the propagation phase relied
  on (paper section 5, last paragraph).

With ``backend="packed"`` (the process default, see
:mod:`repro.fausim.backends`) the exact injection simulations — the good
machine pass, the per-stem analysis and the PPO confirmation checks — run on
the compiled netlist through the fault-parallel eight-valued simulator
(:mod:`repro.fausim.packed_two_frame`): both transition directions of a stem
share one pass, and all PPO confirmation candidates of a pattern are batched
into word slots.  The remaining single-injection simulations (and the whole
``backend="reference"`` oracle path of the differential test-suite) route
through the shared implication engine (:mod:`repro.tdgen.implication`)
instead of calling the interpreter directly.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.algebra.tables import evaluate_delay_gate
from repro.algebra.values import DelayValue, F, R
from repro.circuit.netlist import Circuit, Line, LineKind
from repro.faults.model import DelayFaultType, GateDelayFault
from repro.fausim.backends import create_two_frame_simulator, resolve_backend
from repro.fausim.packed_two_frame import PackedTwoFrameSimulator
from repro.obs.metrics import resolve_metrics
from repro.tdgen.context import TDgenContext
from repro.tdgen.implication import create_implication_engine
from repro.algebra.sets import has_fault_value, is_singleton, single_value


@dataclasses.dataclass
class SimulatedDetection:
    """One fault detected by simulation, with the observation point used."""

    fault: GateDelayFault
    observation_point: str
    through_ppo: bool


class DelayFaultSimulator:
    """Robust delay fault simulator for one circuit.

    Args:
        circuit: circuit under test.
        robust: use the robust (paper Table 1) or relaxed non-robust tables.
        context: shared precomputed circuit data (built on demand).
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`
            (defaults to the no-op null registry); counts simulation passes,
            stem analyses and PPO confirmations.
        backend: simulation backend name (see :mod:`repro.fausim.backends`);
            ``"packed"`` routes the exact injection simulations through the
            compiled fault-parallel evaluator, ``"reference"`` keeps the
            interpreted set-propagation path.  ``None`` selects the process
            default.
    """

    def __init__(
        self,
        circuit: Circuit,
        robust: bool = True,
        context: Optional[TDgenContext] = None,
        metrics: Optional[object] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.circuit = circuit
        self.robust = robust
        self.context = context or TDgenContext(circuit)
        self.metrics = resolve_metrics(metrics)
        self.backend = resolve_backend(backend)
        # Every compiled tier gets a fault-parallel two-frame simulator; the
        # bigint/numpy tiers use one unbounded word so a whole candidate
        # batch is a single pass (see create_two_frame_simulator).
        self._packed: Optional[PackedTwoFrameSimulator] = create_two_frame_simulator(
            circuit, robust=robust, backend=self.backend
        )
        # All remaining single-injection simulations route through the
        # backend-dispatched implication engine, so the reference path shares
        # one forward-implication implementation with TDgen and SEMILET.
        self._implication = create_implication_engine(
            circuit, backend=self.backend, robust=robust, context=self.context
        )
        self._implication.set_metrics(self.metrics, site="tdsim")
        if self._packed is not None:
            self._packed.metrics = self.metrics

    # ------------------------------------------------------------------ #
    def simulate(
        self,
        pi_values: Mapping[str, DelayValue],
        ppi_initial: Mapping[str, int],
        observable_ppos: Sequence[str] = (),
        required_ppo_values: Optional[Mapping[str, int]] = None,
    ) -> List[SimulatedDetection]:
        """Return every gate delay fault robustly detected by the pattern.

        Args:
            pi_values: complete pair value per primary input.
            ppi_initial: complete initial-frame value per pseudo primary input.
            observable_ppos: pseudo primary output signals whose captured value
                reaches a primary output during the propagation phase (FAUSIM
                result); faults observed there are credited only if they pass
                the invalidation check.
            required_ppo_values: PPO values that the propagation phase relied
                on; a fault credited through a PPO must not disturb them.
        """
        required_ppo_values = dict(required_ppo_values or {})
        if self.metrics.enabled:
            self.metrics.inc("repro_tdsim_passes_total")
        values: Dict[str, DelayValue]
        if self._packed is not None:
            values = self._packed.simulate(
                dict(pi_values), dict(ppi_initial), (None,)
            ).values_for_pattern(0)
        else:
            good_state = self._implication.implicate(
                dict(pi_values), dict(ppi_initial), fault=None
            )
            values = {}
            for signal, value_set in good_state.signal_sets.items():
                if not is_singleton(value_set):
                    raise ValueError(
                        "fault simulation needs a fully specified pattern; "
                        f"signal {signal!r} is not determined"
                    )
                values[signal] = single_value(value_set)

        po_points = [
            po for po in self.circuit.primary_outputs if values[po].is_transition
        ]
        ppo_points = [
            ppo
            for ppo in observable_ppos
            if ppo in values and values[ppo].is_transition
        ]

        detections: Dict[GateDelayFault, SimulatedDetection] = {}

        # Phase A: CPT from primary outputs (no invalidation check needed).
        for po in po_points:
            for line in self._trace(po, values, dict(pi_values), dict(ppi_initial)):
                fault = self._fault_for(line, values)
                if fault is not None and fault not in detections:
                    detections[fault] = SimulatedDetection(fault, po, through_ppo=False)

        # Phase B: CPT from observable pseudo primary outputs; every candidate
        # must survive the exact injection + invalidation check.  Candidates
        # are collected first so the packed backend can confirm a whole word
        # of injections per simulation pass; crediting in collection order
        # keeps the result identical to the one-by-one reference loop.
        candidates: List[Tuple[GateDelayFault, str]] = []
        seen: Set[Tuple[GateDelayFault, str]] = set()
        for ppo in ppo_points:
            for line in self._trace(ppo, values, dict(pi_values), dict(ppi_initial)):
                fault = self._fault_for(line, values)
                if fault is None or fault in detections or (fault, ppo) in seen:
                    continue
                seen.add((fault, ppo))
                candidates.append((fault, ppo))
        confirmed = self._confirm_candidates(
            candidates, dict(pi_values), dict(ppi_initial), required_ppo_values
        )
        for (fault, ppo), passed in zip(candidates, confirmed):
            if passed and fault not in detections:
                detections[fault] = SimulatedDetection(fault, ppo, through_ppo=True)

        return list(detections.values())

    # ------------------------------------------------------------------ #
    # critical path tracing
    # ------------------------------------------------------------------ #
    def _trace(
        self,
        observation_point: str,
        values: Dict[str, DelayValue],
        pi_values: Dict[str, DelayValue],
        ppi_initial: Dict[str, int],
    ) -> List[Line]:
        """Collect the critical lines feeding one observation point."""
        critical: List[Line] = []
        visited_stems: Set[str] = set()
        pending: List[str] = [observation_point]

        while pending:
            signal = pending.pop()
            if signal in visited_stems:
                continue
            visited_stems.add(signal)
            value = values[signal]
            if not value.is_transition:
                continue
            critical.append(Line(signal))

            gate = self.circuit.gate(signal)
            if not gate.gate_type.is_combinational:
                continue
            input_values = [values[source] for source in gate.fanin]
            for pin, source in enumerate(gate.fanin):
                source_value = values[source]
                if not source_value.is_transition:
                    continue
                if not self._locally_critical(gate.gate_type, input_values, pin):
                    continue
                fanout = self.circuit.fanout(source)
                multi = len(fanout) + (1 if self.circuit.is_primary_output(source) else 0) > 1
                if multi:
                    # The branch itself is critical; record it and resolve the
                    # stem exactly by injection.
                    critical.append(Line(source, LineKind.BRANCH, gate.name, pin))
                    if source not in visited_stems and self._stem_detected(
                        source, observation_point, pi_values, ppi_initial
                    ):
                        pending.append(source)
                else:
                    pending.append(source)
        return critical

    def _locally_critical(
        self, gate_type, input_values: List[DelayValue], pin: int
    ) -> bool:
        """Would a fault-carrying transition on this pin reach the gate output?"""
        modified = list(input_values)
        try:
            modified[pin] = modified[pin].with_fault()
        except ValueError:
            return False
        output = evaluate_delay_gate(gate_type, modified, self.robust)
        return output.fault

    def _stem_detected(
        self,
        stem: str,
        observation_point: str,
        pi_values: Dict[str, DelayValue],
        ppi_initial: Dict[str, int],
    ) -> bool:
        """Exact stem analysis by injection simulation.

        The packed backend simulates both transition directions of the stem in
        one fault-parallel pass; the reference backend runs two interpreted
        passes.
        """
        if self.metrics.enabled:
            self.metrics.inc("repro_tdsim_stem_analyses_total")
        if self._packed is not None:
            result = self._packed.simulate(
                pi_values,
                ppi_initial,
                (
                    GateDelayFault(Line(stem), DelayFaultType.SLOW_TO_RISE),
                    GateDelayFault(Line(stem), DelayFaultType.SLOW_TO_FALL),
                ),
            )
            return result.fault_effect_mask(observation_point) != 0
        state = self._implication.implicate(
            pi_values,
            ppi_initial,
            fault=GateDelayFault(Line(stem), DelayFaultType.SLOW_TO_RISE),
        )
        observed = state.signal_sets.get(observation_point, 0)
        if is_singleton(observed) and has_fault_value(observed):
            return True
        state = self._implication.implicate(
            pi_values,
            ppi_initial,
            fault=GateDelayFault(Line(stem), DelayFaultType.SLOW_TO_FALL),
        )
        observed = state.signal_sets.get(observation_point, 0)
        return is_singleton(observed) and has_fault_value(observed)

    @staticmethod
    def _fault_for(line: Line, values: Dict[str, DelayValue]) -> Optional[GateDelayFault]:
        """The delay fault provoked by the transition on a critical line."""
        value = values[line.signal]
        if value is R or (value.is_transition and value.is_rising):
            return GateDelayFault(line, DelayFaultType.SLOW_TO_RISE)
        if value is F or (value.is_transition and value.is_falling):
            return GateDelayFault(line, DelayFaultType.SLOW_TO_FALL)
        return None

    # ------------------------------------------------------------------ #
    # exact confirmation for PPO-observed faults
    # ------------------------------------------------------------------ #
    def _confirm_candidates(
        self,
        candidates: Sequence[Tuple[GateDelayFault, str]],
        pi_values: Dict[str, DelayValue],
        ppi_initial: Dict[str, int],
        required_ppo_values: Dict[str, int],
    ) -> List[bool]:
        """Run the injection + invalidation check for every (fault, PPO) pair.

        With the packed backend one word of injections shares a single
        simulation pass; the reference backend checks one candidate at a
        time.  Both return one verdict per candidate, in order.
        """
        if not candidates:
            return []
        if self.metrics.enabled:
            self.metrics.inc("repro_tdsim_ppo_confirmations_total", len(candidates))
        if self._packed is None:
            return [
                self._confirmed_through_ppo(
                    fault, ppo, pi_values, ppi_initial, required_ppo_values
                )
                for fault, ppo in candidates
            ]
        verdicts: List[bool] = []
        slot_of = self._packed.compiled.slot_of
        for start in range(0, len(candidates), self._packed.word_bits):
            chunk = candidates[start : start + self._packed.word_bits]
            result = self._packed.simulate(
                pi_values, ppi_initial, [fault for fault, _ in chunk]
            )
            for pattern, (fault, ppo) in enumerate(chunk):
                passed = bool(result.fault_effect_mask(ppo) & (1 << pattern))
                if passed:
                    # Invalidation check: the fault must not disturb any PPO
                    # value the propagation phase depends on.
                    for other_ppo, required in required_ppo_values.items():
                        if other_ppo == ppo:
                            continue
                        if other_ppo not in slot_of:
                            passed = False
                            break
                        value = result.value(other_ppo, pattern)
                        if value.fault or value.final != required:
                            passed = False
                            break
                verdicts.append(passed)
        return verdicts

    def _confirmed_through_ppo(
        self,
        fault: GateDelayFault,
        ppo: str,
        pi_values: Dict[str, DelayValue],
        ppi_initial: Dict[str, int],
        required_ppo_values: Dict[str, int],
    ) -> bool:
        """Exact injection check: observed at the PPO and no state invalidation."""
        state = self._implication.implicate(pi_values, ppi_initial, fault=fault)
        observed = state.signal_sets.get(ppo, 0)
        if not (is_singleton(observed) and has_fault_value(observed)):
            return False
        # Invalidation check: the fault must not disturb any PPO value the
        # propagation phase depends on.
        for other_ppo, required in required_ppo_values.items():
            if other_ppo == ppo:
                continue
            value_set = state.signal_sets.get(other_ppo, 0)
            if not is_singleton(value_set):
                return False
            value = single_value(value_set)
            if value.fault or value.final != required:
                return False
        return True

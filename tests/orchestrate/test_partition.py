"""Tests of the fault sharder and the per-shard seed derivation."""

import pytest

from repro.faults.model import enumerate_delay_faults
from repro.orchestrate.partition import (
    PARTITION_MODES,
    derive_shard_seed,
    fault_weight,
    partition_round_robin,
    partition_size_aware,
    plan_shards,
    signal_cone_sizes,
)


def _assert_exact_cover(plan, indices):
    seen = [index for shard in plan.shards for index in shard]
    assert sorted(seen) == sorted(indices), "shards must cover every index exactly once"
    for shard in plan.shards:
        assert list(shard) == sorted(shard), "shards must be sorted ascending"


def test_round_robin_covers_and_interleaves():
    plan = partition_round_robin(range(10), 3)
    _assert_exact_cover(plan, range(10))
    assert plan.jobs == 3
    assert plan.fault_count == 10
    assert plan.shards[0] == (0, 3, 6, 9)
    assert plan.shards[1] == (1, 4, 7)
    assert plan.shards[2] == (2, 5, 8)


def test_round_robin_with_more_jobs_than_faults():
    plan = partition_round_robin(range(2), 4)
    _assert_exact_cover(plan, range(2))
    assert plan.shards[2] == () and plan.shards[3] == ()


def test_size_aware_covers_and_balances(s27):
    faults = enumerate_delay_faults(s27)
    indices = list(range(len(faults)))
    plan = partition_size_aware(indices, faults, s27, 4)
    _assert_exact_cover(plan, indices)
    cone_sizes = signal_cone_sizes(s27)
    loads = [
        sum(fault_weight(cone_sizes, faults[index]) for index in shard)
        for shard in plan.shards
    ]
    # LPT keeps the makespan within (heaviest single fault) of the mean.
    heaviest = max(fault_weight(cone_sizes, fault) for fault in faults)
    assert max(loads) - min(loads) <= heaviest


def test_size_aware_handles_subset_of_universe(s27):
    faults = enumerate_delay_faults(s27)
    subset = list(range(0, len(faults), 3))
    plan = partition_size_aware(subset, faults, s27, 2)
    _assert_exact_cover(plan, subset)


def test_cone_sizes_are_positive_and_complete(s27):
    cone_sizes = signal_cone_sizes(s27)
    for signal in s27.primary_inputs:
        assert cone_sizes[signal] >= 2  # at least itself in both cones
    for fault in enumerate_delay_faults(s27):
        assert fault_weight(cone_sizes, fault) > 0


def test_plan_shards_dispatch(s27):
    faults = enumerate_delay_faults(s27)
    indices = list(range(len(faults)))
    assert plan_shards("round-robin", indices, faults, s27, 2).mode == "round-robin"
    assert plan_shards("size-aware", indices, faults, s27, 2).mode == "size-aware"
    assert plan_shards("dynamic", indices, faults, s27, 2) is None
    with pytest.raises(ValueError):
        plan_shards("nope", indices, faults, s27, 2)
    with pytest.raises(ValueError):
        partition_round_robin(indices, 0)
    assert set(PARTITION_MODES) == {"round-robin", "size-aware", "dynamic"}


def test_shard_seeds_are_deterministic_and_distinct():
    seeds = [derive_shard_seed(7, shard) for shard in range(16)]
    assert seeds == [derive_shard_seed(7, shard) for shard in range(16)]
    assert len(set(seeds)) == 16, "shards of one campaign must not share a seed"
    # A different campaign seed reseeds every shard.
    assert all(derive_shard_seed(8, shard) != seeds[shard] for shard in range(16))

"""Propagation-phase fault simulation (FAUSIM phase 2)."""

import pytest

from repro.fausim.fault_sim import PropagationFaultSimulator


def test_observable_immediately(resettable_ff):
    # State bit q is observed at "out" whenever observe=1.
    simulator = PropagationFaultSimulator(resettable_ff, [{"data": 0, "reset": 0, "observe": 1}])
    result = simulator.observability({"q": 1}, "q")
    assert result.observable
    assert result.frame == 0
    assert result.primary_output == "out"
    assert bool(result)


def test_not_observable_when_masked(resettable_ff):
    # observe=0 masks the state at the output; and with reset=1 the difference
    # does not even survive into the next state.
    simulator = PropagationFaultSimulator(
        resettable_ff, [{"data": 0, "reset": 1, "observe": 0}, {"data": 0, "reset": 1, "observe": 0}]
    )
    result = simulator.observability({"q": 1}, "q")
    assert not result.observable


def test_observable_after_two_frames(resettable_ff):
    # First frame masks the output but holds the state, second frame observes it.
    simulator = PropagationFaultSimulator(
        resettable_ff,
        [{"data": 0, "reset": 0, "observe": 0}, {"data": 0, "reset": 0, "observe": 1}],
    )
    result = simulator.observability({"q": 1}, "q")
    assert result.observable
    assert result.frame == 1


def test_unknown_good_value_is_never_credited(resettable_ff):
    simulator = PropagationFaultSimulator(resettable_ff, [{"data": 0, "reset": 0, "observe": 1}])
    result = simulator.observability({}, "q")
    assert not result.observable


def test_explicit_faulty_value_equal_to_good_is_rejected(resettable_ff):
    simulator = PropagationFaultSimulator(resettable_ff, [{"observe": 1, "reset": 0, "data": 0}])
    result = simulator.observability({"q": 1}, "q", faulty_value=1)
    assert not result.observable


def test_observability_map(s27):
    vectors = [{"G0": 0, "G1": 0, "G2": 0, "G3": 0} for _ in range(3)]
    simulator = PropagationFaultSimulator(s27, vectors)
    state = {"G5": 0, "G6": 0, "G7": 0}
    results = simulator.observability_map(state, ["G5", "G6", "G7"])
    assert set(results) == {"G5", "G6", "G7"}
    # G6 drives G17 = NOT(G11) only through the next-state logic; flipping G6
    # changes G8 = AND(G14, G6) ... with G0=0, G14=1, so G8 follows G6 and the
    # difference can reach the output logic in a later frame.  At minimum the
    # call must terminate and produce a boolean verdict for every bit.
    for observability in results.values():
        assert isinstance(observability.observable, bool)


def test_state_trace_length(resettable_ff):
    vectors = [{"data": 1, "reset": 0, "observe": 0}, {"data": 0, "reset": 1, "observe": 0}]
    simulator = PropagationFaultSimulator(resettable_ff, vectors)
    trace = simulator.state_trace({"q": 0})
    assert len(trace) == 2
    assert trace[0]["q"] == 1  # loaded the data bit
    assert trace[1]["q"] == 0  # reset afterwards

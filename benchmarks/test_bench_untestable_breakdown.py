"""Experiment E7 — the paper's section 6 observation on untestable faults.

"It is remarkable that for some circuits the number of untestable faults is
quite high.  Although some of these faults are combinationally redundant, a
large part of these faults is only sequentially untestable."

The benchmark runs campaigns on a subset of circuits and splits the untestable
faults into *locally* untestable (TDgen proves no robust two-pattern test
exists within the two local frames) and *sequentially* untestable (a local
test exists, but propagation or initialisation is impossible).  The split is
printed next to the aborted counts; how it compares with the paper's
qualitative claim is discussed in EXPERIMENTS.md (E7) — in this
reimplementation a large share of the hard sequential cases ends up in the
aborted column because both engines stop at 100 backtracks.
"""

import pytest

from repro.core.flow import SequentialDelayATPG
from repro.core.reporting import format_untestable_breakdown
from repro.data import load_circuit
from repro.faults.model import enumerate_delay_faults, sample_faults

from benchconfig import bench_max_faults, bench_scale

_CIRCUITS = ["s27", "s298", "s386"]


def _run(name):
    circuit = load_circuit(name, scale=bench_scale())
    faults = enumerate_delay_faults(circuit)
    if name != "s27":
        faults = sample_faults(faults, bench_max_faults())
    campaign = SequentialDelayATPG(circuit).run(faults=faults)
    campaign.circuit_name = name
    return campaign


def test_bench_untestable_breakdown(benchmark):
    campaigns = benchmark.pedantic(
        lambda: [_run(name) for name in _CIRCUITS], rounds=1, iterations=1
    )

    print()
    print("Untestable fault breakdown (section 6 of the paper)")
    print(format_untestable_breakdown(campaigns))

    total_comb = sum(campaign.untestable_local for campaign in campaigns)
    total_seq = sum(campaign.untestable_sequential for campaign in campaigns)
    total_seq_aborted = sum(campaign.aborted_sequential for campaign in campaigns)
    print(f"locally (combinationally) untestable: {total_comb}")
    print(f"sequentially untestable:              {total_seq}")
    print(f"aborted in a sequential phase:        {total_seq_aborted}")

    # Structural checks: the breakdown is consistent with the campaign counts
    # and the robust model does produce a substantial untestable population,
    # which is the paper's headline observation.
    assert total_comb + total_seq > 0
    for campaign in campaigns:
        assert (
            campaign.untestable_local + campaign.untestable_sequential
            <= campaign.untestable + campaign.aborted
        )
    untargeted_fraction = sum(c.tested for c in campaigns) / sum(c.total_faults for c in campaigns)
    assert 0.0 <= untargeted_fraction <= 1.0

"""Unit tests of the campaign store: round-trips, journal ingest, safety.

Everything runs on the embedded s27 benchmark so the suite stays tier-1
fast.  The invariant under test throughout: whatever goes into the store
comes back **bit-identical** — a reloaded campaign's ``to_json()`` equals
the ingested one's, cost records survive field for field, and any store
whose contents no longer match their recorded digests is rejected rather
than silently reused.
"""

from __future__ import annotations

import sqlite3
import threading

import pytest

from repro.core.flow import SequentialDelayATPG
from repro.data import load_circuit
from repro.obs.metrics import MetricsRegistry
from repro.orchestrate import CampaignOrchestrator, OrchestratorConfig
from repro.store import CampaignStore


def _config(**overrides) -> OrchestratorConfig:
    """A small serial config; overrides map onto OrchestratorConfig fields."""
    settings = {"jobs": 1, "local_backtrack_limit": 20, "sequential_backtrack_limit": 20}
    settings.update(overrides)
    return OrchestratorConfig(**settings)


def _run_serial(circuit, config, metrics=None):
    """One serial campaign under ``config``; returns (result, cost log)."""
    atpg = SequentialDelayATPG(circuit, metrics=metrics, **config.atpg_kwargs())
    result = atpg.run(prefix=config.prefix_config())
    return result, list(atpg.cost_log)


@pytest.fixture(scope="module")
def s27_run():
    """One shared s27 campaign (circuit, config, result, costs)."""
    circuit = load_circuit("s27")
    config = _config()
    registry = MetricsRegistry()
    result, costs = _run_serial(circuit, config, metrics=registry)
    return circuit, config, result, costs


def test_ingest_load_round_trip(tmp_path, s27_run):
    """A reloaded campaign is bit-identical to the ingested one."""
    circuit, config, result, _ = s27_run
    with CampaignStore(str(tmp_path / "s.sqlite")) as store:
        campaign_id = store.ingest_result(result, circuit=circuit, config=config)
        loaded = store.load_result(campaign_id)
    assert loaded.to_json() == result.to_json()
    assert loaded.fingerprint() == result.fingerprint()


def test_round_trip_covers_prefix_fields(tmp_path):
    """Hybrid-campaign rows keep the prefix counters and prefix sequences."""
    circuit = load_circuit("s27")
    config = _config(rpg_prefix=True, rpg_budget=32, rpg_window=8, campaign_seed=7)
    result, _ = _run_serial(circuit, config)
    assert result.prefix_applied > 0
    with CampaignStore(str(tmp_path / "s.sqlite")) as store:
        campaign_id = store.ingest_result(result, circuit=circuit, config=config)
        loaded = store.load_result(campaign_id)
    assert loaded.to_json() == result.to_json()
    assert loaded.prefix_applied == result.prefix_applied
    assert loaded.prefix_detected == result.prefix_detected
    assert loaded.prefix_stop_reason == result.prefix_stop_reason
    assert [s.to_json() for s in loaded.prefix_sequences] == [
        s.to_json() for s in result.prefix_sequences
    ]


def test_round_trip_covers_cost_records(tmp_path, s27_run):
    """Per-fault obs cost records survive the store field for field."""
    circuit, config, result, costs = s27_run
    assert costs, "the metrics-enabled fixture campaign must log costs"
    with CampaignStore(str(tmp_path / "s.sqlite")) as store:
        campaign_id = store.ingest_result(
            result, circuit=circuit, config=config, costs=costs
        )
        loaded = store.load_costs(campaign_id)
    assert [cost.to_json() for cost in loaded] == [cost.to_json() for cost in costs]


def test_fault_records_memo_matches_results(tmp_path, s27_run):
    """The per-fault memo rebuilds each outcome (minus recomputed fields)."""
    circuit, config, result, costs = s27_run
    with CampaignStore(str(tmp_path / "s.sqlite")) as store:
        campaign_id = store.ingest_result(
            result, circuit=circuit, config=config, costs=costs
        )
        records = store.fault_records(campaign_id)
    assert set(records) == {str(r.fault) for r in result.fault_results}
    for fault_result in result.fault_results:
        rebuilt = records[str(fault_result.fault)].build_result()
        assert rebuilt.status is fault_result.status
        assert rebuilt.phase is fault_result.phase
        assert rebuilt.attempts == fault_result.attempts
        if fault_result.sequence is None:
            assert rebuilt.sequence is None
        else:
            assert rebuilt.sequence.to_json() == fault_result.sequence.to_json()


def test_journal_ingest_equivalent_to_result_ingest(tmp_path, s27_run):
    """A journal import reproduces the exact campaign the API import stores."""
    circuit, config, result, _ = s27_run
    journal = tmp_path / "s27.jsonl"
    orchestrator = CampaignOrchestrator(circuit, config=config, journal_path=str(journal))
    journaled = orchestrator.run()
    with CampaignStore(str(tmp_path / "s.sqlite")) as store:
        direct_id = store.ingest_result(journaled, circuit=circuit, config=config)
        (journal_id,) = store.ingest_journal(str(journal), circuit=circuit, config=config)
        from_journal = store.load_result(journal_id)
        from_direct = store.load_result(direct_id)
    assert from_journal.to_json() == from_direct.to_json()
    # And the serial fixture campaign agrees too (modulo wall clock).
    assert from_journal.fingerprint() == result.fingerprint()


def test_torn_journal_ingests_as_partial(tmp_path, s27_run):
    """A journal cut mid-write still imports, flagged partial."""
    circuit, config, _, _ = s27_run
    journal = tmp_path / "s27.jsonl"
    CampaignOrchestrator(circuit, config=config, journal_path=str(journal)).run()
    lines = journal.read_text(encoding="utf-8").splitlines(keepends=True)
    # Drop the final-result record and tear the last fault record in half.
    torn = lines[:-2] + [lines[-2][: len(lines[-2]) // 2]]
    journal.write_text("".join(torn), encoding="utf-8")
    with CampaignStore(str(tmp_path / "s.sqlite")) as store:
        (campaign_id,) = store.ingest_journal(
            str(journal), circuit=circuit, config=config
        )
        rows = store.campaigns()
        records = store.fault_records(campaign_id)
    assert rows[0]["partial"] == 1
    assert records, "the surviving fault records must still import"


def test_journal_ingest_rejects_wrong_settings(tmp_path, s27_run):
    """A journal cannot be imported under a different config digest."""
    circuit, config, result, _ = s27_run
    journal = tmp_path / "s27.jsonl"
    CampaignOrchestrator(circuit, config=config, journal_path=str(journal)).run()
    with CampaignStore(str(tmp_path / "s.sqlite")) as store:
        with pytest.raises(ValueError, match="digest mismatch"):
            store.ingest_journal(
                str(journal), circuit=circuit, config=_config(robust=False)
            )


def test_find_base_requires_matching_config(tmp_path, s27_run):
    """A store written under robust settings never serves a non-robust run."""
    circuit, config, result, _ = s27_run
    path = str(tmp_path / "s.sqlite")
    with CampaignStore(path) as store:
        store.ingest_result(result, circuit=circuit, config=config)
        base = store.find_base("s27", config)
        assert base.fault_names
        with pytest.raises(LookupError, match="no campaign"):
            store.find_base("s27", _config(robust=False))
        with pytest.raises(LookupError, match="no campaign"):
            store.find_base("s27", _config(local_backtrack_limit=99))


def test_find_base_rejects_tampered_store(tmp_path, s27_run):
    """Edited fault rows or netlist text fail the digest re-derivation."""
    circuit, config, result, _ = s27_run
    path = str(tmp_path / "s.sqlite")
    with CampaignStore(path) as store:
        campaign_id = store.ingest_result(result, circuit=circuit, config=config)
    conn = sqlite3.connect(path)
    with conn:
        conn.execute(
            "UPDATE faults SET fault = 'bogus StR' WHERE campaign_id = ? AND idx = 0",
            (campaign_id,),
        )
    conn.close()
    with CampaignStore(path) as store:
        with pytest.raises(ValueError, match="stale or corrupt"):
            store.find_base("s27", config)


def test_find_base_rejects_tampered_bench(tmp_path, s27_run):
    """A netlist swap behind an unchanged digest is caught."""
    circuit, config, result, _ = s27_run
    path = str(tmp_path / "s.sqlite")
    with CampaignStore(path) as store:
        campaign_id = store.ingest_result(result, circuit=circuit, config=config)
    conn = sqlite3.connect(path)
    bench = conn.execute(
        "SELECT bench FROM campaigns WHERE id = ?", (campaign_id,)
    ).fetchone()[0]
    with conn:
        conn.execute(
            "UPDATE campaigns SET bench = ? WHERE id = ?",
            (bench + "\n# tampered\n", campaign_id),
        )
    conn.close()
    # A comment-only edit keeps the digest (comments are stripped), so go
    # further: flip a gate type in the stored text.
    conn = sqlite3.connect(path)
    with conn:
        conn.execute(
            "UPDATE campaigns SET bench = ? WHERE id = ?",
            (bench.replace("NAND", "NOR", 1), campaign_id),
        )
    conn.close()
    with CampaignStore(path) as store:
        with pytest.raises(ValueError, match="stale or corrupt"):
            store.find_base("s27", config)


def test_concurrent_writers_share_one_store(tmp_path, s27_run):
    """Several threads with their own connections ingest into one file."""
    circuit, config, result, _ = s27_run
    path = str(tmp_path / "s.sqlite")
    errors = []

    def ingest():
        try:
            with CampaignStore(path) as store:
                store.ingest_result(result, circuit=circuit, config=config)
        except Exception as error:  # noqa: BLE001 - collected for the assert
            errors.append(error)

    threads = [threading.Thread(target=ingest) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    with CampaignStore(path) as store:
        rows = store.campaigns()
        assert len(rows) == 4
        for row in rows:
            assert store.load_result(row["id"]).to_json() == result.to_json()


def test_schema_version_mismatch_rejected(tmp_path):
    """A store written by a different schema version does not open."""
    path = str(tmp_path / "s.sqlite")
    CampaignStore(path).close()
    conn = sqlite3.connect(path)
    with conn:
        conn.execute("UPDATE meta SET value = '99' WHERE key = 'schema_version'")
    conn.close()
    with pytest.raises(ValueError, match="schema version"):
        CampaignStore(path)


def test_analytics_views(tmp_path, s27_run):
    """Coverage trend, cost outliers and backend ablation answer from SQL."""
    circuit, config, result, costs = s27_run
    with CampaignStore(str(tmp_path / "s.sqlite")) as store:
        store.ingest_result(result, circuit=circuit, config=config, costs=costs)
        bigint = _config(backend="bigint")
        bigint_result, _ = _run_serial(circuit, bigint)
        store.ingest_result(bigint_result, circuit=circuit, config=bigint)
        trend = store.coverage_trend("s27")
        outliers = store.cost_outliers(limit=3)
        ablation = store.backend_ablation()
    assert [row["campaign_id"] for row in trend] == [1, 2]
    assert all(0.0 <= row["coverage"] <= 1.0 for row in trend)
    # Both backends produced bit-identical campaigns (tested counts agree).
    assert trend[0]["tested"] == trend[1]["tested"]
    assert len(outliers) == 3
    assert outliers[0]["seconds"] >= outliers[-1]["seconds"]
    assert {row["backend"] for row in ablation} == {"default", "bigint"}


def test_ingest_without_circuit_is_analytics_only(tmp_path, s27_run):
    """Rows ingested without a netlist cannot serve as incremental bases."""
    _, config, result, _ = s27_run
    with CampaignStore(str(tmp_path / "s.sqlite")) as store:
        campaign_id = store.ingest_result(result)
        assert store.load_result(campaign_id).to_json() == result.to_json()
        with pytest.raises(LookupError):
            store.find_base("s27", config)

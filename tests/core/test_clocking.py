"""The slow/fast clock schedule of the time frame model (Figure 2)."""

import pytest

from repro.core.clocking import ClockSchedule, ClockSpeed


def test_schedule_layout_matches_figure2():
    schedule = ClockSchedule.for_sequence(initialization_frames=2, propagation_frames=2)
    assert schedule.frame_count == 6
    assert [speed.value for speed in schedule.speeds] == [
        "slow",
        "slow",
        "slow",
        "fast",
        "slow",
        "slow",
    ]
    assert schedule.fast_frame_index == 3
    assert schedule.initialization_frames == 2
    assert schedule.propagation_frames == 2
    assert schedule.is_valid()


def test_minimal_schedule_is_two_frames():
    schedule = ClockSchedule.for_sequence(0, 0)
    assert schedule.frame_count == 2
    assert schedule.speeds[0] is ClockSpeed.SLOW
    assert schedule.speeds[1] is ClockSpeed.FAST
    assert schedule.is_valid()


def test_exactly_one_fast_frame_always():
    for init in range(4):
        for prop in range(4):
            schedule = ClockSchedule.for_sequence(init, prop)
            fast = [speed for speed in schedule.speeds if speed is ClockSpeed.FAST]
            assert len(fast) == 1
            assert schedule.is_valid()


def test_negative_counts_rejected():
    with pytest.raises(ValueError):
        ClockSchedule.for_sequence(-1, 0)
    with pytest.raises(ValueError):
        ClockSchedule.for_sequence(0, -2)


def test_invalid_schedules_detected():
    all_slow = ClockSchedule(speeds=(ClockSpeed.SLOW, ClockSpeed.SLOW))
    assert not all_slow.is_valid()
    fast_first = ClockSchedule(speeds=(ClockSpeed.FAST, ClockSpeed.SLOW))
    assert not fast_first.is_valid()
    two_fast = ClockSchedule(
        speeds=(ClockSpeed.SLOW, ClockSpeed.FAST, ClockSpeed.FAST)
    )
    assert not two_fast.is_valid()


def test_str_rendering():
    schedule = ClockSchedule.for_sequence(1, 1)
    assert str(schedule) == "slow slow fast slow"

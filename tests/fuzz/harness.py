"""Property-based differential fuzz harness for the backend registry.

A :class:`FuzzCase` is a fully serialisable bundle of everything one
differential check needs: a random circuit (as a :class:`CircuitSpec` that
rebuilds it through the public :class:`~repro.circuit.builder.CircuitBuilder`
API), a random fault site, a batch of random three-valued vector sequences,
and random partial assignments for the search-side layers.

:func:`check_case` replays the case through **all four dispatch layers** —
simulation (scalar clocking *and* the batched plane path), implication,
search kernels and grading — once per registered backend, and returns every
disagreement with the reference oracle.  :func:`shrink_case` greedily
minimises a failing case (drop sequences/frames/outputs/dead gates, X out
assignments) while it keeps failing, and :func:`persist_case` writes the
minimised case to ``tests/fuzz/corpus/`` so the regression replays forever.

Everything is seeded: ``generate_case(seed)`` is deterministic, and a corpus
file round-trips through :meth:`FuzzCase.to_json` / :meth:`FuzzCase.from_json`
bit-exactly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algebra.values import PI_VALUES, DelayValue
from repro.circuit.builder import CircuitBuilder
from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.core.clocking import ClockSchedule
from repro.core.results import TestSequence
from repro.core.verify import grade_test_sequence
from repro.faults.model import GateDelayFault, enumerate_delay_faults, sample_faults
from repro.fausim.backends import available_backends, create_simulator
from repro.fausim.logic_sim import simulate_sequence
from repro.tdgen.context import TDgenContext
from repro.tdgen.implication import (
    available_implication_engines,
    create_implication_engine,
)

#: Where minimised failing cases are persisted; every file in here is
#: replayed as a deterministic tier-1 regression by ``test_corpus.py``.
CORPUS_DIR = Path(__file__).parent / "corpus"

#: Delay-value lookup for serialising PI assignments ('0', '1', 'R', 'F').
_VALUE_OF_NAME: Dict[str, DelayValue] = {value.name: value for value in PI_VALUES}

_MULTI_INPUT = (
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
)
_SINGLE_INPUT = (GateType.NOT, GateType.BUF)

#: Implication-state fields the engines must agree on.
_STATE_FIELDS = (
    "signal_sets",
    "frame1",
    "fault_line_set",
    "ppi_pair_sets",
    "conflict_signal",
)


# --------------------------------------------------------------------------- #
# circuit specification
# --------------------------------------------------------------------------- #
@dataclasses.dataclass
class CircuitSpec:
    """A serialisable netlist recipe built through the public builder API.

    Attributes:
        name: circuit name.
        inputs: primary input names.
        gates: ``(gate_type_name, output, fanins)`` in creation order.
        dffs: ``(q, data_source)`` flip-flop bindings.
        outputs: primary output names.
    """

    name: str
    inputs: List[str]
    gates: List[Tuple[str, str, List[str]]]
    dffs: List[Tuple[str, str]]
    outputs: List[str]

    def build(self) -> Circuit:
        """Materialise the spec into a :class:`~repro.circuit.netlist.Circuit`."""
        builder = CircuitBuilder(self.name)
        builder.inputs(self.inputs)
        for gate_type, output, fanins in self.gates:
            builder.gate(GateType[gate_type], output, list(fanins))
        for q, data in self.dffs:
            builder.dff(q, data)
        builder.outputs(self.outputs)
        return builder.build()

    def to_json(self) -> Dict[str, object]:
        """JSON representation (see :meth:`from_json`)."""
        return {
            "name": self.name,
            "inputs": list(self.inputs),
            "gates": [[t, o, list(f)] for t, o, f in self.gates],
            "dffs": [[q, d] for q, d in self.dffs],
            "outputs": list(self.outputs),
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "CircuitSpec":
        """Rebuild a spec from its :meth:`to_json` representation."""
        return cls(
            name=payload["name"],
            inputs=list(payload["inputs"]),
            gates=[(t, o, list(f)) for t, o, f in payload["gates"]],
            dffs=[(q, d) for q, d in payload["dffs"]],
            outputs=list(payload["outputs"]),
        )

    @classmethod
    def generate(cls, rng: random.Random, name: str) -> "CircuitSpec":
        """A seeded random synchronous circuit (all eight gate types)."""
        n_inputs = rng.randint(2, 6)
        n_ffs = rng.randint(0, 4)
        n_gates = rng.randint(4, 35)
        inputs = [f"i{index}" for index in range(n_inputs)]
        ffs = [f"q{index}" for index in range(n_ffs)]
        pool: List[str] = inputs + ffs
        gates: List[Tuple[str, str, List[str]]] = []
        gate_names: List[str] = []
        for index in range(n_gates):
            gate_name = f"g{index}"
            if rng.random() < 0.2:
                gates.append(
                    (rng.choice(_SINGLE_INPUT).name, gate_name, [rng.choice(pool)])
                )
            else:
                arity = rng.randint(2, min(4, len(pool)))
                gates.append(
                    (rng.choice(_MULTI_INPUT).name, gate_name, rng.sample(pool, arity))
                )
            gate_names.append(gate_name)
            pool.append(gate_name)
        dffs = [(ff, rng.choice(gate_names)) for ff in ffs]
        outputs = rng.sample(gate_names, rng.randint(1, min(3, len(gate_names))))
        return cls(name=name, inputs=inputs, gates=gates, dffs=dffs, outputs=outputs)


# --------------------------------------------------------------------------- #
# fuzz cases
# --------------------------------------------------------------------------- #
@dataclasses.dataclass
class FuzzCase:
    """One serialisable differential check across all four dispatch layers.

    Attributes:
        seed: generation seed (kept for reproduction messages).
        circuit: the netlist recipe.
        sequences: a batch of equally long three-valued PI vector sequences;
            ``sequences[0]`` doubles as the grading sequence.
        initial_state: three-valued PPI state for the scalar replay and the
            justification-layer frame.
        pi_assignment: partial eight-valued PI assignment ('0'/'1'/'R'/'F'
            by name, ``None`` = unassigned) for the implication layer.
        ppi_initial: partial binary PPI assignment for the implication layer.
        fault: a fault site (``GateDelayFault.to_json``), or ``None`` for the
            fault-free implication pass.
        robust: robustness mode of the implication layer.
        max_faults: grading-layer cap on the enumerated fault universe.
    """

    seed: int
    circuit: CircuitSpec
    sequences: List[List[Dict[str, Optional[int]]]]
    initial_state: Dict[str, Optional[int]]
    pi_assignment: Dict[str, Optional[str]]
    ppi_initial: Dict[str, Optional[int]]
    fault: Optional[Dict[str, object]]
    robust: bool = True
    max_faults: int = 12

    def to_json(self) -> Dict[str, object]:
        """JSON representation (see :meth:`from_json`)."""
        return {
            "seed": self.seed,
            "circuit": self.circuit.to_json(),
            "sequences": self.sequences,
            "initial_state": self.initial_state,
            "pi_assignment": self.pi_assignment,
            "ppi_initial": self.ppi_initial,
            "fault": self.fault,
            "robust": self.robust,
            "max_faults": self.max_faults,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "FuzzCase":
        """Rebuild a case from its :meth:`to_json` representation."""
        return cls(
            seed=payload["seed"],
            circuit=CircuitSpec.from_json(payload["circuit"]),
            sequences=[
                [dict(vector) for vector in sequence]
                for sequence in payload["sequences"]
            ],
            initial_state=dict(payload["initial_state"]),
            pi_assignment=dict(payload["pi_assignment"]),
            ppi_initial=dict(payload["ppi_initial"]),
            fault=payload["fault"],
            robust=payload.get("robust", True),
            max_faults=payload.get("max_faults", 12),
        )


def generate_case(seed: int) -> FuzzCase:
    """The deterministic fuzz case of one seed."""
    rng = random.Random(0xF022 ^ (seed * 0x9E3779B1))
    spec = CircuitSpec.generate(rng, f"fuzz{seed}")
    circuit = spec.build()

    n_sequences = rng.randint(1, 6)
    n_frames = rng.randint(2, 8)
    sequences = [
        [
            {pi: rng.choice([0, 1, None]) for pi in circuit.primary_inputs}
            for _ in range(n_frames)
        ]
        for _ in range(n_sequences)
    ]
    initial_state = {
        ppi: rng.choice([0, 1, None]) for ppi in circuit.pseudo_primary_inputs
    }
    pi_assignment = {
        pi: (rng.choice(PI_VALUES).name if rng.random() < 0.6 else None)
        for pi in circuit.primary_inputs
    }
    ppi_initial = {
        ppi: (rng.randint(0, 1) if rng.random() < 0.6 else None)
        for ppi in circuit.pseudo_primary_inputs
    }
    faults = enumerate_delay_faults(circuit)
    fault = rng.choice(faults).to_json() if rng.random() < 0.85 else None
    return FuzzCase(
        seed=seed,
        circuit=spec,
        sequences=sequences,
        initial_state=initial_state,
        pi_assignment=pi_assignment,
        ppi_initial=ppi_initial,
        fault=fault,
        robust=rng.random() < 0.7,
    )


# --------------------------------------------------------------------------- #
# the differential check
# --------------------------------------------------------------------------- #
def _decode_pi_assignment(
    case: FuzzCase, circuit: Circuit
) -> Dict[str, Optional[DelayValue]]:
    """The implication-layer PI assignment as delay values."""
    return {
        pi: (_VALUE_OF_NAME[name] if name is not None else None)
        for pi, name in case.pi_assignment.items()
        if pi in circuit.signals
    }


def _decode_fault(case: FuzzCase, circuit: Circuit) -> Optional[GateDelayFault]:
    """The case's fault, or ``None`` when absent or shrunk away."""
    if case.fault is None:
        return None
    fault = GateDelayFault.from_json(case.fault)
    if fault not in set(enumerate_delay_faults(circuit)):
        return None
    return fault


def _check_simulation(case: FuzzCase, circuit: Circuit, failures: List[str]) -> None:
    """Layer 1: scalar clocking and the batched plane path, per backend."""
    reference = [
        simulate_sequence(circuit, sequence, initial_state=case.initial_state)
        for sequence in case.sequences
    ]
    for backend in available_backends():
        if backend == "reference":
            continue
        simulator = create_simulator(circuit, backend)
        # scalar clocking, frame by frame, against the reference frames
        state = dict(case.initial_state)
        for index, vector in enumerate(case.sequences[0]):
            frame = simulator.clock(vector, state)
            want = reference[0].frames[index]
            if frame.values != want.values or frame.next_state != want.next_state:
                failures.append(f"simulation[{backend}]: scalar frame {index} differs")
                break
            state = frame.next_state
        # the batched plane path (the packed/bigint/numpy fast pass)
        batch = simulator.sequence_batch(
            case.sequences,
            initial_states=[dict(case.initial_state) for _ in case.sequences],
        )
        for pattern, want in enumerate(reference):
            got = batch[pattern]
            if [frame.values for frame in got.frames] != [
                frame.values for frame in want.frames
            ]:
                failures.append(f"simulation[{backend}]: batch pattern {pattern} differs")
                break
            if got.final_state != want.final_state:
                failures.append(
                    f"simulation[{backend}]: batch final state {pattern} differs"
                )
                break


def _check_implication_and_kernels(
    case: FuzzCase, circuit: Circuit, failures: List[str]
) -> None:
    """Layers 2+3: implication states, objectives, backtraces, per engine."""
    context = TDgenContext(circuit)
    fault = _decode_fault(case, circuit)
    pi_values = _decode_pi_assignment(case, circuit)
    ppi_initial = {
        ppi: value
        for ppi, value in case.ppi_initial.items()
        if ppi in circuit.signals
    }
    engines = {
        name: create_implication_engine(
            circuit, name, robust=case.robust, context=context
        )
        for name in available_implication_engines()
    }
    oracle = engines.pop("reference")
    oracle_kernels = oracle.search_kernels()

    want_state = oracle.implicate(pi_values, ppi_initial, fault)
    free = [pi for pi, value in pi_values.items() if value is None][:2]
    candidates = [
        ("pi", name, value) for name in free for value in PI_VALUES
    ] + [None]
    want_batch = oracle.implicate_candidates(pi_values, ppi_initial, fault, candidates)

    just_pi = {
        pi: case.sequences[0][0].get(pi) for pi in circuit.primary_inputs
    }
    just_ppi = {
        ppi: case.initial_state.get(ppi) for ppi in circuit.pseudo_primary_inputs
    }
    want_just_frames = oracle.frame_candidates(just_pi, just_ppi, (None,))
    just_targets = [
        name
        for name in circuit.signals
        if not circuit.gates[name].is_input and not circuit.gates[name].is_dff
    ][:3]

    for name, engine in engines.items():
        got_state = engine.implicate(pi_values, ppi_initial, fault)
        for field in _STATE_FIELDS:
            if getattr(got_state, field) != getattr(want_state, field):
                failures.append(f"implication[{name}]: {field} differs")
                break
        got_batch = engine.implicate_candidates(
            pi_values, ppi_initial, fault, candidates
        )
        for index in range(len(candidates)):
            mismatch = [
                field
                for field in _STATE_FIELDS
                if getattr(got_batch.state(index), field)
                != getattr(want_batch.state(index), field)
            ]
            if mismatch:
                failures.append(
                    f"implication[{name}]: candidate {index} {mismatch[0]} differs"
                )
                break
        # the incremental cone path, chained off the previous state like
        # the TDgen search chains it (base= takes a different code path)
        want_chained = oracle.implicate_candidates(
            pi_values, ppi_initial, fault, candidates, base=want_state
        )
        got_chained = engine.implicate_candidates(
            pi_values, ppi_initial, fault, candidates, base=got_state
        )
        for index in range(len(candidates)):
            mismatch = [
                field
                for field in _STATE_FIELDS
                if getattr(got_chained.state(index), field)
                != getattr(want_chained.state(index), field)
            ]
            if mismatch:
                failures.append(
                    f"implication[{name}]: chained candidate {index} "
                    f"{mismatch[0]} differs"
                )
                break

        # layer 3: the search kernels resolved for this engine
        kernels = engine.search_kernels()
        if fault is not None and not want_state.has_conflict():
            for prefer_po in (True, False):
                want = oracle_kernels.propagation_objective(
                    want_state, fault, prefer_po
                )
                got = kernels.propagation_objective(got_state, fault, prefer_po)
                if got != want:
                    failures.append(f"kernels[{name}]: objective differs")
                    continue
                if want is None:
                    continue
                if kernels.backtrace(
                    got_state, fault, want, pi_values, ppi_initial
                ) != oracle_kernels.backtrace(
                    want_state, fault, want, pi_values, ppi_initial
                ):
                    failures.append(f"kernels[{name}]: backtrace differs")
        got_just_frames = engine.frame_candidates(just_pi, just_ppi, (None,))
        for signal in just_targets:
            for target in (0, 1):
                want = oracle_kernels.justification_backtrace(
                    want_just_frames, 0, signal, target, just_pi, just_ppi, True
                )
                got = kernels.justification_backtrace(
                    got_just_frames, 0, signal, target, just_pi, just_ppi, True
                )
                if got != want:
                    failures.append(
                        f"kernels[{name}]: justification {signal}->{target} differs"
                    )


def _grading_sequence(case: FuzzCase, faults: Sequence[GateDelayFault]) -> TestSequence:
    """The grading-layer test sequence built from the case's first sequence."""
    frames = case.sequences[0]
    fast_index = max(1, len(frames) // 2)
    schedule = ClockSchedule.for_sequence(
        initialization_frames=fast_index - 1,
        propagation_frames=len(frames) - fast_index - 1,
    )
    fault = _decode_fault(case, case.circuit.build()) or faults[0]
    return TestSequence(
        fault=fault,
        initialization_vectors=frames[: fast_index - 1],
        v1=frames[fast_index - 1],
        v2=frames[fast_index],
        propagation_vectors=frames[fast_index + 1 :],
        clock_schedule=schedule,
        observation_point="",
        observed_at_po=True,
    )


def _check_grading(case: FuzzCase, circuit: Circuit, failures: List[str]) -> None:
    """Layer 4: fault grading verdicts, per backend."""
    faults = sample_faults(enumerate_delay_faults(circuit), case.max_faults)
    if not faults or len(case.sequences[0]) < 2:
        return
    sequence = _grading_sequence(case, faults)
    want = [
        (grade.detected, grade.detection_frame, grade.primary_output)
        for grade in grade_test_sequence(circuit, sequence, faults, backend="reference")
    ]
    for backend in available_backends():
        if backend == "reference":
            continue
        got = [
            (grade.detected, grade.detection_frame, grade.primary_output)
            for grade in grade_test_sequence(circuit, sequence, faults, backend=backend)
        ]
        if got != want:
            first = next(index for index in range(len(want)) if got[index] != want[index])
            failures.append(
                f"grading[{backend}]: fault {faults[first]} verdict differs "
                f"({got[first]} != {want[first]})"
            )


def check_case(case: FuzzCase) -> List[str]:
    """Replay ``case`` through all four layers; returns every disagreement."""
    failures: List[str] = []
    circuit = case.circuit.build()
    _check_simulation(case, circuit, failures)
    _check_implication_and_kernels(case, circuit, failures)
    _check_grading(case, circuit, failures)
    return failures


# --------------------------------------------------------------------------- #
# shrinking
# --------------------------------------------------------------------------- #
def _shrink_candidates(case: FuzzCase) -> List[FuzzCase]:
    """Every one-step-smaller variant of ``case``, most aggressive first."""
    variants: List[FuzzCase] = []

    def clone() -> FuzzCase:
        return FuzzCase.from_json(json.loads(json.dumps(case.to_json())))

    if len(case.sequences) > 1:
        for index in range(len(case.sequences)):
            variant = clone()
            del variant.sequences[index]
            variants.append(variant)
    if len(case.sequences[0]) > 2:
        for index in range(len(case.sequences[0])):
            variant = clone()
            for sequence in variant.sequences:
                del sequence[index]
            variants.append(variant)
    spec = case.circuit
    if len(spec.outputs) > 1:
        for index in range(len(spec.outputs)):
            variant = clone()
            del variant.circuit.outputs[index]
            variants.append(variant)
    # gates (or flip-flops) that feed nothing can be dropped outright
    referenced = set(spec.outputs)
    for _, _, fanins in spec.gates:
        referenced.update(fanins)
    for _, data in spec.dffs:
        referenced.add(data)
    for index, (_, output, _) in enumerate(spec.gates):
        if output not in referenced:
            variant = clone()
            del variant.circuit.gates[index]
            variants.append(variant)
    for index, (q, _) in enumerate(spec.dffs):
        if q not in referenced:
            variant = clone()
            del variant.circuit.dffs[index]
            variant.initial_state.pop(q, None)
            variant.ppi_initial.pop(q, None)
            variants.append(variant)
    if case.fault is not None:
        variant = clone()
        variant.fault = None
        variants.append(variant)
    # X out individual assignments last (cheapest simplification)
    for pattern, sequence in enumerate(case.sequences):
        for frame, vector in enumerate(sequence):
            for name, value in vector.items():
                if value is not None:
                    variant = clone()
                    variant.sequences[pattern][frame][name] = None
                    variants.append(variant)
    for mapping in ("pi_assignment", "ppi_initial", "initial_state"):
        for name, value in getattr(case, mapping).items():
            if value is not None:
                variant = clone()
                getattr(variant, mapping)[name] = None
                variants.append(variant)
    return variants


def _is_valid(case: FuzzCase) -> bool:
    """True when the (possibly shrunk) case still builds a legal circuit."""
    try:
        circuit = case.circuit.build()
    except Exception:
        return False
    return bool(circuit.primary_outputs)


def shrink_case(case: FuzzCase, predicate=None, max_checks: int = 250) -> FuzzCase:
    """Greedily minimise ``case`` while ``predicate`` stays true.

    The default predicate is "the differential check still fails", which is
    the fuzzing loop's shrink; corpus curation passes structural predicates
    instead (e.g. "the grading layer still detects a fault").
    """
    if predicate is None:
        predicate = lambda candidate: bool(check_case(candidate))  # noqa: E731
    if not predicate(case):
        return case
    checks = 0
    shrunk = True
    while shrunk and checks < max_checks:
        shrunk = False
        for variant in _shrink_candidates(case):
            if checks >= max_checks:
                break
            if not _is_valid(variant):
                continue
            checks += 1
            if predicate(variant):
                case = variant
                shrunk = True
                break
    return case


# --------------------------------------------------------------------------- #
# corpus persistence
# --------------------------------------------------------------------------- #
def persist_case(case: FuzzCase, failures: Sequence[str], note: str = "") -> Path:
    """Write a (minimised) failing case into the regression corpus."""
    payload = {
        "note": note or "persisted by the differential fuzz harness",
        "failures_at_discovery": list(failures),
        "case": case.to_json(),
    }
    blob = json.dumps(payload, indent=2, sort_keys=True)
    digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:10]
    CORPUS_DIR.mkdir(exist_ok=True)
    path = CORPUS_DIR / f"fuzz_{digest}.json"
    path.write_text(blob + "\n", encoding="utf-8")
    return path


def load_corpus() -> List[Tuple[Path, FuzzCase]]:
    """Every checked-in differential corpus case, sorted by file name.

    Incremental-equivalence cases (``"kind": "incremental"``) live in the
    same directory but replay through :func:`check_incremental_case`; see
    :func:`load_incremental_corpus`.
    """
    if not CORPUS_DIR.is_dir():
        return []
    cases = []
    for path in sorted(CORPUS_DIR.glob("*.json")):
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("kind") == "incremental":
            continue
        cases.append((path, FuzzCase.from_json(payload["case"])))
    return cases


# --------------------------------------------------------------------------- #
# incremental-equivalence fuzzing
# --------------------------------------------------------------------------- #
#: Perturbation kinds :class:`PerturbSpec` can describe.  Flip-flop
#: additions/removals are deliberately excluded: they change the state set,
#: which the store-side sequence refit already pins deterministically, and a
#: register delta always lands its whole fanin/fanout in the cone anyway.
PERTURB_KINDS = ("type_flip", "rewire", "add_gate", "remove_gate")


@dataclasses.dataclass
class PerturbSpec:
    """One serialisable single-edit netlist perturbation.

    Applied to a :class:`CircuitSpec` (never a built circuit) so a perturbed
    case round-trips through JSON exactly like the base spec.

    Attributes:
        kind: one of :data:`PERTURB_KINDS`.
        gate: the edited gate's output name (the *new* gate's name for
            ``add_gate``).
        gate_type: replacement/new gate type name (``type_flip``/``add_gate``).
        pin: fanin pin index being rewired (``rewire``).
        source: replacement fanin source (``rewire``).
        fanins: the new gate's fanin list (``add_gate``).
        attach: how an added gate is observed — ``"po"`` (new primary
            output), ``"dff:<q>"`` (repoint that flip-flop's data input) or
            ``None`` (left dangling; still a structural delta).
    """

    kind: str
    gate: str
    gate_type: Optional[str] = None
    pin: Optional[int] = None
    source: Optional[str] = None
    fanins: List[str] = dataclasses.field(default_factory=list)
    attach: Optional[str] = None

    def to_json(self) -> Dict[str, object]:
        """JSON representation (see :meth:`from_json`)."""
        return {
            "kind": self.kind,
            "gate": self.gate,
            "gate_type": self.gate_type,
            "pin": self.pin,
            "source": self.source,
            "fanins": list(self.fanins),
            "attach": self.attach,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "PerturbSpec":
        """Rebuild a perturbation from its :meth:`to_json` representation."""
        return cls(
            kind=payload["kind"],
            gate=payload["gate"],
            gate_type=payload.get("gate_type"),
            pin=payload.get("pin"),
            source=payload.get("source"),
            fanins=list(payload.get("fanins", [])),
            attach=payload.get("attach"),
        )

    def apply(self, spec: CircuitSpec) -> CircuitSpec:
        """The perturbed copy of ``spec`` (raises ``ValueError`` if stale).

        A shrink step may have removed the edited gate; raising keeps the
        shrinker honest (such variants are rejected as invalid).
        """
        out = CircuitSpec.from_json(json.loads(json.dumps(spec.to_json())))
        index = next(
            (i for i, (_, o, _) in enumerate(out.gates) if o == self.gate), None
        )
        if self.kind == "type_flip":
            if index is None:
                raise ValueError(f"no gate {self.gate!r} to flip")
            _, output, fanins = out.gates[index]
            out.gates[index] = (self.gate_type, output, fanins)
        elif self.kind == "rewire":
            if index is None:
                raise ValueError(f"no gate {self.gate!r} to rewire")
            gate_type, output, fanins = out.gates[index]
            if self.pin >= len(fanins) or not _defined_before(out, index, self.source):
                raise ValueError("stale rewire")
            fanins = list(fanins)
            fanins[self.pin] = self.source
            out.gates[index] = (gate_type, output, fanins)
        elif self.kind == "add_gate":
            if index is not None:
                raise ValueError(f"gate {self.gate!r} already exists")
            pool = set(out.inputs) | {q for q, _ in out.dffs}
            pool.update(o for _, o, _ in out.gates)
            if not set(self.fanins) <= pool:
                raise ValueError("stale add_gate fanins")
            out.gates.append((self.gate_type, self.gate, list(self.fanins)))
            if self.attach == "po":
                out.outputs.append(self.gate)
            elif self.attach is not None and self.attach.startswith("dff:"):
                q = self.attach[4:]
                slot = next((i for i, (ff, _) in enumerate(out.dffs) if ff == q), None)
                if slot is None:
                    raise ValueError(f"no flip-flop {q!r} to repoint")
                out.dffs[slot] = (q, self.gate)
        elif self.kind == "remove_gate":
            if index is None:
                raise ValueError(f"no gate {self.gate!r} to remove")
            replacement = out.gates[index][2][0]
            del out.gates[index]
            out.gates = [
                (t, o, [replacement if s == self.gate else s for s in f])
                for t, o, f in out.gates
            ]
            out.dffs = [
                (q, replacement if d == self.gate else d) for q, d in out.dffs
            ]
            out.outputs = [o for o in out.outputs if o != self.gate]
            if not out.outputs:
                raise ValueError("removal would leave no primary outputs")
        else:
            raise ValueError(f"unknown perturbation kind {self.kind!r}")
        return out

    @classmethod
    def generate(cls, rng: random.Random, spec: CircuitSpec) -> "PerturbSpec":
        """A seeded random perturbation that is valid for ``spec``."""
        for _ in range(32):
            kind = rng.choice(PERTURB_KINDS)
            candidate = cls._generate_one(rng, spec, kind)
            if candidate is None:
                continue
            try:
                candidate.apply(spec).build()
            except Exception:
                continue
            return candidate
        # Always-valid fallback: flip the first gate's type.
        gate_type, output, fanins = spec.gates[0]
        family = _SINGLE_INPUT if len(fanins) == 1 else _MULTI_INPUT
        flipped = rng.choice([t for t in family if t.name != gate_type])
        return cls(kind="type_flip", gate=output, gate_type=flipped.name)

    @classmethod
    def _generate_one(
        cls, rng: random.Random, spec: CircuitSpec, kind: str
    ) -> Optional["PerturbSpec"]:
        """One random attempt at a ``kind`` perturbation, or ``None``."""
        if kind == "type_flip":
            gate_type, output, fanins = rng.choice(spec.gates)
            family = _SINGLE_INPUT if len(fanins) == 1 else _MULTI_INPUT
            choices = [t for t in family if t.name != gate_type]
            if not choices:
                return None
            return cls(kind="type_flip", gate=output, gate_type=rng.choice(choices).name)
        if kind == "rewire":
            index = rng.randrange(len(spec.gates))
            _, output, fanins = spec.gates[index]
            pool = list(spec.inputs) + [q for q, _ in spec.dffs]
            pool += [o for _, o, _ in spec.gates[:index]]
            pin = rng.randrange(len(fanins))
            choices = [s for s in pool if s != fanins[pin]]
            if not choices:
                return None
            return cls(kind="rewire", gate=output, pin=pin, source=rng.choice(choices))
        if kind == "add_gate":
            pool = list(spec.inputs) + [q for q, _ in spec.dffs]
            pool += [o for _, o, _ in spec.gates]
            if rng.random() < 0.25:
                gate_type, fanins = rng.choice(_SINGLE_INPUT), [rng.choice(pool)]
            else:
                arity = rng.randint(2, min(3, len(pool)))
                gate_type, fanins = rng.choice(_MULTI_INPUT), rng.sample(pool, arity)
            roll = rng.random()
            if roll < 0.45:
                attach: Optional[str] = "po"
            elif roll < 0.75 and spec.dffs:
                attach = f"dff:{rng.choice(spec.dffs)[0]}"
            else:
                attach = None
            return cls(
                kind="add_gate",
                gate="p0",
                gate_type=gate_type.name,
                fanins=fanins,
                attach=attach,
            )
        # remove_gate
        removable = [o for _, o, _ in spec.gates if o not in spec.outputs or len(spec.outputs) > 1]
        if not removable:
            return None
        return cls(kind="remove_gate", gate=rng.choice(removable))


def _defined_before(spec: CircuitSpec, index: int, source: str) -> bool:
    """True when ``source`` is legal as a fanin of gate ``index`` (acyclic)."""
    if source in spec.inputs or any(q == source for q, _ in spec.dffs):
        return True
    return any(o == source for _, o, _ in spec.gates[:index])


@dataclasses.dataclass
class IncrementalFuzzCase:
    """One serialisable incremental-equivalence check.

    A base circuit, a single-edit perturbation and the campaign settings
    (robustness mode, simulation ``backend``, optional base-campaign cap).
    :func:`check_incremental_case` runs the base campaign, ingests it into a
    throwaway store, and asserts the incremental re-run on the perturbed
    circuit is fingerprint-identical to a from-scratch campaign.
    """

    seed: int
    circuit: CircuitSpec
    perturb: PerturbSpec
    robust: bool = True
    backend: Optional[str] = None
    #: Optional ``max_target_faults`` cap on the *base* campaign, so the
    #: incremental loop's retarget-on-missing-record path is fuzzed too.
    base_cap: Optional[int] = None

    def to_json(self) -> Dict[str, object]:
        """JSON representation (see :meth:`from_json`)."""
        return {
            "kind": "incremental",
            "seed": self.seed,
            "circuit": self.circuit.to_json(),
            "perturb": self.perturb.to_json(),
            "robust": self.robust,
            "backend": self.backend,
            "base_cap": self.base_cap,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "IncrementalFuzzCase":
        """Rebuild a case from its :meth:`to_json` representation."""
        return cls(
            seed=payload["seed"],
            circuit=CircuitSpec.from_json(payload["circuit"]),
            perturb=PerturbSpec.from_json(payload["perturb"]),
            robust=payload.get("robust", True),
            backend=payload.get("backend"),
            base_cap=payload.get("base_cap"),
        )


def generate_incremental_case(seed: int) -> IncrementalFuzzCase:
    """The deterministic incremental-equivalence case of one seed."""
    rng = random.Random(0x1CC0 ^ (seed * 0x9E3779B1))
    spec = CircuitSpec.generate(rng, f"incr{seed}")
    perturb = PerturbSpec.generate(rng, spec)
    return IncrementalFuzzCase(
        seed=seed,
        circuit=spec,
        perturb=perturb,
        robust=rng.random() < 0.6,
        backend=rng.choice(list(available_backends())),
        base_cap=rng.randint(3, 12) if rng.random() < 0.25 else None,
    )


def _incremental_config(case: IncrementalFuzzCase):
    """The (serial) campaign settings an incremental case runs under.

    Tight backtrack limits keep each of the three campaigns per check cheap;
    they are part of the config digest, so base and re-run agree on them.
    """
    from repro.orchestrate.coordinator import OrchestratorConfig

    return OrchestratorConfig(
        jobs=1,
        robust=case.robust,
        backend=case.backend,
        local_backtrack_limit=8,
        sequential_backtrack_limit=8,
        max_local_retries=2,
    )


def check_incremental_case(case: IncrementalFuzzCase) -> List[str]:
    """Replay an incremental-equivalence case; returns every violation.

    Three properties are checked:

    1. **Equivalence** — the incremental campaign's fingerprint is
       bit-identical to a from-scratch serial campaign on the perturbed
       circuit (per-fault statuses, sequences, detection lists, Table-3
       counters; only ``cpu_seconds`` is exempt).
    2. **Partition** — kept plus invalidated is exactly the perturbed
       circuit's fault universe, and the residue is exactly the set of
       faults whose signal lies in the influence cone.
    3. **Accounting** — every recorded fault was either reused from the
       store or freshly re-targeted.
    """
    import os
    import tempfile

    from repro.fausim.compile import compile_circuit, diff_compiled
    from repro.store.incremental import influence_cone, invalidate, run_incremental
    from repro.store.store import CampaignStore

    from repro.core.flow import SequentialDelayATPG

    failures: List[str] = []
    config = _incremental_config(case)
    old = case.circuit.build()
    new = case.perturb.apply(case.circuit).build()

    base_result = SequentialDelayATPG(old, **config.atpg_kwargs()).run(
        max_target_faults=case.base_cap
    )
    scratch = SequentialDelayATPG(new, **config.atpg_kwargs()).run()

    with tempfile.TemporaryDirectory() as tmp:
        store = CampaignStore(os.path.join(tmp, "store.sqlite"))
        try:
            store.ingest_result(base_result, circuit=old, config=config)
            outcome = run_incremental(new, store, config)
        finally:
            store.close()

    want = scratch.fingerprint()
    got = outcome.result.fingerprint()
    if got != want:
        keys = [key for key in want if got.get(key) != want.get(key)]
        failures.append(f"equivalence: fingerprint differs in {keys}")

    universe = enumerate_delay_faults(new)
    delta = diff_compiled(compile_circuit(old), compile_circuit(new))
    cone = influence_cone(new, delta)
    kept, residue = invalidate(universe, cone)
    if outcome.kept != len(kept) or outcome.invalidated != len(residue):
        failures.append(
            f"partition: outcome kept/invalidated {outcome.kept}/{outcome.invalidated} "
            f"!= recomputed {len(kept)}/{len(residue)}"
        )
    if len(kept) + len(residue) != len(universe):
        failures.append("partition: kept + residue != fault universe")
    misplaced = [f for f in residue if f.line.signal not in cone]
    misplaced += [f for f in kept if f.line.signal in cone]
    if misplaced:
        failures.append(f"partition: {misplaced[0]} on the wrong side of the cone")

    if outcome.reused + outcome.retargeted != outcome.result.targeted:
        failures.append(
            f"accounting: reused {outcome.reused} + retargeted {outcome.retargeted} "
            f"!= targeted {outcome.result.targeted}"
        )
    return failures


def _is_valid_incremental(case: IncrementalFuzzCase) -> bool:
    """True when base and perturbed circuits both still build."""
    try:
        old = case.circuit.build()
        new = case.perturb.apply(case.circuit).build()
    except Exception:
        return False
    return bool(old.primary_outputs) and bool(new.primary_outputs)


def _shrink_incremental_candidates(
    case: IncrementalFuzzCase,
) -> List[IncrementalFuzzCase]:
    """Every one-step-smaller variant of an incremental case."""
    variants: List[IncrementalFuzzCase] = []

    def clone() -> IncrementalFuzzCase:
        return IncrementalFuzzCase.from_json(json.loads(json.dumps(case.to_json())))

    spec = case.circuit
    if len(spec.outputs) > 1:
        for index in range(len(spec.outputs)):
            variant = clone()
            del variant.circuit.outputs[index]
            variants.append(variant)
    referenced = set(spec.outputs) | {case.perturb.gate, case.perturb.source or ""}
    referenced.update(case.perturb.fanins)
    for _, _, fanins in spec.gates:
        referenced.update(fanins)
    for _, data in spec.dffs:
        referenced.add(data)
    for index, (_, output, _) in enumerate(spec.gates):
        if output not in referenced:
            variant = clone()
            del variant.circuit.gates[index]
            variants.append(variant)
    for index, (q, _) in enumerate(spec.dffs):
        if q not in referenced:
            variant = clone()
            del variant.circuit.dffs[index]
            variants.append(variant)
    if case.base_cap is not None:
        variant = clone()
        variant.base_cap = None
        variants.append(variant)
    return variants


def shrink_incremental_case(
    case: IncrementalFuzzCase, predicate=None, max_checks: int = 60
) -> IncrementalFuzzCase:
    """Greedily minimise a failing incremental case while it keeps failing."""
    if predicate is None:
        predicate = lambda candidate: bool(check_incremental_case(candidate))  # noqa: E731
    if not predicate(case):
        return case
    checks = 0
    shrunk = True
    while shrunk and checks < max_checks:
        shrunk = False
        for variant in _shrink_incremental_candidates(case):
            if checks >= max_checks:
                break
            if not _is_valid_incremental(variant):
                continue
            checks += 1
            if predicate(variant):
                case = variant
                shrunk = True
                break
    return case


def persist_incremental_case(
    case: IncrementalFuzzCase, failures: Sequence[str], note: str = ""
) -> Path:
    """Write a (minimised) incremental case into the regression corpus."""
    payload = {
        "kind": "incremental",
        "note": note or "persisted by the incremental-equivalence fuzz harness",
        "failures_at_discovery": list(failures),
        "case": case.to_json(),
    }
    blob = json.dumps(payload, indent=2, sort_keys=True)
    digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:10]
    CORPUS_DIR.mkdir(exist_ok=True)
    path = CORPUS_DIR / f"fuzz_incr_{digest}.json"
    path.write_text(blob + "\n", encoding="utf-8")
    return path


def load_incremental_corpus() -> List[Tuple[Path, IncrementalFuzzCase]]:
    """Every checked-in incremental-equivalence corpus case."""
    if not CORPUS_DIR.is_dir():
        return []
    cases = []
    for path in sorted(CORPUS_DIR.glob("*.json")):
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("kind") != "incremental":
            continue
        cases.append((path, IncrementalFuzzCase.from_json(payload["case"])))
    return cases

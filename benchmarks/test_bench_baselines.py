"""Ablation A2 — deterministic FOGBUSTER vs the baselines.

Two comparisons put the paper's contribution in context:

* **enhanced scan**: how much testability the missing scan path costs
  (motivates the non-scan problem the paper solves), and
* **random sequences**: how much the deterministic two-engine flow buys over
  random patterns graded by the same fault criterion.
"""

import pytest

from repro.baselines.random_atpg import RandomSequenceATPG
from repro.baselines.scan_atpg import EnhancedScanATPG
from repro.core.flow import SequentialDelayATPG
from repro.data import load_circuit


def _compare_on_s27():
    circuit = load_circuit("s27")
    deterministic = SequentialDelayATPG(circuit).run()
    scan = EnhancedScanATPG(circuit).run()
    random_run = RandomSequenceATPG(circuit, sequence_length=6, seed=5).run(max_sequences=40)
    return deterministic, scan, random_run


def test_bench_baseline_comparison(benchmark):
    deterministic, scan, random_run = benchmark.pedantic(_compare_on_s27, rounds=1, iterations=1)

    total = deterministic.total_faults
    print()
    print("s27 — robust gate delay fault coverage by approach")
    print(f"{'approach':>22} {'tested':>7} {'of':>5} {'coverage':>9} {'patterns':>9}")
    print(
        f"{'FOGBUSTER (non-scan)':>22} {deterministic.tested:>7} {total:>5} "
        f"{deterministic.fault_coverage:>9.2%} {deterministic.pattern_count:>9}"
    )
    print(
        f"{'enhanced scan (TDgen)':>22} {scan.tested:>7} {total:>5} "
        f"{scan.fault_coverage:>9.2%} {scan.pattern_count:>9}"
    )
    print(
        f"{'random sequences*':>22} {random_run.detected:>7} {total:>5} "
        f"{random_run.fault_coverage:>9.2%} {random_run.pattern_count:>9}"
    )
    print(
        "  * the random baseline is graded with the weaker gross-delay criterion "
        "(no robustness guarantee), so its count is optimistic."
    )

    # Expected shape: the scan assumption dominates the non-scan flow, and the
    # deterministic non-scan flow reaches a solid robust coverage on s27.
    assert scan.tested >= deterministic.tested
    assert deterministic.fault_coverage >= 0.5
    assert random_run.detected <= total

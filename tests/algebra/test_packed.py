"""Property tests: packed eight-valued evaluation vs the reference tables.

The packed one-hot-plane evaluator of :mod:`repro.algebra.packed` must agree
with :func:`repro.algebra.tables.evaluate_delay_gate` on *every* input
combination.  The two-input case is checked exhaustively (all 64 value pairs
of every gate type, robust and non-robust, packed into a single word);
multi-input gates and ragged/partially-assigned words are checked with seeded
random sweeps.
"""

from __future__ import annotations

import random

import pytest

from repro.algebra.packed import (
    NUM_PLANES,
    evaluate_packed_delay_gate,
    pack_delay_values,
    packed_not,
    packed_table,
    unpack_delay_values,
)
from repro.algebra.tables import evaluate_delay_gate, not1
from repro.algebra.values import ALL_VALUES
from repro.circuit.gates import GateType

TWO_INPUT_TYPES = (
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
)


def test_pack_unpack_round_trip():
    rng = random.Random(7)
    values = [rng.choice(ALL_VALUES + (None,)) for _ in range(64)]
    planes = pack_delay_values(values)
    assert unpack_delay_values(planes, 64) == values
    # One-hot invariant: no pattern bit may be set in two planes at once.
    union = 0
    for plane in planes:
        assert union & plane == 0
        union |= plane


@pytest.mark.parametrize("gate_type", TWO_INPUT_TYPES)
@pytest.mark.parametrize("robust", [True, False])
def test_all_pairs_all_gate_types(gate_type, robust):
    """All 64 (a, b) pairs of the eight values, evaluated in one packed word."""
    pairs = [(a, b) for a in ALL_VALUES for b in ALL_VALUES]
    a_planes = pack_delay_values([a for a, _ in pairs])
    b_planes = pack_delay_values([b for _, b in pairs])
    out = evaluate_packed_delay_gate(gate_type, [a_planes, b_planes], robust)
    got = unpack_delay_values(out, len(pairs))
    for (a, b), value in zip(pairs, got):
        want = evaluate_delay_gate(gate_type, (a, b), robust)
        assert value is want, f"{gate_type.value}({a}, {b}) robust={robust}: {value} != {want}"


def test_not_and_buf_all_values():
    planes = pack_delay_values(list(ALL_VALUES))
    got_not = unpack_delay_values(evaluate_packed_delay_gate(GateType.NOT, [planes]), 8)
    got_buf = unpack_delay_values(evaluate_packed_delay_gate(GateType.BUF, [planes]), 8)
    assert got_not == [not1(value) for value in ALL_VALUES]
    assert got_buf == list(ALL_VALUES)
    assert packed_not(planes) == evaluate_packed_delay_gate(GateType.NOT, [planes])


@pytest.mark.parametrize("gate_type", TWO_INPUT_TYPES)
@pytest.mark.parametrize("arity", [3, 4, 5])
def test_multi_input_fold_matches_reference(gate_type, arity):
    """Random multi-input words agree with the associative reference fold."""
    rng = random.Random(100 * arity + gate_type.value.__hash__() % 97)
    for robust in (True, False):
        columns = [
            [rng.choice(ALL_VALUES) for _ in range(64)] for _ in range(arity)
        ]
        input_planes = [pack_delay_values(column) for column in columns]
        out = evaluate_packed_delay_gate(gate_type, input_planes, robust)
        got = unpack_delay_values(out, 64)
        for pattern in range(64):
            inputs = tuple(column[pattern] for column in columns)
            assert got[pattern] is evaluate_delay_gate(gate_type, inputs, robust)


def test_empty_slots_stay_empty():
    """Unassigned pattern slots never produce an output value."""
    a = pack_delay_values([ALL_VALUES[0], None, ALL_VALUES[2]])
    b = pack_delay_values([ALL_VALUES[1], ALL_VALUES[1], None])
    out = evaluate_packed_delay_gate(GateType.AND, [a, b])
    values = unpack_delay_values(out, 3)
    assert values[0] is evaluate_delay_gate(GateType.AND, (ALL_VALUES[0], ALL_VALUES[1]))
    assert values[1] is None
    assert values[2] is None


def test_packed_table_matches_reference_tables():
    """The index matrix is a verbatim view of the dictionary truth tables."""
    for gate_type in TWO_INPUT_TYPES:
        for robust in (True, False):
            table = packed_table(gate_type, robust)
            assert len(table) == NUM_PLANES
            for a in ALL_VALUES:
                for b in ALL_VALUES:
                    want = evaluate_delay_gate(gate_type, (a, b), robust)
                    assert ALL_VALUES[table[a.index][b.index]] is want


def test_arity_validation():
    planes = pack_delay_values([ALL_VALUES[0]])
    with pytest.raises(ValueError):
        evaluate_packed_delay_gate(GateType.AND, [])
    with pytest.raises(ValueError):
        evaluate_packed_delay_gate(GateType.NOT, [planes, planes])
    with pytest.raises(ValueError):
        evaluate_packed_delay_gate(GateType.BUF, [planes, planes])

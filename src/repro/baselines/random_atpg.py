"""Random-sequence baseline for non-scan delay fault testing.

The baseline applies pseudo-random input sequences to the circuit, declares
one frame of each sequence the fast (test) frame, and grades the sequence
with the same machinery the deterministic flow uses: the gross-delay
verification of :mod:`repro.core.verify`.  It provides the classic
"how much does deterministic ATPG buy over random patterns" comparison.

Grading dispatches through the ``backend`` parameter (the shared
:mod:`repro.fausim.backends` registry): the default ``packed`` backend
grades one faulty machine per word slot, ``reference`` interprets.
"""

from __future__ import annotations

import dataclasses
import random
import time
from typing import List, Optional, Sequence

from repro.circuit.netlist import Circuit
from repro.core.randseq import random_test_sequence
from repro.core.results import TestSequence
from repro.core.verify import grade_test_sequence
from repro.faults.model import FaultList, FaultStatus, GateDelayFault, enumerate_delay_faults
from repro.fausim.backends import resolve_backend


@dataclasses.dataclass
class RandomCampaignResult:
    """Coverage achieved by the random baseline."""

    circuit_name: str
    total_faults: int
    detected: int
    sequences_applied: int
    pattern_count: int
    cpu_seconds: float

    @property
    def fault_coverage(self) -> float:
        """Fraction of the fault universe the random sequences detected."""
        return self.detected / self.total_faults if self.total_faults else 0.0


class RandomSequenceATPG:
    """Random two-pattern / sequence generator graded by gross-delay simulation.

    Args:
        circuit: circuit under test.
        sequence_length: total frames per random sequence (initialisation
            frames + the two-pattern test + propagation frames).
        seed: seed of the pseudo-random generator.
        backend: good-machine simulation backend used for grading (see
            :mod:`repro.fausim.backends`).
    """

    def __init__(
        self,
        circuit: Circuit,
        sequence_length: int = 8,
        seed: int = 1,
        backend: Optional[str] = None,
    ) -> None:
        if sequence_length < 2:
            raise ValueError("a delay test needs at least two frames")
        self.circuit = circuit
        self.sequence_length = sequence_length
        self.seed = seed
        self.backend = resolve_backend(backend)

    def _random_sequence(self, rng: random.Random, fault: GateDelayFault) -> TestSequence:
        """One random sequence from the shared generator (same draw order)."""
        return random_test_sequence(rng, self.circuit, self.sequence_length, fault)

    def run(
        self,
        faults: Optional[Sequence[GateDelayFault]] = None,
        max_sequences: int = 200,
        target_coverage: float = 1.0,
    ) -> RandomCampaignResult:
        """Apply random sequences until the budget or the coverage target is hit.

        Every random sequence is graded against every still-undetected fault
        with the gross-delay check (a detected gross delay fault is the
        necessary condition the deterministic flow also guarantees).
        """
        fault_universe = list(faults) if faults is not None else enumerate_delay_faults(self.circuit)
        fault_list = FaultList(fault_universe)
        rng = random.Random(self.seed)
        start = time.perf_counter()
        sequences_applied = 0
        pattern_count = 0

        for _ in range(max_sequences):
            if fault_list.coverage() >= target_coverage:
                break
            remaining = fault_list.untargeted()
            if not remaining:
                break
            template_fault = remaining[0]
            sequence = self._random_sequence(rng, template_fault)
            sequences_applied += 1
            pattern_count += sequence.pattern_count
            # One fault-parallel sweep grades the sequence against every
            # still-undetected fault (packed backend: 63 faulty machines per
            # word next to the shared good machine).
            grades = grade_test_sequence(
                self.circuit, sequence, remaining, backend=self.backend
            )
            detected: List[GateDelayFault] = [
                grade.fault for grade in grades if grade.detected
            ]
            fault_list.mark_tested(detected)

        counts = fault_list.counts()
        return RandomCampaignResult(
            circuit_name=self.circuit.name,
            total_faults=counts["total"],
            detected=counts[FaultStatus.TESTED.value],
            sequences_applied=sequences_applied,
            pattern_count=pattern_count,
            cpu_seconds=time.perf_counter() - start,
        )

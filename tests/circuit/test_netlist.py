"""Structural netlist model: connectivity, FSM views, fault-site lines."""

import pytest

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, Line, LineKind


def build_sample() -> Circuit:
    circuit = Circuit("sample")
    circuit.add_input("a")
    circuit.add_input("b")
    circuit.add_gate("n1", GateType.AND, ["a", "b"])
    circuit.add_gate("n2", GateType.NOT, ["n1"])
    circuit.add_gate("ff", GateType.DFF, ["n2"])
    circuit.add_gate("n3", GateType.OR, ["n1", "ff"])
    circuit.add_output("n3")
    return circuit


def test_basic_views(s27):
    assert s27.primary_inputs == ["G0", "G1", "G2", "G3"]
    assert s27.primary_outputs == ["G17"]
    assert s27.pseudo_primary_inputs == ["G5", "G6", "G7"]
    assert sorted(s27.pseudo_primary_outputs) == ["G10", "G11", "G13"]
    assert len(s27.combinational_gates) == 10
    assert len(s27) == 17


def test_stats(s27):
    stats = s27.stats()
    assert stats["primary_inputs"] == 4
    assert stats["flip_flops"] == 3
    assert stats["gates"] == 10
    # 17 stems + branches on the multi-fanout signals.
    assert stats["lines"] == 26


def test_duplicate_definitions_rejected():
    circuit = Circuit()
    circuit.add_input("a")
    with pytest.raises(ValueError):
        circuit.add_input("a")
    with pytest.raises(ValueError):
        circuit.add_gate("a", GateType.NOT, ["a"])
    circuit.add_output("x" if False else "a")
    with pytest.raises(ValueError):
        circuit.add_output("a")


def test_add_gate_rejects_input_type():
    circuit = Circuit()
    with pytest.raises(ValueError):
        circuit.add_gate("a", GateType.INPUT, [])


def test_fanout_map():
    circuit = build_sample()
    assert circuit.fanout("n1") == [("n2", 0), ("n3", 0)]
    assert circuit.fanout("a") == [("n1", 0)]
    assert circuit.fanout("n3") == []
    assert circuit.observability_sinks("n3") == 1  # primary output only


def test_ppi_ppo_mapping():
    circuit = build_sample()
    assert circuit.ppo_of_ppi("ff") == "n2"
    assert circuit.ppi_of_ppo("n2") == "ff"
    with pytest.raises(KeyError):
        circuit.ppo_of_ppi("n1")
    with pytest.raises(KeyError):
        circuit.ppi_of_ppo("n1")


def test_classification_predicates():
    circuit = build_sample()
    assert circuit.is_primary_input("a")
    assert circuit.is_pseudo_primary_input("ff")
    assert circuit.is_primary_output("n3")
    assert circuit.is_pseudo_primary_output("n2")
    assert circuit.is_combinational_source("a")
    assert circuit.is_combinational_source("ff")
    assert not circuit.is_combinational_source("n1")


def test_lines_enumeration():
    circuit = build_sample()
    lines = list(circuit.lines())
    stems = [line for line in lines if line.is_stem]
    branches = [line for line in lines if line.is_branch]
    assert {line.signal for line in stems} == {"a", "b", "n1", "n2", "n3", "ff"}
    # Only n1 has fanout > 1 in this circuit.
    assert {(line.signal, line.sink) for line in branches} == {("n1", "n2"), ("n1", "n3")}


def test_line_str_and_kind():
    stem = Line("n1")
    branch = Line("n1", LineKind.BRANCH, "n3", 0)
    assert str(stem) == "n1"
    assert str(branch) == "n1->n3[0]"
    assert stem.is_stem and not stem.is_branch
    assert branch.is_branch


def test_line_count_excluding_dffs():
    circuit = build_sample()
    with_dff = sum(1 for _ in circuit.lines(include_dff_outputs=True))
    without_dff = sum(1 for _ in circuit.lines(include_dff_outputs=False))
    assert with_dff == without_dff + 1


def test_copy_is_structurally_identical(s27):
    clone = s27.copy("s27-copy")
    assert clone.name == "s27-copy"
    assert clone.stats() == s27.stats()
    assert clone.primary_inputs == s27.primary_inputs
    assert [g.name for g in clone.flip_flops] == [g.name for g in s27.flip_flops]
    # The copy is independent.
    clone.add_input("extra")
    assert "extra" not in s27


def test_undefined_reference_raises_on_fanout():
    circuit = Circuit()
    circuit.add_input("a")
    circuit.add_gate("n1", GateType.NOT, ["missing"])
    with pytest.raises(KeyError):
        circuit.fanout("a")


def test_repr_contains_counts(s27):
    text = repr(s27)
    assert "pi=4" in text and "ff=3" in text

"""Tests of the snapshot exporters (:mod:`repro.obs.export`).

``render_prometheus`` must produce structurally valid text exposition
(version 0.0.4): one ``# HELP``/``# TYPE`` pair per family, every sample
line parseable, histogram buckets cumulative and ``+Inf``-terminated.
``metrics_document`` must wrap a snapshot into the versioned JSON document
the CLI writes and the service serves.
"""

from __future__ import annotations

import json
import re

from repro.obs.export import metrics_document, render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import FaultCost

_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9+][0-9eE.+-]*$"
)


def _populated_registry():
    """A registry holding every metric kind at once."""
    registry = MetricsRegistry()
    registry.inc("repro_faults_total", 3, status="tested")
    registry.inc("repro_faults_total", 1, status="aborted")
    registry.inc("repro_decisions_total", 42)
    registry.observe("repro_phase_seconds", 0.5, phase="tdgen")
    registry.observe_value("repro_fault_seconds", 0.02)
    registry.observe_value("repro_fault_seconds", 99.0)
    registry.set_gauge("repro_queue_depth", 2)
    return registry


def test_every_line_is_a_comment_or_a_valid_sample():
    text = render_prometheus(_populated_registry().snapshot())
    assert text.endswith("\n")
    for line in text.rstrip("\n").split("\n"):
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        assert _SAMPLE_LINE.match(line), line


def test_one_help_and_type_pair_per_family():
    text = render_prometheus(_populated_registry().snapshot())
    helps = [line.split()[2] for line in text.splitlines() if line.startswith("# HELP")]
    types = [line.split()[2] for line in text.splitlines() if line.startswith("# TYPE")]
    assert len(helps) == len(set(helps))
    assert helps == types
    assert "repro_faults_total" in helps
    assert "repro_fault_seconds" in helps


def test_counter_samples_carry_their_labels():
    text = render_prometheus(_populated_registry().snapshot())
    assert 'repro_faults_total{status="tested"} 3' in text
    assert 'repro_faults_total{status="aborted"} 1' in text
    assert "repro_decisions_total 42" in text


def test_timers_render_as_summaries():
    text = render_prometheus(_populated_registry().snapshot())
    assert "# TYPE repro_phase_seconds summary" in text
    assert 'repro_phase_seconds_count{phase="tdgen"} 1' in text
    assert 'repro_phase_seconds_sum{phase="tdgen"} 0.5' in text


def test_histogram_buckets_are_cumulative_and_inf_terminated():
    text = render_prometheus(_populated_registry().snapshot())
    bucket_lines = [
        line for line in text.splitlines()
        if line.startswith("repro_fault_seconds_bucket")
    ]
    counts = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
    assert counts == sorted(counts), "buckets must be cumulative"
    assert bucket_lines[-1].startswith('repro_fault_seconds_bucket{le="+Inf"}')
    # +Inf equals the total count: the 99.0 sample lands only there.
    assert counts[-1] == 2
    assert counts[-2] == 1
    assert "repro_fault_seconds_count 2" in text


def test_gauges_render_last_with_gauge_type():
    text = render_prometheus(_populated_registry().snapshot())
    assert "# TYPE repro_queue_depth gauge" in text
    assert "repro_queue_depth 2" in text


def test_empty_snapshot_renders_empty_document():
    registry = MetricsRegistry()
    assert render_prometheus(registry.snapshot()) == "\n"


def test_metrics_document_shape_and_round_trip():
    registry = _populated_registry()
    cost = FaultCost(
        fault="G0 StR", status="tested", phase="fault simulation", seconds=0.01,
        attempts=1, local_backtracks=2, sequential_backtracks=3, decisions=4,
        implication_sweeps=5, wavefront_skipped=6, words_simulated=7,
        engine="packed",
    )
    document = metrics_document(
        registry.snapshot(), fault_costs=[cost], context={"circuit": "s27"}
    )
    assert document["version"] == 1
    assert document["context"] == {"circuit": "s27"}
    assert document["fault_costs"] == [cost.to_json()]
    assert document["metrics"]["counters"]['repro_faults_total{status="tested"}'] == 3
    json.dumps(document)  # must be JSON-serialisable as-is


def test_metrics_document_omits_empty_context():
    document = metrics_document(MetricsRegistry().snapshot())
    assert "context" not in document
    assert document["fault_costs"] == []

"""Configuration knobs shared by all benchmarks.

The campaigns are expensive — the paper ran for minutes per circuit on a Sun
SPARC 10 and a pure-Python reimplementation pays a large constant factor — so
the harness is parameterised through environment variables:

``REPRO_BENCH_SCALE``
    Size scale of the surrogate circuits (default ``0.15``); ``1.0``
    reproduces the published circuit sizes.
``REPRO_BENCH_MAX_FAULTS``
    Cap on the number of faults explicitly targeted per circuit (default
    ``25``); ``0`` removes the cap.
``REPRO_BENCH_CIRCUITS``
    Comma-separated circuit list (default: all twelve Table 3 circuits).

The default configuration finishes in a few minutes and preserves the
qualitative shape of every experiment; EXPERIMENTS.md records a larger run.

Every CI-gated benchmark additionally records its measured wall clock and
speedups machine-readably: :func:`write_bench_results` writes
``BENCH_<name>.json`` at the repository root, so the perf trajectory is
tracked in-repo across PRs instead of living only in CI logs.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.data import list_circuits  # noqa: E402  (path setup must come first)


def bench_scale() -> float:
    """Surrogate circuit scale factor."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.15"))


def bench_max_faults() -> Optional[int]:
    """Cap on explicitly targeted faults per circuit (``None`` = unlimited)."""
    value = int(os.environ.get("REPRO_BENCH_MAX_FAULTS", "25"))
    return value if value > 0 else None


def bench_circuits() -> List[str]:
    """Circuits to run, defaulting to the full Table 3 list."""
    raw = os.environ.get("REPRO_BENCH_CIRCUITS", "")
    if raw.strip():
        return [name.strip() for name in raw.split(",") if name.strip()]
    return list_circuits()


#: Repository root — the machine-readable benchmark results live here, next
#: to README.md, so the perf trajectory is part of every checkout.
REPO_ROOT = Path(__file__).resolve().parent.parent


def bench_results_path(name: str) -> Path:
    """Path of one CI-gated benchmark's results file (``BENCH_<name>.json``)."""
    return REPO_ROOT / f"BENCH_{name}.json"


def write_bench_results(name: str, payload: Dict[str, object]) -> Path:
    """Write one gated benchmark's measured results to the repository root.

    Every CI-gated speedup benchmark calls this with its workload description
    and measured wall clocks, replacing the previous run's file; the JSON is
    sorted and newline-terminated so regenerated results produce minimal
    diffs.  Returns the written path.
    """
    path = bench_results_path(name)
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def read_bench_results(name: str) -> Optional[Dict[str, object]]:
    """Load one benchmark's recorded results, or ``None`` if absent."""
    path = bench_results_path(name)
    if not path.exists():
        return None
    return json.loads(path.read_text(encoding="utf-8"))

"""Word-packed eight-plane *set* propagation on the compiled netlist.

:mod:`repro.algebra.packed` evaluates one concrete eight-valued *value* per
pattern slot; the search side of the flow (TDgen's forward implication,
TDsim's reference fallbacks) instead propagates *sets of still-possible
values* per signal.  This module extends the one-hot multi-plane encoding to
sets: every signal carries eight bit planes and bit ``j`` of plane ``v`` is
set when value index ``v`` is a member of pattern slot ``j``'s possibility
set.  A slot with no plane bit set carries the empty set (a conflict).

The crucial observation is that :func:`repro.algebra.packed.packed_pair`
already implements exact set propagation under this reading::

    out[table[a][b]] |= a_planes[a] & b_planes[b]

unions the gate image over every *member pair* of the two input sets, which
is precisely :func:`repro.algebra.sets.evaluate_gate_sets`'s pairwise image —
for all word slots at once.  Emptiness propagates for free: a slot empty in
either input is empty in the output, matching the reference's empty-set
short-circuit.

:class:`PackedSetSimulator` runs this set evaluation over the flat gate
program of :mod:`repro.fausim.compile`, with fault-injection *moves* (convert
the activating transition into its fault-carrying variant on selected slots)
applied at stem outputs and at single fanout-branch pins, mirroring the
reference injection of :mod:`repro.tdgen.simulation`.  Each of the word's
slots therefore carries one independent candidate assignment — a decision
alternative, a candidate frame, or a fault-free/faulty pair — and one pass
over the gate program implies all of them.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.algebra.packed import (
    NOT_PERMUTATION,
    NUM_PLANES,
    core_of,
    packed_not,
    packed_table,
)
from repro.algebra.sets import ValueSet
from repro.circuit.gates import GateType
from repro.fausim.compile import _OPCODES, OP_BUF, OP_NOT, CompiledCircuit

#: Plane list of one signal: ``planes[v]`` holds the slots whose possibility
#: set contains the value with index ``v`` (multiple planes may carry the
#: same slot bit — that is what makes it a *set* encoding).
SetPlanes = List[int]

#: An injection move: convert value index ``source`` into value index
#: ``target`` on the slots selected by ``mask`` (the reference ``_inject``
#: with the activation/fault-value pair flattened to indices).
Move = Tuple[int, int, int]

#: Opcode -> (two-input core gate type, apply inverter permutation after the
#: fold), shared with the fault-parallel value simulator so the compiled set
#: evaluation cannot drift from the compiler's opcode map.
OP_CORE: Dict[int, Tuple[GateType, bool]] = {
    opcode: core_of(gate_type)
    for gate_type, opcode in _OPCODES.items()
    if gate_type not in (GateType.NOT, GateType.BUF)
}


def pack_value_sets(sets: Sequence[ValueSet]) -> SetPlanes:
    """Pack one signal's possibility set across slots into eight planes."""
    planes = [0] * NUM_PLANES
    for slot_index, value_set in enumerate(sets):
        bit = 1 << slot_index
        remaining = value_set
        while remaining:
            low = remaining & -remaining
            planes[low.bit_length() - 1] |= bit
            remaining ^= low
    return planes


def unpack_value_sets(planes: Sequence[int], width: int) -> List[ValueSet]:
    """Expand packed set planes back into one :class:`ValueSet` per slot."""
    sets = [0] * width
    for index, plane in enumerate(planes):
        plane &= (1 << width) - 1
        mask = 1 << index
        while plane:
            low = plane & -plane
            sets[low.bit_length() - 1] |= mask
            plane ^= low
    return sets


def slot_set(planes: Sequence[int], pattern: int) -> ValueSet:
    """The possibility set carried by one slot (column read of the planes)."""
    mask = 0
    for index in range(NUM_PLANES):
        if (planes[index] >> pattern) & 1:
            mask |= 1 << index
    return mask


def apply_move(planes: SetPlanes, move: Move) -> None:
    """Apply one injection move in place.

    On every slot selected by the move's mask that contains the source value,
    the source value is removed and the target value added — exactly the
    reference ``_inject`` (slots without the source value are untouched, and
    other members of the set survive).
    """
    source, target, mask = move
    moved = planes[source] & mask
    if moved:
        planes[source] &= ~moved
        planes[target] |= moved


@dataclasses.dataclass
class PackedSetResult:
    """Outcome of one packed set-propagation pass.

    Attributes:
        planes: per signal slot, the eight set planes after propagation.
        width: number of valid pattern slots.
        conflict_mask: slots in which some signal's set became empty, as a
            bit mask.
        conflict_signals: first signal (in evaluation order) whose set became
            empty, per conflicted slot index.
    """

    planes: List[SetPlanes]
    width: int
    conflict_mask: int
    conflict_signals: Dict[int, str]

    def slot_sets(self, slot: int, pattern: int) -> ValueSet:
        """Possibility set of one signal slot in one pattern slot."""
        return slot_set(self.planes[slot], pattern)


class PackedSetSimulator:
    """Set propagation over one compiled circuit, one candidate per word slot.

    Args:
        compiled: the compiled gate program to run (see
            :func:`repro.fausim.compile.compile_circuit`).
        robust: use the robust (paper Table 1) or relaxed non-robust tables.
    """

    def __init__(self, compiled: CompiledCircuit, robust: bool = True) -> None:
        self.compiled = compiled
        self.robust = robust
        # Per opcode: the core fold table and the table of the *final* fold
        # step.  For inverting gates (NAND/NOR/XNOR) the inverter permutation
        # is pre-composed into the final table, so the hot loop never runs a
        # separate NOT pass over the folded planes.
        self._tables: Dict[int, Tuple[Tuple[Tuple[int, ...], ...], Tuple[Tuple[int, ...], ...]]] = {}
        for opcode, (core, invert) in OP_CORE.items():
            base = packed_table(core, robust)
            if invert:
                last = tuple(
                    tuple(NOT_PERMUTATION[value] for value in row) for row in base
                )
            else:
                last = base
            self._tables[opcode] = (base, last)

    def propagate(
        self,
        source_planes: List[SetPlanes],
        width: int,
        stem_moves: Optional[Mapping[int, Sequence[Move]]] = None,
        branch_moves: Optional[Mapping[int, Sequence[Move]]] = None,
        gate_indices: Optional[Sequence[int]] = None,
    ) -> PackedSetResult:
        """Run the gate program over pre-loaded source set planes.

        Args:
            source_planes: one plane list per signal slot; the PI/PPI slots
                must be loaded (including any source-stem injection), gate
                slots are overwritten.
            width: number of valid pattern slots.
            stem_moves: injection moves keyed by *gate output* slot, applied
                right after the gate is evaluated (a stem fault on a gate
                output — every sink sees the injected set).
            branch_moves: injection moves keyed by flat fanin position,
                applied to the set *read* at that one (gate, pin) only (a
                fanout-branch fault — the stem keeps its fault-free set).
            gate_indices: restrict the pass to these gate-program indices, in
                ascending order (incremental cone evaluation); ``None`` runs
                the full program.  Every fanin read outside the subset must
                already hold valid planes.

        Returns:
            The evaluated planes plus the per-slot conflict bookkeeping (the
            packed counterpart of recording the first empty set during the
            reference propagation pass).
        """
        stem_moves = stem_moves or {}
        branch_moves = branch_moves or {}
        compiled = self.compiled
        planes = source_planes
        tables = self._tables
        fanin_flat = compiled.fanin_flat
        offsets = compiled.fanin_offsets
        outputs = compiled.outputs
        signal_names = compiled.signal_names
        full = (1 << width) - 1
        conflict_mask = 0
        conflict_signals: Dict[int, str] = {}

        has_branch_moves = bool(branch_moves)
        has_stem_moves = bool(stem_moves)
        ops = compiled.ops
        indices = range(len(ops)) if gate_indices is None else gate_indices
        for index in indices:
            op = ops[index]
            start = offsets[index]
            end = offsets[index + 1]

            if has_branch_moves:
                input_planes: List[SetPlanes] = []
                for position in range(start, end):
                    source = planes[fanin_flat[position]]
                    moves = branch_moves.get(position)
                    if moves:
                        source = list(source)
                        for move in moves:
                            apply_move(source, move)
                    input_planes.append(source)
            else:
                input_planes = [
                    planes[fanin_flat[position]] for position in range(start, end)
                ]

            if op == OP_NOT:
                acc = packed_not(input_planes[0])
            elif op == OP_BUF:
                acc = list(input_planes[0])
            else:
                # The pairwise fold is inlined (rather than calling
                # :func:`repro.algebra.packed.packed_pair` per step) to keep
                # the hot loop free of per-gate function-call overhead; the
                # final step's table carries any inverter permutation.
                base_table, last_table = tables[op]
                arity = end - start
                if arity == 2:
                    # Two-input gates dominate; evaluate without any
                    # intermediate list building.
                    a_planes = input_planes[0]
                    b_planes = input_planes[1]
                    acc = [0] * NUM_PLANES
                    for a_index in range(NUM_PLANES):
                        plane_a = a_planes[a_index]
                        if plane_a:
                            row = last_table[a_index]
                            for b_index in range(NUM_PLANES):
                                plane_b = b_planes[b_index]
                                if plane_b:
                                    both = plane_a & plane_b
                                    if both:
                                        acc[row[b_index]] |= both
                elif arity == 1:
                    source = input_planes[0]
                    acc = (
                        list(source) if base_table is last_table else packed_not(source)
                    )
                else:
                    acc = input_planes[0]
                    final_step = arity - 1
                    for step in range(1, arity):
                        table = last_table if step == final_step else base_table
                        nxt = input_planes[step]
                        folded = [0] * NUM_PLANES
                        for a_index, plane_a in enumerate(acc):
                            if plane_a:
                                row = table[a_index]
                                for b_index in range(NUM_PLANES):
                                    plane_b = nxt[b_index]
                                    if plane_b:
                                        both = plane_a & plane_b
                                        if both:
                                            folded[row[b_index]] |= both
                        acc = folded

            out = outputs[index]
            if has_stem_moves:
                moves = stem_moves.get(out)
                if moves:
                    for move in moves:
                        apply_move(acc, move)
            planes[out] = acc

            live = (
                acc[0] | acc[1] | acc[2] | acc[3]
                | acc[4] | acc[5] | acc[6] | acc[7]
            )
            empty = full & ~live & ~conflict_mask
            if empty:
                conflict_mask |= empty
                name = signal_names[out]
                while empty:
                    low = empty & -empty
                    conflict_signals[low.bit_length() - 1] = name
                    empty ^= low

        return PackedSetResult(
            planes=planes,
            width=width,
            conflict_mask=conflict_mask,
            conflict_signals=conflict_signals,
        )

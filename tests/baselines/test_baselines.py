"""Random-sequence and enhanced-scan baselines."""

import pytest

from repro.baselines.random_atpg import RandomSequenceATPG
from repro.baselines.scan_atpg import EnhancedScanATPG, scan_model
from repro.circuit.gates import GateType
from repro.faults.model import enumerate_delay_faults


# --------------------------------------------------------------------------- #
# scan model transformation
# --------------------------------------------------------------------------- #
def test_scan_model_structure(s27):
    model = scan_model(s27)
    # Flip-flop outputs become primary inputs.
    assert set(model.primary_inputs) == set(s27.primary_inputs) | {"G5", "G6", "G7"}
    # Flip-flop data inputs become observable outputs.
    assert set(model.primary_outputs) == set(s27.primary_outputs) | {"G10", "G11", "G13"}
    assert not model.flip_flops
    assert all(gate.gate_type is not GateType.DFF for gate in model.gates.values())
    # The combinational gates are untouched.
    assert len(model.combinational_gates) == len(s27.combinational_gates)


def test_scan_model_does_not_duplicate_outputs(resettable_ff):
    model = scan_model(resettable_ff)
    assert len(model.primary_outputs) == len(set(model.primary_outputs))


# --------------------------------------------------------------------------- #
# enhanced-scan baseline
# --------------------------------------------------------------------------- #
def test_enhanced_scan_dominates_non_scan_testability(s27):
    """With full state access every non-scan-testable fault stays testable."""
    from repro.core.flow import SequentialDelayATPG

    scan = EnhancedScanATPG(s27).run()
    non_scan = SequentialDelayATPG(s27).run()
    assert scan.total_faults == non_scan.total_faults
    assert scan.tested >= non_scan.tested
    # On s27 the scan assumption removes the sequential untestability almost
    # entirely; the robust-combinational untestable faults remain.
    assert scan.untestable <= non_scan.untestable + non_scan.aborted
    assert 0.0 <= scan.fault_coverage <= 1.0
    assert scan.fault_efficiency >= scan.fault_coverage


def test_enhanced_scan_pattern_accounting(s27):
    result = EnhancedScanATPG(s27).run(max_target_faults=5)
    assert result.pattern_count <= 2 * 5
    assert result.tested + result.untestable + result.aborted == result.total_faults


@pytest.mark.parametrize("backend", ["reference", "packed"])
def test_enhanced_scan_expected_responses(s27, backend):
    """Every tested fault yields a pattern whose response is the good value."""
    from repro.fausim.logic_sim import LogicSimulator

    atpg = EnhancedScanATPG(s27, backend=backend)
    result = atpg.run(max_target_faults=10)
    assert len(result.patterns) == result.tested
    oracle = LogicSimulator(atpg.model)
    for pattern in result.patterns:
        # Fully specified vectors over the scan model's inputs.
        assert set(pattern.initial) == set(atpg.model.primary_inputs)
        assert set(pattern.final) == set(atpg.model.primary_inputs)
        assert set(pattern.expected_response) == set(atpg.model.primary_outputs)
        # The recorded response is the reference good-machine value of v2.
        values = oracle.combinational(pattern.final, {})
        for po, expected in pattern.expected_response.items():
            assert expected == values[po]


def test_enhanced_scan_backends_agree(s27):
    reference = EnhancedScanATPG(s27, backend="reference").run(max_target_faults=8)
    packed = EnhancedScanATPG(s27, backend="packed").run(max_target_faults=8)
    assert reference.tested == packed.tested
    assert [p.expected_response for p in reference.patterns] == [
        p.expected_response for p in packed.patterns
    ]


# --------------------------------------------------------------------------- #
# random baseline
# --------------------------------------------------------------------------- #
def test_random_baseline_detects_some_faults(s27):
    baseline = RandomSequenceATPG(s27, sequence_length=6, seed=11)
    result = baseline.run(max_sequences=25)
    assert result.total_faults == len(enumerate_delay_faults(s27))
    assert 0 < result.detected <= result.total_faults
    assert result.sequences_applied <= 25
    assert result.pattern_count == result.sequences_applied * 6
    assert 0.0 < result.fault_coverage <= 1.0


def test_random_baseline_is_reproducible(s27):
    first = RandomSequenceATPG(s27, sequence_length=5, seed=3).run(max_sequences=10)
    second = RandomSequenceATPG(s27, sequence_length=5, seed=3).run(max_sequences=10)
    assert first.detected == second.detected
    assert first.pattern_count == second.pattern_count


def test_random_baseline_rejects_too_short_sequences(s27):
    with pytest.raises(ValueError):
        RandomSequenceATPG(s27, sequence_length=1)


def test_deterministic_atpg_beats_random_on_s27(s27):
    """The headline comparison: FOGBUSTER coverage > random coverage at a
    comparable pattern budget."""
    from repro.core.flow import SequentialDelayATPG

    deterministic = SequentialDelayATPG(s27).run()
    random_budget = max(deterministic.pattern_count, 10)
    random_result = RandomSequenceATPG(s27, sequence_length=5, seed=7).run(
        max_sequences=max(random_budget // 5, 2)
    )
    assert deterministic.tested >= random_result.detected

"""Search residue: compiled kernels and sweeps vs the interpreted walks.

PR 3 compiled the *forward implication* of the search; this PR compiles the
residue that stayed interpreted between two implications — objective
selection, multiple backtrace and SEMILET's potential-difference scan
(:mod:`repro.tdgen.search`) — and makes the incremental implication sweeps
event-driven (gates off the change wavefront are skipped).  With that, the
whole search side of a ``backend="packed"`` campaign runs compiled.

Two gates pin the result on a full s838-surrogate campaign (local
generation, propagation, justification, synchronisation, verification and
TDsim crediting), both asserting an *identical*
:class:`~repro.core.results.CampaignResult` before timing is considered:

``test_bench_search_side_speedup`` (**>= 2x**)
    The compiled search side against the same campaign with the search side
    interpreted — :func:`repro.tdgen.implication.force_implication_backend`
    routes TDgen/SEMILET/TDsim-fallback implication and the search kernels
    to the ``reference`` oracles while fault simulation stays packed.  This
    is the end-to-end value of the compiled search side (measured ~5x).

``test_bench_search_kernel_speedup`` (**>= 1.05x**)
    The narrower ablation — packed sweeps in both legs, only the search
    kernels forced interpreted via :func:`repro.tdgen.search.
    set_default_search_kernels` (the interpreted leg keeps the historical
    combination-enumerating backward implication, its pre-kernel cost
    model).  This isolates the kernel extraction itself (measured
    1.1-1.3x depending on cache warmth; the floor only guards against the
    compiled kernels regressing below the interpreted walks).
"""

from __future__ import annotations

import time

from benchconfig import write_bench_results
from repro.core.flow import SequentialDelayATPG
from repro.data import load_circuit
from repro.faults.model import enumerate_delay_faults, sample_faults
from repro.tdgen.implication import force_implication_backend
from repro.tdgen.search import set_default_search_kernels

#: Benchmark workload: a stride-sampled slice of the fault universe, large
#: enough that the TDgen/SEMILET searches dominate the runtime.
N_FAULTS = 40
SCALE = 0.5


def _fingerprint(campaign):
    """Everything the campaign decided, via the JSON round-trip."""
    return [result.to_json() for result in campaign.fault_results]


def _run_campaign():
    """One timed packed campaign on a fresh circuit (compiled state cached per circuit)."""
    circuit = load_circuit("s838", scale=SCALE, seed=0)
    faults = sample_faults(enumerate_delay_faults(circuit), N_FAULTS)
    atpg = SequentialDelayATPG(circuit, backend="packed")
    start = time.perf_counter()
    campaign = atpg.run(faults)
    return campaign, time.perf_counter() - start


def _best_of_two():
    """Each leg is timed twice and the best run kept, so one scheduler
    hiccup cannot decide a gate; the repeat also warms the global memo
    caches, which only biases *against* the compiled legs (they run
    first)."""
    campaign, seconds = _run_campaign()
    _, again = _run_campaign()
    return campaign, min(seconds, again)


def test_bench_search_side_speedup():
    """Acceptance: compiled search side >= 2x, identical campaign."""
    compiled_campaign, compiled_seconds = _best_of_two()
    force_implication_backend("reference")
    try:
        interpreted_campaign, interpreted_seconds = _best_of_two()
    finally:
        force_implication_backend(None)

    assert _fingerprint(compiled_campaign) == _fingerprint(interpreted_campaign), (
        "compiled and interpreted search sides diverged"
    )
    speedup = interpreted_seconds / compiled_seconds
    print(
        f"\nsearch side (s838 surrogate, scale {SCALE}, {N_FAULTS} faults): "
        f"interpreted {interpreted_seconds:.2f}s -> compiled "
        f"{compiled_seconds:.2f}s ({speedup:.2f}x); "
        f"tested={compiled_campaign.tested} "
        f"untestable={compiled_campaign.untestable} "
        f"aborted={compiled_campaign.aborted}"
    )
    write_bench_results(
        "search_side",
        {
            "workload": {
                "circuit": f"s838@{SCALE}",
                "n_faults": N_FAULTS,
                "description": "full campaign, compiled vs interpreted search side",
            },
            "interpreted_seconds": round(interpreted_seconds, 6),
            "compiled_seconds": round(compiled_seconds, 6),
            "speedup": round(speedup, 2),
            "gate": 2.0,
        },
    )
    assert speedup >= 2.0, (
        f"compiled search side only {speedup:.2f}x faster than interpreted "
        f"({interpreted_seconds:.2f}s vs {compiled_seconds:.2f}s)"
    )


def test_bench_search_kernel_speedup():
    """Acceptance: the kernel extraction alone >= 1.05x, identical campaign."""
    compiled_campaign, compiled_seconds = _best_of_two()
    set_default_search_kernels("reference")
    try:
        interpreted_campaign, interpreted_seconds = _best_of_two()
    finally:
        set_default_search_kernels(None)

    assert _fingerprint(compiled_campaign) == _fingerprint(interpreted_campaign), (
        "compiled and interpreted search kernels diverged"
    )
    speedup = interpreted_seconds / compiled_seconds
    print(
        f"\nsearch kernels (s838 surrogate, scale {SCALE}, {N_FAULTS} faults): "
        f"interpreted {interpreted_seconds:.2f}s -> compiled "
        f"{compiled_seconds:.2f}s ({speedup:.2f}x)"
    )
    write_bench_results(
        "search_kernels",
        {
            "workload": {
                "circuit": f"s838@{SCALE}",
                "n_faults": N_FAULTS,
                "description": "full campaign, compiled vs interpreted search kernels",
            },
            "interpreted_seconds": round(interpreted_seconds, 6),
            "compiled_seconds": round(compiled_seconds, 6),
            "speedup": round(speedup, 2),
            "gate": 1.05,
        },
    )
    assert speedup >= 1.05, (
        f"compiled search kernels only {speedup:.2f}x faster than interpreted "
        f"({interpreted_seconds:.2f}s vs {compiled_seconds:.2f}s)"
    )

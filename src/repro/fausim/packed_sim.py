"""Bit-parallel three-valued logic simulation over the compiled circuit.

Every signal is represented by two bit planes (the standard two-plane
{0, 1, X} encoding): bit ``j`` of ``zero`` is set when pattern ``j`` carries a
hard 0, bit ``j`` of ``one`` when it carries a hard 1, and a clear bit in both
planes encodes the unknown value X.  One pass over the gate program therefore
simulates one machine word worth of patterns (64 by default) at once, and all
gate evaluations reduce to a handful of bitwise operations:

=========  =============================================================
AND        ``one = AND(one_i)``, ``zero = OR(zero_i)``
OR         ``one = OR(one_i)``, ``zero = AND(zero_i)``
NOT        swap the planes
XOR        parity of the ``one`` planes, masked to the patterns where
           every input is known
=========  =============================================================

These identities implement exactly the pessimistic three-valued semantics of
:func:`repro.circuit.gates.evaluate_gate` — a controlling value forces the
output even when other inputs are X, otherwise any X input makes the output X
— which the differential harness in ``tests/fausim`` verifies signal for
signal against the reference interpreter.

:class:`PackedLogicSimulator` also implements the scalar
:class:`~repro.fausim.logic_sim.LogicSimulator` interface (``combinational`` /
``clock`` / ``next_state`` / ``outputs``) so the two backends are drop-in
interchangeable behind :mod:`repro.fausim.backends`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.netlist import Circuit
from repro.fausim.compile import (
    OP_AND,
    OP_BUF,
    OP_NAND,
    OP_NOR,
    OP_NOT,
    OP_OR,
    OP_XNOR,
    OP_XOR,
    CompiledCircuit,
    compile_circuit,
)
from repro.fausim.logic_sim import FrameResult, SequenceResult, SignalValues
from repro.obs.metrics import NULL_REGISTRY

#: Patterns simulated per machine word; batches are chunked at this width so
#: every bitwise operation stays on single-word integers.
WORD_BITS = 64


@dataclasses.dataclass
class PackedPlanes:
    """Bit planes of every signal for one chunk of patterns.

    ``zero[slot]`` / ``one[slot]`` hold the 0-plane and 1-plane of the signal
    in that slot (see :class:`~repro.fausim.compile.CompiledCircuit` for the
    slot layout); ``width`` is the number of valid pattern bits.
    """

    zero: List[int]
    one: List[int]
    width: int

    def value(self, slot: int, pattern: int) -> Optional[int]:
        """Scalar value of one signal for one pattern (``None`` encodes X)."""
        bit = 1 << pattern
        if self.one[slot] & bit:
            return 1
        if self.zero[slot] & bit:
            return 0
        return None


def pack_column(values: Sequence[Optional[int]]) -> Tuple[int, int]:
    """Pack one signal's value across patterns into ``(zero, one)`` planes."""
    zero = 0
    one = 0
    for pattern, value in enumerate(values):
        if value == 0:
            zero |= 1 << pattern
        elif value == 1:
            one |= 1 << pattern
    return zero, one


class PackedLogicSimulator:
    """Word-packed three-valued simulator bound to one compiled circuit.

    The batch entry points (:meth:`combinational_batch`, :meth:`clock_batch`,
    :meth:`sequence_batch`) simulate up to ``word_bits`` patterns per pass and
    transparently chunk larger batches.  The scalar entry points mirror
    :class:`~repro.fausim.logic_sim.LogicSimulator` exactly and run as a
    batch of one.
    """

    #: Metrics registry counting gate-word evaluations: one registry call per
    #: evaluation *pass*, never per gate (no-op by default).
    metrics = NULL_REGISTRY

    def __init__(self, circuit: Circuit, word_bits: int = WORD_BITS) -> None:
        if word_bits < 1:
            raise ValueError("word_bits must be positive")
        self.circuit = circuit
        self.word_bits = word_bits
        self.compiled: CompiledCircuit = compile_circuit(circuit)

    # ------------------------------------------------------------------ #
    # packed core
    # ------------------------------------------------------------------ #
    def evaluate_planes(
        self, planes: PackedPlanes, gate_indices: "Sequence[int] | None" = None
    ) -> None:
        """Run the gate program in place on pre-loaded source planes.

        ``planes`` must carry the PI and PPI planes; every gate output plane
        is (re)computed.  This is the single hot loop of the backend.

        Args:
            planes: pre-loaded source planes, evaluated in place.
            gate_indices: restrict the pass to these gate-program indices in
                ascending order (incremental cone evaluation); ``None`` runs
                the full program.  Fanin planes outside the subset must
                already be valid.
        """
        zero = planes.zero
        one = planes.one
        mask = (1 << planes.width) - 1
        compiled = self.compiled
        fanin_flat = compiled.fanin_flat
        offsets = compiled.fanin_offsets
        outputs = compiled.outputs
        ops = compiled.ops
        indices = range(len(ops)) if gate_indices is None else gate_indices
        for index in indices:
            op = ops[index]
            start = offsets[index]
            end = offsets[index + 1]
            first = fanin_flat[start]
            if op <= OP_NAND:  # AND / NAND
                acc_one = one[first]
                acc_zero = zero[first]
                for position in range(start + 1, end):
                    slot = fanin_flat[position]
                    acc_one &= one[slot]
                    acc_zero |= zero[slot]
                if op == OP_NAND:
                    acc_zero, acc_one = acc_one, acc_zero
            elif op <= OP_NOR:  # OR / NOR
                acc_one = one[first]
                acc_zero = zero[first]
                for position in range(start + 1, end):
                    slot = fanin_flat[position]
                    acc_one |= one[slot]
                    acc_zero &= zero[slot]
                if op == OP_NOR:
                    acc_zero, acc_one = acc_one, acc_zero
            elif op == OP_NOT:
                acc_zero = one[first]
                acc_one = zero[first]
            elif op == OP_BUF:
                acc_zero = zero[first]
                acc_one = one[first]
            else:  # XOR / XNOR
                parity = one[first]
                known = zero[first] | one[first]
                for position in range(start + 1, end):
                    slot = fanin_flat[position]
                    parity ^= one[slot]
                    known &= zero[slot] | one[slot]
                acc_one = parity & known
                acc_zero = ~parity & known & mask
                if op == OP_XNOR:
                    acc_zero, acc_one = acc_one, acc_zero
            out = outputs[index]
            zero[out] = acc_zero
            one[out] = acc_one
        if self.metrics.enabled:
            self.metrics.inc(
                "repro_sim_gate_words_total",
                len(indices) * ((planes.width + 63) // 64),
            )

    def evaluate_planes_forced(
        self,
        planes: PackedPlanes,
        source_forces: Sequence[Tuple[int, int, int, int]] = (),
        gate_forces: Optional[Dict[int, Tuple[int, int, int]]] = None,
        branch_forces: Optional[Dict[int, Tuple[int, int, int]]] = None,
    ) -> None:
        """Run the gate program with per-pattern value forces.

        This is the injection primitive of the fault-parallel gross-delay
        grading (:mod:`repro.core.verify`): selected pattern bits of selected
        lines are frozen at an externally chosen value while every other
        pattern evaluates normally.  A force is a ``(clear, set_zero,
        set_one)`` mask triple — the cleared bits are first removed from both
        planes (making those patterns X), then the set masks assert hard
        values.

        Args:
            planes: pre-loaded source planes, evaluated in place.
            source_forces: ``(slot, clear, set_zero, set_one)`` applied to
                source (PI/PPI) planes before the pass — a stem fault on a
                primary or pseudo primary input.
            gate_forces: output-slot -> force, applied right after the gate is
                evaluated so all downstream reads see the forced value — a
                stem fault on a gate output.
            branch_forces: flat fanin position -> force, applied to the value
                *read* at one (gate, pin) only — a fanout branch fault; the
                stem itself keeps its computed value.
        """
        gate_forces = gate_forces or {}
        branch_forces = branch_forces or {}
        zero = planes.zero
        one = planes.one
        for slot, clear, set_zero, set_one in source_forces:
            zero[slot] = (zero[slot] & ~clear) | set_zero
            one[slot] = (one[slot] & ~clear) | set_one

        mask = (1 << planes.width) - 1
        compiled = self.compiled
        fanin_flat = compiled.fanin_flat
        offsets = compiled.fanin_offsets
        outputs = compiled.outputs
        for index, op in enumerate(compiled.ops):
            start = offsets[index]
            end = offsets[index + 1]

            inputs: List[Tuple[int, int]] = []
            for position in range(start, end):
                slot = fanin_flat[position]
                in_zero = zero[slot]
                in_one = one[slot]
                force = branch_forces.get(position)
                if force is not None:
                    clear, set_zero, set_one = force
                    in_zero = (in_zero & ~clear) | set_zero
                    in_one = (in_one & ~clear) | set_one
                inputs.append((in_zero, in_one))

            acc_zero, acc_one = inputs[0]
            if op <= OP_NAND:  # AND / NAND
                for in_zero, in_one in inputs[1:]:
                    acc_one &= in_one
                    acc_zero |= in_zero
                if op == OP_NAND:
                    acc_zero, acc_one = acc_one, acc_zero
            elif op <= OP_NOR:  # OR / NOR
                for in_zero, in_one in inputs[1:]:
                    acc_one |= in_one
                    acc_zero &= in_zero
                if op == OP_NOR:
                    acc_zero, acc_one = acc_one, acc_zero
            elif op == OP_NOT:
                acc_zero, acc_one = acc_one, acc_zero
            elif op == OP_BUF:
                pass
            else:  # XOR / XNOR
                parity = acc_one
                known = acc_zero | acc_one
                for in_zero, in_one in inputs[1:]:
                    parity ^= in_one
                    known &= in_zero | in_one
                acc_one = parity & known
                acc_zero = ~parity & known & mask
                if op == OP_XNOR:
                    acc_zero, acc_one = acc_one, acc_zero

            out = outputs[index]
            force = gate_forces.get(out)
            if force is not None:
                clear, set_zero, set_one = force
                acc_zero = (acc_zero & ~clear) | set_zero
                acc_one = (acc_one & ~clear) | set_one
            zero[out] = acc_zero
            one[out] = acc_one
        if self.metrics.enabled:
            self.metrics.inc(
                "repro_sim_gate_words_total",
                len(compiled.ops) * ((planes.width + 63) // 64),
            )

    def load_planes(
        self,
        pi_vectors: Sequence[SignalValues],
        states: Sequence[SignalValues],
    ) -> PackedPlanes:
        """Pack one chunk of (PI vector, state) pairs into source planes.

        Missing entries default to X, matching the reference simulator.
        """
        width = len(pi_vectors)
        if width > self.word_bits:
            raise ValueError(f"chunk of {width} patterns exceeds word width {self.word_bits}")
        compiled = self.compiled
        zero = [0] * compiled.num_signals
        one = [0] * compiled.num_signals
        for slot, name in zip(compiled.pi_slots, self.circuit.primary_inputs):
            zero[slot], one[slot] = pack_column([vector.get(name) for vector in pi_vectors])
        for slot, name in zip(compiled.ppi_slots, self.circuit.pseudo_primary_inputs):
            zero[slot], one[slot] = pack_column([state.get(name) for state in states])
        return PackedPlanes(zero=zero, one=one, width=width)

    def load_broadcast_planes(
        self,
        vector: SignalValues,
        state_zero: Sequence[int],
        state_one: Sequence[int],
        width: int,
    ) -> PackedPlanes:
        """Source planes with one PI vector broadcast to every pattern slot.

        The fault-parallel workloads (gross-delay grading, the packed
        ``observability_map``) apply the *same* input vector to every machine
        in the word while each slot carries its own state; this loads exactly
        that shape — broadcast primary inputs plus externally carried per-PPI
        state planes (aligned with ``compiled.ppi_slots``).
        """
        compiled = self.compiled
        broadcast = (1 << width) - 1
        zero = [0] * compiled.num_signals
        one = [0] * compiled.num_signals
        for slot, name in zip(compiled.pi_slots, self.circuit.primary_inputs):
            value = vector.get(name)
            if value == 0:
                zero[slot] = broadcast
            elif value == 1:
                one[slot] = broadcast
        for position, slot in enumerate(compiled.ppi_slots):
            zero[slot] = state_zero[position]
            one[slot] = state_one[position]
        return PackedPlanes(zero=zero, one=one, width=width)

    def unpack(self, planes: PackedPlanes) -> List[SignalValues]:
        """Expand evaluated planes back into one value dict per pattern."""
        names = self.compiled.signal_names
        results: List[SignalValues] = []
        for pattern in range(planes.width):
            bit = 1 << pattern
            values: SignalValues = {}
            for slot, name in enumerate(names):
                if planes.one[slot] & bit:
                    values[name] = 1
                elif planes.zero[slot] & bit:
                    values[name] = 0
                else:
                    values[name] = None
            results.append(values)
        return results

    def next_state_planes(self, planes: PackedPlanes) -> Tuple[List[int], List[int]]:
        """Planes the flip-flops latch at the end of a frame (per PPI)."""
        compiled = self.compiled
        zero = [planes.zero[slot] for slot in compiled.dff_data_slots]
        one = [planes.one[slot] for slot in compiled.dff_data_slots]
        return zero, one

    # ------------------------------------------------------------------ #
    # batch interface
    # ------------------------------------------------------------------ #
    def combinational_batch(
        self,
        pi_vectors: Sequence[SignalValues],
        states: Optional[Sequence[SignalValues]] = None,
    ) -> List[SignalValues]:
        """Evaluate one frame for a batch of patterns.

        Args:
            pi_vectors: one primary-input assignment per pattern.
            states: one PPI state per pattern (defaults to all-X states).

        Returns:
            One full value dict per pattern, bit-exact with the reference
            :meth:`~repro.fausim.logic_sim.LogicSimulator.combinational`.
        """
        states = self._default_states(pi_vectors, states)
        results: List[SignalValues] = []
        for start in range(0, len(pi_vectors), self.word_bits):
            chunk = slice(start, start + self.word_bits)
            planes = self.load_planes(pi_vectors[chunk], states[chunk])
            self.evaluate_planes(planes)
            results.extend(self.unpack(planes))
        return results

    def clock_batch(
        self,
        pi_vectors: Sequence[SignalValues],
        states: Optional[Sequence[SignalValues]] = None,
    ) -> List[FrameResult]:
        """Simulate one clock cycle for a batch of patterns."""
        states = self._default_states(pi_vectors, states)
        ppis = self.circuit.pseudo_primary_inputs
        frames: List[FrameResult] = []
        for start in range(0, len(pi_vectors), self.word_bits):
            chunk = slice(start, start + self.word_bits)
            planes = self.load_planes(pi_vectors[chunk], states[chunk])
            self.evaluate_planes(planes)
            next_zero, next_one = self.next_state_planes(planes)
            for pattern, values in enumerate(self.unpack(planes)):
                bit = 1 << pattern
                next_state: SignalValues = {}
                for position, ppi in enumerate(ppis):
                    if next_one[position] & bit:
                        next_state[ppi] = 1
                    elif next_zero[position] & bit:
                        next_state[ppi] = 0
                    else:
                        next_state[ppi] = None
                frames.append(FrameResult(values=values, next_state=next_state))
        return frames

    def sequence_batch(
        self,
        vector_sequences: Sequence[Sequence[SignalValues]],
        initial_states: Optional[Sequence[SignalValues]] = None,
        observe: Optional[Sequence[str]] = None,
    ) -> List[SequenceResult]:
        """Simulate a batch of equally long input sequences in lockstep.

        Pattern ``j`` of every frame pass is sequence ``j``; the per-sequence
        state is carried between frames *inside* the bit planes (it is never
        unpacked), so a batch of ``N`` sequences costs ``ceil(N / word_bits)``
        evaluation passes per frame instead of ``N``.

        Args:
            vector_sequences: one input-vector sequence per pattern; all
                sequences must have the same length.
            initial_states: one initial PPI state per sequence (default all-X).
            observe: signal names to report in each frame's ``values``;
                ``None`` reports every signal (bit-exact drop-in for the
                reference :func:`~repro.fausim.logic_sim.simulate_sequence`).
                Restricting observation to the primary outputs skips most of
                the unpacking cost.
        """
        if not vector_sequences:
            return []
        length = len(vector_sequences[0])
        if any(len(sequence) != length for sequence in vector_sequences):
            raise ValueError("all sequences in a batch must have the same length")
        states = list(initial_states) if initial_states is not None else [
            {} for _ in vector_sequences
        ]
        if len(states) != len(vector_sequences):
            raise ValueError("need one initial state per sequence")
        if length == 0:
            return [
                SequenceResult(frames=[], final_state=dict(state)) for state in states
            ]

        compiled = self.compiled
        ppis = self.circuit.pseudo_primary_inputs
        observed = (
            list(compiled.signal_names)
            if observe is None
            else [name for name in observe]
        )
        observed_slots = [compiled.slot_of[name] for name in observed]

        results: List[SequenceResult] = []
        for chunk_start in range(0, len(vector_sequences), self.word_bits):
            chunk = vector_sequences[chunk_start : chunk_start + self.word_bits]
            width = len(chunk)
            state_zero: List[int] = []
            state_one: List[int] = []
            for ppi in ppis:
                zero, one = pack_column(
                    [states[chunk_start + pattern].get(ppi) for pattern in range(width)]
                )
                state_zero.append(zero)
                state_one.append(one)

            per_sequence_frames: List[List[FrameResult]] = [[] for _ in range(width)]
            for frame_index in range(length):
                vectors = [sequence[frame_index] for sequence in chunk]
                zero = [0] * compiled.num_signals
                one = [0] * compiled.num_signals
                for slot, name in zip(compiled.pi_slots, self.circuit.primary_inputs):
                    zero[slot], one[slot] = pack_column(
                        [vector.get(name) for vector in vectors]
                    )
                for position, slot in enumerate(compiled.ppi_slots):
                    zero[slot] = state_zero[position]
                    one[slot] = state_one[position]
                planes = PackedPlanes(zero=zero, one=one, width=width)
                self.evaluate_planes(planes)
                state_zero, state_one = self.next_state_planes(planes)

                for pattern in range(width):
                    bit = 1 << pattern
                    values: SignalValues = {}
                    for slot, name in zip(observed_slots, observed):
                        if one[slot] & bit:
                            values[name] = 1
                        elif zero[slot] & bit:
                            values[name] = 0
                        else:
                            values[name] = None
                    next_state: SignalValues = {}
                    for position, ppi in enumerate(ppis):
                        if state_one[position] & bit:
                            next_state[ppi] = 1
                        elif state_zero[position] & bit:
                            next_state[ppi] = 0
                        else:
                            next_state[ppi] = None
                    per_sequence_frames[pattern].append(
                        FrameResult(values=values, next_state=next_state)
                    )
            results.extend(
                SequenceResult(frames=frames, final_state=dict(frames[-1].next_state))
                for frames in per_sequence_frames
            )
        return results

    def _default_states(
        self,
        pi_vectors: Sequence[SignalValues],
        states: Optional[Sequence[SignalValues]],
    ) -> Sequence[SignalValues]:
        if states is None:
            return [{}] * len(pi_vectors)
        if len(states) != len(pi_vectors):
            raise ValueError("need one state per primary-input vector")
        return states

    # ------------------------------------------------------------------ #
    # scalar interface (LogicSimulator drop-in)
    # ------------------------------------------------------------------ #
    def combinational(self, pi_values: SignalValues, state: SignalValues) -> SignalValues:
        """Scalar frame evaluation (batch of one)."""
        return self.combinational_batch([pi_values], [state])[0]

    def next_state(self, frame_values: SignalValues) -> SignalValues:
        """Extract the state that the flip-flops latch at the end of a frame."""
        return {dff.name: frame_values[dff.fanin[0]] for dff in self.circuit.flip_flops}

    def clock(self, pi_values: SignalValues, state: SignalValues) -> FrameResult:
        """Scalar clock cycle (batch of one)."""
        return self.clock_batch([pi_values], [state])[0]

    def outputs(self, frame_values: SignalValues) -> SignalValues:
        """Project the frame values onto the primary outputs."""
        return {po: frame_values[po] for po in self.circuit.primary_outputs}

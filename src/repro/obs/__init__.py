"""Observability layer: metrics, tracing spans and exporters.

``repro.obs`` is the instrumentation subsystem of the reproduction.  It is
**zero-overhead when disabled**: every instrumented layer defaults to the
shared :data:`~repro.obs.metrics.NULL_REGISTRY` no-op registry, and the hot
simulation paths make at most one registry call per pass (never per gate).
Pass a live :class:`~repro.obs.metrics.MetricsRegistry` (CLI ``--profile``/
``--metrics-out``, orchestrator ``collect_metrics``, service jobs) to turn
collection on; campaign results are bit-identical either way.

Public surface:

* :class:`~repro.obs.metrics.MetricsRegistry`, :data:`~repro.obs.metrics.NULL_REGISTRY`,
  :class:`~repro.obs.metrics.MetricsSnapshot` — collection and merging;
* :class:`~repro.obs.tracing.FaultSpan`, :class:`~repro.obs.tracing.FaultCost`,
  :func:`~repro.obs.tracing.fold_cost` — per-fault cost attribution;
* :func:`~repro.obs.export.render_prometheus`,
  :func:`~repro.obs.export.metrics_document` — exposition.
"""

from .export import metrics_document, render_prometheus
from .metrics import (
    METRIC_HELP,
    NULL_REGISTRY,
    MetricsRegistry,
    MetricsSnapshot,
    NullRegistry,
    metric_key,
    resolve_metrics,
    split_metric_key,
)
from .tracing import FaultCost, FaultSpan, deterministic_counters, fold_cost

__all__ = [
    "METRIC_HELP",
    "NULL_REGISTRY",
    "FaultCost",
    "FaultSpan",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullRegistry",
    "deterministic_counters",
    "fold_cost",
    "metric_key",
    "metrics_document",
    "render_prometheus",
    "resolve_metrics",
    "split_metric_key",
]

"""TDsim — delay fault simulation of the fast clock frame.

Implements the third phase of the paper's fault simulation (section 5):
critical path tracing (CPT) for delay faults, started at all primary outputs
and at all pseudo primary outputs that FAUSIM found to be observable at a
primary output during the propagation phase, plus the invalidation check for
faults credited through a pseudo primary output.
"""

from repro.tdsim.cpt import DelayFaultSimulator, SimulatedDetection

__all__ = ["DelayFaultSimulator", "SimulatedDetection"]

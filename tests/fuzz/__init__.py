"""Cross-backend differential fuzzing.

Every registered backend — ``reference``, ``packed``, ``bigint`` and
``numpy`` — must agree *bit for bit* at all four dispatch layers of the
code base: good-machine simulation (:mod:`repro.fausim.backends`), forward
implication (:mod:`repro.tdgen.implication`), compiled search kernels
(:mod:`repro.tdgen.search`) and fault grading (:mod:`repro.core.verify`).

:mod:`tests.fuzz.harness` generates seeded random cases (circuit, fault
site, vector sequences, partial assignments), checks the agreement across
all layers, and greedily shrinks failing cases before persisting them to
``tests/fuzz/corpus/`` as deterministic regression files.
:mod:`tests.fuzz.test_differential_fuzz` runs a bounded random budget per
test session (extended via ``REPRO_FUZZ_CASES`` under the CI cron job);
:mod:`tests.fuzz.test_corpus` deterministically replays every corpus file.
"""

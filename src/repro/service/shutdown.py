"""Graceful shutdown of the ATPG daemon.

The contract: a SIGTERM or SIGINT must never cost finished work.  The
:class:`ShutdownController` turns the first signal into a *graceful* stop —
the HTTP listener closes, the queue runner stops pulling jobs, and the
in-flight campaign's ``should_stop`` hook fires so the orchestrator raises
:class:`~repro.orchestrate.coordinator.CampaignInterrupted` at the next
record boundary.  Every record received up to that point is already flushed
to the job's JSONL journal (see :mod:`repro.orchestrate.journal`), the job
is marked ``interrupted`` in the persisted table, and the next daemon start
re-queues it with ``--resume`` semantics: already-recorded faults are not
re-targeted and the merged result is fingerprint-identical to an
uninterrupted run.

A second signal while the graceful stop is draining escalates to an
immediate ``os._exit`` — the journal's torn-tail tolerance makes even that
safe, it merely loses the faults that were in flight.
"""

from __future__ import annotations

import asyncio
import os
import signal
import sys
from typing import Iterable, Optional


class ShutdownController:
    """Signal-to-shutdown bridge shared by the daemon's tasks.

    ``triggered`` is an :class:`asyncio.Event` the serve loop awaits;
    ``stopping`` is the flag the campaign executor thread polls through the
    orchestrator's ``should_stop`` hook (a plain attribute read — safe from
    any thread).
    """

    def __init__(self, hard_exit_on_repeat: bool = False) -> None:
        self.stopping = False
        self.reason: Optional[str] = None
        self.triggered = asyncio.Event()
        #: When True (the ``repro serve`` daemon), a second signal while the
        #: graceful stop drains escalates to ``os._exit``.  Embedded services
        #: (tests) keep the default False: repeat requests are no-ops.
        self.hard_exit_on_repeat = hard_exit_on_repeat
        self._installed: list = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    def request(self, reason: str = "requested") -> None:
        """Begin a graceful shutdown (idempotent; thread-safe after install)."""
        if self.stopping:
            if self.hard_exit_on_repeat:
                sys.stderr.write("repro serve: second shutdown signal, exiting hard\n")
                sys.stderr.flush()
                os._exit(1)
            return
        self.stopping = True
        self.reason = reason
        if self._loop is not None and self._loop is not _running_loop():
            self._loop.call_soon_threadsafe(self.triggered.set)
        else:
            self.triggered.set()

    def install(
        self, loop: asyncio.AbstractEventLoop, signals: Iterable[int] = (signal.SIGTERM, signal.SIGINT)
    ) -> None:
        """Route the given signals into :meth:`request`.

        Only callable from the main thread (an asyncio restriction); the
        in-process test harness skips installation and calls
        :meth:`request` directly instead.
        """
        self._loop = loop
        for signum in signals:
            name = signal.Signals(signum).name
            loop.add_signal_handler(signum, self.request, name)
            self._installed.append(signum)

    def uninstall(self) -> None:
        """Remove the installed signal handlers."""
        if self._loop is None:
            return
        for signum in self._installed:
            self._loop.remove_signal_handler(signum)
        self._installed.clear()

    def bind(self, loop: asyncio.AbstractEventLoop) -> None:
        """Remember the serve loop so cross-thread requests marshal correctly."""
        self._loop = loop


def _running_loop() -> Optional[asyncio.AbstractEventLoop]:
    try:
        return asyncio.get_running_loop()
    except RuntimeError:
        return None

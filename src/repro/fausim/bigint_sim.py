"""The ``bigint`` kernel tier: unbounded-width integer planes.

The ``packed`` tier chops every batch into 64-bit machine words and pays one
full pass over the compiled gate program *per word* — for a grading call with
a thousand faulty machines that is sixteen interpreter sweeps whose per-gate
Python overhead (loop iteration, list indexing, dict lookups) dominates the
actual bitwise work.  Python integers, however, are arbitrary-precision: the
very same plane identities (`one = AND(one_i)`, the one-hot eight-plane table
walk, the set-plane pair image) run unchanged on integers of *any* width.

This module therefore does not reimplement anything.  It re-registers the
packed evaluators with an effectively unbounded word width, so one gate
evaluation covers the **entire** pattern / fault / candidate population in a
single big-integer operation and the per-gate interpretation overhead is paid
once per batch instead of once per 64 patterns.  CPython's bignum arithmetic
is word-serial internally, but it runs in C — the Python-level loop count per
gate drops from ``ceil(width / 64)`` to 1.

The tier is exact by construction (same code paths, wider integers); the
differential fuzz harness in ``tests/fuzz`` and the corpus regression suite
still pin it bit-for-bit against ``packed`` and ``reference`` at every
dispatch layer.
"""

from __future__ import annotations

from repro.circuit.netlist import Circuit
from repro.fausim.packed_sim import PackedLogicSimulator
from repro.fausim.packed_two_frame import PackedTwoFrameSimulator

#: The "unbounded" word width of the bigint tier.  Any batch a process can
#: hold fits in one chunk; the value only bounds the *chunking* loops, never
#: an allocated mask (masks are sized by the actual batch width).
BIGINT_WORD_BITS = 1 << 62


class BigintLogicSimulator(PackedLogicSimulator):
    """Three-valued plane simulator with one unbounded word per signal.

    A drop-in :class:`~repro.fausim.packed_sim.PackedLogicSimulator` whose
    chunk width is effectively infinite: ``combinational_batch`` /
    ``sequence_batch`` / the fault-parallel grading of
    :mod:`repro.core.verify` run one single pass over the gate program no
    matter how many patterns or faulty machines the batch holds.
    """

    def __init__(self, circuit: Circuit) -> None:
        super().__init__(circuit, word_bits=BIGINT_WORD_BITS)


class BigintTwoFrameSimulator(PackedTwoFrameSimulator):
    """Eight-valued two-frame simulator with one unbounded word per signal.

    The fault-parallel counterpart for TDsim's exact stem analysis and PPO
    confirmation: every injection of a candidate batch lands in its own slot
    of a single arbitrary-width integer plane, so one pass simulates the
    whole batch regardless of its size.
    """

    def __init__(self, circuit: Circuit, robust: bool = True) -> None:
        super().__init__(circuit, robust=robust, word_bits=BIGINT_WORD_BITS)

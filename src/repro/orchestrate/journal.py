"""JSONL checkpoint journal for (sharded) ATPG campaigns.

The coordinator appends one JSON record per line while a campaign runs:

``{"type": "campaign", ...}``
    Segment header — circuit name, fault-universe digest, orchestration
    settings.  A resumed campaign appends a fresh header for the same
    circuit; the loader merges all segments whose digest matches.

``{"type": "fault", "index": i, "worker": w, "result": ..., "detections": ...}``
    One targeted fault outcome: the serialised :class:`~repro.core.results.
    FaultResult` (sequence included) plus the raw detection list of its
    sequence over the whole circuit.  These records are the campaign's
    ground truth — the replay merge rebuilds the final
    :class:`~repro.core.results.CampaignResult` from them alone.

``{"type": "drop", "index": i, "worker": w, "by": j}``
    Fault ``i`` was not targeted because the sequence generated for the
    earlier fault ``j`` already covered it.  Informational: the replay
    re-derives drops from the recorded detections.

``{"type": "prefix", "seq": k, "candidates": c, "detections": ..., "sequence": ...}``
    One applied random-prefix sequence of a hybrid campaign
    (:mod:`repro.core.prefilter`): the faults it was credited with under the
    TDsim rule, plus the sequence itself when it detected anything.  A
    campaign killed mid-prefix resumes from these records — the stopping-rule
    window is rebuilt from their detection counts and generation continues at
    the next sequence index.

``{"type": "prefix-done", "reason": ..., "applied": n, "detected": d}``
    The prefix phase finished (stop reason: ``window``/``budget``/
    ``exhausted``).  A resume that finds this record skips Phase A entirely
    and goes straight to the deterministic residue.

``{"type": "result", "campaign": ...}``
    The final merged campaign.  A resume that finds this record returns it
    directly instead of re-running anything.

A process killed mid-write leaves a truncated last line; the reader tolerates
exactly that (a malformed *final* line is ignored, a malformed interior line
is an error), which is what makes kill-and-``--resume`` safe.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Dict, IO, List, Optional, Sequence

from repro.faults.model import GateDelayFault


def campaign_digest(
    circuit_name: str,
    config_payload: Dict[str, object],
    faults: Sequence[GateDelayFault],
) -> str:
    """Fingerprint of a campaign: circuit, settings and fault universe.

    A journal segment may only be resumed into a campaign with the same
    digest — same circuit, same generation settings (robustness, backtrack
    limits, fill, ...) and the same fault universe in the same enumeration
    order, since the records are keyed by universe index.  The simulation
    backend is deliberately *not* part of the digest: backends are pinned
    bit-exact against each other, so a campaign journaled under one backend
    resumes cleanly under another (``tests/orchestrate/test_journal.py``).
    """
    payload = {
        "circuit": circuit_name,
        "config": dict(sorted(config_payload.items())),
        "faults": [str(fault) for fault in faults],
    }
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


@dataclasses.dataclass
class JournalSegment:
    """All journal records of one circuit's campaign, merged across resumes."""

    circuit: str
    digest: str
    header: Dict[str, object]
    fault_records: Dict[int, Dict[str, object]] = dataclasses.field(default_factory=dict)
    drops: List[Dict[str, object]] = dataclasses.field(default_factory=list)
    final: Optional[Dict[str, object]] = None
    #: Random-prefix records of a hybrid campaign, keyed by sequence index.
    prefix_records: Dict[int, Dict[str, object]] = dataclasses.field(default_factory=dict)
    #: The ``prefix-done`` record once Phase A finished, else ``None``.
    prefix_done: Optional[Dict[str, object]] = None

    @property
    def completed_indices(self) -> List[int]:
        """Universe indices that already have a generation record."""
        return sorted(self.fault_records)


class CampaignJournal:
    """Append-only JSONL writer used by the coordinator.

    Every record is flushed straight to disk, so an interrupted campaign
    loses at most the record being written (and the reader tolerates that
    truncated line).
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._truncate_torn_tail()
        self._handle: Optional[IO[str]] = open(self.path, "a", encoding="utf-8")

    def _truncate_torn_tail(self) -> None:
        """Drop a torn final record before appending to an existing journal.

        A campaign killed mid-write leaves a last line without a trailing
        newline.  Appending after it would concatenate the next record onto
        the torn fragment and turn it into *interior* corruption that every
        later read rejects — so the fragment is cut here, at open time.
        """
        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return
        if not data or data.endswith(b"\n"):
            return
        keep = data.rfind(b"\n") + 1  # 0 when no complete line exists
        with open(self.path, "rb+") as handle:
            handle.truncate(keep)

    def append(self, record: Dict[str, object]) -> None:
        """Write one record as a single JSONL line and flush it."""
        if self._handle is None:
            raise ValueError("journal is closed")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Close the underlying file; further appends raise."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignJournal":
        """Context-manager entry: the journal itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: close the file."""
        self.close()


def read_journal(path: str) -> List[Dict[str, object]]:
    """Read all records of a journal file, tolerating a truncated last line."""
    records: List[Dict[str, object]] = []
    text = Path(path).read_text(encoding="utf-8")
    lines = text.splitlines()
    for lineno, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if lineno == len(lines) - 1:
                break  # interrupted mid-write; the record never completed
            raise ValueError(f"{path}:{lineno + 1}: corrupt journal record") from None
    return records


def load_segments(path: str) -> Dict[str, JournalSegment]:
    """Parse a journal into one merged :class:`JournalSegment` per circuit.

    Records of resumed runs (same circuit, same digest) merge into the same
    segment; a digest change for a circuit is an error because the existing
    records would be keyed against a different fault universe.
    """
    segments: Dict[str, JournalSegment] = {}
    current: Optional[JournalSegment] = None
    for record in read_journal(path):
        kind = record.get("type")
        if kind == "campaign":
            circuit = str(record["circuit"])
            digest = str(record["digest"])
            existing = segments.get(circuit)
            if existing is None:
                current = JournalSegment(circuit=circuit, digest=digest, header=record)
                segments[circuit] = current
            else:
                if existing.digest != digest:
                    raise ValueError(
                        f"journal {path!r} holds circuit {circuit!r} records for a "
                        f"different campaign (digest {existing.digest} != {digest})"
                    )
                current = existing
        elif kind in ("fault", "drop", "result", "prefix", "prefix-done"):
            if current is None:
                raise ValueError(f"journal {path!r} has a {kind!r} record before any header")
            if kind == "fault":
                current.fault_records[int(record["index"])] = record
            elif kind == "drop":
                current.drops.append(record)
            elif kind == "prefix":
                current.prefix_records[int(record["seq"])] = record
            elif kind == "prefix-done":
                current.prefix_done = record
            else:
                current.final = record
        # Unknown record types are ignored so the format can grow.
    return segments

"""Crash/robustness tests: graceful shutdown checkpoints, restart resumes.

The service contract under test: a SIGTERM (or an embedded ``stop()``)
mid-campaign loses no finished work — the in-flight job is checkpointed
through its JSONL journal, marked ``interrupted`` in the persisted table,
and a daemon restarted on the same state directory re-queues it with
resume semantics.  The resumed merge must be **fingerprint-identical** to
an uninterrupted run (and hence to the serial campaign — the
orchestrate-layer contract the service builds on).

Two tiers:

* in-process: ``ServiceThread`` stopped between record boundaries —
  fast, deterministic, runs everywhere;
* subprocess: a real ``python -m repro serve`` daemon SIGTERMed at
  randomized progress points (property-style, seeded), restarted, and
  polled to completion.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.data import load_circuit
from repro.orchestrate import run_parallel_campaign

from tests.service.conftest import ServiceClient, result_fingerprint

SPEC = {"circuit": "s344", "scale": 0.3, "jobs": 2, "seed": 7}


@pytest.fixture(scope="module")
def uninterrupted():
    """The campaign the daemon should reproduce, run directly and once."""
    circuit = load_circuit("s344", scale=SPEC["scale"])
    return run_parallel_campaign(
        circuit, jobs=SPEC["jobs"], campaign_seed=SPEC["seed"]
    ).to_json()


def _wait_for_events(client, job_id, minimum, timeout=120.0):
    """Block until the job has recorded at least ``minimum`` progress events."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, body = client.get(f"/jobs/{job_id}/events")
        if status == 200:
            if body["next_offset"] >= minimum:
                return body["next_offset"]
            if body["done"]:
                return body["next_offset"]
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never reached {minimum} events")


# --------------------------------------------------------------------- #
# in-process: embedded graceful stop
# --------------------------------------------------------------------- #
def test_graceful_stop_resumes_fingerprint_identical(daemon_factory, tmp_path, uninterrupted):
    state_dir = tmp_path / "state"
    thread, client = daemon_factory(state_dir)
    job_id = client.submit(SPEC)
    _wait_for_events(client, job_id, minimum=5)
    thread.stop()  # graceful: waits for the record-boundary checkpoint

    # the interrupted state is persisted, journal and all
    table = json.loads((state_dir / "jobs.json").read_text())
    (row,) = [row for row in table["jobs"] if row["id"] == job_id]
    assert row["status"] in ("interrupted", "done")
    journal = state_dir / "journals" / f"{job_id}.jsonl"
    assert journal.exists() and journal.stat().st_size > 0

    # a new daemon on the same state dir re-queues and finishes the job
    _, client2 = daemon_factory(state_dir)
    job = client2.wait(job_id)
    assert job["status"] == "done"
    assert job["error"] is None
    if row["status"] == "interrupted":
        assert job["resumed"] is True

    served = client2.result(job_id)["campaign"]
    assert result_fingerprint(served) == result_fingerprint(uninterrupted)


def test_submit_during_drain_is_503(daemon_factory):
    thread, client = daemon_factory()
    thread.service.shutdown.stopping = True
    status, body = client.post("/jobs", {"circuit": "s27"})
    assert status == 503
    assert "shutting down" in body["error"]
    thread.service.shutdown.stopping = False  # let teardown stop cleanly


# --------------------------------------------------------------------- #
# subprocess: real daemon, real SIGTERM, property-style kill points
# --------------------------------------------------------------------- #
class _Daemon:
    """One ``python -m repro serve`` subprocess bound to an ephemeral port."""

    def __init__(self, state_dir: Path, port_file: Path) -> None:
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        self.process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0",
                "--state-dir", str(state_dir),
                "--port-file", str(port_file),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
        deadline = time.monotonic() + 60
        while not port_file.exists() or not port_file.read_text().strip():
            if self.process.poll() is not None:
                raise AssertionError(
                    "daemon exited at startup:\n"
                    + self.process.stdout.read().decode(errors="replace")
                )
            if time.monotonic() > deadline:
                raise AssertionError("daemon did not bind within 60s")
            time.sleep(0.05)
        self.client = ServiceClient(int(port_file.read_text()))
        port_file.unlink()

    def sigterm_and_wait(self, timeout=120.0) -> int:
        """Send SIGTERM and wait for the graceful exit."""
        self.process.send_signal(signal.SIGTERM)
        return self.process.wait(timeout=timeout)

    def kill(self) -> None:
        """Hard-kill (teardown safety net)."""
        if self.process.poll() is None:
            self.process.kill()
            self.process.wait(timeout=30)


@pytest.mark.parametrize("trial_seed", [0, 1])
def test_sigterm_mid_campaign_resumes_fingerprint_identical(
    tmp_path, uninterrupted, trial_seed
):
    state_dir = tmp_path / "state"
    total_events = len(uninterrupted["fault_results"])  # lower bound on records
    kill_after = random.Random(trial_seed).randint(2, max(3, total_events // 2))

    first = _Daemon(state_dir, tmp_path / "port-a")
    try:
        job_id = first.client.submit(SPEC)
        reached = _wait_for_events(first.client, job_id, minimum=kill_after)
        assert first.sigterm_and_wait() == 0
    finally:
        first.kill()

    # the daemon checkpointed: some progress is journaled, the table knows
    journal = state_dir / "journals" / f"{job_id}.jsonl"
    assert journal.exists() and journal.stat().st_size > 0
    table = json.loads((state_dir / "jobs.json").read_text())
    (row,) = [r for r in table["jobs"] if r["id"] == job_id]
    assert row["status"] in ("interrupted", "done")

    second = _Daemon(state_dir, tmp_path / "port-b")
    try:
        job = second.client.wait(job_id, timeout=300)
        assert job["status"] == "done", job
        assert job["error"] is None
        if row["status"] == "interrupted":
            assert job["resumed"] is True
            # the resumed run really skipped the checkpointed prefix
            _, events = second.client.get(f"/jobs/{job_id}/events")
            resumed_header = events["events"][0]
            assert resumed_header["type"] == "campaign"
            assert resumed_header.get("resumed_records", 0) > 0
        served = second.client.result(job_id)["campaign"]
        assert second.sigterm_and_wait() == 0
    finally:
        second.kill()

    assert result_fingerprint(served) == result_fingerprint(uninterrupted)

#!/usr/bin/env python3
"""Fault-parallel gross-delay grading of a random sequence on s27.

Grading asks: which gate delay faults would this input sequence detect?  The
reference backend answers by replaying the whole sequence once per fault; the
packed backend answers in word-parallel sweeps — the good machine rides in
pattern slot 0 and each remaining slot carries one faulty machine whose fault
line is frozen at its stale value in the fast frame
(:func:`repro.core.verify.grade_test_sequence`).

The script grades one random sequence against the complete s27 fault
universe with both backends, checks the verdicts are identical, and prints
the timing comparison (on the tiny s27 the packed win is modest; the
``benchmarks/test_bench_packed_grading.py`` gate measures the s838-sized
workload where it exceeds 5x).

Run with::

    python examples/packed_grading.py
"""

import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import load_circuit
from repro.core.clocking import ClockSchedule
from repro.core.results import TestSequence
from repro.core.verify import grade_test_sequence
from repro.faults.model import enumerate_delay_faults

SEQUENCE_FRAMES = 10
REPEATS = 20  # timing repetitions; s27 grades in microseconds


def build_random_sequence(circuit, rng: random.Random) -> TestSequence:
    """A random vector sequence with the fast (test) frame in the middle."""
    vectors = [
        {pi: rng.randint(0, 1) for pi in circuit.primary_inputs}
        for _ in range(SEQUENCE_FRAMES)
    ]
    fast_index = SEQUENCE_FRAMES // 2
    schedule = ClockSchedule.for_sequence(
        initialization_frames=fast_index - 1,
        propagation_frames=SEQUENCE_FRAMES - fast_index - 1,
    )
    faults = enumerate_delay_faults(circuit)
    return TestSequence(
        fault=faults[0],
        initialization_vectors=vectors[: fast_index - 1],
        v1=vectors[fast_index - 1],
        v2=vectors[fast_index],
        propagation_vectors=vectors[fast_index + 1 :],
        clock_schedule=schedule,
        observation_point="",
        observed_at_po=True,
    )


def time_backend(circuit, sequence, faults, backend: str):
    """Grade REPEATS times and return (grades, seconds per grading pass)."""
    grades = grade_test_sequence(circuit, sequence, faults, backend=backend)
    start = time.perf_counter()
    for _ in range(REPEATS):
        grade_test_sequence(circuit, sequence, faults, backend=backend)
    return grades, (time.perf_counter() - start) / REPEATS


def main() -> int:
    circuit = load_circuit("s27")
    rng = random.Random(7)
    sequence = build_random_sequence(circuit, rng)
    faults = enumerate_delay_faults(circuit)
    print(
        f"Grading a {SEQUENCE_FRAMES}-frame random sequence against "
        f"{len(faults)} faults on {circuit.name} "
        f"(fast frame at index {sequence.clock_schedule.fast_frame_index})\n"
    )

    reference, reference_s = time_backend(circuit, sequence, faults, "reference")
    packed, packed_s = time_backend(circuit, sequence, faults, "packed")

    mismatches = [
        (ref.fault, ref.detected, got.detected)
        for ref, got in zip(reference, packed)
        if (ref.detected, ref.detection_frame, ref.primary_output)
        != (got.detected, got.detection_frame, got.primary_output)
    ]
    assert not mismatches, f"backends disagree: {mismatches[:3]}"

    detected = [grade for grade in packed if grade.detected]
    print(f"{'backend':>10} {'time/pass':>12} {'sweeps':>8}")
    print(f"{'reference':>10} {reference_s * 1e3:>10.2f}ms {len(faults):>8}")
    print(f"{'packed':>10} {packed_s * 1e3:>10.2f}ms {(len(faults) + 62) // 63:>8}")
    print(f"\nspeedup: {reference_s / packed_s:.1f}x, identical verdicts")
    print(f"\ndetected {len(detected)}/{len(faults)} faults, e.g.:")
    for grade in detected[:8]:
        print(
            f"  {str(grade.fault):<16} at frame {grade.detection_frame} "
            f"via {grade.primary_output}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""The ISCAS'89 benchmark circuit s27 (embedded verbatim).

s27 is the smallest circuit of the suite: 4 primary inputs, 1 primary output,
3 D flip-flops and 10 combinational gates.  Its netlist is reproduced in many
textbooks and papers, so it is embedded here directly; it is also the circuit
every end-to-end test and the quickstart example use.
"""

S27_BENCH = """\
# s27 — ISCAS'89 sequential benchmark
# 4 inputs, 1 output, 3 D-type flipflops, 10 gates
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)

OUTPUT(G17)

G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)

G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
"""

"""Gate-level circuit substrate.

This package provides the structural netlist model that every other part of
the reproduction is built on: primitive gates, D flip-flops, explicit fanout
branches, ISCAS'89 ``.bench`` parsing/writing, levelisation of the
combinational core and a small programmatic builder API.

The model follows the finite state machine view of the paper (Figure 1): a
synchronous sequential circuit is a combinational block whose inputs are the
primary inputs (PIs) plus the pseudo primary inputs (PPIs, the flip-flop
outputs) and whose outputs are the primary outputs (POs) plus the pseudo
primary outputs (PPOs, the flip-flop data inputs).
"""

from repro.circuit.gates import GateType, evaluate_gate, controlling_value, inversion_parity
from repro.circuit.netlist import Circuit, Gate, Line, LineKind
from repro.circuit.bench import parse_bench, parse_bench_file, write_bench
from repro.circuit.builder import CircuitBuilder
from repro.circuit.levelize import levelize, combinational_order
from repro.circuit.validate import validate_circuit, CircuitValidationError

__all__ = [
    "GateType",
    "evaluate_gate",
    "controlling_value",
    "inversion_parity",
    "Circuit",
    "Gate",
    "Line",
    "LineKind",
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    "CircuitBuilder",
    "levelize",
    "combinational_order",
    "validate_circuit",
    "CircuitValidationError",
]

"""Seeded random test-sequence generation, shared by baseline and prefix.

Both consumers of random two-pattern sequences — the standalone random
baseline (:mod:`repro.baselines.random_atpg`) and the hybrid campaign's
random-pattern prefix (:mod:`repro.core.prefilter`) — draw their vectors
from this one module, so the draw order (all frame vectors first, then the
fast-frame position) is defined in exactly one place and a given
``random.Random`` state always yields the same sequence in either flow.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from repro.circuit.netlist import Circuit
from repro.core.clocking import ClockSchedule
from repro.core.results import TestSequence
from repro.faults.model import GateDelayFault


def random_vector(rng: random.Random, primary_inputs: Sequence[str]) -> Dict[str, int]:
    """One fully specified random input vector (one coin flip per PI)."""
    return {pi: rng.randint(0, 1) for pi in primary_inputs}


def random_test_sequence(
    rng: random.Random,
    circuit: Circuit,
    sequence_length: int,
    fault: GateDelayFault,
) -> TestSequence:
    """Draw one random delay-test sequence of ``sequence_length`` frames.

    The draw order is fixed: first one random vector per frame, then the
    fast-frame position (uniform over frames 1..length-1).  The frame right
    before the fast one becomes ``v1``, the fast frame ``v2``; everything
    earlier initialises, everything later propagates.  ``fault`` only labels
    the returned :class:`~repro.core.results.TestSequence` — grading treats
    every fault of the universe identically.
    """
    if sequence_length < 2:
        raise ValueError("a delay test needs at least two frames")
    vectors: List[Dict[str, int]] = [
        random_vector(rng, circuit.primary_inputs) for _ in range(sequence_length)
    ]
    fast_index = rng.randint(1, sequence_length - 1)
    schedule = ClockSchedule.for_sequence(
        initialization_frames=fast_index - 1,
        propagation_frames=sequence_length - fast_index - 1,
    )
    return TestSequence(
        fault=fault,
        initialization_vectors=vectors[: fast_index - 1],
        v1=vectors[fast_index - 1],
        v2=vectors[fast_index],
        propagation_vectors=vectors[fast_index + 1 :],
        clock_schedule=schedule,
        observation_point="",
        observed_at_po=True,
    )

"""Tests of the observability layer (:mod:`repro.obs`)."""

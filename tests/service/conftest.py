"""Shared fixtures for the service-level test harness.

Every e2e test talks to a real daemon over real HTTP: an
:class:`~repro.service.app.ServiceThread` bound to an ephemeral loopback
port, with its state directory in a pytest temp dir.  The ``http`` fixture
is a tiny urllib client that returns ``(status, parsed_json)`` for both
success and error responses so 4xx paths are assertable without
try/except noise in every test.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.service import ServiceThread


class ServiceClient:
    """Blocking JSON-over-HTTP client for one daemon instance."""

    def __init__(self, port: int) -> None:
        self.port = port
        self.base = f"http://127.0.0.1:{port}"

    def request(self, method, path, payload=None, timeout=60):
        """One request; returns (status, parsed JSON body) even for 4xx/5xx."""
        data = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if data else {}
        req = urllib.request.Request(
            self.base + path, data=data, method=method, headers=headers
        )
        try:
            with urllib.request.urlopen(req, timeout=timeout) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def get(self, path, **kwargs):
        """GET shorthand."""
        return self.request("GET", path, **kwargs)

    def post(self, path, payload=None, **kwargs):
        """POST shorthand."""
        return self.request("POST", path, payload, **kwargs)

    def submit(self, payload):
        """Submit a job, asserting the 202, and return its id."""
        status, body = self.post("/jobs", payload)
        assert status == 202, body
        return body["job"]["id"]

    def wait(self, job_id, timeout=300.0):
        """Poll a job until it leaves queued/running; returns its public JSON."""
        deadline = time.monotonic() + timeout
        while True:
            status, body = self.get(f"/jobs/{job_id}")
            assert status == 200, body
            job = body["job"]
            if job["status"] not in ("queued", "running"):
                return job
            if time.monotonic() > deadline:
                raise AssertionError(f"job {job_id} still {job['status']} after {timeout}s")
            time.sleep(0.05)

    def result(self, job_id):
        """Fetch a finished job's result payload, asserting the 200."""
        status, body = self.get(f"/jobs/{job_id}/result")
        assert status == 200, body
        return body


@pytest.fixture()
def daemon_factory(tmp_path):
    """Start in-process daemons on ephemeral ports; all stopped at teardown.

    Returns ``start(state_dir=None, **kwargs) -> (ServiceThread, ServiceClient)``;
    passing the same ``state_dir`` across calls exercises restart/resume.
    """
    threads = []

    def start(state_dir=None, **kwargs):
        if state_dir is None:
            state_dir = tmp_path / "state"
        thread = ServiceThread(state_dir=str(state_dir), **kwargs).start()
        threads.append(thread)
        return thread, ServiceClient(thread.port)

    yield start
    for thread in threads:
        thread.stop()


@pytest.fixture()
def daemon(daemon_factory):
    """One running daemon and its client: ``(ServiceThread, ServiceClient)``."""
    return daemon_factory()


def result_fingerprint(campaign_json):
    """Everything the serial-equivalence contract covers, minus timing.

    Mirrors ``tests/orchestrate/test_parallel_campaign._fingerprint`` but
    operates on the CampaignResult JSON the service returns: ``time_s`` and
    ``cpu_seconds`` are the only wall-clock-dependent fields.
    """
    return {
        key: value
        for key, value in campaign_json.items()
        if key not in ("time_s", "cpu_seconds")
    }

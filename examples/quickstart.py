#!/usr/bin/env python3
"""Quickstart: robust gate delay fault ATPG on the ISCAS'89 circuit s27.

The script walks through the whole flow of the paper on the smallest ISCAS'89
circuit:

1. load the circuit and show its finite state machine decomposition
   (paper Figure 1),
2. generate a test for one gate delay fault and show the resulting vector
   sequence with its slow/fast clock schedule (paper Figure 2),
3. run the full campaign and print the Table 3 style summary row.

Run with::

    python examples/quickstart.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import (
    DelayFaultType,
    GateDelayFault,
    Line,
    SequentialDelayATPG,
    format_campaign_table,
    load_circuit,
    verify_test_sequence,
)


def show_fsm_decomposition(circuit) -> None:
    """Print the finite state machine view of the circuit (Figure 1)."""
    stats = circuit.stats()
    print(f"Circuit {circuit.name}: {stats['gates']} gates, "
          f"{stats['flip_flops']} flip-flops, {stats['lines']} fault-site lines")
    print(f"  primary inputs  (PIs):  {', '.join(circuit.primary_inputs)}")
    print(f"  primary outputs (POs):  {', '.join(circuit.primary_outputs)}")
    print(f"  pseudo primary inputs  (PPIs, flip-flop outputs): "
          f"{', '.join(circuit.pseudo_primary_inputs)}")
    print(f"  pseudo primary outputs (PPOs, flip-flop data inputs): "
          f"{', '.join(circuit.pseudo_primary_outputs)}")
    print()


def show_single_fault(circuit) -> None:
    """Generate and display one complete test sequence (Figure 2 layout)."""
    fault = GateDelayFault(Line("G13"), DelayFaultType.SLOW_TO_RISE)
    print(f"Targeting fault: {fault}")
    atpg = SequentialDelayATPG(circuit)
    result = atpg.generate_for_fault(fault)
    print(f"  outcome: {result.status.value} (ended in phase: {result.phase.value})")
    if result.sequence is None:
        print()
        return

    sequence = result.sequence
    print(f"  observation point: {sequence.observation_point} "
          f"({'primary output' if sequence.observed_at_po else 'via state register + propagation'})")
    print(f"  clock schedule:    {sequence.clock_schedule}")
    inputs = circuit.primary_inputs
    print(f"  vectors ({', '.join(inputs)}):")
    for index, (vector, speed) in enumerate(zip(sequence.vectors, sequence.clock_schedule.speeds)):
        bits = "".join(str(vector.get(pi, 0)) for pi in inputs)
        role = "test frame" if speed.value == "fast" else "slow frame"
        print(f"    t{index}: {bits}   [{speed.value} clock, {role}]")
    report = verify_test_sequence(circuit, sequence)
    print(f"  independent gross-delay verification: "
          f"{'fault detected at ' + str(report.primary_output) if report.detected else 'NOT detected'}")
    print()


def run_campaign(circuit) -> None:
    """Run the full Table 3 style campaign on s27."""
    print("Running the full campaign (every StR/StF fault on every stem and branch)...")
    atpg = SequentialDelayATPG(circuit)
    campaign = atpg.run()
    print(format_campaign_table([campaign], title="s27 campaign (compare with Table 3, row s27)"))
    print()
    print(f"fault coverage:   {campaign.fault_coverage:.1%}")
    print(f"fault efficiency: {campaign.fault_efficiency:.1%}")
    breakdown = campaign.untestable_breakdown()
    print(f"untestable split: {breakdown['combinationally_untestable']} local, "
          f"{breakdown['sequentially_untestable']} sequential")


def main() -> None:
    circuit = load_circuit("s27")
    show_fsm_decomposition(circuit)
    show_single_fault(circuit)
    run_campaign(circuit)


if __name__ == "__main__":
    main()

"""Differential tests: the hybrid campaign is bit-identical everywhere.

The hybrid (random-prefix + deterministic-residue) campaign extends the
orchestration contract: with a fixed campaign seed the merged result — prefix
counters, kept prefix sequences, per-fault verdicts, sequences, coverage —
must be identical to the serial hybrid flow across worker counts, partition
modes, and interrupt/resume cycles, including a kill at a record boundary
*inside* the prefix phase.
"""

import json

import pytest

from repro.core.flow import SequentialDelayATPG
from repro.core.prefilter import PrefixConfig
from repro.data import load_circuit
from repro.faults.model import enumerate_delay_faults
from repro.orchestrate import CampaignOrchestrator, OrchestratorConfig, read_journal

#: Prefix settings mirrored between the serial flow and the orchestrator.
BUDGET, WINDOW, LENGTH, SEED = 64, 8, 8, 0


def _config(jobs, partition="round-robin"):
    return OrchestratorConfig(
        jobs=jobs,
        partition=partition,
        campaign_seed=SEED,
        rpg_prefix=True,
        rpg_budget=BUDGET,
        rpg_window=WINDOW,
        rpg_length=LENGTH,
    )


def _fingerprint(campaign):
    """The serial-equivalence contract, extended with the prefix fields."""
    row = {key: value for key, value in campaign.as_table3_row().items() if key != "time_s"}
    per_fault = [
        (
            str(result.fault),
            result.status.value,
            result.phase.name,
            sorted(str(fault) for fault in result.additionally_detected),
            result.sequence.vectors if result.sequence is not None else None,
        )
        for result in campaign.fault_results
    ]
    return (
        row,
        campaign.untestable_breakdown(),
        campaign.targeted,
        campaign.detected_by_simulation,
        campaign.prefix_applied,
        campaign.prefix_detected,
        campaign.prefix_stop_reason,
        [sequence.to_json() for sequence in campaign.prefix_sequences],
        campaign.pattern_count,
        per_fault,
    )


@pytest.fixture(scope="module")
def s344_small():
    return load_circuit("s344", scale=0.3)


@pytest.fixture(scope="module")
def serial_hybrid(s344_small):
    prefix = PrefixConfig(budget=BUDGET, window=WINDOW, sequence_length=LENGTH, seed=SEED)
    return SequentialDelayATPG(s344_small).run(prefix=prefix)


def test_hybrid_actually_strips_faults(serial_hybrid):
    assert serial_hybrid.prefix_applied > 0
    assert serial_hybrid.prefix_detected > 0
    assert serial_hybrid.prefix_sequences, "credited sequences must be kept"


def test_hybrid_jobs_and_partitions_match_serial(s344_small, serial_hybrid):
    """Bit-identical across --jobs 1/2/4 and every partition mode."""
    for jobs, partition in (
        (1, "round-robin"),
        (2, "round-robin"),
        (4, "round-robin"),
        (4, "size-aware"),
        (4, "dynamic"),
    ):
        orchestrator = CampaignOrchestrator(s344_small, config=_config(jobs, partition))
        parallel = orchestrator.run()
        assert _fingerprint(parallel) == _fingerprint(serial_hybrid), (jobs, partition)


def test_hybrid_resume_at_prefix_record_boundary(tmp_path, s344_small, serial_hybrid):
    """A kill mid-prefix resumes into the identical campaign.

    The journal is cut after the header plus the first eight ``prefix``
    records (before ``prefix-done``), plus a torn half-written line — the
    state a SIGKILL leaves while Phase A is still grading.  The resume (with
    a different worker count and partition mode) must regenerate the
    remaining prefix sequences from their derived seeds and produce the
    serial hybrid fingerprint.
    """
    path = str(tmp_path / "journal.jsonl")
    orchestrator = CampaignOrchestrator(
        s344_small, config=_config(2), journal_path=path
    )
    complete = orchestrator.run()
    assert _fingerprint(complete) == _fingerprint(serial_hybrid)

    records = read_journal(path)
    kept, prefix_kept = [], 0
    for record in records:
        if record["type"] == "campaign":
            kept.append(record)
        elif record["type"] == "prefix" and prefix_kept < 8:
            kept.append(record)
            prefix_kept += 1
    assert prefix_kept == 8, "workload must journal enough prefix records to cut"
    with open(path, "w", encoding="utf-8") as handle:
        for record in kept:
            handle.write(json.dumps(record) + "\n")
        handle.write('{"type": "prefix", "seq": 8, "torn')  # mid-write kill

    resumed = CampaignOrchestrator(
        s344_small,
        config=_config(4, "dynamic"),
        journal_path=path,
        resume=True,
    ).run()
    assert _fingerprint(resumed) == _fingerprint(serial_hybrid)


def test_hybrid_resume_after_prefix_done(tmp_path, s344_small, serial_hybrid):
    """A kill in Phase B replays the finished prefix without re-grading."""
    path = str(tmp_path / "journal.jsonl")
    CampaignOrchestrator(s344_small, config=_config(2), journal_path=path).run()

    records = read_journal(path)
    kept, per_fault = [], 0
    for record in records:
        if record["type"] in ("campaign", "prefix", "prefix-done"):
            kept.append(record)
        elif record["type"] in ("fault", "drop") and per_fault < 20:
            kept.append(record)
            per_fault += 1
    with open(path, "w", encoding="utf-8") as handle:
        for record in kept:
            handle.write(json.dumps(record) + "\n")

    resumed = CampaignOrchestrator(
        s344_small, config=_config(3, "dynamic"), journal_path=path, resume=True
    ).run()
    assert _fingerprint(resumed) == _fingerprint(serial_hybrid)


def test_hybrid_digest_guards_prefix_settings(tmp_path, s27):
    """A plain journal cannot be resumed as hybrid (and vice versa)."""
    path = str(tmp_path / "journal.jsonl")
    CampaignOrchestrator(
        s27, config=OrchestratorConfig(jobs=2, campaign_seed=SEED), journal_path=path
    ).run(max_target_faults=3)
    mismatched = CampaignOrchestrator(
        s27, config=_config(2), journal_path=path, resume=True
    )
    with pytest.raises(ValueError, match="digest"):
        mismatched.run(max_target_faults=3)


def test_plain_campaign_digest_unchanged_by_hybrid_fields(s27):
    """Pre-hybrid journals stay resumable: the digest adds keys only when on."""
    plain = OrchestratorConfig(jobs=2, campaign_seed=SEED)
    default_flags = OrchestratorConfig(
        jobs=2, campaign_seed=SEED, rpg_budget=999, rpg_window=3
    )
    assert plain.digest_payload() == default_flags.digest_payload()
    assert "rpg_budget" in _config(2).digest_payload()

"""Benchmark registry, embedded s27 and the surrogate generator."""

import pytest

from repro.circuit.levelize import combinational_order
from repro.circuit.validate import validate_circuit
from repro.data import circuit_spec, generate_surrogate, list_circuits, load_circuit
from repro.data.iscas89 import ISCAS89_SPECS, TABLE3_ORDER


def test_surrogate_alias_names_the_same_circuit():
    """``<name>-surrogate`` must resolve to the identical registry entry.

    The surrogate generator is seeded from the circuit name, so the alias has
    to be normalised *before* generation or it would silently produce a
    different netlist than ``<name>``.
    """
    assert circuit_spec("s838-surrogate") is circuit_spec("s838")
    direct = load_circuit("s838", scale=0.2)
    aliased = load_circuit("s838-surrogate", scale=0.2)
    assert aliased.name == direct.name
    assert [gate.name for gate in aliased.gates.values()] == [
        gate.name for gate in direct.gates.values()
    ]
    assert [gate.fanin for gate in aliased.gates.values()] == [
        gate.fanin for gate in direct.gates.values()
    ]
    assert load_circuit("s27-surrogate").name == "s27"
    with pytest.raises(KeyError):
        circuit_spec("s9999-surrogate")


def test_registry_lists_all_table3_circuits():
    names = list_circuits()
    assert names == TABLE3_ORDER
    assert names[0] == "s27"
    assert "s1238" in names
    assert len(names) == 12


def test_specs_have_sane_statistics():
    for name, spec in ISCAS89_SPECS.items():
        assert spec.inputs >= 3 or name == "s298"
        assert spec.outputs >= 1
        assert spec.flip_flops >= 3
        assert spec.gates >= 10
        assert spec.surrogate == (name != "s27")


def test_unknown_circuit_rejected():
    with pytest.raises(KeyError):
        circuit_spec("s9999")
    with pytest.raises(KeyError):
        load_circuit("c880")


def test_s27_is_loaded_verbatim():
    circuit = load_circuit("s27")
    stats = circuit.stats()
    assert stats == {
        "primary_inputs": 4,
        "primary_outputs": 1,
        "flip_flops": 3,
        "gates": 10,
        "signals": 17,
        "lines": 26,
    }
    # Scaling never changes the embedded circuit.
    assert load_circuit("s27", scale=0.1).stats() == stats


def test_surrogates_match_interface_statistics():
    for name in ("s298", "s386", "s641"):
        spec = circuit_spec(name)
        circuit = load_circuit(name)
        stats = circuit.stats()
        assert stats["primary_inputs"] == spec.inputs
        assert stats["primary_outputs"] == spec.outputs
        assert stats["flip_flops"] == spec.flip_flops
        # The generator may add a few gating gates for synchronisable FFs.
        assert spec.gates <= stats["gates"] <= spec.gates + spec.flip_flops + spec.outputs


def test_surrogates_are_structurally_valid():
    for name in ("s208", "s344", "s420"):
        circuit = load_circuit(name, scale=0.5)
        validate_circuit(circuit)
        order = combinational_order(circuit)
        assert order


def test_surrogate_generation_is_deterministic():
    first = load_circuit("s298", seed=5)
    second = load_circuit("s298", seed=5)
    assert first.stats() == second.stats()
    assert [repr(g) for g in first.gates.values()] == [repr(g) for g in second.gates.values()]
    different = load_circuit("s298", seed=6)
    assert [repr(g) for g in different.gates.values()] != [
        repr(g) for g in first.gates.values()
    ]


def test_scaled_surrogates_are_smaller():
    full = load_circuit("s1238")
    scaled = load_circuit("s1238", scale=0.25)
    assert scaled.stats()["gates"] < full.stats()["gates"]
    assert scaled.stats()["flip_flops"] <= full.stats()["flip_flops"]
    assert scaled.name.endswith("@0.25")


def test_generate_surrogate_parameter_validation():
    with pytest.raises(ValueError):
        generate_surrogate("bad", 0, 1, 1, 10)
    with pytest.raises(ValueError):
        generate_surrogate("bad", 2, 1, 1, 0)


def test_generate_surrogate_direct():
    circuit = generate_surrogate("demo", 5, 3, 4, 40, seed=1)
    validate_circuit(circuit)
    stats = circuit.stats()
    assert stats["primary_inputs"] == 5
    assert stats["primary_outputs"] == 3
    assert stats["flip_flops"] == 4


def test_surrogate_has_mixed_fanin_gates():
    circuit = generate_surrogate("mix", 6, 2, 3, 120, seed=2)
    fanins = {len(gate.fanin) for gate in circuit.combinational_gates}
    assert 1 in fanins and 2 in fanins
    assert max(fanins) <= 4

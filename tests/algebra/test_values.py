"""Tests of the eight algebra values and their semantic attributes."""

import pytest

from repro.algebra.values import (
    ALL_VALUES,
    F,
    FC,
    H0,
    H1,
    PI_VALUES,
    R,
    RC,
    V0,
    V1,
    pi_value,
    value_from_name,
    value_from_pair,
)


def test_eight_distinct_values():
    assert len(ALL_VALUES) == 8
    assert len({value.index for value in ALL_VALUES}) == 8
    assert len({value.name for value in ALL_VALUES}) == 8


def test_frame_semantics_of_each_value():
    assert (V0.initial, V0.final) == (0, 0)
    assert (V1.initial, V1.final) == (1, 1)
    assert (R.initial, R.final) == (0, 1)
    assert (F.initial, F.final) == (1, 0)
    assert (H0.initial, H0.final) == (0, 0)
    assert (H1.initial, H1.final) == (1, 1)
    assert (RC.initial, RC.final) == (0, 1)
    assert (FC.initial, FC.final) == (1, 0)


def test_hazard_flags():
    assert not V0.hazard and not V1.hazard
    assert H0.hazard and H1.hazard
    assert not R.hazard and not F.hazard


def test_fault_flags():
    assert RC.fault and FC.fault
    assert not any(value.fault for value in (V0, V1, R, F, H0, H1))


def test_transition_classification():
    assert R.is_transition and F.is_transition and RC.is_transition and FC.is_transition
    assert R.is_rising and RC.is_rising
    assert F.is_falling and FC.is_falling
    assert V0.is_steady and H1.is_steady


def test_hazard_free_steady():
    assert V0.is_hazard_free_steady and V1.is_hazard_free_steady
    assert not H0.is_hazard_free_steady and not H1.is_hazard_free_steady
    assert not R.is_hazard_free_steady


def test_with_fault_and_strip_fault_roundtrip():
    assert R.with_fault() is RC
    assert F.with_fault() is FC
    assert RC.strip_fault() is R
    assert FC.strip_fault() is F
    assert V0.strip_fault() is V0
    assert RC.with_fault() is RC


def test_with_fault_rejects_steady_values():
    with pytest.raises(ValueError):
        V1.with_fault()
    with pytest.raises(ValueError):
        H0.with_fault()


def test_masks_are_disjoint_bits():
    masks = [value.mask for value in ALL_VALUES]
    assert sum(masks) == (1 << 8) - 1


def test_value_from_pair():
    assert value_from_pair(0, 0) is V0
    assert value_from_pair(1, 1) is V1
    assert value_from_pair(0, 1) is R
    assert value_from_pair(1, 0) is F
    assert value_from_pair(0, 0, hazard=True) is H0
    assert value_from_pair(1, 1, hazard=True) is H1


def test_value_from_pair_rejects_unknown():
    with pytest.raises(ValueError):
        value_from_pair(None, 1)
    with pytest.raises(ValueError):
        value_from_pair(0, 2)


def test_pi_value_is_always_hazard_free():
    for initial in (0, 1):
        for final in (0, 1):
            value = pi_value(initial, final)
            assert value in PI_VALUES
            assert not value.hazard
            assert not value.fault


def test_value_from_name():
    assert value_from_name("0") is V0
    assert value_from_name("Rc") is RC
    assert value_from_name("1h") is H1
    assert value_from_name("0H") is H0
    with pytest.raises(KeyError):
        value_from_name("D")


def test_str_and_repr():
    assert str(RC) == "Rc"
    assert repr(H0) == "<0h>"

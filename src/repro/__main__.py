"""Command line interface: ``python -m repro``.

Subcommands:

``campaign``
    Run the full FOGBUSTER ATPG campaign on one or more benchmark circuits or
    on a user supplied ``.bench`` file and print the Table 3 style summary.
``tables``
    Print the truth tables of the eight-valued robust delay algebra
    (paper Tables 1 and 2).
``circuits``
    List the available benchmark circuits and their statistics.
``serve``
    Run the ATPG daemon: an HTTP/JSON API with a priority job queue, warm
    compiled-netlist and result caches, and graceful checkpoint/resume
    shutdown (see ``docs/SERVICE.md``).
``store``
    Manage the persistent campaign store (``docs/STORE.md``): ``ingest``
    imports JSONL checkpoint journals, ``query`` answers cross-campaign
    questions (coverage trends, cost outliers, backend ablations) as JSON,
    ``report`` prints a human-readable summary.  ``campaign --store`` feeds
    finished runs into a store and ``campaign --incremental-from`` re-runs
    only the faults a netlist edit can affect.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from typing import List, Optional

from repro.circuit.bench import parse_bench_file
from repro.circuit.gates import GateType
from repro.algebra.tables import format_truth_table
from repro.core.flow import SequentialDelayATPG
from repro.core.reporting import (
    format_campaign_table,
    format_prefix_summary,
    format_profile,
    format_shard_summary,
    format_untestable_breakdown,
)
from repro.data import circuit_spec, list_circuits, load_circuit
from repro.fausim.backends import available_backends
from repro.obs.export import metrics_document
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.orchestrate import CampaignOrchestrator, OrchestratorConfig
from repro.orchestrate.partition import PARTITION_MODES


def _logging_parser() -> argparse.ArgumentParser:
    """The shared ``--verbose``/``--quiet`` flags, attached to every subcommand.

    A single parent parser instance keeps the flags (and their help text)
    identical across subcommands; it is attached to the subparsers only —
    never to the root parser too, which would clobber the parsed values.
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_mutually_exclusive_group()
    group.add_argument(
        "-v", "--verbose", action="store_true",
        help="log progress at INFO/DEBUG level to stderr",
    )
    group.add_argument(
        "-q", "--quiet", action="store_true",
        help="only log errors",
    )
    return parent


def _configure_logging(args: argparse.Namespace, default_level: int = logging.WARNING) -> None:
    """Wire ``logging.basicConfig`` from the ``--verbose``/``--quiet`` flags."""
    if getattr(args, "quiet", False):
        level = logging.ERROR
    elif getattr(args, "verbose", False):
        level = logging.DEBUG
    else:
        level = default_level
    # force=True rebinds the handler to the *current* sys.stderr on every
    # call: repeated in-process invocations (tests, embedding) keep working.
    logging.basicConfig(
        level=level,
        format="%(asctime)s %(levelname)s %(name)s: %(message)s",
        stream=sys.stderr,
        force=True,
    )


def _add_campaign_parser(subparsers, parents) -> None:
    parser = subparsers.add_parser(
        "campaign",
        help="run the ATPG campaign and print Table 3 style rows",
        parents=parents,
    )
    parser.add_argument(
        "--circuits",
        default="s27",
        help=(
            "comma separated benchmark names, or a path to a .bench file; "
            "'<name>-surrogate' (e.g. s838-surrogate) is accepted as an "
            "alias for the registry entry"
        ),
    )
    parser.add_argument("--scale", type=float, default=1.0, help="surrogate size scale")
    parser.add_argument(
        "--max-faults", type=int, default=0, help="cap on targeted faults (0 = no cap)"
    )
    parser.add_argument(
        "--backtrack-limit", type=int, default=100, help="abort limit (paper: 100)"
    )
    parser.add_argument("--non-robust", action="store_true", help="use the non-robust model")
    parser.add_argument("--time-limit", type=float, default=None, help="seconds per circuit")
    parser.add_argument(
        "--backend",
        choices=sorted(available_backends()),
        default=None,
        help=(
            "simulation and implication backend (default: packed, the "
            "compiled bit-parallel evaluators used for fault simulation AND "
            "the search-side forward implication of TDgen/SEMILET; 'bigint' "
            "runs the same evaluators on one unbounded-width integer plane; "
            "'numpy' uses the levelized uint64 array kernel and degrades to "
            "the bit-identical bigint tier when numpy is absent; pass "
            "'reference' for the per-gate interpreter oracles)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes per circuit (default: 1 = serial). The merged "
            "result is bit-identical to the serial campaign for any value."
        ),
    )
    parser.add_argument(
        "--partition",
        choices=PARTITION_MODES,
        default="size-aware",
        help="fault sharding mode for --jobs > 1 (default: size-aware)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="campaign seed from which every worker derives its RNG seed",
    )
    parser.add_argument(
        "--rpg-prefix",
        action="store_true",
        help=(
            "hybrid campaign: run a random-pattern prefix phase first — "
            "seeded random sequences are graded fault-parallel against the "
            "whole remaining universe and TDsim-confirmed detections are "
            "dropped before the deterministic flow targets the residue; "
            "the result stays bit-identical across --jobs/--partition and "
            "across --resume for a fixed --seed"
        ),
    )
    parser.add_argument(
        "--rpg-budget",
        type=int,
        default=256,
        metavar="N",
        help="max random sequences of the prefix phase (default: 256)",
    )
    parser.add_argument(
        "--rpg-window",
        type=int,
        default=16,
        metavar="W",
        help=(
            "adaptive stopping window: hand over to the deterministic flow "
            "once the last W random sequences credited no new detection "
            "(default: 16)"
        ),
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="checkpoint every fault outcome to this JSONL journal",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help=(
            "resume an interrupted campaign from its journal (implies "
            "--journal PATH; already-recorded faults are not re-targeted)"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help=(
            "write the campaign metrics (counters, phase timers, per-fault "
            "cost records) to this JSON file; enables instrumentation — the "
            "campaign result stays bit-identical either way"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "print a cost-breakdown report next to the Table 3 summary: "
            "wall time per flow phase, the most expensive faults with their "
            "search-effort attribution, and the abort-reason histogram"
        ),
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help=(
            "ingest every finished campaign into this persistent campaign "
            "store (a sqlite3 file, created on first use; see docs/STORE.md) "
            "so later runs can query it or resume from it incrementally"
        ),
    )
    parser.add_argument(
        "--incremental-from",
        default=None,
        metavar="PATH",
        help=(
            "incremental re-run: locate the latest stored campaign for the "
            "same circuit name and settings in this store, re-target only "
            "the faults inside the netlist edit's influence cone and reuse "
            "every other stored outcome — the result is bit-identical to a "
            "from-scratch run on the edited netlist (serial only; not "
            "compatible with --jobs > 1, --rpg-prefix, --journal/--resume "
            "or --time-limit)"
        ),
    )


def _run_campaign(args: argparse.Namespace) -> int:
    journal_path = args.resume or args.journal
    if args.resume and args.journal and args.resume != args.journal:
        print("error: --journal and --resume point at different files", file=sys.stderr)
        return 2
    orchestrated = args.jobs > 1 or journal_path is not None
    if orchestrated and args.time_limit is not None:
        print("error: --time-limit is not supported with --jobs/--journal", file=sys.stderr)
        return 2
    if args.incremental_from is not None:
        # The incremental engine *is* the serial campaign loop with a memo;
        # every knob that changes which faults the loop visits (sharding,
        # the random prefix, journal replay, wall-clock cuts) is rejected
        # instead of silently breaking the bit-identity contract.
        for flag, active in (
            ("--jobs > 1", args.jobs > 1),
            ("--rpg-prefix", args.rpg_prefix),
            ("--journal/--resume", journal_path is not None),
            ("--time-limit", args.time_limit is not None),
        ):
            if active:
                print(
                    f"error: --incremental-from is not supported with {flag}",
                    file=sys.stderr,
                )
                return 2

    collect = args.profile or args.metrics_out is not None
    campaigns = []
    shard_reports = []
    #: One ``(circuit, summary dict)`` pair per incremental re-run.
    incremental_reports = []
    store_notes = []
    #: One ``(circuit, snapshot, cost records)`` triple per campaign when
    #: instrumentation is on.
    profiles = []
    names = [name.strip() for name in args.circuits.split(",") if name.strip()]
    max_faults = args.max_faults if args.max_faults > 0 else None
    for name in names:
        registry = MetricsRegistry() if collect else None
        if name.endswith(".bench"):
            circuit = parse_bench_file(name)
        else:
            circuit = load_circuit(name, scale=args.scale)
        config = OrchestratorConfig(
            jobs=args.jobs,
            partition=args.partition,
            campaign_seed=args.seed,
            robust=not args.non_robust,
            local_backtrack_limit=args.backtrack_limit,
            sequential_backtrack_limit=args.backtrack_limit,
            backend=args.backend,
            rpg_prefix=args.rpg_prefix,
            rpg_budget=args.rpg_budget,
            rpg_window=args.rpg_window,
        )
        if args.incremental_from is not None:
            from repro.store import CampaignStore, run_incremental

            try:
                with CampaignStore(args.incremental_from) as base_store:
                    outcome = run_incremental(
                        circuit,
                        base_store,
                        config,
                        max_target_faults=max_faults,
                        metrics=registry,
                    )
            except (LookupError, ValueError) as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
            campaign = outcome.result
            costs = list(outcome.costs)
            incremental_reports.append((campaign.circuit_name, outcome.summary()))
        elif orchestrated:
            orchestrator = CampaignOrchestrator(
                circuit,
                config=config,
                journal_path=journal_path,
                resume=args.resume is not None,
                metrics=registry,
            )
            campaign = orchestrator.run(max_target_faults=max_faults)
            costs = list(orchestrator.fault_costs)
            if orchestrator.shard_stats:
                shard_reports.append(
                    format_shard_summary(
                        orchestrator.shard_stats,
                        recomputed=orchestrator.recomputed,
                        title=f"Shard summary — {campaign.circuit_name}",
                    )
                )
        else:
            atpg = SequentialDelayATPG(
                circuit,
                metrics=registry,
                **config.atpg_kwargs(),
            )
            campaign = atpg.run(
                max_target_faults=max_faults,
                time_limit_s=args.time_limit,
                prefix=config.prefix_config(),
            )
            costs = list(atpg.cost_log)
        if args.store is not None:
            from repro.store import CampaignStore

            with CampaignStore(args.store) as store:
                campaign_id = store.ingest_result(
                    campaign,
                    circuit=circuit,
                    config=config,
                    costs=costs,
                    source="cli",
                )
            store_notes.append(
                f"stored {campaign.circuit_name} as campaign #{campaign_id} in {args.store}"
            )
        campaigns.append(campaign)
        if registry is not None:
            profiles.append((campaign.circuit_name, registry.snapshot(), costs))
    print(format_campaign_table(campaigns, title="Gate delay fault ATPG results"))
    print()
    print(format_untestable_breakdown(campaigns))
    for name, summary in incremental_reports:
        print()
        print(
            f"Incremental re-run — {name}: base campaign #{summary['base_campaign_id']}, "
            f"delta {summary['changed_signals']} changed "
            f"+ {summary['observability_signals']} observability "
            f"+ {summary['removed_signals']} removed, "
            f"cone {summary['cone_size']} signal(s); "
            f"kept {summary['kept']}, invalidated {summary['invalidated']}, "
            f"reused {summary['reused']}, retargeted {summary['retargeted']} "
            f"(stored sequences gross-cover {summary['residue_gross_covered']} "
            "residue fault(s))"
        )
    for note in store_notes:
        print(note)
    if any(campaign.prefix_applied for campaign in campaigns):
        print()
        print(format_prefix_summary(campaigns))
    for report in shard_reports:
        print()
        print(report)
    if args.profile:
        for name, snapshot, costs in profiles:
            print()
            print(format_profile(snapshot, costs, title=f"Cost breakdown — {name}"))
    if args.metrics_out is not None:
        merged = MetricsSnapshot.merge_all(snapshot for _, snapshot, _ in profiles)
        all_costs = [cost for _, _, costs in profiles for cost in costs]
        document = metrics_document(
            merged,
            all_costs,
            context={
                "command": "campaign",
                "circuits": [name for name, _, _ in profiles],
                "jobs": args.jobs,
                "backend": args.backend,
                "robust": not args.non_robust,
            },
        )
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
        print(f"\nmetrics written to {args.metrics_out}")
    return 0


def _add_serve_parser(subparsers, parents) -> None:
    parser = subparsers.add_parser(
        "serve",
        help="run the ATPG daemon (HTTP/JSON API, see docs/SERVICE.md)",
        parents=parents,
    )
    parser.add_argument("--host", default="127.0.0.1", help="listen address")
    parser.add_argument(
        "--port", type=int, default=8352, help="listen port (0 = ephemeral)"
    )
    parser.add_argument(
        "--state-dir",
        default="repro-serve-state",
        metavar="DIR",
        help=(
            "directory for the job table, per-job journals and results; a "
            "restarted daemon pointed at the same directory resumes "
            "interrupted campaigns"
        ),
    )
    parser.add_argument(
        "--port-file",
        default=None,
        metavar="PATH",
        help="write the bound port to this file once listening (for scripts)",
    )
    parser.add_argument(
        "--paused", action="store_true", help="start with the job queue held"
    )


def _run_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import AtpgService

    async def main() -> None:
        service = AtpgService(
            state_dir=args.state_dir, host=args.host, port=args.port, paused=args.paused
        )
        service.shutdown.hard_exit_on_repeat = True
        await service.start()
        service.shutdown.install(asyncio.get_running_loop())
        print(f"repro serve: listening on http://{args.host}:{service.port}", flush=True)
        if args.port_file:
            with open(args.port_file, "w", encoding="utf-8") as handle:
                handle.write(str(service.port))
        try:
            await service.run_until_shutdown()
        finally:
            service.shutdown.uninstall()
        print(f"repro serve: stopped ({service.shutdown.reason})", flush=True)

    asyncio.run(main())
    return 0


def _add_store_parser(subparsers, parents) -> None:
    parser = subparsers.add_parser(
        "store",
        help="manage the persistent campaign store (see docs/STORE.md)",
    )
    store_sub = parser.add_subparsers(dest="store_command", required=True)

    ingest = store_sub.add_parser(
        "ingest",
        help="import a JSONL checkpoint journal into a store",
        parents=parents,
    )
    ingest.add_argument("--store", required=True, metavar="PATH", help="store file")
    ingest.add_argument(
        "--journal", required=True, metavar="PATH", help="JSONL journal to import"
    )
    ingest.add_argument(
        "--circuits",
        default=None,
        help=(
            "optional circuit (benchmark name or .bench path) to validate "
            "the journal digest against and to store as the incremental "
            "base netlist; without it the journal imports for analytics "
            "only and cannot seed --incremental-from"
        ),
    )
    ingest.add_argument("--scale", type=float, default=1.0, help="surrogate size scale")
    ingest.add_argument(
        "--backtrack-limit", type=int, default=100,
        help="abort limit the journaled campaign ran under (for the digest)",
    )
    ingest.add_argument(
        "--non-robust", action="store_true",
        help="the journaled campaign used the non-robust model (for the digest)",
    )
    ingest.add_argument(
        "--seed", type=int, default=0,
        help="campaign seed the journaled campaign ran under (for the digest)",
    )

    query = store_sub.add_parser(
        "query",
        help="answer a cross-campaign question as JSON",
        parents=parents,
    )
    query.add_argument("--store", required=True, metavar="PATH", help="store file")
    query.add_argument(
        "what",
        choices=("campaigns", "coverage", "outliers", "ablation"),
        help=(
            "campaigns: one summary row per stored campaign; coverage: fault "
            "coverage per campaign over ingest order; outliers: the most "
            "expensive faults by recorded seconds; ablation: per-backend "
            "campaign statistics"
        ),
    )
    query.add_argument("--circuit", default=None, help="restrict to one circuit")
    query.add_argument(
        "--campaign-id", type=int, default=None, help="restrict outliers to one campaign"
    )
    query.add_argument(
        "--limit", type=int, default=10, help="row cap for outliers (default: 10)"
    )

    report = store_sub.add_parser(
        "report",
        help="print a human-readable store summary",
        parents=parents,
    )
    report.add_argument("--store", required=True, metavar="PATH", help="store file")
    report.add_argument("--circuit", default=None, help="restrict to one circuit")


def _run_store(args: argparse.Namespace) -> int:
    from repro.store import CampaignStore

    if args.store_command == "ingest":
        circuit = None
        config = None
        if args.circuits:
            if args.circuits.endswith(".bench"):
                circuit = parse_bench_file(args.circuits)
            else:
                circuit = load_circuit(args.circuits, scale=args.scale)
            config = OrchestratorConfig(
                jobs=1,
                campaign_seed=args.seed,
                robust=not args.non_robust,
                local_backtrack_limit=args.backtrack_limit,
                sequential_backtrack_limit=args.backtrack_limit,
            )
        try:
            with CampaignStore(args.store) as store:
                ids = store.ingest_journal(args.journal, circuit=circuit, config=config)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        listed = ", ".join(f"#{campaign_id}" for campaign_id in ids)
        print(f"ingested {len(ids)} campaign(s) from {args.journal} into {args.store}: {listed}")
        return 0

    if args.store_command == "query":
        with CampaignStore(args.store) as store:
            if args.what == "campaigns":
                rows = store.campaigns(args.circuit)
            elif args.what == "coverage":
                rows = store.coverage_trend(args.circuit)
            elif args.what == "outliers":
                rows = store.cost_outliers(args.campaign_id, limit=args.limit)
            else:
                rows = store.backend_ablation(args.circuit)
        print(json.dumps(rows, indent=1, sort_keys=True))
        return 0

    with CampaignStore(args.store) as store:
        trend = store.coverage_trend(args.circuit)
        outliers = store.cost_outliers(limit=5)
        ablation = store.backend_ablation(args.circuit)
    print(f"Campaign store — {args.store}")
    print()
    header = (
        f"{'id':>4} {'circuit':>8} {'backend':>9} {'faults':>7} {'tested':>7} "
        f"{'coverage':>9} {'cpu[s]':>8} {'source':>8} {'partial':>8}"
    )
    print(header)
    for row in trend:
        print(
            f"{row['campaign_id']:>4} {row['circuit']:>8} "
            f"{row['backend'] or 'default':>9} {row['total_faults']:>7} "
            f"{row['tested']:>7} {row['coverage']:>9.3f} "
            f"{row['cpu_seconds']:>8.2f} {row['source']:>8} "
            f"{'yes' if row['partial'] else 'no':>8}"
        )
    if ablation:
        print()
        print("Backend ablation (mean over stored campaigns):")
        for row in ablation:
            coverage = row["mean_coverage"]
            coverage_text = (
                f", mean coverage {coverage:.3f}" if coverage is not None else ""
            )
            print(
                f"  {row['backend']:>9}: {row['campaigns']} campaign(s), "
                f"mean cpu {row['mean_cpu_seconds']:.2f}s{coverage_text}"
            )
    if outliers:
        print()
        print("Most expensive faults on record:")
        for row in outliers:
            print(
                f"  #{row['campaign_id']} {row['circuit']} {row['fault']}: "
                f"{row['seconds']:.4f}s ({row['status']}, {row['decisions']} "
                f"decision(s), {row['engine']})"
            )
    return 0


def _run_tables(_: argparse.Namespace) -> int:
    print("Table 1 — AND gate")
    print(format_truth_table(GateType.AND))
    print()
    print("Table 2 — inverter")
    print(format_truth_table(GateType.NOT))
    return 0


def _run_circuits(_: argparse.Namespace) -> int:
    print(f"{'circuit':>8} {'PIs':>5} {'POs':>5} {'FFs':>5} {'gates':>6} {'source':>10}")
    for name in list_circuits():
        spec = circuit_spec(name)
        source = "embedded" if not spec.surrogate else "surrogate"
        print(
            f"{name:>8} {spec.inputs:>5} {spec.outputs:>5} {spec.flip_flops:>5} "
            f"{spec.gates:>6} {source:>10}"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro``; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Gate delay fault ATPG for non-scan sequential circuits"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    logging_parent = [_logging_parser()]
    _add_campaign_parser(subparsers, logging_parent)
    _add_serve_parser(subparsers, logging_parent)
    _add_store_parser(subparsers, logging_parent)
    subparsers.add_parser(
        "tables",
        help="print the algebra truth tables (Tables 1 and 2)",
        parents=logging_parent,
    )
    subparsers.add_parser(
        "circuits",
        help="list the available benchmark circuits",
        parents=logging_parent,
    )

    args = parser.parse_args(argv)
    if args.command == "campaign":
        _configure_logging(args)
        return _run_campaign(args)
    if args.command == "serve":
        # A daemon logs its request/lifecycle lines at INFO by default.
        _configure_logging(args, default_level=logging.INFO)
        return _run_serve(args)
    if args.command == "store":
        _configure_logging(args)
        return _run_store(args)
    _configure_logging(args)
    if args.command == "tables":
        return _run_tables(args)
    return _run_circuits(args)


if __name__ == "__main__":
    sys.exit(main())

"""JSON round-trip and merge tests for the result containers.

The campaign journal (``repro.orchestrate.journal``) persists every fault
outcome as JSON and the coordinator rebuilds the merged campaign from those
records, so the round trip has to be loss-free for everything that enters the
Table 3 row: statuses, phases, sequences (including their clock schedules and
algebra-level pair values) and the additionally-detected fault lists.
"""

import json

import pytest

from repro.circuit.netlist import Line, LineKind
from repro.core.flow import SequentialDelayATPG
from repro.core.results import CampaignResult, FaultResult, TestSequence
from repro.faults.model import DelayFaultType, GateDelayFault, enumerate_delay_faults


@pytest.fixture(scope="module")
def s27_campaign(s27):
    return SequentialDelayATPG(s27).run()


def _json_round_trip(payload):
    """Force the payload through an actual JSON encode/decode."""
    return json.loads(json.dumps(payload))


def test_fault_round_trip_stem_and_branch():
    stem = GateDelayFault(Line("G11"), DelayFaultType.SLOW_TO_RISE)
    branch = GateDelayFault(
        Line("G5", LineKind.BRANCH, sink="G10", pin=1), DelayFaultType.SLOW_TO_FALL
    )
    for fault in (stem, branch):
        rebuilt = GateDelayFault.from_json(_json_round_trip(fault.to_json()))
        assert rebuilt == fault
        assert hash(rebuilt) == hash(fault)


def test_sequence_round_trip_preserves_everything(s27_campaign):
    assert s27_campaign.sequences
    for sequence in s27_campaign.sequences:
        rebuilt = TestSequence.from_json(_json_round_trip(sequence.to_json()))
        assert rebuilt.fault == sequence.fault
        assert rebuilt.vectors == sequence.vectors
        assert rebuilt.pattern_count == sequence.pattern_count
        assert rebuilt.clock_schedule == sequence.clock_schedule
        assert rebuilt.observation_point == sequence.observation_point
        assert rebuilt.observed_at_po == sequence.observed_at_po
        assert rebuilt.pi_pair_values == sequence.pi_pair_values
        assert rebuilt.ppi_initial_values == sequence.ppi_initial_values


def test_fault_result_round_trip(s27_campaign):
    for result in s27_campaign.fault_results:
        rebuilt = FaultResult.from_json(_json_round_trip(result.to_json()))
        assert rebuilt.fault == result.fault
        assert rebuilt.status is result.status
        assert rebuilt.phase is result.phase
        assert rebuilt.additionally_detected == result.additionally_detected
        assert rebuilt.local_backtracks == result.local_backtracks
        assert rebuilt.sequential_backtracks == result.sequential_backtracks
        assert rebuilt.attempts == result.attempts
        assert (rebuilt.sequence is None) == (result.sequence is None)
        if result.sequence is not None:
            assert rebuilt.sequence.vectors == result.sequence.vectors


def test_campaign_round_trip_preserves_table3_row(s27_campaign):
    rebuilt = CampaignResult.from_json(_json_round_trip(s27_campaign.to_json()))
    assert rebuilt.as_table3_row() == s27_campaign.as_table3_row()
    assert rebuilt.untestable_breakdown() == s27_campaign.untestable_breakdown()
    assert rebuilt.targeted == s27_campaign.targeted
    assert rebuilt.detected_by_simulation == s27_campaign.detected_by_simulation
    assert len(rebuilt.sequences) == len(s27_campaign.sequences)
    assert [r.fault for r in rebuilt.fault_results] == [
        r.fault for r in s27_campaign.fault_results
    ]


def test_merge_sums_disjoint_partial_campaigns(s27):
    faults = enumerate_delay_faults(s27)
    half = len(faults) // 2
    first = SequentialDelayATPG(s27).run(faults=faults[:half])
    second = SequentialDelayATPG(s27).run(faults=faults[half:])
    merged = CampaignResult.merge([first, second])
    assert merged.total_faults == len(faults)
    assert merged.tested == first.tested + second.tested
    assert merged.untestable == first.untestable + second.untestable
    assert merged.aborted == first.aborted + second.aborted
    assert merged.pattern_count == first.pattern_count + second.pattern_count
    assert merged.targeted == first.targeted + second.targeted
    assert len(merged.fault_results) == len(first.fault_results) + len(second.fault_results)
    assert merged.cpu_seconds == pytest.approx(first.cpu_seconds + second.cpu_seconds)


def test_merge_refuses_mixed_circuits(s27):
    a = CampaignResult(circuit_name="a", total_faults=1)
    b = CampaignResult(circuit_name="b", total_faults=1)
    with pytest.raises(ValueError):
        CampaignResult.merge([a, b])
    with pytest.raises(ValueError):
        CampaignResult.merge([])

"""The seeded differential fuzz loop over all registered backends.

Each seed deterministically generates one :class:`tests.fuzz.harness.FuzzCase`
and replays it through all four dispatch layers (simulation, implication,
search kernels, grading) under every registered backend, asserting bit-exact
agreement with the reference oracle.

The default budget keeps the suite inside tier-1 time; the CI cron job (and
anyone hunting) extends it via ``REPRO_FUZZ_CASES``.  A failing seed is
shrunk to a minimal reproduction and persisted into ``tests/fuzz/corpus/``
before the test fails, so the discovery is pinned even if the seed budget
later changes.
"""

from __future__ import annotations

import os

import pytest

from tests.fuzz.harness import check_case, generate_case, persist_case, shrink_case

#: Default bounded budget; ``REPRO_FUZZ_CASES`` extends it (CI cron: 1000).
FUZZ_BUDGET = int(os.environ.get("REPRO_FUZZ_CASES", "40"))


@pytest.mark.parametrize("seed", range(FUZZ_BUDGET))
def test_backends_agree_on_fuzzed_case(seed):
    """All four dispatch layers agree across backends on one fuzzed case."""
    case = generate_case(seed)
    failures = check_case(case)
    if failures:
        minimised = shrink_case(case)
        path = persist_case(
            minimised,
            check_case(minimised) or failures,
            note=f"shrunk from generate_case({seed})",
        )
        pytest.fail(
            f"seed {seed}: backends disagree ({failures[0]}); "
            f"minimised reproduction persisted to {path}"
        )


def test_case_serialisation_round_trips():
    """A case rebuilt from its JSON form replays identically."""
    from tests.fuzz.harness import FuzzCase

    case = generate_case(1)
    clone = FuzzCase.from_json(case.to_json())
    assert clone.to_json() == case.to_json()
    assert check_case(clone) == check_case(case)


def test_shrinker_preserves_validity():
    """Every one-step shrink variant still builds a legal circuit or is skipped."""
    from tests.fuzz.harness import _is_valid, _shrink_candidates

    case = generate_case(2)
    variants = _shrink_candidates(case)
    assert variants, "generator produced an unshrinkable case"
    assert any(_is_valid(variant) for variant in variants)

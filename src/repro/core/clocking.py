"""The slow/fast clocking scheme of the time frame model (paper Figure 2).

All time frames of a generated test are applied with a *slow* clock — long
enough for every signal to settle even in the presence of the delay fault —
except the single *test* frame, which uses the *fast* (operational) clock so
that a realistically sized delay fault is captured as a wrong value at a
primary output or in the state register.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List


class ClockSpeed(enum.Enum):
    """Clock speed of one time frame."""

    SLOW = "slow"
    FAST = "fast"


@dataclasses.dataclass(frozen=True)
class ClockSchedule:
    """Clock speed per applied vector of a test sequence.

    The schedule always has exactly one fast frame — the test frame — and it
    is always the frame in which the second vector of the two-pattern test is
    applied.
    """

    speeds: tuple

    @classmethod
    def for_sequence(
        cls, initialization_frames: int, propagation_frames: int
    ) -> "ClockSchedule":
        """Build the schedule for a test with the given phase lengths.

        Layout (matching Figure 2): ``initialization_frames`` slow frames, one
        slow frame for the first vector of the two-pattern test (the initial
        time frame), one fast frame for the second vector (the test time
        frame), then ``propagation_frames`` slow frames.
        """
        if initialization_frames < 0 or propagation_frames < 0:
            raise ValueError("frame counts must be non-negative")
        speeds: List[ClockSpeed] = []
        speeds.extend([ClockSpeed.SLOW] * initialization_frames)
        speeds.append(ClockSpeed.SLOW)  # initial time frame (v1)
        speeds.append(ClockSpeed.FAST)  # test time frame (v2)
        speeds.extend([ClockSpeed.SLOW] * propagation_frames)
        return cls(speeds=tuple(speeds))

    @property
    def frame_count(self) -> int:
        """Total number of applied time frames."""
        return len(self.speeds)

    @property
    def fast_frame_index(self) -> int:
        """Index of the (single) fast frame."""
        return self.speeds.index(ClockSpeed.FAST)

    @property
    def initialization_frames(self) -> int:
        """Number of frames before the initial time frame of the local test."""
        return self.fast_frame_index - 1

    @property
    def propagation_frames(self) -> int:
        """Number of frames after the test time frame."""
        return self.frame_count - self.fast_frame_index - 1

    def is_valid(self) -> bool:
        """Exactly one fast frame, preceded by at least one slow frame."""
        fast = [speed for speed in self.speeds if speed is ClockSpeed.FAST]
        if len(fast) != 1:
            return False
        return self.fast_frame_index >= 1

    def __str__(self) -> str:
        return " ".join(speed.value for speed in self.speeds)

"""Rendering of campaign results in the style of the paper's Table 3."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.core.results import CampaignResult

_TABLE3_COLUMNS = ("circuit", "tested", "untstbl", "aborted", "#pat", "time[s]")


def campaign_row(result: CampaignResult) -> Dict[str, object]:
    """One Table 3 row as a dictionary."""
    row = result.as_table3_row()
    return {
        "circuit": row["circuit"],
        "tested": row["tested"],
        "untstbl": row["untestable"],
        "aborted": row["aborted"],
        "#pat": row["patterns"],
        "time[s]": row["time_s"],
    }


def format_campaign_table(results: Sequence[CampaignResult], title: str = "Benchmark results") -> str:
    """Format several campaign results as a fixed-width text table.

    The column layout mirrors Table 3 of the paper: circuit, tested,
    untestable, aborted, number of patterns (initialisation and propagation
    vectors included) and CPU time in seconds.
    """
    rows = [campaign_row(result) for result in results]
    widths = {column: len(column) for column in _TABLE3_COLUMNS}
    for row in rows:
        for column in _TABLE3_COLUMNS:
            widths[column] = max(widths[column], len(str(row[column])))

    def render_row(cells: Iterable[object]) -> str:
        return "  ".join(
            f"{str(cell):>{widths[column]}}" for column, cell in zip(_TABLE3_COLUMNS, cells)
        )

    lines: List[str] = [title, ""]
    lines.append(render_row(_TABLE3_COLUMNS))
    lines.append("  ".join("-" * widths[column] for column in _TABLE3_COLUMNS))
    for row in rows:
        lines.append(render_row(row[column] for column in _TABLE3_COLUMNS))
    return "\n".join(lines)


def format_untestable_breakdown(results: Sequence[CampaignResult]) -> str:
    """Per-circuit breakdown of untestable faults (experiment E7).

    Shows how many untestable faults were proven untestable combinationally
    (by TDgen alone) and how many are only *sequentially* untestable (the
    propagation or initialisation phase fails), mirroring the discussion in
    section 6 of the paper.
    """
    lines = ["circuit      comb.untestable   seq.untestable   aborted"]
    for result in results:
        breakdown = result.untestable_breakdown()
        lines.append(
            f"{result.circuit_name:<12} {breakdown['combinationally_untestable']:>15} "
            f"{breakdown['sequentially_untestable']:>16} {result.aborted:>9}"
        )
    return "\n".join(lines)

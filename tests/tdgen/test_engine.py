"""TDgen: local robust delay-fault test generation."""

import itertools

import pytest

from repro.algebra.sets import has_fault_value, is_singleton, single_value
from repro.algebra.values import F, R, V0, V1
from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Line, LineKind
from repro.faults.model import DelayFaultType, GateDelayFault, enumerate_delay_faults
from repro.tdgen.context import TDgenContext
from repro.tdgen.engine import TDgen
from repro.tdgen.result import LocalTestStatus
from repro.tdgen.simulation import simulate_two_frame


def _check_local_test(circuit, fault, result, robust=True):
    """Re-simulate the generated assignment and confirm robust observation."""
    context = TDgenContext(circuit)
    pi_values = {pi: value for pi, value in result.pi_values.items() if value is not None}
    state = simulate_two_frame(context, pi_values, result.ppi_initial, fault, robust=robust)
    observed = False
    for signal in result.observation_points:
        value_set = state.signal_sets[signal]
        assert is_singleton(value_set), f"observation at {signal} is not guaranteed"
        assert has_fault_value(value_set)
        observed = True
    assert observed


# --------------------------------------------------------------------------- #
# simple combinational circuits with known answers
# --------------------------------------------------------------------------- #
def test_and_gate_slow_to_rise(and_chain):
    tdgen = TDgen(and_chain)
    fault = GateDelayFault(Line("ab"), DelayFaultType.SLOW_TO_RISE)
    result = tdgen.generate(fault)
    assert result.status is LocalTestStatus.SUCCESS
    assert result.observed_at_po
    _check_local_test(and_chain, fault, result)
    # Activation: 'ab' must rise, so a and b must end at 1 and at least one
    # must start at 0.
    a, b = result.pi_values["a"], result.pi_values["b"]
    assert a.final == 1 and b.final == 1
    assert a.initial == 0 or b.initial == 0


def test_every_fault_of_small_combinational_circuit(and_chain):
    tdgen = TDgen(and_chain, backtrack_limit=1000)
    for fault in enumerate_delay_faults(and_chain):
        result = tdgen.generate(fault)
        assert result.status in (LocalTestStatus.SUCCESS, LocalTestStatus.UNTESTABLE)
        if result.status is LocalTestStatus.SUCCESS:
            _check_local_test(and_chain, fault, result)


def test_inverter_chain_faults(inverter_pair):
    tdgen = TDgen(inverter_pair)
    for signal in ("a", "n1", "n2"):
        for fault_type in DelayFaultType:
            fault = GateDelayFault(Line(signal), fault_type)
            result = tdgen.generate(fault)
            assert result.status is LocalTestStatus.SUCCESS, f"{fault} should be testable"
            _check_local_test(inverter_pair, fault, result)


def test_untestable_fault_with_constant_masking():
    """A fault whose propagation is blocked by a constant side input."""
    builder = CircuitBuilder("masked")
    builder.inputs(["a", "b"])
    builder.xor_gate = builder.xor("tie", ["b", "b"])  # tie is always 0
    builder.and_("y", ["a", "tie"])  # y is constant 0, a cannot be observed
    builder.output("y")
    circuit = builder.build()
    tdgen = TDgen(circuit, backtrack_limit=5000)
    fault = GateDelayFault(Line("a"), DelayFaultType.SLOW_TO_RISE)
    result = tdgen.generate(fault)
    assert result.status is LocalTestStatus.UNTESTABLE


def test_backtrack_limit_produces_aborted(s27):
    tdgen = TDgen(s27, backtrack_limit=0)
    # A fault that needs at least one backtrack under the default heuristics.
    hard = GateDelayFault(Line("G8"), DelayFaultType.SLOW_TO_RISE)
    result = tdgen.generate(hard)
    assert result.status in (LocalTestStatus.ABORTED, LocalTestStatus.SUCCESS)
    aborted_any = False
    for fault in enumerate_delay_faults(s27):
        outcome = tdgen.generate(fault)
        if outcome.status is LocalTestStatus.ABORTED:
            aborted_any = True
            break
    assert aborted_any


# --------------------------------------------------------------------------- #
# completeness cross-check against brute force
# --------------------------------------------------------------------------- #
def _brute_force_testable(circuit, fault, robust=True):
    """Exhaustively check whether a robust two-pattern test exists."""
    context = TDgenContext(circuit)
    pis = circuit.primary_inputs
    observation = list(circuit.primary_outputs) + list(circuit.pseudo_primary_outputs)
    pi_choices = [V0, V1, R, F]
    ppi_choices = [0, 1]
    ppis = circuit.pseudo_primary_inputs
    for pi_combo in itertools.product(pi_choices, repeat=len(pis)):
        for ppi_combo in itertools.product(ppi_choices, repeat=len(ppis)):
            state = simulate_two_frame(
                context,
                dict(zip(pis, pi_combo)),
                dict(zip(ppis, ppi_combo)),
                fault,
                robust=robust,
            )
            for signal in observation:
                value_set = state.signal_sets[signal]
                if is_singleton(value_set) and has_fault_value(value_set):
                    return True
    return False


def test_completeness_on_and_chain(and_chain):
    tdgen = TDgen(and_chain, backtrack_limit=10000)
    for fault in enumerate_delay_faults(and_chain):
        expected = _brute_force_testable(and_chain, fault)
        result = tdgen.generate(fault)
        assert result.status is not LocalTestStatus.ABORTED
        assert (result.status is LocalTestStatus.SUCCESS) == expected, str(fault)


def test_completeness_on_toggle_ff(toggle_ff):
    tdgen = TDgen(toggle_ff, backtrack_limit=10000)
    for fault in enumerate_delay_faults(toggle_ff):
        expected = _brute_force_testable(toggle_ff, fault)
        result = tdgen.generate(fault)
        assert result.status is not LocalTestStatus.ABORTED
        assert (result.status is LocalTestStatus.SUCCESS) == expected, str(fault)


def test_completeness_sample_on_s27(s27):
    """Brute force is feasible on s27 (4 PIs x 3 PPIs); check a sample of faults."""
    tdgen = TDgen(s27, backtrack_limit=100000, max_decisions=10**6)
    sample = enumerate_delay_faults(s27)[::7]
    for fault in sample:
        expected = _brute_force_testable(s27, fault)
        result = tdgen.generate(fault)
        assert result.status is not LocalTestStatus.ABORTED
        assert (result.status is LocalTestStatus.SUCCESS) == expected, str(fault)


# --------------------------------------------------------------------------- #
# sequential-specific behaviour
# --------------------------------------------------------------------------- #
def test_s27_fault_observed_and_state_requirements(s27):
    tdgen = TDgen(s27)
    fault = GateDelayFault(Line("G11"), DelayFaultType.SLOW_TO_RISE)
    result = tdgen.generate(fault)
    assert result.status is LocalTestStatus.SUCCESS
    _check_local_test(s27, fault, result)
    # G17 = NOT(G11) is a PO, so the fault should be observable at a PO.
    assert result.observed_at_po
    # Any required state bits must be binary.
    assert all(value in (0, 1) for value in result.ppi_initial.values())


def test_ppo_only_observation_reported(s27):
    tdgen = TDgen(s27)
    # Block the only PO path: faults on G12/G13 feed G7's next state logic and
    # can only be seen via a PPO in the local frames.
    fault = GateDelayFault(Line("G13"), DelayFaultType.SLOW_TO_RISE)
    result = tdgen.generate(fault)
    assert result.status is LocalTestStatus.SUCCESS
    assert not result.observed_at_po
    assert any(signal in s27.pseudo_primary_outputs for signal in result.observation_points)
    assert result.ppo_fault_effects


def test_blocked_observation_is_respected(s27):
    tdgen = TDgen(s27)
    fault = GateDelayFault(Line("G13"), DelayFaultType.SLOW_TO_RISE)
    unrestricted = tdgen.generate(fault)
    assert unrestricted.status is LocalTestStatus.SUCCESS
    blocked = tdgen.generate(fault, blocked_observation=unrestricted.observation_points)
    if blocked.status is LocalTestStatus.SUCCESS:
        assert not set(blocked.observation_points) & set(unrestricted.observation_points)
    else:
        assert blocked.status in (LocalTestStatus.UNTESTABLE, LocalTestStatus.ABORTED)


def test_required_ppo_values_constraint(s27):
    tdgen = TDgen(s27)
    fault = GateDelayFault(Line("G11"), DelayFaultType.SLOW_TO_RISE)
    baseline = tdgen.generate(fault)
    assert baseline.status is LocalTestStatus.SUCCESS
    # Additionally require PPO G13 to settle to a clean steady 0.
    constrained = tdgen.generate(fault, required_ppo_values={"G13": 0})
    if constrained.status is LocalTestStatus.SUCCESS:
        assert constrained.ppo_final_values["G13"] == 0
    else:
        assert constrained.status in (LocalTestStatus.UNTESTABLE, LocalTestStatus.ABORTED)


def test_po_only_observation_mode(s27):
    tdgen = TDgen(s27)
    fault = GateDelayFault(Line("G13"), DelayFaultType.SLOW_TO_RISE)
    result = tdgen.generate(fault, allow_ppo_observation=False)
    # In the local two frames this fault cannot reach the PO, so the PO-only
    # mode must not claim success via a PPO.
    if result.status is LocalTestStatus.SUCCESS:
        assert result.observed_at_po


def test_non_robust_mode_is_not_stricter(s27):
    robust_gen = TDgen(s27, robust=True, backtrack_limit=2000)
    relaxed_gen = TDgen(s27, robust=False, backtrack_limit=2000)
    robust_ok = 0
    relaxed_ok = 0
    for fault in enumerate_delay_faults(s27)[:40]:
        if robust_gen.generate(fault).status is LocalTestStatus.SUCCESS:
            robust_ok += 1
        if relaxed_gen.generate(fault).status is LocalTestStatus.SUCCESS:
            relaxed_ok += 1
    assert relaxed_ok >= robust_ok


def test_ppo_final_values_only_report_clean_steady(s27):
    tdgen = TDgen(s27)
    fault = GateDelayFault(Line("G11"), DelayFaultType.SLOW_TO_RISE)
    result = tdgen.generate(fault)
    assert result.status is LocalTestStatus.SUCCESS
    context = TDgenContext(s27)
    pi_values = {pi: value for pi, value in result.pi_values.items() if value is not None}
    state = simulate_two_frame(context, pi_values, result.ppi_initial, fault)
    for ppo, reported in result.ppo_final_values.items():
        value_set = state.signal_sets[ppo]
        if reported is not None:
            value = single_value(value_set)
            assert value.is_hazard_free_steady
            assert value.final == reported

"""Kernel-tier speedup gates: bigint / numpy grading vs the packed oracle.

The kernel tier replaces the packed backend's per-64-bit-word Python loops:
``bigint`` evaluates the entire fault batch in one unbounded-width integer
pass, ``numpy`` evaluates each topological level as uint64 array operations.
The workload is the s838@0.5 grading campaign — the *complete* enumerated
fault universe graded against one sequence, which is where the per-word loop
dominates a campaign's cost (the packed path replays the sequence once per
63-fault chunk; the kernel tier replays it once).

``test_bench_kernel_tier_speedup`` is the acceptance gate: the kernel tier
must grade at least 5x faster than ``packed``, verdict-identical.  The gate
binds to whatever ``--backend numpy`` resolves to — the levelized kernel
when numpy is installed, the bigint substrate otherwise — and always to
``bigint`` itself, so the tier keeps its floor with and without the optional
dependency.  (Measured reality, recorded in ``BENCH_kernels.json`` and
discussed in ALGORITHMS.md: CPython's big-integer bitwise ops are themselves
C-speed vectorisation, so the bigint substrate is the fastest tier at
ISCAS'89 scale, while the levelized numpy kernel pays int-to-array
conversion at every pass boundary.)

Every run rewrites ``BENCH_kernels.json`` at the repository root (via
:func:`benchconfig.write_bench_results`) with the per-backend wall clock and
speedups, so the perf trajectory is tracked in-repo across PRs instead of
living only in CI logs.
"""

from __future__ import annotations

import random
import time

import pytest

from benchconfig import read_bench_results, write_bench_results
from repro.core.clocking import ClockSchedule
from repro.core.results import TestSequence
from repro.core.verify import grade_test_sequence
from repro.data import load_circuit
from repro.faults.model import enumerate_delay_faults
from repro.fausim import HAVE_NUMPY, create_simulator
from repro.fausim.numpy_sim import NumpyLogicSimulator

#: Benchmark workload: one random sequence of F frames graded against the
#: complete fault universe of the s838 surrogate at half scale.
CIRCUIT, SCALE, SEED = "s838", 0.5, 0
N_FRAMES = 12


@pytest.fixture(scope="module")
def workload():
    circuit = load_circuit(CIRCUIT, scale=SCALE, seed=SEED)
    rng = random.Random(3)
    vectors = [
        {pi: rng.randint(0, 1) for pi in circuit.primary_inputs}
        for _ in range(N_FRAMES)
    ]
    fast_index = N_FRAMES // 2
    schedule = ClockSchedule.for_sequence(
        initialization_frames=fast_index - 1,
        propagation_frames=N_FRAMES - fast_index - 1,
    )
    faults = enumerate_delay_faults(circuit)
    sequence = TestSequence(
        fault=faults[0],
        initialization_vectors=vectors[: fast_index - 1],
        v1=vectors[fast_index - 1],
        v2=vectors[fast_index],
        propagation_vectors=vectors[fast_index + 1 :],
        clock_schedule=schedule,
        observation_point="",
        observed_at_po=True,
    )
    return circuit, sequence, faults


def _verdicts(grades):
    return [
        (grade.detected, grade.detection_frame, grade.primary_output)
        for grade in grades
    ]


def _time_backend(workload, backend, repeats=3):
    """Best-of-N wall clock and verdicts of one backend on the workload."""
    circuit, sequence, faults = workload
    best, grades = None, None
    for _ in range(repeats):
        start = time.perf_counter()
        grades = grade_test_sequence(circuit, sequence, faults, backend=backend)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, _verdicts(grades)


def test_bench_kernel_tier_speedup(workload):
    """Acceptance: the kernel tier grades >= 5x faster than packed, identical."""
    circuit, _, faults = workload
    packed_seconds, packed_verdicts = _time_backend(workload, "packed")

    results = {}
    for backend in ("bigint", "numpy"):
        seconds, verdicts = _time_backend(workload, backend)
        assert verdicts == packed_verdicts, f"{backend} grading verdicts differ"
        resolved = type(create_simulator(circuit, backend)).__name__
        results[backend] = {
            "seconds": round(seconds, 6),
            "speedup_vs_packed": round(packed_seconds / seconds, 2),
            "resolved_simulator": resolved,
        }
        print(
            f"\n{backend} grading: {packed_seconds:.3f}s -> {seconds:.3f}s "
            f"({packed_seconds / seconds:.1f}x, {len(faults)} faults x "
            f"{N_FRAMES} frames on {circuit.name}, via {resolved})"
        )

    payload = {
        "workload": {
            "circuit": CIRCUIT,
            "scale": SCALE,
            "seed": SEED,
            "n_frames": N_FRAMES,
            "n_faults": len(faults),
            "description": "grade_test_sequence over the full fault universe",
        },
        "packed_seconds": round(packed_seconds, 6),
        "numpy_available": HAVE_NUMPY,
        "backends": results,
    }
    write_bench_results("kernels", payload)

    # the bigint substrate is the tier's floor: always gated
    assert results["bigint"]["speedup_vs_packed"] >= 5.0, (
        f"bigint grading only {results['bigint']['speedup_vs_packed']}x "
        f"faster than packed"
    )
    # the numpy *tier* is gated in its degraded (bigint-substrate) form; the
    # levelized kernel's own wall clock is recorded, not gated (see module
    # docstring for the measured conversion-overhead reality).
    numpy_resolved = results["numpy"]["resolved_simulator"]
    if numpy_resolved != NumpyLogicSimulator.__name__:
        assert results["numpy"]["speedup_vs_packed"] >= 5.0, (
            f"numpy-tier fallback only {results['numpy']['speedup_vs_packed']}x "
            f"faster than packed"
        )


def test_bench_kernels_json_is_fresh(workload):
    """The machine-readable results file matches the current workload."""
    payload = read_bench_results("kernels")
    if payload is None:
        pytest.skip("BENCH_kernels.json not generated yet in this checkout")
    assert payload["workload"]["circuit"] == CIRCUIT
    assert payload["workload"]["n_faults"] == len(workload[2])
    assert set(payload["backends"]) == {"bigint", "numpy"}

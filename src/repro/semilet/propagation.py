"""Fault-effect propagation with forward time processing.

After the fast clock frame the fault effect sits in the state register: the
good machine and the faulty machine agree on every signal except one or more
pseudo primary inputs (and possibly disagree on nothing observable yet).
Because only slow clocks are applied from now on, both machines follow the
same fault-free logic; the effect behaves like a static D injected into the
state.

:class:`PropagationEngine` searches, frame by frame (forward time
processing), for primary input vectors that steer the difference to a primary
output.  Within a frame it runs a small PODEM over the pair logic
(good value, faulty value); across frames it backtracks over the alternative
pseudo primary outputs the difference was parked in.

The pair simulation itself goes through the backend-dispatched implication
engine (:mod:`repro.tdgen.implication`): when a frame decision is opened,
both alternatives are submitted as one candidate batch, which the packed
engine evaluates in a single word-parallel pass over the compiled netlist
(good and faulty machine in adjacent word slots).  The per-decision search
residue — the potential-difference scan of the X-path check and the
D-frontier decision backtrace — goes through the engine's search kernels
(:mod:`repro.tdgen.search`), so the ``backend`` choice also selects between
the interpreted walks (``reference``) and the compiled word-parallel scan
over the packed planes (``packed``, computed once per candidate batch).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.circuit.netlist import Circuit
from repro.fausim.logic_sim import SignalValues
from repro.obs.metrics import resolve_metrics
from repro.tdgen.implication import CandidatePairFrames, create_implication_engine

PairValue = Tuple[Optional[int], Optional[int]]  # (good, faulty)


@dataclasses.dataclass
class FrameSolution:
    """One frame of a propagation solution."""

    pi_assignment: Dict[str, int]
    observed_po: Optional[str]
    next_good_state: SignalValues
    next_faulty_state: SignalValues
    required_free_ppis: Dict[str, int] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class _FrameDecision:
    """One node of the frame PODEM's decision stack.

    ``frames`` holds the pair simulation of every candidate value (computed
    as one engine batch when the node was opened); ``cursor`` indexes the
    currently assigned candidate.
    """

    name: str
    is_pi: bool
    alternatives: List[int]
    frames: CandidatePairFrames
    cursor: int = 0


@dataclasses.dataclass
class PropagationResult:
    """Outcome of the propagation phase."""

    success: bool
    vectors: List[Dict[str, int]] = dataclasses.field(default_factory=list)
    observed_po: Optional[str] = None
    observation_frame: Optional[int] = None
    required_first_frame_ppis: Dict[str, int] = dataclasses.field(default_factory=dict)
    backtracks: int = 0
    aborted: bool = False

    def __bool__(self) -> bool:
        return self.success


class PropagationEngine:
    """Multi-frame forward propagation of a captured fault effect.

    Args:
        circuit: circuit under test.
        max_frames: bound on the number of slow-clock propagation frames.
        backtrack_limit: per-propagation backtrack budget (paper: 100).
        frame_alternatives: how many alternative state bits to park the
            difference in before giving up on a frame.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`
            (defaults to the no-op null registry); counts pair-frame
            implication sweeps and SEMILET backtracks.
        backend: implication engine backend used for the pair simulation
            (``None`` selects the process default).
    """

    def __init__(
        self,
        circuit: Circuit,
        max_frames: Optional[int] = None,
        backtrack_limit: int = 100,
        frame_alternatives: int = 3,
        metrics: Optional[object] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.circuit = circuit
        self.backtrack_limit = backtrack_limit
        self.frame_alternatives = frame_alternatives
        self.metrics = resolve_metrics(metrics)
        if max_frames is None:
            max_frames = max(2 * len(circuit.flip_flops) + 2, 4)
        self.max_frames = min(max_frames, 64)
        self._implication = create_implication_engine(circuit, backend=backend)
        self._implication.set_metrics(self.metrics, site="propagation")
        #: Search kernels of the same backend: potential-difference scan and
        #: the pair-frame decision backtrace (see :mod:`repro.tdgen.search`).
        self._kernels = self._implication.search_kernels()
        self._deadline: Optional[float] = None

    def _expired(self) -> bool:
        """True when the caller-supplied propagation deadline has passed."""
        return self._deadline is not None and time.perf_counter() > self._deadline

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def propagate(
        self,
        good_state: SignalValues,
        faulty_state: SignalValues,
        assignable_ppis: Optional[Sequence[str]] = None,
        deadline: Optional[float] = None,
    ) -> PropagationResult:
        """Find input vectors that make the state difference visible at a PO.

        Args:
            good_state: good machine state after the fast frame (X allowed).
            faulty_state: faulty machine state after the fast frame.
            assignable_ppis: pseudo primary inputs whose (currently unknown)
                value the *first* propagation frame may require; the chosen
                values are returned as ``required_first_frame_ppis`` and must
                then be justified by TDgen in the fast frame (propagation
                justification).
            deadline: optional :func:`time.perf_counter` timestamp after which
                the search gives up; an expired search counts as aborted.
        """
        self._deadline = deadline
        budget = {"backtracks": 0}
        assignable = set(assignable_ppis or [])
        frames = self._search(
            good_state, faulty_state, depth=0, budget=budget, assignable=assignable
        )
        if frames is None:
            return PropagationResult(
                success=False,
                backtracks=budget["backtracks"],
                aborted=budget["backtracks"] > self.backtrack_limit or self._expired(),
            )
        vectors = [frame.pi_assignment for frame in frames]
        required = dict(frames[0].required_free_ppis) if frames else {}
        return PropagationResult(
            success=True,
            vectors=vectors,
            observed_po=frames[-1].observed_po,
            observation_frame=len(frames) - 1,
            required_first_frame_ppis=required,
            backtracks=budget["backtracks"],
        )

    # ------------------------------------------------------------------ #
    # recursive frame search
    # ------------------------------------------------------------------ #
    def _search(
        self,
        good_state: SignalValues,
        faulty_state: SignalValues,
        depth: int,
        budget: Dict[str, int],
        assignable: Set[str],
    ) -> Optional[List[FrameSolution]]:
        if (
            depth >= self.max_frames
            or budget["backtracks"] > self.backtrack_limit
            or self._expired()
        ):
            return None

        first_frame_assignable = assignable if depth == 0 else set()

        # Goal 1: observe the difference at a primary output in this frame.
        solution = self._solve_frame(
            good_state, faulty_state, goal="po", blocked_targets=set(),
            assignable=first_frame_assignable,
        )
        if solution is not None:
            return [solution]

        # Goal 2: park the difference in the next state and recurse.
        blocked: Set[str] = set()
        for _ in range(self.frame_alternatives):
            solution = self._solve_frame(
                good_state, faulty_state, goal="ppo", blocked_targets=blocked,
                assignable=first_frame_assignable,
            )
            if solution is None:
                return None
            rest = self._search(
                solution.next_good_state,
                solution.next_faulty_state,
                depth + 1,
                budget,
                assignable,
            )
            if rest is not None:
                return [solution] + rest
            budget["backtracks"] += 1
            if budget["backtracks"] > self.backtrack_limit:
                return None
            # Try steering the difference into other state bits next time.
            blocked.update(
                ppi
                for ppi in self.circuit.pseudo_primary_inputs
                if _differs(solution.next_good_state.get(ppi), solution.next_faulty_state.get(ppi))
            )
        return None

    # ------------------------------------------------------------------ #
    # single-frame pair-logic PODEM
    # ------------------------------------------------------------------ #
    def _solve_frame(
        self,
        good_state: SignalValues,
        faulty_state: SignalValues,
        goal: str,
        blocked_targets: Set[str],
        assignable: Set[str],
    ) -> Optional[FrameSolution]:
        pi_values: Dict[str, Optional[int]] = {pi: None for pi in self.circuit.primary_inputs}
        free_ppi_values: Dict[str, Optional[int]] = {ppi: None for ppi in assignable}

        stack: List[_FrameDecision] = []
        backtracks = 0

        # Pair simulation of the empty assignment; later frames come from the
        # decision nodes' candidate batches (one engine sweep per node).  The
        # (batch, cursor) handle travels alongside the pairs view so the
        # search kernels can read the packed planes directly.
        root_frames = self._implication.pair_frame_candidates(
            pi_values, good_state, faulty_state, free_ppi_values, (None,)
        )
        if self.metrics.enabled:
            self.metrics.inc("repro_implication_sweeps_total", site="propagation")
        frames, cursor = root_frames, 0
        pairs = root_frames.pairs(0)

        while True:
            if self._expired():
                return None
            status = self._classify_frame(pairs, frames, cursor, goal, blocked_targets)
            if status == "success":
                next_good = {}
                next_faulty = {}
                for dff in self.circuit.flip_flops:
                    good_value, faulty_value = pairs[dff.fanin[0]]
                    next_good[dff.name] = good_value
                    next_faulty[dff.name] = faulty_value
                observed = None
                if goal == "po":
                    for po in self.circuit.primary_outputs:
                        if _differs(*pairs[po]):
                            observed = po
                            break
                return FrameSolution(
                    pi_assignment={
                        pi: value for pi, value in pi_values.items() if value is not None
                    },
                    observed_po=observed,
                    next_good_state=next_good,
                    next_faulty_state=next_faulty,
                    required_free_ppis={
                        ppi: value for ppi, value in free_ppi_values.items() if value is not None
                    },
                )
            if status == "conflict":
                flipped = False
                while stack:
                    decision = stack[-1]
                    self._set_frame_var(
                        decision.name, decision.is_pi, None, pi_values, free_ppi_values
                    )
                    if decision.alternatives:
                        self._set_frame_var(
                            decision.name, decision.is_pi, decision.alternatives.pop(0),
                            pi_values, free_ppi_values,
                        )
                        decision.cursor += 1
                        frames, cursor = decision.frames, decision.cursor
                        pairs = frames.pairs(cursor)
                        backtracks += 1
                        flipped = True
                        break
                    stack.pop()
                if not flipped or backtracks > self.backtrack_limit:
                    return None
                continue

            decision_key = self._kernels.pair_frame_decision(
                frames, cursor, pi_values, free_ppi_values
            )
            if decision_key is None:
                if not stack:
                    return None
                decision = stack[-1]
                self._set_frame_var(
                    decision.name, decision.is_pi, None, pi_values, free_ppi_values
                )
                if decision.alternatives:
                    self._set_frame_var(
                        decision.name, decision.is_pi, decision.alternatives.pop(0),
                        pi_values, free_ppi_values,
                    )
                    decision.cursor += 1
                    frames, cursor = decision.frames, decision.cursor
                    pairs = frames.pairs(cursor)
                    backtracks += 1
                    if backtracks > self.backtrack_limit:
                        return None
                else:
                    stack.pop()
                    # Back to the popped node's prefix: its pair frame is the
                    # parent's current candidate (or the root frame).
                    frames, cursor = (
                        (stack[-1].frames, stack[-1].cursor)
                        if stack
                        else (root_frames, 0)
                    )
                    pairs = frames.pairs(cursor)
                continue
            name, is_pi, preferred = decision_key
            # Evaluate both alternatives of the new decision in one batch.
            batch = self._implication.pair_frame_candidates(
                pi_values, good_state, faulty_state, free_ppi_values,
                [(name, is_pi, preferred), (name, is_pi, 1 - preferred)],
            )
            if self.metrics.enabled:
                self.metrics.inc("repro_implication_sweeps_total", site="propagation")
            stack.append(
                _FrameDecision(name=name, is_pi=is_pi, alternatives=[1 - preferred], frames=batch)
            )
            self._set_frame_var(name, is_pi, preferred, pi_values, free_ppi_values)
            frames, cursor = batch, 0
            pairs = batch.pairs(0)

    def _classify_frame(
        self,
        pairs: Dict[str, PairValue],
        frames: CandidatePairFrames,
        cursor: int,
        goal: str,
        blocked_targets: Set[str],
    ) -> str:
        targets = (
            self.circuit.primary_outputs
            if goal == "po"
            else [ppi for ppi in self.circuit.pseudo_primary_inputs if ppi not in blocked_targets]
        )
        achieved = False
        for target in targets:
            signal = target if goal == "po" else self.circuit.ppo_of_ppi(target)
            if _differs(*pairs[signal]):
                achieved = True
                break
        if achieved:
            return "success"
        # X-path style check: the difference must still be able to reach a
        # target.  The potential-difference scan runs through the search
        # kernels (word-parallel over the whole batch on ``packed``).
        potential = self._kernels.potential_difference(frames, cursor)
        for target in targets:
            signal = target if goal == "po" else self.circuit.ppo_of_ppi(target)
            if potential.get(signal):
                return "continue"
        return "conflict"

    @staticmethod
    def _set_frame_var(
        name: str,
        is_pi: bool,
        value: Optional[int],
        pi_values: Dict[str, Optional[int]],
        free_ppi_values: Dict[str, Optional[int]],
    ) -> None:
        if is_pi:
            pi_values[name] = value
        else:
            free_ppi_values[name] = value


def _differs(good_value: Optional[int], faulty_value: Optional[int]) -> bool:
    """True when both machines have binary values that provably differ."""
    return good_value is not None and faulty_value is not None and good_value != faulty_value

"""Deterministic replay of the checked-in fuzz regression corpus.

Every JSON file in ``tests/fuzz/corpus/`` is a minimised
:class:`tests.fuzz.harness.FuzzCase` — either a shrunk disagreement the fuzz
loop once found, or a curated anchor pinning a tricky shape (X propagation
through XOR trees, flip-flop feedback, fanout-branch fault sites).  Replaying
them is tier-1: the corpus must stay green on every push, so past fuzz
discoveries can never regress silently.
"""

from __future__ import annotations

import pytest

from tests.fuzz.harness import CORPUS_DIR, check_case, load_corpus

_CORPUS = load_corpus()


def test_corpus_is_checked_in():
    """The regression corpus exists and is non-empty."""
    assert CORPUS_DIR.is_dir()
    assert _CORPUS, "tests/fuzz/corpus/ must contain at least one case"


@pytest.mark.parametrize(
    "path,case", _CORPUS, ids=[path.name for path, _ in _CORPUS]
)
def test_corpus_case_replays_clean(path, case):
    """All backends agree on every persisted regression case."""
    failures = check_case(case)
    assert not failures, f"{path.name}: {failures}"

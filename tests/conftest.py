"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.circuit import CircuitBuilder, GateType, parse_bench
from repro.data import load_circuit
from repro.data.s27 import S27_BENCH


@pytest.fixture(scope="session")
def s27():
    """The embedded ISCAS'89 s27 benchmark circuit."""
    return parse_bench(S27_BENCH, name="s27")


@pytest.fixture(scope="session")
def s27_text():
    return S27_BENCH


@pytest.fixture()
def and_chain():
    """Purely combinational circuit: a small AND/OR tree with reconvergence.

        y = (a AND b) OR (b AND c)
    """
    builder = CircuitBuilder("and_chain")
    builder.inputs(["a", "b", "c"])
    builder.and_("ab", ["a", "b"])
    builder.and_("bc", ["b", "c"])
    builder.or_("y", ["ab", "bc"])
    builder.output("y")
    return builder.build()


@pytest.fixture()
def inverter_pair():
    """Two inverters in series feeding the output (plus a side branch)."""
    builder = CircuitBuilder("inverter_pair")
    builder.input("a")
    builder.not_("n1", "a")
    builder.not_("n2", "n1")
    builder.output("n2")
    return builder.build()


@pytest.fixture()
def toggle_ff():
    """One-flip-flop toggle circuit: q' = q XOR enable, output q."""
    builder = CircuitBuilder("toggle")
    builder.input("enable")
    builder.dff("q", "next_q")
    builder.xor("next_q", ["enable", "q"])
    builder.buf("out", "q")
    builder.output("out")
    return builder.build()


@pytest.fixture()
def resettable_ff():
    """A flip-flop with a synchronous reset and an observable output.

    next_q = (q OR data) AND NOT reset ; out = q AND observe
    """
    builder = CircuitBuilder("resettable")
    builder.inputs(["data", "reset", "observe"])
    builder.dff("q", "next_q")
    builder.not_("nreset", "reset")
    builder.or_("hold", ["q", "data"])
    builder.and_("next_q", ["hold", "nreset"])
    builder.and_("out", ["q", "observe"])
    builder.output("out")
    return builder.build()


@pytest.fixture(scope="session")
def small_surrogate():
    """A small deterministic surrogate circuit for sequential tests."""
    return load_circuit("s298", scale=0.2, seed=3)

"""Backend registry and circuit compiler."""

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gates import GateType
from repro.fausim import (
    LogicSimulator,
    PackedLogicSimulator,
    available_backends,
    compile_circuit,
    create_simulator,
    default_backend,
    register_backend,
    resolve_backend,
    set_default_backend,
)


def test_builtin_backends_registered():
    assert "reference" in available_backends()
    assert "packed" in available_backends()


def test_create_simulator_types(s27):
    assert isinstance(create_simulator(s27, "reference"), LogicSimulator)
    assert isinstance(create_simulator(s27, "packed"), PackedLogicSimulator)


def test_default_backend_is_packed(s27):
    """The campaign default is the compiled bit-parallel backend."""
    assert default_backend() == "packed"
    assert resolve_backend(None) == "packed"
    assert isinstance(create_simulator(s27), PackedLogicSimulator)


def test_unknown_backend_rejected(s27):
    with pytest.raises(ValueError, match="unknown simulation backend"):
        create_simulator(s27, "warp-drive")
    with pytest.raises(ValueError):
        resolve_backend("warp-drive")


def test_set_default_backend_round_trip(s27):
    previous = set_default_backend("reference")
    try:
        assert previous == "packed"
        assert isinstance(create_simulator(s27), LogicSimulator)
    finally:
        set_default_backend(previous)
    assert default_backend() == "packed"


def test_register_backend_conflicts():
    with pytest.raises(ValueError, match="already registered"):
        register_backend("reference", LogicSimulator)
    # Overwriting is explicit; restore the original right away.
    register_backend("reference", LogicSimulator, overwrite=True)


def test_compile_layout(s27):
    compiled = compile_circuit(s27)
    # PIs first, then PPIs, then gates in evaluation order.
    assert [compiled.signal_names[slot] for slot in compiled.pi_slots] == s27.primary_inputs
    assert [
        compiled.signal_names[slot] for slot in compiled.ppi_slots
    ] == s27.pseudo_primary_inputs
    assert compiled.num_signals == len(s27.primary_inputs) + len(
        s27.pseudo_primary_inputs
    ) + len(s27.combinational_gates)
    assert compiled.num_gates == len(s27.combinational_gates)
    assert len(compiled.fanin_offsets) == compiled.num_gates + 1
    # Every fanin slot is defined before it is consumed.
    produced = set(compiled.pi_slots) | set(compiled.ppi_slots)
    for index in range(compiled.num_gates):
        for position in range(
            compiled.fanin_offsets[index], compiled.fanin_offsets[index + 1]
        ):
            assert compiled.fanin_flat[position] in produced
        produced.add(compiled.outputs[index])


def test_compile_cache_reused_and_invalidated():
    builder = CircuitBuilder("cache")
    builder.inputs(["a", "b"])
    builder.and_("y", ["a", "b"])
    builder.output("y")
    circuit = builder.build()

    first = compile_circuit(circuit)
    assert compile_circuit(circuit) is first

    circuit.add_gate("z", GateType.OR, ["a", "y"])
    second = compile_circuit(circuit)
    assert second is not first
    assert "z" in second.slot_of


def test_packed_word_bits_validation(s27):
    with pytest.raises(ValueError):
        PackedLogicSimulator(s27, word_bits=0)


# --------------------------------------------------------------------------- #
# the kernel tier: bigint and numpy
# --------------------------------------------------------------------------- #
def test_kernel_tier_backends_registered():
    assert "bigint" in available_backends()
    assert "numpy" in available_backends()


def test_bigint_tier_is_unbounded_packed(s27):
    from repro.fausim import BigintLogicSimulator

    simulator = create_simulator(s27, "bigint")
    assert isinstance(simulator, BigintLogicSimulator)
    assert isinstance(simulator, PackedLogicSimulator)
    # one chunk covers any realistic pattern/fault batch
    assert simulator.word_bits > 10**18


def test_numpy_backend_resolves(s27):
    from repro.fausim import HAVE_NUMPY, BigintLogicSimulator
    from repro.fausim.numpy_sim import NumpyLogicSimulator

    simulator = create_simulator(s27, "numpy")
    if HAVE_NUMPY:
        assert isinstance(simulator, NumpyLogicSimulator)
    else:
        assert isinstance(simulator, BigintLogicSimulator)


def test_numpy_backend_degrades_without_numpy(s27, monkeypatch):
    """``--backend numpy`` must stay correct on a numpy-less host."""
    import repro.fausim.numpy_sim as numpy_sim
    from repro.fausim import BigintLogicSimulator

    monkeypatch.setattr(numpy_sim, "HAVE_NUMPY", False)
    simulator = numpy_sim.create_numpy_simulator(s27)
    assert isinstance(simulator, BigintLogicSimulator)
    with pytest.raises(RuntimeError, match="numpy is not installed"):
        numpy_sim.NumpyLogicSimulator(s27)


def test_two_frame_factory_matches_tiers(s27):
    from repro.fausim import (
        BigintTwoFrameSimulator,
        PackedTwoFrameSimulator,
        create_two_frame_simulator,
    )

    assert isinstance(
        create_two_frame_simulator(s27, backend="packed"), PackedTwoFrameSimulator
    )
    assert isinstance(
        create_two_frame_simulator(s27, backend="bigint"), BigintTwoFrameSimulator
    )
    assert isinstance(
        create_two_frame_simulator(s27, backend="numpy"), BigintTwoFrameSimulator
    )
    assert create_two_frame_simulator(s27, backend="reference") is None


def test_levelized_program_covers_whole_netlist(s27):
    """Every gate appears in exactly one level group, fanins one level down."""
    from repro.fausim import compile_circuit, levelize_program

    compiled = compile_circuit(s27)
    program = levelize_program(compiled)
    assert program.num_signals == compiled.num_signals
    seen = []
    for level_index, groups in enumerate(program.levels):
        for group in groups:
            for row in range(len(group.first_position)):
                out = int(group.out_slots[row])
                seen.append(out)
                assert program.level_of_out[out] == level_index
    assert sorted(seen) == sorted(compiled.outputs)

"""Campaign orchestration: sharded multi-process ATPG.

The subsystem splits one circuit's fault universe over worker processes
(:mod:`~repro.orchestrate.partition`), runs the per-fault FOGBUSTER step in
each worker while exchanging newly generated sequences for cross-shard fault
dropping (:mod:`~repro.orchestrate.worker`), checkpoints every outcome to a
JSONL journal (:mod:`~repro.orchestrate.journal`) and merges a final
:class:`~repro.core.results.CampaignResult` that is bit-identical to the
serial campaign regardless of worker count or scheduling
(:mod:`~repro.orchestrate.coordinator`).

Quickstart::

    from repro import load_circuit
    from repro.orchestrate import run_parallel_campaign

    circuit = load_circuit("s838", scale=0.5)
    campaign = run_parallel_campaign(circuit, jobs=4)
    print(campaign.as_table3_row())
"""

from repro.orchestrate.coordinator import (
    CampaignInterrupted,
    CampaignOrchestrator,
    OrchestratorConfig,
    run_parallel_campaign,
)
from repro.orchestrate.journal import (
    CampaignJournal,
    JournalSegment,
    campaign_digest,
    load_segments,
    read_journal,
)
from repro.orchestrate.partition import (
    PARTITION_MODES,
    ShardPlan,
    derive_shard_seed,
    fault_weight,
    partition_round_robin,
    partition_size_aware,
    plan_shards,
    signal_cone_sizes,
)

__all__ = [
    "CampaignInterrupted",
    "CampaignOrchestrator",
    "OrchestratorConfig",
    "run_parallel_campaign",
    "CampaignJournal",
    "JournalSegment",
    "campaign_digest",
    "load_segments",
    "read_journal",
    "PARTITION_MODES",
    "ShardPlan",
    "derive_shard_seed",
    "fault_weight",
    "partition_round_robin",
    "partition_size_aware",
    "plan_shards",
    "signal_cone_sizes",
]

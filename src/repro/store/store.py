"""The persistent campaign store: ingest, lossless reload, analytics.

:class:`CampaignStore` wraps one sqlite3 database file (schema in
:mod:`repro.store.schema`) and offers three things:

* **Ingest** — :meth:`CampaignStore.ingest_result` folds a finished
  :class:`~repro.core.results.CampaignResult` (plus its netlist, config and
  optional :mod:`repro.obs` cost records) into the normalized tables, and
  :meth:`CampaignStore.ingest_journal` imports existing JSONL checkpoint
  journals — finished segments losslessly, torn/unfinished segments as
  ``partial`` rows reconstructed from their per-fault records.
* **Lossless reload** — :meth:`CampaignStore.load_result` rebuilds the exact
  ``CampaignResult`` (fingerprint-identical to the ingested one), and
  :meth:`CampaignStore.fault_records` exposes the per-fault outcomes as a
  memo table keyed by fault name — the raw material of the incremental
  re-run engine (:mod:`repro.store.incremental`).
* **Analytics** — :meth:`CampaignStore.coverage_trend`,
  :meth:`CampaignStore.cost_outliers` and
  :meth:`CampaignStore.backend_ablation` answer the cross-campaign questions
  the ROADMAP names, all as plain SQL over the columnar tables (surfaced on
  the CLI as ``python -m repro store query``).

Staleness safety: every campaign row stores the journal-layer
:func:`~repro.orchestrate.journal.campaign_digest` (settings + fault
universe) and the canonical ``.bench`` text of its netlist.
:meth:`CampaignStore.find_base` re-derives the digest from the stored rows
before handing a campaign to the incremental engine, so an edited/corrupted
store or one written under different settings (for example robust vs
non-robust) can never cross-resume.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
from typing import Dict, List, Optional, Sequence

from repro.circuit.bench import netlist_digest, parse_bench, write_bench
from repro.circuit.netlist import Circuit
from repro.core.results import CampaignResult, FaultResult, TestSequence
from repro.faults.model import GateDelayFault, enumerate_delay_faults
from repro.obs.tracing import FaultCost
from repro.orchestrate.journal import JournalSegment, campaign_digest, load_segments
from repro.store.schema import connect


def config_payload_json(payload: Dict[str, object]) -> str:
    """Canonical JSON form of a config digest payload (sorted, stable)."""
    return json.dumps(dict(sorted(payload.items())), sort_keys=True)


@dataclasses.dataclass(frozen=True)
class StoredFaultRecord:
    """One per-fault outcome row, kept as raw JSON strings.

    :meth:`build_result` materialises a *fresh* :class:`FaultResult` on every
    call — the campaign crediting path mutates ``additionally_detected`` in
    place, so handing out shared instances would corrupt the memo.
    """

    fault: str
    result_json: str
    sequence_json: Optional[str]
    detections_json: str
    cost_json: Optional[str]

    def build_result(self) -> FaultResult:
        """Materialise the stored outcome as a fresh :class:`FaultResult`."""
        payload = json.loads(self.result_json)
        payload["sequence"] = (
            json.loads(self.sequence_json) if self.sequence_json is not None else None
        )
        payload["additionally_detected"] = json.loads(self.detections_json)
        return FaultResult.from_json(payload)

    def build_cost(self) -> Optional[FaultCost]:
        """Materialise the stored :mod:`repro.obs` cost record, if any."""
        if self.cost_json is None:
            return None
        return FaultCost.from_json(json.loads(self.cost_json))


@dataclasses.dataclass(frozen=True)
class BaseCampaign:
    """A stored campaign validated as an incremental-re-run base."""

    campaign_id: int
    circuit: Circuit
    config_digest: str
    net_digest: str
    partial: bool
    fault_names: Sequence[str]


class CampaignStore:
    """One sqlite3-backed campaign store file (see module docstring)."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._conn = connect(self.path)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Close the underlying connection."""
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "CampaignStore":
        """Context-manager entry: the store itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: close the connection."""
        self.close()

    # ------------------------------------------------------------------ #
    # ingest
    # ------------------------------------------------------------------ #
    def ingest_result(
        self,
        result: CampaignResult,
        *,
        circuit: Optional[Circuit] = None,
        config=None,
        faults: Optional[Sequence[GateDelayFault]] = None,
        costs: Sequence[FaultCost] = (),
        source: str = "api",
        partial: bool = False,
        config_digest: Optional[str] = None,
        timings: Optional[Dict[str, float]] = None,
    ) -> int:
        """Ingest one finished campaign; returns the new campaign row id.

        ``circuit`` and ``config`` (an
        :class:`~repro.orchestrate.coordinator.OrchestratorConfig`) are
        optional but required for the row to serve as an incremental base:
        with both present the canonical ``.bench`` text, the full fault
        universe and the re-derivable config digest are stored.  ``costs``
        are the campaign's :mod:`repro.obs` per-fault cost records (empty
        when metrics were off).
        """
        if circuit is not None and circuit.name != result.circuit_name:
            raise ValueError(
                f"circuit {circuit.name!r} does not match campaign result "
                f"{result.circuit_name!r}"
            )
        payload = config.digest_payload() if config is not None else None
        if circuit is not None and faults is None:
            faults = enumerate_delay_faults(circuit)
        if config_digest is None:
            if payload is not None and faults is not None:
                config_digest = campaign_digest(result.circuit_name, payload, faults)
            else:
                config_digest = ""
        row = {
            "circuit": result.circuit_name,
            "net_digest": netlist_digest(circuit) if circuit is not None else None,
            "config_digest": config_digest,
            "config_json": config_payload_json(payload) if payload is not None else None,
            "bench": write_bench(circuit) if circuit is not None else None,
            "backend": getattr(config, "backend", None),
            "robust": (
                int(bool(payload["robust"]))
                if payload is not None and "robust" in payload
                else None
            ),
            "campaign_seed": getattr(config, "campaign_seed", None),
            "rpg_prefix": int(bool(getattr(config, "rpg_prefix", False))),
            "rpg_budget": getattr(config, "rpg_budget", None),
            "rpg_window": getattr(config, "rpg_window", None),
            "total_faults": result.total_faults,
            "tested": result.tested,
            "untestable": result.untestable,
            "aborted": result.aborted,
            "pattern_count": result.pattern_count,
            "cpu_seconds": result.cpu_seconds,
            "untestable_local": result.untestable_local,
            "untestable_sequential": result.untestable_sequential,
            "aborted_local": result.aborted_local,
            "aborted_sequential": result.aborted_sequential,
            "targeted": result.targeted,
            "detected_by_simulation": result.detected_by_simulation,
            "prefix_applied": result.prefix_applied,
            "prefix_detected": result.prefix_detected,
            "prefix_stop_reason": result.prefix_stop_reason,
            "source": source,
            "partial": int(bool(partial)),
            "created_at": time.time(),
        }
        with self._lock, self._conn as conn:
            columns = ", ".join(row)
            holes = ", ".join("?" for _ in row)
            cursor = conn.execute(
                f"INSERT INTO campaigns ({columns}) VALUES ({holes})",
                tuple(row.values()),
            )
            campaign_id = cursor.lastrowid
            if faults is not None:
                conn.executemany(
                    "INSERT INTO faults (campaign_id, idx, fault, fault_json)"
                    " VALUES (?, ?, ?, ?)",
                    [
                        (campaign_id, idx, str(fault), json.dumps(fault.to_json(), sort_keys=True))
                        for idx, fault in enumerate(faults)
                    ],
                )
            for ordinal, fault_result in enumerate(result.fault_results):
                sequence_id = None
                if fault_result.sequence is not None:
                    sequence_id = conn.execute(
                        "INSERT INTO sequences (campaign_id, kind, ordinal, fault,"
                        " pattern_count, sequence_json) VALUES (?, 'fault', ?, ?, ?, ?)",
                        (
                            campaign_id,
                            ordinal,
                            str(fault_result.fault),
                            fault_result.sequence.pattern_count,
                            json.dumps(fault_result.sequence.to_json(), sort_keys=True),
                        ),
                    ).lastrowid
                result_payload = fault_result.to_json()
                result_payload.pop("sequence", None)
                result_payload.pop("additionally_detected", None)
                conn.execute(
                    "INSERT INTO results (campaign_id, ordinal, fault, fault_json,"
                    " status, phase, sequence_id, attempts, local_backtracks,"
                    " sequential_backtracks, detections_json)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        campaign_id,
                        ordinal,
                        str(fault_result.fault),
                        json.dumps(fault_result.fault.to_json(), sort_keys=True),
                        fault_result.status.value,
                        fault_result.phase.name,
                        sequence_id,
                        fault_result.attempts,
                        fault_result.local_backtracks,
                        fault_result.sequential_backtracks,
                        json.dumps(
                            [f.to_json() for f in fault_result.additionally_detected],
                            sort_keys=True,
                        ),
                    ),
                )
            conn.executemany(
                "INSERT INTO sequences (campaign_id, kind, ordinal, fault,"
                " pattern_count, sequence_json) VALUES (?, 'prefix', ?, ?, ?, ?)",
                [
                    (
                        campaign_id,
                        ordinal,
                        str(sequence.fault),
                        sequence.pattern_count,
                        json.dumps(sequence.to_json(), sort_keys=True),
                    )
                    for ordinal, sequence in enumerate(result.prefix_sequences)
                ],
            )
            conn.executemany(
                "INSERT INTO costs (campaign_id, ordinal, fault, status, phase,"
                " seconds, attempts, local_backtracks, sequential_backtracks,"
                " decisions, implication_sweeps, wavefront_skipped,"
                " words_simulated, engine)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                [
                    (
                        campaign_id,
                        ordinal,
                        str(cost.fault),
                        cost.status,
                        cost.phase,
                        cost.seconds,
                        cost.attempts,
                        cost.local_backtracks,
                        cost.sequential_backtracks,
                        cost.decisions,
                        cost.implication_sweeps,
                        cost.wavefront_skipped,
                        cost.words_simulated,
                        cost.engine,
                    )
                    for ordinal, cost in enumerate(costs)
                ],
            )
            all_timings = {"cpu_seconds": result.cpu_seconds}
            all_timings.update(timings or {})
            conn.executemany(
                "INSERT INTO timings (campaign_id, name, seconds) VALUES (?, ?, ?)",
                [(campaign_id, name, seconds) for name, seconds in all_timings.items()],
            )
        return campaign_id

    def ingest_journal(
        self,
        path: str,
        *,
        circuit: Optional[Circuit] = None,
        config=None,
        source: str = "journal",
    ) -> List[int]:
        """Import a JSONL checkpoint journal; returns the new campaign ids.

        Finished segments (with a ``result`` record) import losslessly.  A
        torn or interrupted segment still imports: its campaign is
        reconstructed from the per-fault records and flagged ``partial`` (its
        Table-3 counters are lower bounds).  When ``circuit`` and ``config``
        are given for a segment, the journal's digest is re-derived and a
        mismatch — wrong settings (for example robust vs non-robust), wrong
        netlist or wrong fault universe — is rejected with ``ValueError``.
        """
        segments = load_segments(path)
        if not segments:
            raise ValueError(f"journal {path!r} holds no campaign segments")
        if circuit is not None and circuit.name not in segments:
            raise ValueError(
                f"journal {path!r} has no segment for circuit {circuit.name!r} "
                f"(found: {sorted(segments)})"
            )
        ids = []
        for name in sorted(segments):
            segment = segments[name]
            segment_circuit = circuit if circuit is not None and circuit.name == name else None
            segment_config = config if segment_circuit is not None else None
            if segment_circuit is not None and segment_config is not None:
                expected = campaign_digest(
                    name,
                    segment_config.digest_payload(),
                    enumerate_delay_faults(segment_circuit),
                )
                if expected != segment.digest:
                    raise ValueError(
                        f"journal digest mismatch for circuit {name!r}: journal has "
                        f"{segment.digest}, circuit + settings give {expected} — "
                        "the netlist, the fault universe or the campaign settings "
                        "(robust, backtrack limits, seed, ...) changed"
                    )
            result, partial = _segment_result(segment)
            costs = [
                FaultCost.from_json(segment.fault_records[index]["cost"])
                for index in sorted(segment.fault_records)
                if "cost" in segment.fault_records[index]
            ]
            ids.append(
                self.ingest_result(
                    result,
                    circuit=segment_circuit,
                    config=segment_config,
                    costs=costs,
                    source=source,
                    partial=partial,
                    config_digest=segment.digest,
                )
            )
        return ids

    # ------------------------------------------------------------------ #
    # lossless reload
    # ------------------------------------------------------------------ #
    def load_result(self, campaign_id: int) -> CampaignResult:
        """Rebuild the exact :class:`CampaignResult` of one stored campaign."""
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM campaigns WHERE id = ?", (campaign_id,)
            ).fetchone()
            if row is None:
                raise LookupError(f"store has no campaign with id {campaign_id}")
            sequence_rows = self._conn.execute(
                "SELECT id, kind, ordinal, sequence_json FROM sequences"
                " WHERE campaign_id = ? ORDER BY ordinal",
                (campaign_id,),
            ).fetchall()
            result_rows = self._conn.execute(
                "SELECT * FROM results WHERE campaign_id = ? ORDER BY ordinal",
                (campaign_id,),
            ).fetchall()
        sequences = {
            r["id"]: TestSequence.from_json(json.loads(r["sequence_json"]))
            for r in sequence_rows
            if r["kind"] == "fault"
        }
        fault_results = []
        for r in result_rows:
            payload = {
                "fault": json.loads(r["fault_json"]),
                "status": r["status"],
                "phase": r["phase"],
                "sequence": None,
                "additionally_detected": json.loads(r["detections_json"]),
                "local_backtracks": r["local_backtracks"],
                "sequential_backtracks": r["sequential_backtracks"],
                "attempts": r["attempts"],
            }
            result = FaultResult.from_json(payload)
            if r["sequence_id"] is not None:
                result.sequence = sequences[r["sequence_id"]]
            fault_results.append(result)
        campaign = CampaignResult(
            circuit_name=row["circuit"],
            total_faults=row["total_faults"],
            tested=row["tested"],
            untestable=row["untestable"],
            aborted=row["aborted"],
            pattern_count=row["pattern_count"],
            cpu_seconds=row["cpu_seconds"],
            fault_results=fault_results,
            untestable_local=row["untestable_local"],
            untestable_sequential=row["untestable_sequential"],
            aborted_local=row["aborted_local"],
            aborted_sequential=row["aborted_sequential"],
            targeted=row["targeted"],
            detected_by_simulation=row["detected_by_simulation"],
            prefix_applied=row["prefix_applied"],
            prefix_detected=row["prefix_detected"],
            prefix_stop_reason=row["prefix_stop_reason"],
            prefix_sequences=[
                TestSequence.from_json(json.loads(r["sequence_json"]))
                for r in sequence_rows
                if r["kind"] == "prefix"
            ],
        )
        campaign.sequences = [
            result.sequence for result in fault_results if result.sequence is not None
        ]
        return campaign

    def load_costs(self, campaign_id: int) -> List[FaultCost]:
        """The stored :mod:`repro.obs` cost records of one campaign, in order."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM costs WHERE campaign_id = ? ORDER BY ordinal",
                (campaign_id,),
            ).fetchall()
        return [
            FaultCost(
                fault=r["fault"],
                status=r["status"],
                phase=r["phase"],
                seconds=r["seconds"],
                attempts=r["attempts"],
                local_backtracks=r["local_backtracks"],
                sequential_backtracks=r["sequential_backtracks"],
                decisions=r["decisions"],
                implication_sweeps=r["implication_sweeps"],
                wavefront_skipped=r["wavefront_skipped"],
                words_simulated=r["words_simulated"],
                engine=r["engine"],
            )
            for r in rows
        ]

    def fault_records(self, campaign_id: int) -> Dict[str, StoredFaultRecord]:
        """Per-fault memo table of one campaign, keyed by fault name."""
        with self._lock:
            result_rows = self._conn.execute(
                "SELECT * FROM results WHERE campaign_id = ? ORDER BY ordinal",
                (campaign_id,),
            ).fetchall()
            sequence_rows = self._conn.execute(
                "SELECT id, sequence_json FROM sequences"
                " WHERE campaign_id = ? AND kind = 'fault'",
                (campaign_id,),
            ).fetchall()
            cost_rows = self._conn.execute(
                "SELECT fault, ordinal FROM costs WHERE campaign_id = ?",
                (campaign_id,),
            ).fetchall()
        sequences = {r["id"]: r["sequence_json"] for r in sequence_rows}
        costs = self.load_costs(campaign_id) if cost_rows else []
        cost_by_fault = {cost.fault: cost for cost in costs}
        memo: Dict[str, StoredFaultRecord] = {}
        for r in result_rows:
            cost = cost_by_fault.get(r["fault"])
            payload = {
                "fault": json.loads(r["fault_json"]),
                "status": r["status"],
                "phase": r["phase"],
                "sequence": None,
                "additionally_detected": [],
                "local_backtracks": r["local_backtracks"],
                "sequential_backtracks": r["sequential_backtracks"],
                "attempts": r["attempts"],
            }
            memo[r["fault"]] = StoredFaultRecord(
                fault=r["fault"],
                result_json=json.dumps(payload, sort_keys=True),
                sequence_json=sequences.get(r["sequence_id"]),
                detections_json=r["detections_json"],
                cost_json=json.dumps(cost.to_json(), sort_keys=True) if cost else None,
            )
        return memo

    # ------------------------------------------------------------------ #
    # incremental base lookup
    # ------------------------------------------------------------------ #
    def find_base(self, circuit_name: str, config) -> BaseCampaign:
        """Find and validate the latest incremental base for a campaign.

        Matches on circuit name *and* the full config digest payload, so a
        store written under different settings (robust vs non-robust,
        different backtrack limits, seed, ...) is never picked up.  Before
        returning, the stored config digest is re-derived from the stored
        netlist and fault rows; any mismatch means the store is stale or
        corrupt and raises ``ValueError`` instead of silently cross-resuming.
        """
        payload = config.digest_payload()
        config_json = config_payload_json(payload)
        with self._lock:
            rows = self._conn.execute(
                "SELECT id, circuit, config_digest, net_digest, partial FROM campaigns"
                " WHERE circuit = ? AND config_json = ? AND bench IS NOT NULL"
                " ORDER BY id DESC",
                (circuit_name, config_json),
            ).fetchall()
        if not rows:
            raise LookupError(
                f"store {self.path!r} has no campaign for circuit {circuit_name!r} "
                "with matching settings (circuit + config payload); run and ingest "
                "a full campaign first"
            )
        row = rows[0]
        campaign_id = row["id"]
        with self._lock:
            bench_row = self._conn.execute(
                "SELECT bench FROM campaigns WHERE id = ?", (campaign_id,)
            ).fetchone()
            fault_rows = self._conn.execute(
                "SELECT fault FROM faults WHERE campaign_id = ? ORDER BY idx",
                (campaign_id,),
            ).fetchall()
        fault_names = [r["fault"] for r in fault_rows]
        derived = campaign_digest(circuit_name, payload, fault_names)
        if derived != row["config_digest"]:
            raise ValueError(
                f"campaign store {self.path!r} is stale or corrupt: stored digest "
                f"{row['config_digest']} of campaign {campaign_id} does not match "
                f"the digest {derived} derived from its stored fault universe"
            )
        old_circuit = parse_bench(bench_row["bench"], name=circuit_name)
        expected = [str(fault) for fault in enumerate_delay_faults(old_circuit)]
        if expected != fault_names:
            raise ValueError(
                f"campaign store {self.path!r} is stale or corrupt: the fault "
                f"universe of campaign {campaign_id} does not match its stored "
                "netlist"
            )
        stored_net_digest = row["net_digest"]
        if stored_net_digest != netlist_digest(old_circuit):
            raise ValueError(
                f"campaign store {self.path!r} is stale or corrupt: the netlist "
                f"digest of campaign {campaign_id} does not match its stored "
                ".bench text"
            )
        return BaseCampaign(
            campaign_id=campaign_id,
            circuit=old_circuit,
            config_digest=row["config_digest"],
            net_digest=stored_net_digest,
            partial=bool(row["partial"]),
            fault_names=tuple(fault_names),
        )

    # ------------------------------------------------------------------ #
    # analytics
    # ------------------------------------------------------------------ #
    def campaigns(self, circuit: Optional[str] = None) -> List[Dict[str, object]]:
        """Summary rows of every stored campaign, oldest first."""
        query = (
            "SELECT id, circuit, net_digest, config_digest, backend, robust,"
            " rpg_prefix, total_faults, tested, untestable, aborted,"
            " pattern_count, cpu_seconds, targeted, source, partial, created_at"
            " FROM campaigns"
        )
        args: tuple = ()
        if circuit is not None:
            query += " WHERE circuit = ?"
            args = (circuit,)
        query += " ORDER BY id"
        with self._lock:
            rows = self._conn.execute(query, args).fetchall()
        return [dict(row) for row in rows]

    def coverage_trend(self, circuit: Optional[str] = None) -> List[Dict[str, object]]:
        """Fault coverage per campaign over ingest order, per circuit."""
        rows = self.campaigns(circuit)
        trend = []
        for row in rows:
            total = row["total_faults"]
            trend.append(
                {
                    "campaign_id": row["id"],
                    "circuit": row["circuit"],
                    "backend": row["backend"],
                    "total_faults": total,
                    "tested": row["tested"],
                    "coverage": (row["tested"] / total) if total else 0.0,
                    "cpu_seconds": row["cpu_seconds"],
                    "partial": bool(row["partial"]),
                    "source": row["source"],
                }
            )
        return trend

    def cost_outliers(
        self, campaign_id: Optional[int] = None, limit: int = 10
    ) -> List[Dict[str, object]]:
        """The most expensive faults by recorded wall-clock seconds."""
        query = (
            "SELECT c.campaign_id, k.circuit, c.fault, c.status, c.phase,"
            " c.seconds, c.decisions, c.local_backtracks, c.sequential_backtracks,"
            " c.implication_sweeps, c.words_simulated, c.engine"
            " FROM costs c JOIN campaigns k ON k.id = c.campaign_id"
        )
        args: List[object] = []
        if campaign_id is not None:
            query += " WHERE c.campaign_id = ?"
            args.append(campaign_id)
        query += " ORDER BY c.seconds DESC, c.campaign_id, c.ordinal LIMIT ?"
        args.append(limit)
        with self._lock:
            rows = self._conn.execute(query, tuple(args)).fetchall()
        return [dict(row) for row in rows]

    def backend_ablation(self, circuit: Optional[str] = None) -> List[Dict[str, object]]:
        """Per-backend campaign statistics (count, mean time, mean coverage)."""
        query = (
            "SELECT COALESCE(backend, 'default') AS backend, COUNT(*) AS campaigns,"
            " AVG(cpu_seconds) AS mean_cpu_seconds,"
            " AVG(CASE WHEN total_faults > 0 THEN tested * 1.0 / total_faults END)"
            "   AS mean_coverage,"
            " SUM(targeted) AS targeted FROM campaigns"
        )
        args: tuple = ()
        if circuit is not None:
            query += " WHERE circuit = ?"
            args = (circuit,)
        query += " GROUP BY COALESCE(backend, 'default') ORDER BY backend"
        with self._lock:
            rows = self._conn.execute(query, args).fetchall()
        return [dict(row) for row in rows]


def _segment_result(segment: JournalSegment) -> "tuple[CampaignResult, bool]":
    """Materialise a journal segment as ``(CampaignResult, partial)``.

    A finished segment returns its recorded final campaign verbatim.  An
    unfinished one (interrupted or torn before the ``result`` record) is
    reconstructed from the per-fault and prefix records; its ``tested``/
    ``untestable``/``aborted`` counters are lower bounds over the recorded
    outcomes only, which is why the row is flagged partial.
    """
    if segment.final is not None:
        return CampaignResult.from_json(segment.final["campaign"]), False
    total = int(segment.header.get("total_faults", 0))
    campaign = CampaignResult(circuit_name=segment.circuit, total_faults=total)
    detected = set()
    for seq_index in sorted(segment.prefix_records):
        record = segment.prefix_records[seq_index]
        campaign.prefix_applied += 1
        for payload in record.get("detections", []):
            detected.add(str(GateDelayFault.from_json(payload)))
        sequence = record.get("sequence")
        if sequence is not None:
            sequence = TestSequence.from_json(sequence)
            campaign.prefix_sequences.append(sequence)
            campaign.pattern_count += sequence.pattern_count
    campaign.prefix_detected = len(detected)
    if segment.prefix_done is not None:
        campaign.prefix_stop_reason = segment.prefix_done.get("reason")
    for index in sorted(segment.fault_records):
        record = segment.fault_records[index]
        result = FaultResult.from_json(record["result"])
        result.additionally_detected = [
            GateDelayFault.from_json(payload) for payload in record["detections"]
        ]
        if result.tested:
            detected.add(str(result.fault))
            for fault in result.additionally_detected:
                detected.add(str(fault))
        elif result.status.value == "untestable":
            campaign.untestable += 1
        else:
            campaign.aborted += 1
        campaign.record(result, 0)
    campaign.tested = len(detected)
    return campaign, True

"""End-to-end coverage of the ``python -m repro`` command line interface.

Each subcommand is exercised the way a user would run it, on the embedded
s27 benchmark so the tests stay fast.  One test goes through a real
subprocess to cover the ``python -m repro`` entry point itself; the rest
call :func:`repro.__main__.main` in-process and inspect stdout.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.data import list_circuits
from repro.data.s27 import S27_BENCH


def run_cli(capsys, *argv):
    """Run the CLI in-process and return (exit_code, stdout)."""
    code = main(list(argv))
    return code, capsys.readouterr().out


def test_circuits_lists_registry(capsys):
    code, out = run_cli(capsys, "circuits")
    assert code == 0
    assert "s27" in out and "s1238" in out
    assert "embedded" in out and "surrogate" in out
    # One header plus one row per registered circuit.
    assert len(out.strip().splitlines()) == 1 + len(list_circuits())


def test_tables_prints_algebra(capsys):
    code, out = run_cli(capsys, "tables")
    assert code == 0
    assert "Table 1" in out and "Table 2" in out
    # The eight-valued algebra symbols appear in the rendered tables.
    for symbol in ("R", "F", "0h", "1h", "Rc", "Fc"):
        assert symbol in out


def test_campaign_on_s27(capsys):
    code, out = run_cli(capsys, "campaign", "--circuits", "s27")
    assert code == 0
    assert "s27" in out
    assert "tested" in out and "untstbl" in out
    assert "comb.untestable" in out


def _without_timings(report: str) -> str:
    """Drop the wall-clock column, the only backend-dependent output."""
    lines = []
    for line in report.splitlines():
        fields = line.split()
        if fields and "." in fields[-1] and fields[-1].replace(".", "").isdigit():
            fields = fields[:-1]
        lines.append(" ".join(fields))
    return "\n".join(lines)


def test_campaign_packed_backend_matches_reference(capsys):
    code, reference_out = run_cli(
        capsys, "campaign", "--circuits", "s27", "--backend", "reference"
    )
    assert code == 0
    # No --backend: the process default must be the packed backend.
    code, packed_out = run_cli(capsys, "campaign", "--circuits", "s27")
    assert code == 0
    assert _without_timings(packed_out) == _without_timings(reference_out)


def test_campaign_with_max_faults_and_options(capsys):
    code, out = run_cli(
        capsys,
        "campaign",
        "--circuits",
        "s27",
        "--max-faults",
        "5",
        "--non-robust",
        "--backtrack-limit",
        "50",
    )
    assert code == 0
    assert "s27" in out


def test_campaign_from_bench_file(tmp_path, capsys):
    bench = tmp_path / "mini.bench"
    bench.write_text(S27_BENCH)
    code, out = run_cli(capsys, "campaign", "--circuits", str(bench))
    assert code == 0
    assert "mini" in out


def test_campaign_jobs4_row_matches_serial(capsys):
    """The acceptance check: ``--jobs 4`` must print the serial Table 3 rows.

    Uses the literal ``s27,s838-surrogate`` circuit pairing (down-scaled so
    the test stays fast); everything except the wall-clock column must be
    identical, untestable breakdown included.
    """
    code, parallel_out = run_cli(
        capsys,
        "campaign",
        "--circuits", "s27,s838-surrogate",
        "--scale", "0.12",
        "--jobs", "4",
    )
    assert code == 0
    assert "Shard summary" in parallel_out
    code, serial_out = run_cli(
        capsys,
        "campaign",
        "--circuits", "s27,s838-surrogate",
        "--scale", "0.12",
        "--jobs", "1",
    )
    assert code == 0
    parallel_tables = parallel_out.split("Shard summary")[0].strip()
    assert _without_timings(parallel_tables) == _without_timings(serial_out.strip())


def test_campaign_journal_and_resume(tmp_path, capsys):
    journal = str(tmp_path / "campaign.jsonl")
    code, first_out = run_cli(
        capsys, "campaign", "--circuits", "s27", "--jobs", "2", "--journal", journal
    )
    assert code == 0
    # Resuming the finished journal reuses the stored result.
    code, resumed_out = run_cli(
        capsys, "campaign", "--circuits", "s27", "--resume", journal
    )
    assert code == 0
    first_table = first_out.split("Shard summary")[0].strip()
    assert _without_timings(resumed_out.strip()) == _without_timings(first_table)


def test_campaign_rejects_time_limit_with_jobs(capsys):
    code = main(["campaign", "--circuits", "s27", "--jobs", "2", "--time-limit", "1"])
    assert code == 2


def test_campaign_rejects_conflicting_journal_paths(capsys):
    code = main(
        ["campaign", "--circuits", "s27", "--journal", "a.jsonl", "--resume", "b.jsonl"]
    )
    assert code == 2


def test_unknown_circuit_raises():
    with pytest.raises(KeyError):
        main(["campaign", "--circuits", "s9999"])


def test_rejects_unknown_backend(capsys):
    with pytest.raises(SystemExit):
        main(["campaign", "--circuits", "s27", "--backend", "warp-drive"])


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_module_entry_point_subprocess():
    repo_root = Path(__file__).resolve().parents[1]
    result = subprocess.run(
        [sys.executable, "-m", "repro", "circuits"],
        capture_output=True,
        text=True,
        cwd=repo_root,
        env={"PYTHONPATH": str(repo_root / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0
    assert "s27" in result.stdout


# --------------------------------------------------------------------- #
# observability flags: --profile, --metrics-out, --verbose/--quiet
# --------------------------------------------------------------------- #
def test_campaign_profile_on_s27(capsys):
    code, out = run_cli(capsys, "campaign", "--circuits", "s27", "--profile")
    assert code == 0
    assert "Cost breakdown — s27" in out
    assert "Time per phase" in out
    assert "most expensive faults" in out
    # The deterministic campaign phases all show up in the phase table.
    for phase in ("campaign", "tdgen", "tdsim"):
        assert phase in out


def test_campaign_profile_on_surrogate(capsys):
    code, out = run_cli(
        capsys, "campaign", "--circuits", "s344", "--scale", "0.2", "--profile"
    )
    assert code == 0
    assert "Cost breakdown — s344" in out
    assert "Time per phase" in out


def test_campaign_metrics_out_writes_the_document(tmp_path, capsys):
    path = tmp_path / "metrics.json"
    code, out = run_cli(
        capsys, "campaign", "--circuits", "s27", "--metrics-out", str(path)
    )
    assert code == 0
    assert f"metrics written to {path}" in out
    document = json.loads(path.read_text())
    assert document["version"] == 1
    assert document["context"]["command"] == "campaign"
    assert document["context"]["circuits"] == ["s27"]
    assert len(document["fault_costs"]) > 0
    counters = document["metrics"]["counters"]
    assert sum(
        value for key, value in counters.items()
        if key.startswith("repro_faults_total")
    ) == len(document["fault_costs"])


def test_campaign_metrics_out_with_jobs(tmp_path, capsys):
    """The orchestrated path produces the same document shape as serial."""
    serial_path = tmp_path / "serial.json"
    jobs_path = tmp_path / "jobs.json"
    run_cli(capsys, "campaign", "--circuits", "s27", "--metrics-out", str(serial_path))
    run_cli(
        capsys, "campaign", "--circuits", "s27", "--jobs", "2",
        "--metrics-out", str(jobs_path),
    )
    serial = json.loads(serial_path.read_text())
    parallel = json.loads(jobs_path.read_text())

    def stripped_costs(document):
        return [
            {k: v for k, v in cost.items() if k != "seconds"}
            for cost in document["fault_costs"]
        ]

    assert stripped_costs(parallel) == stripped_costs(serial)


def test_campaign_row_unchanged_by_profile(capsys):
    plain = run_cli(capsys, "campaign", "--circuits", "s27")[1]
    profiled = run_cli(capsys, "campaign", "--circuits", "s27", "--profile")[1]
    row = next(line for line in plain.splitlines() if line.startswith("s27"))
    profiled_row = next(
        line for line in profiled.splitlines() if line.startswith("s27")
    )
    assert _without_timings(row) == _without_timings(profiled_row)


def test_verbose_and_quiet_are_mutually_exclusive(capsys):
    with pytest.raises(SystemExit):
        main(["campaign", "--circuits", "s27", "--verbose", "--quiet"])


def test_verbose_flag_emits_info_logs(capsys):
    code = main(["campaign", "--circuits", "s27", "--verbose"])
    assert code == 0
    err = capsys.readouterr().err
    assert "campaign start: circuit=s27" in err
    assert "campaign done: circuit=s27" in err

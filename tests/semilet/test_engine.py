"""The Semilet facade bundling propagation and synchronisation."""

from repro.semilet.engine import Semilet


def test_facade_exposes_both_services(s27):
    semilet = Semilet(s27, backtrack_limit=100)
    sync = semilet.synchronize({"G7": 0})
    assert sync.success

    propagation = semilet.propagate(
        {"G5": 0, "G6": 1, "G7": 0}, {"G5": 0, "G6": 0, "G7": 0}
    )
    assert propagation.success


def test_limits_are_forwarded(s27):
    semilet = Semilet(
        s27,
        backtrack_limit=7,
        max_propagation_frames=3,
        max_synchronization_frames=2,
    )
    assert semilet.propagation_engine.backtrack_limit == 7
    assert semilet.propagation_engine.max_frames == 3
    assert semilet.synchronizer.max_frames == 2
    assert semilet.synchronizer.backtrack_limit == 7


def test_default_frame_limits_scale_with_state_size(s27, small_surrogate):
    small = Semilet(s27)
    larger = Semilet(small_surrogate)
    assert small.propagation_engine.max_frames >= 4
    assert larger.propagation_engine.max_frames >= small.propagation_engine.max_frames or (
        len(small_surrogate.flip_flops) <= len(s27.flip_flops)
    )

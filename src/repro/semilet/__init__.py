"""SEMILET — sequential test generation support (FOGBUSTER technique).

The paper couples TDgen with SEMILET, a sequential test pattern generator for
static fault models.  Within the delay-fault flow SEMILET performs three
tasks, all on the *fault-free* machine (only slow clocks are applied outside
the test frame, so the delay fault cannot manifest):

* **propagation** (forward time processing): drive a fault effect captured in
  the state register to a primary output,
* **propagation justification** (reverse time processing): turn pseudo
  primary input values the propagation needed into requirements on the fast
  clock frame, which are handed back to TDgen,
* **synchronisation** (reverse time processing): compute an initialising
  input sequence that brings the machine from the unknown power-up state into
  the state the local test requires.
"""

from repro.semilet.justification import FrameJustifier, JustificationResult
from repro.semilet.propagation import PropagationEngine, PropagationResult
from repro.semilet.synchronization import Synchronizer, SynchronizationResult
from repro.semilet.engine import Semilet

__all__ = [
    "FrameJustifier",
    "JustificationResult",
    "PropagationEngine",
    "PropagationResult",
    "Synchronizer",
    "SynchronizationResult",
    "Semilet",
]

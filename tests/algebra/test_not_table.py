"""Paper Table 2: the inverter truth table."""

import pytest

from repro.algebra.tables import not1, paper_table2_inverter
from repro.algebra.values import ALL_VALUES, F, FC, H0, H1, R, RC, V0, V1


@pytest.mark.parametrize(
    "value,expected",
    [
        (V0, V1),
        (V1, V0),
        (R, F),
        (F, R),
        (H0, H1),
        (H1, H0),
        (RC, FC),
        (FC, RC),
    ],
)
def test_table2_inverter(value, expected):
    assert not1(value) is expected


def test_involution():
    for value in ALL_VALUES:
        assert not1(not1(value)) is value


def test_inverter_preserves_hazard_and_fault_attributes():
    for value in ALL_VALUES:
        inverted = not1(value)
        assert inverted.hazard == value.hazard
        assert inverted.fault == value.fault
        assert inverted.initial == 1 - value.initial
        assert inverted.final == 1 - value.final


def test_paper_table2_export():
    table = paper_table2_inverter()
    assert table == {
        "0": "1",
        "1": "0",
        "R": "F",
        "F": "R",
        "0h": "1h",
        "1h": "0h",
        "Rc": "Fc",
        "Fc": "Rc",
    }

"""Snapshot exporters: JSON documents and Prometheus text exposition.

Two consumers read metric snapshots:

* machines — ``snapshot.to_json()`` (already JSON-ready) wrapped by
  :func:`metrics_document` with a schema version, written by the CLI's
  ``--metrics-out`` and served by ``GET /metrics?format=json``;
* scrapers — :func:`render_prometheus` renders the text exposition format
  (version 0.0.4): ``# HELP``/``# TYPE`` headers from the
  :data:`~repro.obs.metrics.METRIC_HELP` catalogue, counters as-is, timers
  as Prometheus summaries (``_count``/``_sum``), histograms with cumulative
  ``_bucket{le=...}`` series plus the ``+Inf`` bucket, gauges last.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .metrics import METRIC_HELP, MetricsSnapshot, split_metric_key


def _format_value(value: float) -> str:
    """Render a sample value without a spurious trailing ``.0`` on ints."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


def _header(lines: List[str], name: str, kind: str, seen: set) -> None:
    """Emit one ``# HELP``/``# TYPE`` pair per metric family."""
    if name in seen:
        return
    seen.add(name)
    help_text = METRIC_HELP.get(name, name.replace("_", " "))
    lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} {kind}")


def _labelled(name: str, labels, extra: Optional[str] = None) -> str:
    """Re-render a metric key with an optional extra ``le`` label."""
    parts = [f'{key}="{value}"' for key, value in labels]
    if extra is not None:
        parts.append(extra)
    if not parts:
        return name
    return f"{name}{{{','.join(parts)}}}"


def render_prometheus(snapshot: MetricsSnapshot) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: List[str] = []
    seen: set = set()

    for key in sorted(snapshot.counters):
        name, labels = split_metric_key(key)
        _header(lines, name, "counter", seen)
        lines.append(f"{_labelled(name, labels)} {_format_value(snapshot.counters[key])}")

    for key in sorted(snapshot.timers):
        name, labels = split_metric_key(key)
        _header(lines, name, "summary", seen)
        timer = snapshot.timers[key]
        lines.append(f"{_labelled(name + '_count', labels)} {_format_value(timer['count'])}")
        lines.append(f"{_labelled(name + '_sum', labels)} {_format_value(timer['sum'])}")

    for key in sorted(snapshot.histograms):
        name, labels = split_metric_key(key)
        _header(lines, name, "histogram", seen)
        hist = snapshot.histograms[key]
        cumulative = 0
        for bound, count in zip(hist["buckets"], hist["counts"]):
            cumulative += count
            le = f'le="{_format_value(bound)}"'
            lines.append(f"{_labelled(name + '_bucket', labels, le)} {cumulative}")
        inf_label = 'le="+Inf"'
        lines.append(
            f"{_labelled(name + '_bucket', labels, inf_label)} {hist['count']}"
        )
        lines.append(f"{_labelled(name + '_count', labels)} {_format_value(hist['count'])}")
        lines.append(f"{_labelled(name + '_sum', labels)} {_format_value(hist['sum'])}")

    for key in sorted(snapshot.gauges):
        name, labels = split_metric_key(key)
        _header(lines, name, "gauge", seen)
        lines.append(f"{_labelled(name, labels)} {_format_value(snapshot.gauges[key])}")

    return "\n".join(lines) + "\n"


def metrics_document(
    snapshot: MetricsSnapshot,
    fault_costs: Iterable[object] = (),
    context: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """A versioned JSON document wrapping a snapshot and its cost records.

    ``fault_costs`` accepts :class:`~repro.obs.tracing.FaultCost` records
    (anything with ``to_json``); ``context`` carries free-form workload
    identification (circuit, jobs, backend, ...).
    """
    document: Dict[str, object] = {
        "version": 1,
        "metrics": snapshot.to_json(),
        "fault_costs": [cost.to_json() for cost in fault_costs],
    }
    if context:
        document["context"] = dict(context)
    return document

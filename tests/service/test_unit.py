"""Unit tests of the service building blocks: caches, specs, router, store.

These run without a daemon — they pin the digest/key semantics the e2e
suite relies on (name-independent netlist digests, seed/cap-sensitive
campaign keys), the request validation errors the API maps to 400s, the
route matching rules, and the job table's restart re-queue behaviour.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.circuit.bench import parse_bench
from repro.data import load_circuit
from repro.data.s27 import S27_BENCH
from repro.faults.model import enumerate_delay_faults
from repro.service import JobSpec, JobStore, ShutdownController, campaign_cache_key, netlist_digest
from repro.service.api import ApiError, Request, Router, read_request
from repro.service.cache import _LruCache


# --------------------------------------------------------------------- #
# digests and cache keys
# --------------------------------------------------------------------- #
def test_netlist_digest_is_name_independent():
    a = parse_bench(S27_BENCH, name="s27")
    b = parse_bench(S27_BENCH, name="renamed")
    assert netlist_digest(a) == netlist_digest(b)


def test_netlist_digest_distinguishes_netlists():
    assert netlist_digest(load_circuit("s27")) != netlist_digest(
        load_circuit("s344", scale=0.3)
    )


def test_campaign_cache_key_sensitivity():
    circuit = load_circuit("s27")
    digest = netlist_digest(circuit)
    faults = enumerate_delay_faults(circuit)

    def key(spec):
        return campaign_cache_key(
            digest,
            circuit.name,
            spec.orchestrator_config().digest_payload(),
            faults,
            spec.max_target_faults,
        )

    base = JobSpec(circuit="s27")
    assert key(base) == key(JobSpec(circuit="s27"))
    # jobs/partition/priority do not change the merged result -> same key
    assert key(base) == key(JobSpec(circuit="s27", jobs=4, partition="round-robin", priority=9))
    # anything the campaign outcome depends on changes the key
    assert key(base) != key(JobSpec(circuit="s27", seed=1))
    assert key(base) != key(JobSpec(circuit="s27", robust=False))
    assert key(base) != key(JobSpec(circuit="s27", backtrack_limit=50))
    assert key(base) != key(JobSpec(circuit="s27", max_target_faults=5))
    # a hybrid campaign is a different result; its knobs only count when on
    assert key(base) != key(JobSpec(circuit="s27", rpg_prefix=True))
    assert key(base) == key(JobSpec(circuit="s27", rpg_budget=99, rpg_window=3))
    assert key(JobSpec(circuit="s27", rpg_prefix=True)) != key(
        JobSpec(circuit="s27", rpg_prefix=True, rpg_budget=99)
    )


def test_lru_cache_eviction_and_counters():
    cache = _LruCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refreshes a
    cache.put("c", 3)  # evicts b (least recently used)
    assert cache.get("b") is None
    assert cache.get("a") == 1 and cache.get("c") == 3
    stats = cache.stats()
    assert stats == {
        "entries": 2, "max_entries": 2, "hits": 3, "misses": 1, "evictions": 1,
    }


# --------------------------------------------------------------------- #
# job specs
# --------------------------------------------------------------------- #
def test_spec_from_request_roundtrip():
    spec = JobSpec.from_request(
        {"circuit": "s27", "jobs": 3, "seed": 4, "priority": 2, "robust": False}
    )
    assert (spec.circuit, spec.jobs, spec.seed, spec.priority, spec.robust) == (
        "s27", 3, 4, 2, False,
    )
    assert JobSpec.from_json(spec.to_json()) == spec


@pytest.mark.parametrize(
    "payload, fragment",
    [
        ([], "JSON object"),
        ({}, "exactly one of 'circuit' and 'bench'"),
        ({"circuit": "s27", "bench": "INPUT(a)"}, "exactly one of"),
        ({"circuit": "nope"}, "unknown circuit"),
        ({"circuit": "s27", "partition": "nope"}, "unknown partition"),
        ({"circuit": "s27", "backend": "nope"}, "unknown backend"),
        ({"circuit": "s27", "jobs": 0}, "'jobs' must be >= 1"),
        ({"circuit": "s27", "jobs": "two"}, "must be an integer"),
        ({"circuit": "s27", "scale": -1}, "'scale' must be > 0"),
        ({"circuit": "s27", "robust": "yes"}, "must be a boolean"),
        ({"circuit": "s27", "max_target_faults": 0}, "must be >= 1"),
        ({"circuit": "s27", "time_limit_s": 0}, "must be > 0"),
        ({"circuit": "s27", "time_limit_s": 1.0, "jobs": 2}, "requires 'jobs' == 1"),
        ({"circuit": "s27", "rpg_budget": 0}, "'rpg_budget' must be >= 1"),
        ({"circuit": "s27", "rpg_window": 0}, "'rpg_window' must be >= 1"),
        ({"circuit": "s27", "rpg_prefix": "yes"}, "must be a boolean"),
        ({"circuit": "s27", "frobnicate": 1}, "unknown field"),
    ],
)
def test_spec_validation_errors(payload, fragment):
    with pytest.raises(ValueError) as exc_info:
        JobSpec.from_request(payload)
    assert fragment in str(exc_info.value)


# --------------------------------------------------------------------- #
# router and request parsing
# --------------------------------------------------------------------- #
def _resolve(router, method, path):
    return router.resolve(method, path)


def test_router_captures_and_errors():
    router = Router()
    seen = {}

    async def handler(request, job_id):
        seen["job_id"] = job_id

    router.add("GET", "/jobs/{job_id}/result", handler)
    found, captures = _resolve(router, "GET", "/jobs/job-42/result")
    assert found is handler and captures == {"job_id": "job-42"}

    with pytest.raises(ApiError) as exc_info:
        _resolve(router, "POST", "/jobs/job-42/result")
    assert exc_info.value.status == 405
    with pytest.raises(ApiError) as exc_info:
        _resolve(router, "GET", "/jobs/job-42")
    assert exc_info.value.status == 404


def _parse(raw: bytes):
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(run())


def test_read_request_parses_query_and_body():
    request = _parse(
        b"POST /jobs?x=1&y=two HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}"
    )
    assert request.method == "POST"
    assert request.path == "/jobs"
    assert request.query == {"x": "1", "y": "two"}
    assert request.json() == {}
    assert request.query_int("x", 0) == 1
    with pytest.raises(ApiError) as exc_info:
        request.query_int("y", 0)
    assert exc_info.value.status == 400


@pytest.mark.parametrize(
    "raw, status",
    [
        (b"NOT-HTTP\r\n\r\n", 400),
        (b"GET /status HTTP/1.1\r\nbroken-header-line\r\n\r\n", 400),
        (b"POST /jobs HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400),
        (b"POST /jobs HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n", 413),
        (b"POST /jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 400),
    ],
)
def test_read_request_malformed(raw, status):
    with pytest.raises(ApiError) as exc_info:
        _parse(raw)
    assert exc_info.value.status == status


def test_read_request_none_on_clean_close():
    assert _parse(b"") is None


def test_request_json_rejects_garbage():
    request = Request("POST", "/jobs", {}, {}, b"{not json")
    with pytest.raises(ApiError) as exc_info:
        request.json()
    assert exc_info.value.status == 400


# --------------------------------------------------------------------- #
# job store persistence
# --------------------------------------------------------------------- #
def test_store_requeues_inflight_jobs_on_load(tmp_path):
    store = JobStore(str(tmp_path))
    done = store.create(JobSpec(circuit="s27"))
    done.status = "done"
    running = store.create(JobSpec(circuit="s27", seed=1))
    running.status = "running"
    interrupted = store.create(JobSpec(circuit="s27", seed=2))
    interrupted.status = "interrupted"
    interrupted.error = "campaign interrupted (SIGTERM)"
    store.save()

    reloaded = JobStore(str(tmp_path))
    pending = reloaded.load()
    assert [job.id for job in pending] == [running.id, interrupted.id]
    assert all(job.status == "queued" and job.resumed for job in pending)
    assert all(job.error is None for job in pending)
    assert reloaded.get(done.id).status == "done"
    assert reloaded.next_seq == 4


def test_store_survives_missing_table(tmp_path):
    assert JobStore(str(tmp_path)).load() == []


# --------------------------------------------------------------------- #
# shutdown controller
# --------------------------------------------------------------------- #
def test_shutdown_request_is_idempotent():
    controller = ShutdownController()
    assert not controller.stopping

    async def run():
        controller.request("SIGTERM")
        controller.request("SIGINT")  # no escalation without hard_exit_on_repeat
        assert controller.triggered.is_set()

    asyncio.run(run())
    assert controller.stopping
    assert controller.reason == "SIGTERM"

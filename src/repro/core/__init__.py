"""The combined TDgen + SEMILET flow — the paper's headline contribution.

:class:`repro.core.flow.SequentialDelayATPG` implements the extended
FOGBUSTER algorithm of Figure 4: local test generation, forward propagation,
propagation justification, justification of the test frames, initialisation,
and the three-phase fault simulation, with backtracking between the steps.
"""

from repro.core.clocking import ClockSchedule, ClockSpeed
from repro.core.results import (
    FaultResult,
    FaultResultStatus,
    TestSequence,
    CampaignResult,
)
from repro.core.flow import SequentialDelayATPG, credit_fault_result
from repro.core.verify import (
    FaultGrade,
    VerificationReport,
    grade_test_sequence,
    verify_test_sequence,
)
from repro.core.reporting import (
    campaign_row,
    format_campaign_table,
    format_shard_summary,
    format_untestable_breakdown,
)

__all__ = [
    "ClockSchedule",
    "ClockSpeed",
    "FaultResult",
    "FaultResultStatus",
    "TestSequence",
    "CampaignResult",
    "SequentialDelayATPG",
    "credit_fault_result",
    "verify_test_sequence",
    "grade_test_sequence",
    "VerificationReport",
    "FaultGrade",
    "format_campaign_table",
    "campaign_row",
    "format_shard_summary",
    "format_untestable_breakdown",
]

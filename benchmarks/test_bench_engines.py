"""Micro-benchmarks of the individual engines (not a paper table).

These track the cost of the building blocks the campaign time is made of:
one TDgen run, one synchronisation, one propagation and one fault-simulation
pass on s27.  Useful for spotting performance regressions when extending the
library.
"""

import pytest

from repro.algebra.values import F, R, V0, V1
from repro.circuit.netlist import Line
from repro.core.flow import SequentialDelayATPG
from repro.data import load_circuit
from repro.faults.model import DelayFaultType, GateDelayFault
from repro.semilet.propagation import PropagationEngine
from repro.semilet.synchronization import Synchronizer
from repro.tdgen.engine import TDgen
from repro.tdgen.result import LocalTestStatus
from repro.tdsim.cpt import DelayFaultSimulator


@pytest.fixture(scope="module")
def s27():
    return load_circuit("s27")


def test_bench_tdgen_single_fault(benchmark, s27):
    tdgen = TDgen(s27)
    fault = GateDelayFault(Line("G11"), DelayFaultType.SLOW_TO_RISE)
    result = benchmark(tdgen.generate, fault)
    assert result.status is LocalTestStatus.SUCCESS


def test_bench_synchronizer(benchmark, s27):
    synchronizer = Synchronizer(s27)
    result = benchmark(synchronizer.synchronize, {"G5": 0, "G6": 1, "G7": 0})
    assert result.success


def test_bench_propagation(benchmark, s27):
    engine = PropagationEngine(s27)
    result = benchmark(
        engine.propagate, {"G5": 0, "G6": 1, "G7": 0}, {"G5": 0, "G6": 0, "G7": 0}
    )
    assert result.success


def test_bench_delay_fault_simulation(benchmark, s27):
    simulator = DelayFaultSimulator(s27)
    # A pattern with rich transition activity: 13 faults are robustly detected
    # at the primary output by critical path tracing.
    pi_values = {"G0": R, "G1": R, "G2": V0, "G3": V1}
    ppi_initial = {"G5": 0, "G6": 1, "G7": 0}
    detections = benchmark(simulator.simulate, pi_values, ppi_initial)
    assert detections


def test_bench_full_fault_flow(benchmark, s27):
    atpg = SequentialDelayATPG(s27)
    fault = GateDelayFault(Line("G13"), DelayFaultType.SLOW_TO_RISE)
    result = benchmark(atpg.generate_for_fault, fault)
    assert result.tested

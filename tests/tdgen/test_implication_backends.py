"""Differential harness: packed implication engine vs the reference oracle.

The packed engine (:class:`repro.tdgen.implication.PackedImplicationEngine`)
must be *bit-exact* against the interpreted reference for every evaluation
kind it offers — two-frame eight-valued set implication (stem and branch
faults, PPI coupling, partial assignments), candidate batches, incremental
cone sweeps chained like the TDgen search chains them, SEMILET pair frames
and three-valued justification frames — and whole campaigns must come out
*identical* under both backends (same fault statuses, same sequences, same
coverage).

Any mismatch prints the failing seed, so a reproduction is one
``random_circuit(seed)`` call away.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

import pytest

from repro.algebra.values import DelayValue, PI_VALUES
from repro.core.flow import SequentialDelayATPG
from repro.data import load_circuit
from repro.faults.model import enumerate_delay_faults, sample_faults
from repro.fausim.backends import default_backend, set_default_backend
from repro.tdgen.context import TDgenContext
from repro.tdgen.implication import (
    available_implication_engines,
    create_implication_engine,
    resolve_implication_backend,
)

from tests.fausim.test_packed_differential import random_circuit

SEEDS = list(range(0, 24, 2))

_STATE_FIELDS = (
    "signal_sets",
    "frame1",
    "fault_line_set",
    "ppi_pair_sets",
    "conflict_signal",
)


def _engines(circuit, robust=True, context=None):
    context = context or TDgenContext(circuit)
    return (
        create_implication_engine(circuit, "reference", robust=robust, context=context),
        create_implication_engine(circuit, "packed", robust=robust, context=context),
    )


def _partial_assignment(rng, circuit, density=0.6):
    pi_values: Dict[str, Optional[DelayValue]] = {
        pi: (rng.choice(PI_VALUES) if rng.random() < density else None)
        for pi in circuit.primary_inputs
    }
    ppi_initial: Dict[str, Optional[int]] = {
        ppi: (rng.randint(0, 1) if rng.random() < density else None)
        for ppi in circuit.pseudo_primary_inputs
    }
    return pi_values, ppi_initial


def _assert_states_equal(reference_state, packed_state, context_message):
    for field in _STATE_FIELDS:
        want = getattr(reference_state, field)
        got = getattr(packed_state, field)
        assert got == want, f"{context_message}: {field} differs"


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
def test_registry_names():
    assert set(available_implication_engines()) >= {"reference", "packed"}


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown implication engine"):
        resolve_implication_backend("no-such-engine")


def test_default_follows_simulation_backend():
    """One ``--backend`` choice governs simulation and implication alike."""
    previous = default_backend()
    try:
        set_default_backend("reference")
        assert resolve_implication_backend() == "reference"
        set_default_backend("packed")
        assert resolve_implication_backend() == "packed"
    finally:
        set_default_backend(previous)


def test_engine_classes_match_registry():
    circuit = random_circuit(0)
    reference, packed = _engines(circuit)
    assert reference.name == "reference"
    assert packed.name == "packed"


# --------------------------------------------------------------------------- #
# two-frame implication
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("robust", [True, False])
def test_implicate_bit_exact(seed, robust):
    """Partial assignments, stem + branch faults, fault-free pass."""
    circuit = random_circuit(seed)
    reference, packed = _engines(circuit, robust=robust)
    rng = random.Random(1234 + seed)
    faults = enumerate_delay_faults(circuit)

    for trial in range(3):
        pi_values, ppi_initial = _partial_assignment(rng, circuit)
        fault = rng.choice(faults) if trial else None
        want = reference.implicate(pi_values, ppi_initial, fault)
        got = packed.implicate(pi_values, ppi_initial, fault)
        _assert_states_equal(want, got, f"seed {seed} trial {trial} fault {fault}")


@pytest.mark.parametrize("seed", SEEDS)
def test_candidate_batches_bit_exact(seed):
    """A decision sweep over every alternative equals per-candidate runs."""
    circuit = random_circuit(seed)
    reference, packed = _engines(circuit)
    rng = random.Random(77 + seed)
    faults = enumerate_delay_faults(circuit)

    pi_values, ppi_initial = _partial_assignment(rng, circuit, density=0.5)
    fault = rng.choice(faults)
    unassigned = [pi for pi, value in pi_values.items() if value is None]
    if not unassigned:
        pi_values[circuit.primary_inputs[0]] = None
        unassigned = [circuit.primary_inputs[0]]
    name = rng.choice(unassigned)
    candidates = [("pi", name, value) for value in PI_VALUES] + [None]

    want = reference.implicate_candidates(pi_values, ppi_initial, fault, candidates)
    got = packed.implicate_candidates(pi_values, ppi_initial, fault, candidates)
    for index in range(len(candidates)):
        _assert_states_equal(
            want.state(index), got.state(index), f"seed {seed} candidate {index}"
        )


@pytest.mark.parametrize("seed", list(range(10)))
def test_incremental_chain_bit_exact(seed):
    """Sweeps chained decision-by-decision, exactly as the search chains them.

    Each sweep passes the previous state as ``base``, so the packed engine
    takes its incremental cone path; every candidate of every sweep must
    still match a from-scratch reference interpretation.
    """
    circuit = random_circuit(seed)
    context = TDgenContext(circuit)
    reference, packed = _engines(circuit, context=context)
    rng = random.Random(999 + seed)
    fault = rng.choice(enumerate_delay_faults(circuit))

    pi_values: Dict[str, Optional[DelayValue]] = {
        pi: None for pi in circuit.primary_inputs
    }
    ppi_initial: Dict[str, Optional[int]] = {
        ppi: None for ppi in circuit.pseudo_primary_inputs
    }
    reference_state = reference.implicate(pi_values, ppi_initial, fault)
    packed_state = packed.implicate(pi_values, ppi_initial, fault)

    variables = [("pi", pi) for pi in circuit.primary_inputs] + [
        ("ppi", ppi) for ppi in circuit.pseudo_primary_inputs
    ]
    rng.shuffle(variables)
    for kind, name in variables:
        domain = list(PI_VALUES) if kind == "pi" else [0, 1]
        rng.shuffle(domain)
        candidates = [(kind, name, value) for value in domain]
        want = reference.implicate_candidates(
            pi_values, ppi_initial, fault, candidates, base=reference_state
        )
        got = packed.implicate_candidates(
            pi_values, ppi_initial, fault, candidates, base=packed_state
        )
        for index in range(len(candidates)):
            _assert_states_equal(
                want.state(index), got.state(index),
                f"seed {seed} var {name} candidate {index}",
            )
        pick = rng.randrange(len(domain))
        if kind == "pi":
            pi_values[name] = domain[pick]
        else:
            ppi_initial[name] = domain[pick]
        reference_state = want.state(pick)
        packed_state = got.state(pick)


# --------------------------------------------------------------------------- #
# SEMILET frames
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", list(range(10)))
def test_pair_frames_bit_exact(seed):
    """Good/faulty pair frames, with free PPIs and candidate batches."""
    circuit = random_circuit(seed)
    reference, packed = _engines(circuit)
    rng = random.Random(555 + seed)

    for trial in range(3):
        pi_values = {
            pi: (rng.randint(0, 1) if rng.random() < 0.6 else None)
            for pi in circuit.primary_inputs
        }
        good = {
            ppi: rng.choice([0, 1, None]) for ppi in circuit.pseudo_primary_inputs
        }
        faulty = {
            ppi: (
                1 - good[ppi]
                if good[ppi] is not None and rng.random() < 0.3
                else good[ppi]
            )
            for ppi in circuit.pseudo_primary_inputs
        }
        free = {
            ppi: rng.choice([0, 1, None])
            for ppi in circuit.pseudo_primary_inputs
            if rng.random() < 0.4
        }
        want = reference.pair_frame(pi_values, good, faulty, free)
        got = packed.pair_frame(pi_values, good, faulty, free)
        assert got == want, f"seed {seed} trial {trial}"

        candidates = []
        unassigned = [pi for pi, value in pi_values.items() if value is None]
        if unassigned:
            candidates += [(unassigned[0], True, 0), (unassigned[0], True, 1)]
        open_free = [ppi for ppi, value in free.items() if value is None]
        if open_free:
            candidates += [(open_free[0], False, 1), (open_free[0], False, None)]
        if not candidates:
            continue
        want_batch = reference.pair_frame_candidates(
            pi_values, good, faulty, free, candidates
        )
        got_batch = packed.pair_frame_candidates(
            pi_values, good, faulty, free, candidates
        )
        for index in range(len(candidates)):
            assert got_batch.pairs(index) == want_batch.pairs(index), (
                f"seed {seed} trial {trial} candidate {index}"
            )


@pytest.mark.parametrize("seed", list(range(10)))
def test_justification_frames_bit_exact(seed):
    """Three-valued frames with per-candidate overrides."""
    circuit = random_circuit(seed)
    reference, packed = _engines(circuit)
    rng = random.Random(321 + seed)

    for trial in range(3):
        pi_values = {
            pi: (rng.randint(0, 1) if rng.random() < 0.6 else None)
            for pi in circuit.primary_inputs
        }
        ppi_values = {
            ppi: rng.choice([0, 1, None]) for ppi in circuit.pseudo_primary_inputs
        }
        assert packed.frame(pi_values, ppi_values) == reference.frame(
            pi_values, ppi_values
        ), f"seed {seed} trial {trial}"

        name = circuit.primary_inputs[0]
        candidates = [None] + [(name, True, value) for value in (0, 1, None)]
        want = reference.frame_candidates(pi_values, ppi_values, candidates)
        got = packed.frame_candidates(pi_values, ppi_values, candidates)
        for index in range(len(candidates)):
            assert got.frame(index) == want.frame(index), (
                f"seed {seed} trial {trial} candidate {index}"
            )


# --------------------------------------------------------------------------- #
# end-to-end campaign equivalence
# --------------------------------------------------------------------------- #
def _campaign_fingerprint(campaign):
    """Everything a campaign decided, in a comparable shape."""
    rows = []
    for result in campaign.fault_results:
        sequence = None
        if result.sequence is not None:
            s = result.sequence
            sequence = (
                tuple(tuple(sorted(v.items())) for v in s.initialization_vectors),
                tuple(sorted(s.v1.items())),
                tuple(sorted(s.v2.items())),
                tuple(tuple(sorted(v.items())) for v in s.propagation_vectors),
                s.observation_point,
                s.observed_at_po,
            )
        rows.append(
            (
                str(result.fault),
                result.status.value,
                result.phase.value,
                result.local_backtracks,
                result.sequential_backtracks,
                result.attempts,
                tuple(str(f) for f in result.additionally_detected),
                sequence,
            )
        )
    return rows


def _run_campaign(circuit, faults, backend):
    atpg = SequentialDelayATPG(circuit, backend=backend)
    return atpg.run(faults)


def test_campaign_equivalence_s27():
    """Full s27 campaign: identical results under both backends."""
    reference = _run_campaign(
        load_circuit("s27"), enumerate_delay_faults(load_circuit("s27")), "reference"
    )
    circuit = load_circuit("s27")
    packed = _run_campaign(circuit, enumerate_delay_faults(circuit), "packed")
    assert _campaign_fingerprint(packed) == _campaign_fingerprint(reference)
    assert (packed.tested, packed.untestable, packed.aborted) == (
        reference.tested,
        reference.untestable,
        reference.aborted,
    )


def test_campaign_equivalence_surrogate():
    """Sampled s838-surrogate campaign: identical results under both backends."""
    reference_circuit = load_circuit("s838", scale=0.25, seed=0)
    packed_circuit = load_circuit("s838", scale=0.25, seed=0)
    reference_faults = sample_faults(enumerate_delay_faults(reference_circuit), 16)
    packed_faults = sample_faults(enumerate_delay_faults(packed_circuit), 16)
    reference = _run_campaign(reference_circuit, reference_faults, "reference")
    packed = _run_campaign(packed_circuit, packed_faults, "packed")
    assert _campaign_fingerprint(packed) == _campaign_fingerprint(reference)

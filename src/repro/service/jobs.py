"""Job model of the ATPG daemon: specs, lifecycle, priority queue, persistence.

A *job* is one submitted campaign: a circuit reference (registry name or
inline ``.bench`` text) plus the campaign knobs the CLI exposes
(``--jobs``, ``--partition``, ``--seed``, ``--backend``, ``--max-faults``,
``--time-limit``, robustness, backtrack limits) and a scheduling priority.
Jobs run strictly one at a time — campaign workers already saturate the
machine — in priority order (higher first), FIFO within a priority.

Lifecycle::

    queued -> running -> done
                      -> failed        (exception; error recorded)
                      -> interrupted   (graceful shutdown / cancel mid-run;
                                        journal checkpointed, resumed on
                                        the next daemon start)
    queued -> cancelled

The job table is persisted to ``<state-dir>/jobs.json`` on every transition
(atomic replace), finished results to ``<state-dir>/results/<id>.json`` and
every in-flight campaign's per-fault records to
``<state-dir>/journals/<id>.jsonl`` through the orchestrate journal — which
is what makes a SIGTERM'd (or even SIGKILL'd) daemon resumable.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
from typing import Dict, List, Optional

from repro.circuit.bench import parse_bench
from repro.circuit.netlist import Circuit
from repro.data import list_circuits, load_circuit
from repro.orchestrate import OrchestratorConfig
from repro.orchestrate.partition import PARTITION_MODES

#: Every state a job can be in; terminal states keep their result/error.
JOB_STATES = ("queued", "running", "done", "failed", "interrupted", "cancelled")

#: States in which the job will not run again in this daemon's lifetime.
TERMINAL_STATES = ("done", "failed", "cancelled")


@dataclasses.dataclass
class JobSpec:
    """Validated submission payload of one campaign job."""

    circuit: Optional[str] = None
    bench: Optional[str] = None
    name: Optional[str] = None
    scale: float = 1.0
    priority: int = 0
    jobs: int = 2
    partition: str = "size-aware"
    seed: int = 0
    backend: Optional[str] = None
    robust: bool = True
    backtrack_limit: int = 100
    max_target_faults: Optional[int] = None
    time_limit_s: Optional[float] = None
    rpg_prefix: bool = False
    rpg_budget: int = 256
    rpg_window: int = 16
    #: Path to a persistent campaign store (``docs/STORE.md``) holding a
    #: finished campaign for the same circuit name and settings: the job
    #: then runs incrementally, re-targeting only the faults inside the
    #: netlist edit's influence cone (mirrors ``--incremental-from``).
    incremental_from: Optional[str] = None

    _FIELDS = (
        "circuit", "bench", "name", "scale", "priority", "jobs", "partition",
        "seed", "backend", "robust", "backtrack_limit", "max_target_faults",
        "time_limit_s", "rpg_prefix", "rpg_budget", "rpg_window",
        "incremental_from",
    )

    @classmethod
    def from_request(cls, payload: object) -> "JobSpec":
        """Build a spec from a request body, raising ValueError on bad input."""
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        unknown = sorted(set(payload) - set(cls._FIELDS))
        if unknown:
            raise ValueError(f"unknown field(s): {', '.join(unknown)}")
        spec = cls()
        for field, caster in (
            ("circuit", str), ("bench", str), ("name", str), ("partition", str),
            ("backend", str), ("incremental_from", str),
        ):
            value = payload.get(field)
            if value is not None:
                if not isinstance(value, str):
                    raise ValueError(f"{field!r} must be a string")
                setattr(spec, field, caster(value))
        for field in ("scale", "time_limit_s"):
            value = payload.get(field)
            if value is not None:
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise ValueError(f"{field!r} must be a number")
                setattr(spec, field, float(value))
        for field in (
            "priority", "jobs", "seed", "backtrack_limit", "max_target_faults",
            "rpg_budget", "rpg_window",
        ):
            value = payload.get(field)
            if value is not None:
                if isinstance(value, bool) or not isinstance(value, int):
                    raise ValueError(f"{field!r} must be an integer")
                setattr(spec, field, value)
        for field in ("robust", "rpg_prefix"):
            if field in payload:
                if not isinstance(payload[field], bool):
                    raise ValueError(f"{field!r} must be a boolean")
                setattr(spec, field, payload[field])
        spec.validate()
        return spec

    def validate(self) -> None:
        """Check the cross-field constraints; raises ValueError."""
        if (self.circuit is None) == (self.bench is None):
            raise ValueError("exactly one of 'circuit' and 'bench' is required")
        if self.circuit is not None and self.circuit not in list_circuits():
            raise ValueError(
                f"unknown circuit {self.circuit!r}; known: {', '.join(list_circuits())}"
            )
        if self.partition not in PARTITION_MODES:
            raise ValueError(
                f"unknown partition mode {self.partition!r}; known: {PARTITION_MODES}"
            )
        if self.jobs < 1:
            raise ValueError("'jobs' must be >= 1")
        if self.scale <= 0:
            raise ValueError("'scale' must be > 0")
        if self.backtrack_limit < 1:
            raise ValueError("'backtrack_limit' must be >= 1")
        if self.max_target_faults is not None and self.max_target_faults < 1:
            raise ValueError("'max_target_faults' must be >= 1")
        if self.rpg_budget < 1:
            raise ValueError("'rpg_budget' must be >= 1")
        if self.rpg_window < 1:
            raise ValueError("'rpg_window' must be >= 1")
        if self.time_limit_s is not None:
            if self.time_limit_s <= 0:
                raise ValueError("'time_limit_s' must be > 0")
            if self.jobs != 1:
                raise ValueError(
                    "'time_limit_s' requires 'jobs' == 1 (mirrors the CLI: a "
                    "time-limited campaign runs serially and is not resumable)"
                )
        if self.backend is not None:
            from repro.fausim.backends import available_backends

            if self.backend not in available_backends():
                raise ValueError(
                    f"unknown backend {self.backend!r}; known: "
                    f"{', '.join(sorted(available_backends()))}"
                )
        if self.incremental_from is not None:
            # The incremental engine is the serial loop with a store-backed
            # memo; anything that reshapes the loop breaks the bit-identity
            # contract (mirrors the CLI's --incremental-from conflicts).
            if self.rpg_prefix:
                raise ValueError("'incremental_from' does not support 'rpg_prefix'")
            if self.time_limit_s is not None:
                raise ValueError("'incremental_from' does not support 'time_limit_s'")

    def build_circuit(self) -> Circuit:
        """Materialise the submitted circuit (registry load or bench parse)."""
        if self.bench is not None:
            return parse_bench(self.bench, name=self.name or "submitted")
        return load_circuit(self.circuit, scale=self.scale)

    def orchestrator_config(self) -> OrchestratorConfig:
        """The orchestrate-layer settings this spec maps to."""
        return OrchestratorConfig(
            jobs=self.jobs,
            partition=self.partition,
            campaign_seed=self.seed,
            robust=self.robust,
            local_backtrack_limit=self.backtrack_limit,
            sequential_backtrack_limit=self.backtrack_limit,
            backend=self.backend,
            rpg_prefix=self.rpg_prefix,
            rpg_budget=self.rpg_budget,
            rpg_window=self.rpg_window,
        )

    def to_json(self) -> Dict[str, object]:
        """JSON form used by the job table and the status endpoints."""
        return {field: getattr(self, field) for field in self._FIELDS}

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "JobSpec":
        """Rebuild a persisted spec (assumed already validated at submit)."""
        spec = cls()
        for field in cls._FIELDS:
            if field in payload:
                setattr(spec, field, payload[field])
        return spec


@dataclasses.dataclass
class Job:
    """One submitted campaign and its live state."""

    id: str
    seq: int
    spec: JobSpec
    status: str = "queued"
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    cache_hit: bool = False
    resumed: bool = False
    error: Optional[str] = None
    total_faults: Optional[int] = None
    recorded: int = 0
    #: Random-prefix sequences applied so far (hybrid campaigns only).
    prefix_recorded: int = 0
    result_json: Optional[Dict[str, object]] = None
    #: Per-job metrics document (see :func:`repro.obs.export.metrics_document`)
    #: of the *current process's* run; in-memory only — a restarted daemon
    #: serves the persisted result without it.
    metrics_json: Optional[Dict[str, object]] = None
    #: Per-fault progress records of the *current process's* run (journal
    #: format); guarded by ``events_lock`` because the campaign thread
    #: appends while the event loop reads.
    events: List[Dict[str, object]] = dataclasses.field(default_factory=list)
    events_lock: threading.Lock = dataclasses.field(default_factory=threading.Lock)
    cancel_requested: bool = False

    @property
    def priority(self) -> int:
        """Scheduling priority (higher runs first)."""
        return self.spec.priority

    def sort_key(self):
        """Heap key: higher priority first, then submission order."""
        return (-self.spec.priority, self.seq)

    def add_event(self, record: Dict[str, object]) -> None:
        """Append one progress record (called from the campaign thread)."""
        with self.events_lock:
            self.events.append(record)
            if record.get("type") == "campaign":
                self.total_faults = record.get("total_faults")
                self.recorded += int(record.get("resumed_records", 0))
                self.prefix_recorded += int(record.get("resumed_prefix", 0))
            elif record.get("type") in ("fault", "drop"):
                self.recorded += 1
            elif record.get("type") == "prefix":
                self.prefix_recorded += 1

    def events_since(self, offset: int) -> List[Dict[str, object]]:
        """Snapshot of the progress records from ``offset`` on."""
        with self.events_lock:
            return list(self.events[offset:])

    def to_public_json(self) -> Dict[str, object]:
        """The status payload of ``GET /jobs/<id>`` (result excluded)."""
        return {
            "id": self.id,
            "status": self.status,
            "priority": self.spec.priority,
            "spec": self.spec.to_json(),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "cache_hit": self.cache_hit,
            "resumed": self.resumed,
            "error": self.error,
            "total_faults": self.total_faults,
            "recorded": self.recorded,
            "prefix_recorded": self.prefix_recorded,
            "events": len(self.events),
        }

    def to_state_json(self) -> Dict[str, object]:
        """The persisted form written to ``jobs.json``."""
        return {
            "id": self.id,
            "seq": self.seq,
            "spec": self.spec.to_json(),
            "status": self.status,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "cache_hit": self.cache_hit,
            "resumed": self.resumed,
            "error": self.error,
        }

    @classmethod
    def from_state_json(cls, payload: Dict[str, object]) -> "Job":
        """Rebuild a persisted job row."""
        job = cls(
            id=str(payload["id"]),
            seq=int(payload["seq"]),
            spec=JobSpec.from_json(payload["spec"]),
            status=str(payload["status"]),
            submitted_at=float(payload["submitted_at"]),
            cache_hit=bool(payload.get("cache_hit", False)),
            resumed=bool(payload.get("resumed", False)),
        )
        job.started_at = payload.get("started_at")
        job.finished_at = payload.get("finished_at")
        job.error = payload.get("error")
        return job


class JobStore:
    """The daemon's job table plus its on-disk persistence.

    All mutation happens on the event loop thread; persistence writes are
    atomic (temp file + ``os.replace``) so a kill can never leave a torn
    ``jobs.json``.
    """

    def __init__(self, state_dir: str) -> None:
        self.state_dir = str(state_dir)
        self.jobs: Dict[str, Job] = {}
        self.next_seq = 1
        os.makedirs(os.path.join(self.state_dir, "journals"), exist_ok=True)
        os.makedirs(os.path.join(self.state_dir, "results"), exist_ok=True)

    # ------------------------------------------------------------------ #
    # paths
    # ------------------------------------------------------------------ #
    @property
    def table_path(self) -> str:
        """Path of the persisted job table."""
        return os.path.join(self.state_dir, "jobs.json")

    def journal_path(self, job: Job) -> str:
        """Path of one job's campaign journal."""
        return os.path.join(self.state_dir, "journals", f"{job.id}.jsonl")

    def result_path(self, job: Job) -> str:
        """Path of one job's persisted result."""
        return os.path.join(self.state_dir, "results", f"{job.id}.json")

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def create(self, spec: JobSpec) -> Job:
        """Register a new queued job and persist the table."""
        seq = self.next_seq
        self.next_seq += 1
        job = Job(id=f"job-{seq:06d}", seq=seq, spec=spec, submitted_at=time.time())
        self.jobs[job.id] = job
        self.save()
        return job

    def get(self, job_id: str) -> Optional[Job]:
        """The job with this id, or None."""
        return self.jobs.get(job_id)

    def save(self) -> None:
        """Atomically persist the job table."""
        payload = {
            "next_seq": self.next_seq,
            "jobs": [job.to_state_json() for job in sorted(self.jobs.values(), key=lambda j: j.seq)],
        }
        tmp = self.table_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, indent=1)
        os.replace(tmp, self.table_path)

    def save_result(self, job: Job) -> None:
        """Persist one finished job's CampaignResult JSON."""
        tmp = self.result_path(job) + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(job.result_json, handle, sort_keys=True)
        os.replace(tmp, self.result_path(job))

    def load_result(self, job: Job) -> Optional[Dict[str, object]]:
        """Fetch a finished job's result, from memory or from disk."""
        if job.result_json is not None:
            return job.result_json
        try:
            with open(self.result_path(job), "r", encoding="utf-8") as handle:
                job.result_json = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            return None
        return job.result_json

    def load(self) -> List[Job]:
        """Load the persisted table; returns the jobs needing (re-)execution.

        ``queued`` jobs re-enter the queue as they were.  ``running`` and
        ``interrupted`` jobs — in-flight when the previous daemon stopped —
        are re-queued with ``resumed=True`` so execution continues from
        their journal.  Terminal jobs are kept for status/result queries.
        """
        try:
            with open(self.table_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return []
        self.next_seq = int(payload.get("next_seq", 1))
        pending: List[Job] = []
        for row in payload.get("jobs", []):
            job = Job.from_state_json(row)
            self.jobs[job.id] = job
            if job.status in ("running", "interrupted"):
                job.status = "queued"
                job.resumed = True
                job.error = None  # the interruption note is now stale
                pending.append(job)
            elif job.status == "queued":
                pending.append(job)
        if pending:
            self.save()
        return pending

"""Shared fixtures of the benchmark harness.

Every benchmark regenerates one artefact of the paper (a table, a
figure-level observation, or an ablation from DESIGN.md).  The configuration
knobs live in :mod:`benchconfig`.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_HERE = Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"
for path in (str(_SRC), str(_HERE)):
    if path not in sys.path:
        sys.path.insert(0, path)


def pytest_collection_modifyitems(items):
    """Mark every test in this directory with the ``bench`` marker."""
    for item in items:
        if str(item.fspath).startswith(str(_HERE)):
            item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def campaign_cache():
    """Session-wide cache of campaign results, shared between benchmarks."""
    return {}

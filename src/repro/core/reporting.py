"""Rendering of campaign results in the style of the paper's Table 3.

Besides the Table 3 row itself this module renders the satellite reports the
CLI prints next to it: the untestable breakdown, the random-prefix summary,
the per-shard summary of an orchestrated campaign and — when ``--profile``
is on — the instrumentation cost breakdown (:func:`format_profile`).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.results import CampaignResult
from repro.obs.metrics import MetricsSnapshot, split_metric_key

_TABLE3_COLUMNS = ("circuit", "tested", "untstbl", "aborted", "#pat", "time[s]")


def campaign_row(result: CampaignResult) -> Dict[str, object]:
    """One Table 3 row as a dictionary."""
    row = result.as_table3_row()
    return {
        "circuit": row["circuit"],
        "tested": row["tested"],
        "untstbl": row["untestable"],
        "aborted": row["aborted"],
        "#pat": row["patterns"],
        "time[s]": row["time_s"],
    }


def _render_table(
    columns: Sequence[str],
    rows: Sequence[Mapping[str, object]],
    title: Optional[str] = None,
) -> List[str]:
    """Render rows as a right-aligned fixed-width text table (as lines)."""
    widths = {column: len(column) for column in columns}
    for row in rows:
        for column in columns:
            widths[column] = max(widths[column], len(str(row[column])))
    lines: List[str] = [title, ""] if title else []
    lines.append("  ".join(f"{column:>{widths[column]}}" for column in columns))
    lines.append("  ".join("-" * widths[column] for column in columns))
    for row in rows:
        lines.append("  ".join(f"{str(row[column]):>{widths[column]}}" for column in columns))
    return lines


def format_campaign_table(results: Sequence[CampaignResult], title: str = "Benchmark results") -> str:
    """Format several campaign results as a fixed-width text table.

    The column layout mirrors Table 3 of the paper: circuit, tested,
    untestable, aborted, number of patterns (initialisation and propagation
    vectors included) and CPU time in seconds.
    """
    rows = [campaign_row(result) for result in results]
    return "\n".join(_render_table(_TABLE3_COLUMNS, rows, title=title))


_SHARD_COLUMNS = (
    "shard", "assigned", "targeted", "dropped", "tested", "untstbl", "aborted",
    "absorbed", "time[s]",
)


def format_shard_summary(
    shard_stats: Sequence[Mapping[str, object]],
    recomputed: int = 0,
    title: Optional[str] = None,
) -> str:
    """Per-shard progress summary of one orchestrated campaign.

    ``shard_stats`` is what :class:`repro.orchestrate.coordinator.
    CampaignOrchestrator` collects from its workers: per shard the number of
    assigned faults (``-`` in the dynamic work-queue mode), how many were
    explicitly targeted vs. dropped by a broadcast detection set, the verdict
    split, how many foreign detection broadcasts the shard absorbed and its
    wall time.  ``recomputed`` is the coordinator's count of faults the
    replay merge had to recompute serially.
    """
    rows: List[Dict[str, object]] = []
    for stats in shard_stats:
        assigned = stats.get("assigned")
        rows.append(
            {
                "shard": stats.get("worker", "?"),
                "assigned": "-" if assigned is None else assigned,
                "targeted": stats.get("targeted", 0),
                "dropped": stats.get("dropped", 0),
                "tested": stats.get("tested", 0),
                "untstbl": stats.get("untestable", 0),
                "aborted": stats.get("aborted", 0),
                "absorbed": stats.get("absorbed_broadcasts", 0),
                "time[s]": stats.get("seconds", 0),
            }
        )
    lines = _render_table(_SHARD_COLUMNS, rows, title=title)
    lines.append(f"replay merge recomputed {recomputed} over-dropped fault(s)")
    return "\n".join(lines)


_PHASE_COLUMNS = ("phase", "calls", "time[s]")
_FAULT_COST_COLUMNS = (
    "fault", "status", "engine", "time[s]", "decisions", "backtracks",
    "sweeps", "words",
)
_ABORT_COLUMNS = ("abort phase", "faults")


def format_profile(
    snapshot: MetricsSnapshot,
    fault_costs: Sequence[object] = (),
    top_n: int = 10,
    title: str = "Cost breakdown",
) -> str:
    """The ``--profile`` report: phase times, priciest faults, abort reasons.

    Args:
        snapshot: a campaign registry snapshot
            (:meth:`~repro.obs.metrics.MetricsRegistry.snapshot`).
        fault_costs: per-fault :class:`~repro.obs.tracing.FaultCost` records
            (the flow's ``cost_log`` or the coordinator's ``fault_costs``);
            the ``top_n`` most expensive by wall time are tabulated.
        top_n: how many faults to show.
        title: heading of the report.

    Three tables: wall time per flow phase (from the
    ``repro_phase_seconds`` timers), the top-N most expensive faults with
    their search-effort attribution, and the abort-reason histogram (from
    ``repro_fault_aborts_total``).
    """
    lines: List[str] = [title, ""]

    phase_rows: List[Dict[str, object]] = []
    for key in sorted(snapshot.timers):
        name, labels = split_metric_key(key)
        if name != "repro_phase_seconds":
            continue
        timer = snapshot.timers[key]
        phase = dict(labels).get("phase", "-")
        phase_rows.append(
            {
                "phase": phase,
                "calls": int(timer["count"]),
                "time[s]": f"{timer['sum']:.3f}",
            }
        )
    if phase_rows:
        lines.extend(_render_table(_PHASE_COLUMNS, phase_rows, title="Time per phase"))
        lines.append("")

    costs = sorted(fault_costs, key=lambda cost: cost.seconds, reverse=True)
    if costs and top_n > 0:
        rows = [
            {
                "fault": cost.fault,
                "status": cost.status,
                "engine": cost.engine,
                "time[s]": f"{cost.seconds:.4f}",
                "decisions": cost.decisions,
                "backtracks": cost.local_backtracks + cost.sequential_backtracks,
                "sweeps": cost.implication_sweeps,
                "words": cost.words_simulated,
            }
            for cost in costs[: max(top_n, 0)]
        ]
        lines.extend(
            _render_table(
                _FAULT_COST_COLUMNS,
                rows,
                title=f"Top {len(rows)} most expensive faults (of {len(costs)})",
            )
        )
        lines.append("")

    abort_rows: List[Dict[str, object]] = []
    for key in sorted(snapshot.counters):
        name, labels = split_metric_key(key)
        if name != "repro_fault_aborts_total":
            continue
        abort_rows.append(
            {
                "abort phase": dict(labels).get("phase", "-"),
                "faults": int(snapshot.counters[key]),
            }
        )
    if abort_rows:
        lines.extend(_render_table(_ABORT_COLUMNS, abort_rows, title="Aborts by phase"))
    while lines and lines[-1] == "":
        lines.pop()
    return "\n".join(lines)


def format_untestable_breakdown(results: Sequence[CampaignResult]) -> str:
    """Per-circuit breakdown of untestable faults (experiment E7).

    Shows how many untestable faults were proven untestable combinationally
    (by TDgen alone) and how many are only *sequentially* untestable (the
    propagation or initialisation phase fails), mirroring the discussion in
    section 6 of the paper.
    """
    lines = ["circuit      comb.untestable   seq.untestable   aborted"]
    for result in results:
        breakdown = result.untestable_breakdown()
        lines.append(
            f"{result.circuit_name:<12} {breakdown['combinationally_untestable']:>15} "
            f"{breakdown['sequentially_untestable']:>16} {result.aborted:>9}"
        )
    return "\n".join(lines)


def format_prefix_summary(results: Sequence[CampaignResult]) -> str:
    """Per-circuit summary of the random-pattern prefix of a hybrid campaign.

    Shows how many random sequences Phase A applied, how many faults they
    stripped from the deterministic residue, and why the adaptive stopping
    rule handed over to Phase B (see :mod:`repro.core.prefilter`).
    """
    lines = ["circuit      prefix.seqs   prefix.detected   stop"]
    for result in results:
        reason = result.prefix_stop_reason or "-"
        lines.append(
            f"{result.circuit_name:<12} {result.prefix_applied:>11} "
            f"{result.prefix_detected:>17}   {reason}"
        )
    return "\n".join(lines)

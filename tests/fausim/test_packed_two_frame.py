"""Differential harness: packed eight-valued two-frame sim vs the reference.

:class:`repro.fausim.packed_two_frame.PackedTwoFrameSimulator` must agree
*signal for signal and slot for slot* with the reference interpreter
(:func:`repro.tdgen.simulation.simulate_two_frame`) for every injected fault:
stem and branch faults, robust and non-robust tables, PI/PPI stem injection
and reconvergent circuits.  Random circuits come from the same seeded
generator the three-valued differential harness uses.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

import pytest

from repro.algebra.sets import is_singleton, single_value
from repro.algebra.values import DelayValue, PI_VALUES
from repro.faults.model import GateDelayFault, enumerate_delay_faults
from repro.fausim.packed_two_frame import PackedTwoFrameSimulator
from repro.tdgen.context import TDgenContext
from repro.tdgen.simulation import simulate_two_frame

from tests.fausim.test_packed_differential import random_circuit

SEEDS = list(range(0, 40))


def full_pattern(rng: random.Random, circuit):
    """A fully specified random two-pattern stimulus."""
    pi_values: Dict[str, DelayValue] = {
        pi: rng.choice(PI_VALUES) for pi in circuit.primary_inputs
    }
    ppi_initial: Dict[str, int] = {
        ppi: rng.randint(0, 1) for ppi in circuit.pseudo_primary_inputs
    }
    return pi_values, ppi_initial


def reference_values(
    context: TDgenContext,
    pi_values,
    ppi_initial,
    fault: Optional[GateDelayFault],
    robust: bool,
) -> Dict[str, DelayValue]:
    state = simulate_two_frame(context, pi_values, ppi_initial, fault=fault, robust=robust)
    values: Dict[str, DelayValue] = {}
    for signal, value_set in state.signal_sets.items():
        assert is_singleton(value_set), f"{signal} not determined"
        values[signal] = single_value(value_set)
    return values


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("robust", [True, False])
def test_fault_slots_bit_exact(seed, robust):
    """Every injected fault slot equals a dedicated reference pass."""
    circuit = random_circuit(seed)
    context = TDgenContext(circuit)
    packed = PackedTwoFrameSimulator(circuit, robust=robust)
    rng = random.Random(7000 + seed)
    pi_values, ppi_initial = full_pattern(rng, circuit)

    universe = enumerate_delay_faults(circuit)
    sample = rng.sample(universe, min(len(universe), packed.word_bits - 1))
    faults: List[Optional[GateDelayFault]] = [None] + sample

    result = packed.simulate(pi_values, ppi_initial, faults)
    for pattern, fault in enumerate(faults):
        want = reference_values(context, pi_values, ppi_initial, fault, robust)
        got = result.values_for_pattern(pattern)
        assert got == want, f"seed {seed} fault {fault}"


@pytest.mark.parametrize("seed", SEEDS[::4])
def test_frame1_matches_reference(seed):
    """The shared initial frame equals the reference three-valued pass."""
    circuit = random_circuit(seed)
    context = TDgenContext(circuit)
    packed = PackedTwoFrameSimulator(circuit)
    rng = random.Random(8000 + seed)
    pi_values, ppi_initial = full_pattern(rng, circuit)

    state = simulate_two_frame(context, pi_values, ppi_initial)
    result = packed.simulate(pi_values, ppi_initial, (None,))
    assert result.frame1 == state.frame1


def test_fault_effect_mask(s27):
    """The aggregated Rc/Fc mask flags exactly the fault-carrying slots."""
    packed = PackedTwoFrameSimulator(s27)
    context = TDgenContext(s27)
    rng = random.Random(11)
    universe = enumerate_delay_faults(s27)
    for _ in range(20):
        pi_values, ppi_initial = full_pattern(rng, s27)
        faults = [None] + rng.sample(universe, 10)
        result = packed.simulate(pi_values, ppi_initial, faults)
        for po in s27.primary_outputs:
            mask = result.fault_effect_mask(po)
            for pattern, fault in enumerate(faults):
                want = reference_values(context, pi_values, ppi_initial, fault, True)
                assert bool(mask & (1 << pattern)) == want[po].fault


def test_value_accessors(s27):
    packed = PackedTwoFrameSimulator(s27)
    rng = random.Random(12)
    pi_values, ppi_initial = full_pattern(rng, s27)
    result = packed.simulate(pi_values, ppi_initial, (None,))
    for signal, value in result.values_for_pattern(0).items():
        assert result.value(signal, 0) is value
    with pytest.raises(ValueError):
        result.value(s27.primary_outputs[0], 5)  # slot beyond the width


def test_requires_fully_specified_pattern(s27):
    packed = PackedTwoFrameSimulator(s27)
    rng = random.Random(13)
    pi_values, ppi_initial = full_pattern(rng, s27)
    missing_pi = dict(pi_values)
    del missing_pi[s27.primary_inputs[0]]
    with pytest.raises(ValueError, match="fully specified"):
        packed.simulate(missing_pi, ppi_initial)
    missing_state = dict(ppi_initial)
    del missing_state[s27.pseudo_primary_inputs[0]]
    with pytest.raises(ValueError, match="fully specified"):
        packed.simulate(pi_values, missing_state)


def test_slot_count_validation(s27):
    packed = PackedTwoFrameSimulator(s27, word_bits=4)
    rng = random.Random(14)
    pi_values, ppi_initial = full_pattern(rng, s27)
    with pytest.raises(ValueError):
        packed.simulate(pi_values, ppi_initial, ())
    with pytest.raises(ValueError):
        packed.simulate(pi_values, ppi_initial, [None] * 5)
    with pytest.raises(ValueError):
        PackedTwoFrameSimulator(s27, word_bits=0)

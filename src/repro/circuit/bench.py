"""ISCAS'89 ``.bench`` format parser and writer.

The ``.bench`` format is the de-facto exchange format of the ISCAS'85/'89
benchmark suites::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G5 = DFF(G10)
    G14 = NOT(G0)
    G8 = AND(G14, G6)

Gate aliases ``BUFF`` and ``INV`` are accepted.  The parser is permissive
about whitespace and case but strict about undefined signals and duplicate
definitions (checked by :func:`repro.circuit.validate.validate_circuit`).
"""

from __future__ import annotations

import hashlib
import re
from pathlib import Path
from typing import Iterable, List, Union

from repro.circuit.gates import GateType, gate_type_from_name
from repro.circuit.netlist import Circuit

_IO_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^)\s]+)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(r"^([^=\s]+)\s*=\s*([A-Za-z]+)\s*\(\s*(.*?)\s*\)$")


class BenchParseError(ValueError):
    """Raised when a ``.bench`` description cannot be parsed."""

    def __init__(self, message: str, line_number: int = 0, line: str = "") -> None:
        location = f" (line {line_number}: {line.strip()!r})" if line_number else ""
        super().__init__(message + location)
        self.line_number = line_number
        self.line = line


def parse_bench(text: Union[str, Iterable[str]], name: str = "circuit") -> Circuit:
    """Parse a ``.bench`` netlist from a string or an iterable of lines."""
    if isinstance(text, str):
        lines = text.splitlines()
    else:
        lines = list(text)

    circuit = Circuit(name)
    pending_outputs: List[str] = []

    for number, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            keyword, signal = io_match.group(1).upper(), io_match.group(2)
            if keyword == "INPUT":
                if signal in circuit:
                    raise BenchParseError(f"duplicate definition of {signal!r}", number, raw)
                circuit.add_input(signal)
            else:
                pending_outputs.append(signal)
            continue
        gate_match = _GATE_RE.match(line)
        if gate_match:
            output, type_name, args = gate_match.groups()
            try:
                gate_type = gate_type_from_name(type_name)
            except ValueError as exc:
                raise BenchParseError(str(exc), number, raw) from exc
            fanin = [arg.strip() for arg in args.split(",") if arg.strip()]
            if not fanin:
                raise BenchParseError(f"gate {output!r} has no inputs", number, raw)
            if gate_type is GateType.DFF and len(fanin) != 1:
                raise BenchParseError(f"DFF {output!r} must have exactly one input", number, raw)
            if output in circuit:
                raise BenchParseError(f"duplicate definition of {output!r}", number, raw)
            circuit.add_gate(output, gate_type, fanin)
            continue
        raise BenchParseError("unrecognised statement", number, raw)

    for signal in pending_outputs:
        circuit.add_output(signal)

    _check_references(circuit)
    return circuit


def parse_bench_file(path: Union[str, Path], name: str = "") -> Circuit:
    """Parse a ``.bench`` file from disk."""
    path = Path(path)
    text = path.read_text()
    return parse_bench(text, name or path.stem)


def write_bench(circuit: Circuit) -> str:
    """Serialise a circuit back into ``.bench`` text.

    Gates are emitted in definition order; the output is accepted by
    :func:`parse_bench` (round-trip safe).
    """
    lines: List[str] = [f"# {circuit.name}"]
    stats = circuit.stats()
    lines.append(
        f"# {stats['primary_inputs']} inputs, {stats['primary_outputs']} outputs, "
        f"{stats['flip_flops']} D-type flipflops, {stats['gates']} gates"
    )
    for pi in circuit.primary_inputs:
        lines.append(f"INPUT({pi})")
    lines.append("")
    for po in circuit.primary_outputs:
        lines.append(f"OUTPUT({po})")
    lines.append("")
    for gate in circuit.gates.values():
        if gate.is_input:
            continue
        type_name = "BUFF" if gate.gate_type is GateType.BUF else gate.gate_type.value
        lines.append(f"{gate.name} = {type_name}({', '.join(gate.fanin)})")
    lines.append("")
    return "\n".join(lines)


def _check_references(circuit: Circuit) -> None:
    """Verify that every referenced signal is defined."""
    for gate in circuit.gates.values():
        for source in gate.fanin:
            if source not in circuit:
                raise BenchParseError(
                    f"gate {gate.name!r} references undefined signal {source!r}"
                )
    for po in circuit.primary_outputs:
        if po not in circuit:
            raise BenchParseError(f"primary output {po!r} is never driven")


def netlist_digest(circuit: Circuit) -> str:
    """Fingerprint of a netlist: SHA-256 over its canonical ``.bench`` text.

    The circuit *name* is deliberately excluded — the same netlist submitted
    under two names is still the same compile work and the same campaign
    (fault sites are named after signals, not after the circuit).  The
    service caches (:mod:`repro.service.cache`) and the campaign store
    (:mod:`repro.store`) both key on this digest, so a netlist stored by one
    layer is recognised by the other.
    """
    lines = [line for line in write_bench(circuit).splitlines() if not line.startswith("#")]
    return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()[:16]

"""Gate delay fault model and fault-list bookkeeping."""

import pytest

from repro.algebra.values import F, FC, R, RC
from repro.circuit.netlist import Line, LineKind
from repro.faults.model import (
    DelayFaultType,
    FaultList,
    FaultStatus,
    GateDelayFault,
    enumerate_delay_faults,
)


def test_fault_type_values():
    str_fault = DelayFaultType.SLOW_TO_RISE
    stf_fault = DelayFaultType.SLOW_TO_FALL
    assert str_fault.activation_value is R
    assert str_fault.fault_value is RC
    assert str_fault.good_final_value == 1
    assert str_fault.faulty_final_value == 0
    assert stf_fault.activation_value is F
    assert stf_fault.fault_value is FC
    assert stf_fault.good_final_value == 0
    assert stf_fault.faulty_final_value == 1


def test_fault_str_and_accessors():
    fault = GateDelayFault(Line("n1"), DelayFaultType.SLOW_TO_RISE)
    assert str(fault) == "n1 StR"
    assert fault.signal == "n1"
    assert fault.activation_value is R
    branch_fault = GateDelayFault(
        Line("n1", LineKind.BRANCH, "g2", 1), DelayFaultType.SLOW_TO_FALL
    )
    assert "n1->g2[1]" in str(branch_fault)


def test_enumerate_delay_faults_counts(s27):
    faults = enumerate_delay_faults(s27)
    # Two faults per line.
    assert len(faults) == 2 * s27.line_count()
    # Every stem appears.
    stems = {fault.line.signal for fault in faults if fault.line.is_stem}
    assert stems == set(s27.signals)


def test_enumerate_without_branches(s27):
    faults = enumerate_delay_faults(s27, include_branches=False)
    assert all(fault.line.is_stem for fault in faults)
    assert len(faults) == 2 * len(s27.signals)


def test_enumerate_without_dff_outputs(s27):
    faults = enumerate_delay_faults(s27, include_dff_outputs=False)
    signals = {fault.line.signal for fault in faults if fault.line.is_stem}
    assert "G5" not in signals


def test_fault_list_lifecycle(s27):
    faults = enumerate_delay_faults(s27)
    fault_list = FaultList(faults)
    assert len(fault_list) == len(faults)
    assert fault_list.counts()["untargeted"] == len(faults)

    first, second, third = faults[0], faults[1], faults[2]
    fault_list.mark(first, FaultStatus.TESTED)
    fault_list.mark(second, FaultStatus.UNTESTABLE)
    fault_list.mark(third, FaultStatus.ABORTED)
    counts = fault_list.counts()
    assert counts["tested"] == 1
    assert counts["untestable"] == 1
    assert counts["aborted"] == 1
    assert fault_list.status(first) is FaultStatus.TESTED
    assert first not in fault_list.untargeted()
    assert fault_list.coverage() == pytest.approx(1 / len(faults))


def test_fault_list_never_downgrades_tested(s27):
    faults = enumerate_delay_faults(s27)
    fault_list = FaultList(faults)
    fault_list.mark(faults[0], FaultStatus.TESTED)
    fault_list.mark(faults[0], FaultStatus.ABORTED)
    assert fault_list.status(faults[0]) is FaultStatus.TESTED


def test_mark_tested_returns_newly_marked(s27):
    faults = enumerate_delay_faults(s27)
    fault_list = FaultList(faults)
    assert fault_list.mark_tested(faults[:3]) == 3
    assert fault_list.mark_tested(faults[:3]) == 0
    assert fault_list.mark_tested(faults[2:5]) == 2


def test_fault_list_rejects_unknown_and_empty(s27):
    faults = enumerate_delay_faults(s27)
    fault_list = FaultList(faults[:4])
    stranger = faults[10]
    with pytest.raises(KeyError):
        fault_list.mark(stranger, FaultStatus.TESTED)
    with pytest.raises(ValueError):
        FaultList([])


def test_with_status_filter(s27):
    faults = enumerate_delay_faults(s27)
    fault_list = FaultList(faults)
    fault_list.mark(faults[0], FaultStatus.UNTESTABLE)
    assert fault_list.with_status(FaultStatus.UNTESTABLE) == [faults[0]]


def test_faults_are_hashable_and_comparable():
    one = GateDelayFault(Line("x"), DelayFaultType.SLOW_TO_RISE)
    two = GateDelayFault(Line("x"), DelayFaultType.SLOW_TO_RISE)
    other = GateDelayFault(Line("x"), DelayFaultType.SLOW_TO_FALL)
    assert one == two
    assert hash(one) == hash(two)
    assert one != other
    assert len({one, two, other}) == 2

"""TDgen decision procedure.

A PODEM-style branch-and-bound: decisions are made only on primary input
pairs (four possible values each: ``0``, ``1``, ``R``, ``F``) and on the
initial-frame values of the pseudo primary inputs (two possible values each).
Every other signal is derived by the forward implication of the
backend-dispatched engine (:mod:`repro.tdgen.implication`): when a decision
node is opened, *all* alternatives of its variable are submitted as one
candidate batch — the packed engine implies them in a single word-parallel
sweep over the compiled netlist, and later backtracks to the node flip to an
already-implied slot instead of re-running the forward pass.  The
per-decision search residue — D-frontier objective selection and the
multiple backtrace to an unassigned decision variable — goes through the
engine's search kernels (:mod:`repro.tdgen.search`), so the ``backend``
choice governs those walks too: ``packed`` scans the compiled slot column,
``reference`` keeps the interpreted walks.  Because each decision node
enumerates the complete domain of its variable, exhausting the decision
tree proves the fault robustly untestable in the combinational sense;
hitting the backtrack limit aborts the fault (Table 3's "aborted" column).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.algebra.sets import (
    ValueSet,
    contains,
    has_fault_value,
    is_singleton,
    members,
    single_value,
)
from repro.algebra.values import DelayValue, F, R, V0, V1
from repro.circuit.netlist import Circuit
from repro.faults.model import GateDelayFault
from repro.obs.metrics import resolve_metrics
from repro.tdgen.context import TDgenContext
from repro.tdgen.implication import CandidateStates, create_implication_engine
from repro.tdgen.result import LocalTest, LocalTestStatus
from repro.tdgen.simulation import TwoFrameState

_PI_VALUE_ORDER: Tuple[DelayValue, ...] = (V0, V1, R, F)


@dataclasses.dataclass
class _Decision:
    """One node of the decision tree.

    ``states`` holds the implication result of every candidate value of the
    variable (computed in one batch when the node was opened); ``cursor`` is
    the index of the currently assigned candidate.  Flipping to the next
    alternative reuses ``states`` instead of re-running the forward pass.
    """

    kind: str  # "pi" or "ppi"
    name: str
    alternatives: List[object]
    states: CandidateStates
    cursor: int = 0


class TDgen:
    """Local robust gate delay fault test generator.

    Args:
        circuit: circuit (or a prebuilt :class:`TDgenContext`).
        robust: use the robust algebra (paper Table 1) or the relaxed
            non-robust variant.
        backtrack_limit: abort the fault after this many backtracks
            (paper: 100).
        max_decisions: hard safety bound on the number of decisions per fault.
        prefer_po_observation: steer propagation towards primary outputs
            before pseudo primary outputs.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`
            (defaults to the no-op null registry); counts decisions and
            implication sweeps per :meth:`generate` call.
        backend: implication engine backend (see
            :mod:`repro.tdgen.implication`); ``None`` selects the process
            default shared with the simulation backends.
    """

    def __init__(
        self,
        circuit: Circuit,
        robust: bool = True,
        backtrack_limit: int = 100,
        max_decisions: int = 20000,
        prefer_po_observation: bool = True,
        context: Optional[TDgenContext] = None,
        metrics: Optional[object] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.circuit = circuit
        self.context = context or TDgenContext(circuit)
        self.robust = robust
        self.backtrack_limit = backtrack_limit
        self.max_decisions = max_decisions
        self.prefer_po_observation = prefer_po_observation
        self.metrics = resolve_metrics(metrics)
        self.implication = create_implication_engine(
            circuit, backend=backend, robust=robust, context=self.context
        )
        self.implication.set_metrics(self.metrics, site="tdgen")
        #: Search kernels of the same backend: objective selection and
        #: multiple backtrace (see :mod:`repro.tdgen.search`).
        self.search = self.implication.search_kernels()
        self._ppo_signals = list(dict.fromkeys(circuit.pseudo_primary_outputs))
        self._po_signals = list(dict.fromkeys(circuit.primary_outputs))
        self._deadline: Optional[float] = None

    def _expired(self) -> bool:
        """True when the caller-supplied generation deadline has passed."""
        return self._deadline is not None and time.perf_counter() > self._deadline

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def generate(
        self,
        fault: GateDelayFault,
        required_ppo_values: Optional[Dict[str, int]] = None,
        blocked_observation: Sequence[str] = (),
        allow_ppo_observation: bool = True,
        blocked_states: Sequence[Dict[str, int]] = (),
        deadline: Optional[float] = None,
    ) -> LocalTest:
        """Generate a robust two-pattern test for ``fault`` (see :meth:`_generate`).

        Thin metrics wrapper: with a live registry it counts the search's
        decisions and implication sweeps (one batch sweep per opened
        decision node plus the root sweep); the search itself is identical
        either way.
        """
        result = self._generate(
            fault,
            required_ppo_values=required_ppo_values,
            blocked_observation=blocked_observation,
            allow_ppo_observation=allow_ppo_observation,
            blocked_states=blocked_states,
            deadline=deadline,
        )
        if self.metrics.enabled:
            if result.decisions:
                self.metrics.inc("repro_decisions_total", result.decisions)
            self.metrics.inc(
                "repro_implication_sweeps_total", result.decisions + 1, site="tdgen"
            )
        return result

    def _generate(
        self,
        fault: GateDelayFault,
        required_ppo_values: Optional[Dict[str, int]] = None,
        blocked_observation: Sequence[str] = (),
        allow_ppo_observation: bool = True,
        blocked_states: Sequence[Dict[str, int]] = (),
        deadline: Optional[float] = None,
    ) -> LocalTest:
        """Generate a robust two-pattern test for ``fault``.

        Args:
            fault: the targeted gate delay fault.
            required_ppo_values: extra justification objectives — PPO signals
                that must settle to a clean steady value (used by the
                propagation-justification step of FOGBUSTER).
            blocked_observation: observation signals the caller does not want
                the fault effect steered to (used when the flow backtracks
                between its phases).
            allow_ppo_observation: when ``False`` only primary outputs count as
                observation points (the enhanced-scan baseline sets this).
            blocked_states: partial initial-state requirements that the caller
                has proven unreachable (unsynchronisable); the search treats
                any assignment that requires one of them as a conflict.  This
                is the inter-phase backtracking channel of FOGBUSTER: when the
                initialisation phase fails, the flow re-enters local test
                generation with the failing state blocked.
            deadline: optional :func:`time.perf_counter` timestamp after which
                the search aborts the fault (campaign time budgets are passed
                down here so a single slow fault cannot blow the budget).
        """
        constraints = dict(required_ppo_values or {})
        blocked: Set[str] = set(blocked_observation)
        self._blocked_states = [dict(state) for state in blocked_states if state]
        self._deadline = deadline

        pi_values: Dict[str, Optional[DelayValue]] = {
            pi: None for pi in self.circuit.primary_inputs
        }
        ppi_initial: Dict[str, Optional[int]] = {
            ppi: None for ppi in self.circuit.pseudo_primary_inputs
        }

        stack: List[_Decision] = []
        backtracks = 0
        decisions = 0

        # The implication of the empty assignment; every later state comes
        # from a decision node's candidate batch, so the forward pass runs
        # once per *batch*, not once per loop iteration.
        root_state = self.implication.implicate(pi_values, ppi_initial, fault)
        state = root_state

        while True:
            if self._expired():
                return LocalTest(
                    fault=fault,
                    status=LocalTestStatus.ABORTED,
                    backtracks=backtracks,
                    decisions=decisions,
                )
            outcome = self._classify(state, fault, constraints, blocked, allow_ppo_observation)

            if outcome == "success":
                return self._build_result(
                    fault, state, pi_values, ppi_initial, blocked,
                    allow_ppo_observation, backtracks, decisions,
                )

            if outcome == "conflict":
                flipped = False
                while stack:
                    decision = stack[-1]
                    self._unassign(decision, pi_values, ppi_initial)
                    if decision.alternatives:
                        value = decision.alternatives.pop(0)
                        self._assign(decision, value, pi_values, ppi_initial)
                        decision.cursor += 1
                        state = decision.states.state(decision.cursor)
                        backtracks += 1
                        flipped = True
                        break
                    stack.pop()
                if not flipped:
                    return LocalTest(
                        fault=fault,
                        status=LocalTestStatus.UNTESTABLE,
                        backtracks=backtracks,
                        decisions=decisions,
                    )
                if backtracks > self.backtrack_limit:
                    return LocalTest(
                        fault=fault,
                        status=LocalTestStatus.ABORTED,
                        backtracks=backtracks,
                        decisions=decisions,
                    )
                continue

            # outcome == "continue": pick an objective and a new decision.
            objective = self._objective(state, fault, constraints, blocked, allow_ppo_observation)
            decision_key, preferred = (None, None)
            if objective is not None:
                decision_key, preferred = self.search.backtrace(
                    state, fault, objective, pi_values, ppi_initial
                )
            if decision_key is None:
                decision_key, preferred = self._fallback_decision(pi_values, ppi_initial)
            if decision_key is None:
                # Everything is assigned yet neither success nor conflict was
                # reported; treat as a conflict to force backtracking.
                stackless_conflict = not stack
                if stackless_conflict:
                    return LocalTest(
                        fault=fault,
                        status=LocalTestStatus.UNTESTABLE,
                        backtracks=backtracks,
                        decisions=decisions,
                    )
                decision = stack[-1]
                self._unassign(decision, pi_values, ppi_initial)
                if decision.alternatives:
                    self._assign(decision, decision.alternatives.pop(0), pi_values, ppi_initial)
                    decision.cursor += 1
                    state = decision.states.state(decision.cursor)
                    backtracks += 1
                else:
                    stack.pop()
                    # The assignment is now the popped node's prefix, whose
                    # implication is the parent's current candidate state.
                    state = (
                        stack[-1].states.state(stack[-1].cursor)
                        if stack
                        else root_state
                    )
                if backtracks > self.backtrack_limit:
                    return LocalTest(
                        fault=fault,
                        status=LocalTestStatus.ABORTED,
                        backtracks=backtracks,
                        decisions=decisions,
                    )
                continue

            kind, name = decision_key
            domain = list(_PI_VALUE_ORDER) if kind == "pi" else [0, 1]
            ordered = [preferred] + [value for value in domain if value != preferred]
            # Imply every alternative of the new decision variable in one
            # batch.  Passing the current state lets the packed engine run
            # the sweep incrementally over just the variable's influence
            # cone instead of the whole circuit.
            states = self.implication.implicate_candidates(
                pi_values, ppi_initial, fault,
                [(kind, name, value) for value in ordered],
                base=state,
            )
            decision = _Decision(
                kind=kind, name=name, alternatives=ordered[1:], states=states
            )
            self._assign_value(kind, name, ordered[0], pi_values, ppi_initial)
            state = states.state(0)
            stack.append(decision)
            decisions += 1
            if decisions > self.max_decisions:
                return LocalTest(
                    fault=fault,
                    status=LocalTestStatus.ABORTED,
                    backtracks=backtracks,
                    decisions=decisions,
                )

    # ------------------------------------------------------------------ #
    # classification of a simulation state
    # ------------------------------------------------------------------ #
    def _observation_signals(
        self, blocked: Set[str], allow_ppo_observation: bool
    ) -> List[str]:
        signals = [po for po in self._po_signals if po not in blocked]
        if allow_ppo_observation:
            signals.extend(ppo for ppo in self._ppo_signals if ppo not in blocked)
        return signals

    def _classify(
        self,
        state: TwoFrameState,
        fault: GateDelayFault,
        constraints: Dict[str, int],
        blocked: Set[str],
        allow_ppo_observation: bool,
    ) -> str:
        if state.has_conflict():
            return "conflict"

        # Blocked (unsynchronisable) initial states: if the current decisions
        # already pin the state to one of them, force a backtrack.
        for blocked_state in getattr(self, "_blocked_states", []):
            if all(
                is_singleton(state.ppi_pair_sets.get(ppi, 0))
                and single_value(state.ppi_pair_sets[ppi]).initial == value
                for ppi, value in blocked_state.items()
            ):
                return "conflict"

        # Activation check: the fault-carrying value must still be possible at
        # the fault line.
        if not contains(state.fault_line_set, fault.fault_value):
            return "conflict"

        # Constraint feasibility: every required PPO value must still be able
        # to settle to the requested value (robust mode additionally demands a
        # clean steady waveform, see section 6 of the paper).
        for ppo, value in constraints.items():
            if not self._constraint_possible(state.signal_sets[ppo], value):
                return "conflict"

        observation = self._observation_signals(blocked, allow_ppo_observation)
        # X-path check: some observation point must still be able to carry the
        # fault effect.
        if not any(has_fault_value(state.signal_sets[signal]) for signal in observation):
            return "conflict"

        # Success: a guaranteed fault value at an observation point and all
        # constraints definitely satisfied.
        observed = [
            signal
            for signal in observation
            if is_singleton(state.signal_sets[signal])
            and has_fault_value(state.signal_sets[signal])
        ]
        if observed:
            satisfied = all(
                self._constraint_satisfied(state.signal_sets[ppo], value)
                for ppo, value in constraints.items()
            )
            if satisfied:
                return "success"
        return "continue"

    def _constraint_possible(self, value_set: ValueSet, required: int) -> bool:
        """Can this PPO still be specified to SEMILET with the required value?"""
        if self.robust:
            needed = V0 if required == 0 else V1
            return contains(value_set, needed)
        return any(
            value.final == required and not value.fault for value in members(value_set)
        )

    def _constraint_satisfied(self, value_set: ValueSet, required: int) -> bool:
        """Is the required PPO value guaranteed under the current assignment?"""
        if not is_singleton(value_set):
            return False
        value = single_value(value_set)
        if value.fault:
            return False
        if self.robust:
            return value.is_hazard_free_steady and value.final == required
        return value.final == required

    # ------------------------------------------------------------------ #
    # objectives and backtrace
    # ------------------------------------------------------------------ #
    def _objective(
        self,
        state: TwoFrameState,
        fault: GateDelayFault,
        constraints: Dict[str, int],
        blocked: Set[str],
        allow_ppo_observation: bool,
    ) -> Optional[Tuple[str, DelayValue]]:
        # 1. Activate the fault: drive the fault site to the provoking transition.
        if not (
            is_singleton(state.fault_line_set)
            and contains(state.fault_line_set, fault.fault_value)
        ):
            return (fault.line.signal, fault.activation_value)

        # 2. Satisfy outstanding justification constraints (propagation
        #    justification requirements coming back from SEMILET).
        for ppo, value in constraints.items():
            needed = V0 if value == 0 else V1
            value_set = state.signal_sets[ppo]
            if not (is_singleton(value_set) and contains(value_set, needed)):
                return (ppo, needed)

        # 3. Propagate: pick a D-frontier gate and set an off-path input via
        #    the backend's search kernels (compiled scan on ``packed``).
        return self.search.propagation_objective(state, fault, self.prefer_po_observation)

    def _fallback_decision(
        self,
        pi_values: Dict[str, Optional[DelayValue]],
        ppi_initial: Dict[str, Optional[int]],
    ) -> Tuple[Optional[Tuple[str, str]], Optional[object]]:
        for pi in self.circuit.primary_inputs:
            if pi_values[pi] is None:
                return ("pi", pi), V0
        for ppi in self.circuit.pseudo_primary_inputs:
            if ppi_initial[ppi] is None:
                return ("ppi", ppi), 0
        return None, None

    # ------------------------------------------------------------------ #
    # assignment bookkeeping
    # ------------------------------------------------------------------ #
    @staticmethod
    def _assign_value(
        kind: str,
        name: str,
        value: object,
        pi_values: Dict[str, Optional[DelayValue]],
        ppi_initial: Dict[str, Optional[int]],
    ) -> None:
        if kind == "pi":
            pi_values[name] = value  # type: ignore[assignment]
        else:
            ppi_initial[name] = value  # type: ignore[assignment]

    def _assign(
        self,
        decision: _Decision,
        value: object,
        pi_values: Dict[str, Optional[DelayValue]],
        ppi_initial: Dict[str, Optional[int]],
    ) -> None:
        self._assign_value(decision.kind, decision.name, value, pi_values, ppi_initial)

    @staticmethod
    def _unassign(
        decision: _Decision,
        pi_values: Dict[str, Optional[DelayValue]],
        ppi_initial: Dict[str, Optional[int]],
    ) -> None:
        if decision.kind == "pi":
            pi_values[decision.name] = None
        else:
            ppi_initial[decision.name] = None

    # ------------------------------------------------------------------ #
    # result construction
    # ------------------------------------------------------------------ #
    def _build_result(
        self,
        fault: GateDelayFault,
        state: TwoFrameState,
        pi_values: Dict[str, Optional[DelayValue]],
        ppi_initial: Dict[str, Optional[int]],
        blocked: Set[str],
        allow_ppo_observation: bool,
        backtracks: int,
        decisions: int,
    ) -> LocalTest:
        observation = self._observation_signals(blocked, allow_ppo_observation)
        observed = [
            signal
            for signal in observation
            if is_singleton(state.signal_sets[signal])
            and has_fault_value(state.signal_sets[signal])
        ]
        po_set = set(self._po_signals)
        observed_pos = [signal for signal in observed if signal in po_set]
        observed_ppos = [signal for signal in observed if signal not in po_set]

        ppo_final_values: Dict[str, Optional[int]] = {}
        ppo_fault_effects: Dict[str, DelayValue] = {}
        for ppo in self._ppo_signals:
            value_set = state.signal_sets[ppo]
            if is_singleton(value_set):
                value = single_value(value_set)
                if value.fault:
                    ppo_fault_effects[ppo] = value
                    ppo_final_values[ppo] = None
                elif value.is_hazard_free_steady:
                    # Only equal, hazard-free initial/final values may be
                    # specified to SEMILET (paper section 6).
                    ppo_final_values[ppo] = value.final
                elif not self.robust:
                    # Non-robust model: the stabilisation guarantee is waived,
                    # so transitioning or hazardous PPOs may be specified by
                    # their settled final value.  This is exactly the
                    # restriction the paper blames for most sequentially
                    # untestable faults.
                    ppo_final_values[ppo] = value.final
                else:
                    ppo_final_values[ppo] = None
            else:
                ppo_final_values[ppo] = None

        return LocalTest(
            fault=fault,
            status=LocalTestStatus.SUCCESS,
            pi_values=dict(pi_values),
            ppi_initial={ppi: value for ppi, value in ppi_initial.items() if value is not None},
            observation_points=observed_pos + observed_ppos,
            observed_at_po=bool(observed_pos),
            ppo_final_values=ppo_final_values,
            ppo_fault_effects=ppo_fault_effects,
            backtracks=backtracks,
            decisions=decisions,
        )

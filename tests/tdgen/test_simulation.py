"""Two-frame eight-valued forward implication with fault injection."""

import pytest

from repro.algebra.sets import is_singleton, members, set_of, single_value
from repro.algebra.values import F, FC, H0, H1, R, RC, V0, V1
from repro.circuit.netlist import Line, LineKind
from repro.faults.model import DelayFaultType, GateDelayFault
from repro.tdgen.context import TDgenContext
from repro.tdgen.simulation import (
    gate_input_sets,
    good_machine_values,
    simulate_two_frame,
)


def test_fault_free_full_assignment(and_chain):
    context = TDgenContext(and_chain)
    values = good_machine_values(context, {"a": R, "b": V1, "c": V0}, {})
    assert values["ab"] is R
    assert values["bc"] is V0
    assert values["y"] is R


def test_unassigned_inputs_give_full_pi_sets(and_chain):
    context = TDgenContext(and_chain)
    state = simulate_two_frame(context, {}, {})
    assert members(state.signal_sets["a"]) == [V0, V1, R, F]
    assert not is_singleton(state.signal_sets["y"])


def test_partial_assignment_narrows_sets(and_chain):
    context = TDgenContext(and_chain)
    state = simulate_two_frame(context, {"b": V0}, {})
    # b = 0 forces both AND gates and the output to a clean zero.
    assert state.signal_sets["y"] == set_of(V0)


def test_stem_fault_injection(and_chain):
    context = TDgenContext(and_chain)
    fault = GateDelayFault(Line("ab"), DelayFaultType.SLOW_TO_RISE)
    state = simulate_two_frame(context, {"a": R, "b": V1, "c": V0}, {}, fault)
    assert single_value(state.signal_sets["ab"]) is RC
    assert single_value(state.signal_sets["y"]) is RC
    assert single_value(state.fault_line_set) is RC


def test_branch_fault_injection_only_affects_one_sink(s27):
    context = TDgenContext(s27)
    # G8 fans out to G15 and G16; fault only on the branch to G15.
    fault = GateDelayFault(Line("G8", LineKind.BRANCH, "G15", 1), DelayFaultType.SLOW_TO_RISE)
    # G0 = F makes G14 rise; with the state (0, 1, 0) and G3 = 1 the initial
    # frame drives G11 to 1, so G6 stays at 1 and G8 = AND(G14, G6) rises.
    pi_values = {"G0": F, "G1": V0, "G2": V0, "G3": V1}
    ppi_initial = {"G5": 0, "G6": 1, "G7": 0}
    state = simulate_two_frame(context, pi_values, ppi_initial, fault)
    # The stem set itself is not fault carrying...
    assert not any(value.fault for value in members(state.signal_sets["G8"]))
    # ...but the faulted branch view is.
    inputs_g15 = gate_input_sets(state, context, "G15", fault)
    assert any(value.fault for value in members(inputs_g15[1]))
    inputs_g16 = gate_input_sets(state, context, "G16", fault)
    assert not any(value.fault for value in members(inputs_g16[1]))


def test_activation_requires_matching_transition(and_chain):
    context = TDgenContext(and_chain)
    fault = GateDelayFault(Line("ab"), DelayFaultType.SLOW_TO_RISE)
    # ab is falling, so an StR fault is not provoked and no Rc appears.
    state = simulate_two_frame(context, {"a": F, "b": V1, "c": V0}, {}, fault)
    assert single_value(state.signal_sets["ab"]) is F
    assert not any(value.fault for value in members(state.signal_sets["y"]))


def test_state_register_coupling(toggle_ff):
    """The PPI's final value equals the PPO's initial-frame value."""
    context = TDgenContext(toggle_ff)
    # enable pair = R (0 then 1); initial q = 1.
    # Frame 1: next_q = enable XOR q = 0 XOR 1 = 1, so q's final value is 1:
    # the PPI pair must be steady 1.
    state = simulate_two_frame(context, {"enable": R}, {"q": 1})
    assert single_value(state.ppi_pair_sets["q"]) is V1
    # With initial q = 0: frame 1 next_q = 0, so q stays 0.
    state = simulate_two_frame(context, {"enable": R}, {"q": 0})
    assert single_value(state.ppi_pair_sets["q"]) is V0


def test_state_register_coupling_transition(s27):
    """A PPI may legitimately see a transition between the two frames."""
    context = TDgenContext(s27)
    pi_values = {"G0": V1, "G1": V0, "G2": V1, "G3": V0}
    ppi_initial = {"G5": 0, "G6": 0, "G7": 1}
    state = simulate_two_frame(context, pi_values, ppi_initial, None)
    for ppi in ("G5", "G6", "G7"):
        value = single_value(state.ppi_pair_sets[ppi])
        assert value.initial == ppi_initial[ppi]
        # final value must equal the PPO's initial-frame value
        ppo = s27.ppo_of_ppi(ppi)
        assert value.final == state.frame1[ppo]


def test_unassigned_ppi_initial_keeps_all_options(toggle_ff):
    context = TDgenContext(toggle_ff)
    state = simulate_two_frame(context, {"enable": V0}, {})
    # q's initial value is unknown, so its frame-1 next value is unknown too;
    # the conservative implication keeps all four hazard-free candidates (the
    # init/final correlation through the unknown is intentionally not tracked).
    assert set(members(state.ppi_pair_sets["q"])) == {V0, V1, R, F}
    # Once the initial value is decided, the coupling rule pins the pair down.
    state = simulate_two_frame(context, {"enable": V0}, {"q": 1})
    assert members(state.ppi_pair_sets["q"]) == [V1]


def test_good_machine_values_requires_full_assignment(and_chain):
    context = TDgenContext(and_chain)
    with pytest.raises(ValueError):
        good_machine_values(context, {"a": R, "b": V1}, {})


def test_hazard_generation_through_reconvergence():
    """R AND F produces a hazardous steady zero (0h)."""
    from repro.circuit.builder import CircuitBuilder

    builder = CircuitBuilder("hazard")
    builder.inputs(["a", "b"])
    builder.and_("y", ["a", "b"])
    builder.output("y")
    circuit = builder.build()
    context = TDgenContext(circuit)
    values = good_machine_values(context, {"a": R, "b": F}, {})
    assert values["y"] is H0


def test_has_conflict_flag(and_chain):
    context = TDgenContext(and_chain)
    state = simulate_two_frame(context, {"a": R, "b": V1, "c": V0}, {})
    assert not state.has_conflict()
    assert state.definite_value("y") is R
    assert state.definite_value("a") is R

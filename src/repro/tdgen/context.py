"""Precomputed per-circuit data shared by all TDgen runs.

Building the levelised order, the fanout map and the observability distance
metric once per circuit (instead of once per targeted fault) keeps the cost
of the campaign dominated by the actual search.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.circuit.levelize import combinational_order, levelize
from repro.circuit.netlist import Circuit


class TDgenContext:
    """Static analysis results for one circuit.

    Attributes:
        circuit: the circuit the context was built for.
        order: combinational gates in topological evaluation order.
        levels: level of every signal of the combinational block.
        distance_to_po: per signal, the minimum number of gates between the
            signal and a primary output (``None`` if no structural path).
        distance_to_observation: like ``distance_to_po`` but counting pseudo
            primary outputs as observation points too.
    """

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self.order: List[str] = combinational_order(circuit)
        self.levels: Dict[str, int] = levelize(circuit)
        self.distance_to_po: Dict[str, Optional[int]] = self._distances(pos_only=True)
        self.distance_to_observation: Dict[str, Optional[int]] = self._distances(pos_only=False)

    def _distances(self, pos_only: bool) -> Dict[str, Optional[int]]:
        """Breadth-first distance from every signal to an observation point."""
        distance: Dict[str, Optional[int]] = {name: None for name in self.circuit.gates}
        frontier: List[str] = []
        ppos = set(self.circuit.pseudo_primary_outputs)
        for signal in self.circuit.gates:
            if self.circuit.is_primary_output(signal) or (not pos_only and signal in ppos):
                distance[signal] = 0
                frontier.append(signal)
        # Walk backwards over the combinational block (reverse topological order
        # visits are not needed; a BFS over the fanin relation suffices because
        # all edge weights are one).
        pending = list(frontier)
        while pending:
            signal = pending.pop(0)
            gate = self.circuit.gate(signal)
            if not gate.gate_type.is_combinational:
                continue
            next_distance = (distance[signal] or 0) + 1
            for source in gate.fanin:
                current = distance[source]
                if current is None or current > next_distance:
                    distance[source] = next_distance
                    pending.append(source)
        return distance

    def observation_distance(self, signal: str, pos_only: bool = False) -> Optional[int]:
        """Distance to the nearest observation point, or ``None`` if unreachable."""
        table = self.distance_to_po if pos_only else self.distance_to_observation
        return table.get(signal)

    def sorted_by_observability(self, signals: List[str], pos_only: bool = False) -> List[str]:
        """Sort signals by increasing distance to an observation point."""

        def key(signal: str) -> Tuple[int, str]:
            distance = self.observation_distance(signal, pos_only)
            return (distance if distance is not None else 1_000_000, signal)

        return sorted(signals, key=key)

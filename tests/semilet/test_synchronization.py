"""Reverse time processing: synchronising (initialising) sequence search."""

import pytest

from repro.fausim.logic_sim import simulate_sequence
from repro.semilet.synchronization import Synchronizer


def _verify_sync(circuit, required_state, result):
    assert result.success
    final = simulate_sequence(circuit, result.vectors).final_state
    for ppi, value in required_state.items():
        assert final[ppi] == value, f"{ppi} not established by {result.vectors}"


def test_empty_requirement_needs_no_vectors(s27):
    result = Synchronizer(s27).synchronize({})
    assert result.success
    assert result.vectors == []
    assert result.length == 0


def test_single_bit_requirements_on_s27(s27):
    synchronizer = Synchronizer(s27)
    for requirement in ({"G7": 0}, {"G7": 1}, {"G5": 0}, {"G6": 1}, {"G6": 0}):
        result = synchronizer.synchronize(requirement)
        _verify_sync(s27, requirement, result)


def test_multi_bit_requirement_on_s27(s27):
    synchronizer = Synchronizer(s27)
    requirement = {"G5": 0, "G6": 1, "G7": 0}
    result = synchronizer.synchronize(requirement)
    _verify_sync(s27, requirement, result)


def test_unreachable_state_is_reported(s27):
    """G5 = 1 and G6 = 1 simultaneously is unreachable in s27.

    G5 is loaded from G10 = NOR(G14, G11) and G6 from G11 = NOR(G5, G9); for
    both to become 1 in the same frame, G11 would have to be 0 and 1 at once.
    """
    synchronizer = Synchronizer(s27)
    result = synchronizer.synchronize({"G5": 1, "G6": 1})
    assert not result.success
    assert result.vectors == []


def test_reset_like_flip_flop(resettable_ff):
    synchronizer = Synchronizer(resettable_ff)
    # q = 0 is reachable in one frame by asserting reset.
    to_zero = synchronizer.synchronize({"q": 0})
    _verify_sync(resettable_ff, {"q": 0}, to_zero)
    assert to_zero.length == 1
    # q = 1 needs reset low and data high; reachable from the all-X state in
    # one frame as well because data=1 dominates the OR.
    to_one = synchronizer.synchronize({"q": 1})
    _verify_sync(resettable_ff, {"q": 1}, to_one)


def test_toggle_ff_is_not_synchronizable(toggle_ff):
    """A pure toggle flip-flop without reset cannot be initialised."""
    synchronizer = Synchronizer(toggle_ff)
    result = synchronizer.synchronize({"q": 0})
    assert not result.success


def test_max_frames_limits_sequence_length(s27):
    synchronizer = Synchronizer(s27, max_frames=1)
    # Requirements needing two frames must fail under a one-frame limit.
    result = synchronizer.synchronize({"G6": 1})
    deep = result.success and result.length <= 1
    shallow_failed = not result.success
    assert deep or shallow_failed


def test_sequences_only_assign_primary_inputs(s27):
    synchronizer = Synchronizer(s27)
    result = synchronizer.synchronize({"G5": 0, "G7": 1})
    assert result.success
    for vector in result.vectors:
        assert set(vector) <= set(s27.primary_inputs)


def test_surrogate_circuit_partially_synchronizable(small_surrogate):
    """The surrogate generator produces a mix of easy and hard state bits."""
    synchronizer = Synchronizer(small_surrogate, backtrack_limit=200)
    successes = 0
    attempts = 0
    for ppi in small_surrogate.pseudo_primary_inputs:
        for value in (0, 1):
            attempts += 1
            result = synchronizer.synchronize({ppi: value})
            if result.success:
                successes += 1
                _verify_sync(small_surrogate, {ppi: value}, result)
    assert successes > 0
    assert attempts == 2 * len(small_surrogate.pseudo_primary_inputs)

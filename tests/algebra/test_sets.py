"""Tests of the value-set (bit mask) layer used by the implication engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algebra.sets import (
    EMPTY_SET,
    FULL_SET,
    PI_SET,
    backward_input_sets,
    contains,
    evaluate_gate_sets,
    format_set,
    has_fault_value,
    is_singleton,
    members,
    only_fault_values,
    set_of,
    single_value,
)
from repro.algebra.tables import evaluate_delay_gate
from repro.algebra.values import ALL_VALUES, F, FC, H1, R, RC, V0, V1
from repro.circuit.gates import GateType

value_sets = st.integers(min_value=0, max_value=FULL_SET)
gate_types = st.sampled_from(
    [GateType.AND, GateType.OR, GateType.NAND, GateType.NOR, GateType.XOR, GateType.XNOR]
)


def test_set_of_and_members_roundtrip():
    mask = set_of(V0, RC, H1)
    assert members(mask) == [V0, H1, RC]
    assert contains(mask, RC)
    assert not contains(mask, F)


def test_singleton_helpers():
    assert is_singleton(set_of(R))
    assert single_value(set_of(R)) is R
    assert not is_singleton(EMPTY_SET)
    assert not is_singleton(set_of(R, F))
    with pytest.raises(ValueError):
        single_value(set_of(R, F))


def test_fault_value_helpers():
    assert has_fault_value(set_of(RC, V0))
    assert not has_fault_value(set_of(R, F))
    assert only_fault_values(set_of(RC))
    assert only_fault_values(set_of(RC, FC))
    assert not only_fault_values(set_of(RC, R))
    assert not only_fault_values(EMPTY_SET)


def test_pi_set_contains_only_clean_pi_values():
    assert members(PI_SET) == [V0, V1, R, F]


def test_forward_evaluation_matches_scalar_enumeration():
    left = set_of(V0, R)
    right = set_of(V1, FC)
    result = evaluate_gate_sets(GateType.AND, [left, right])
    expected = 0
    for a in members(left):
        for b in members(right):
            expected |= evaluate_delay_gate(GateType.AND, (a, b)).mask
    assert result == expected


def test_forward_evaluation_with_empty_input_is_empty():
    assert evaluate_gate_sets(GateType.AND, [EMPTY_SET, FULL_SET]) == EMPTY_SET


def test_forward_evaluation_single_input_gates():
    assert evaluate_gate_sets(GateType.NOT, [set_of(R, V0)]) == set_of(F, V1)
    assert evaluate_gate_sets(GateType.BUF, [set_of(R, V0)]) == set_of(R, V0)


@given(left=value_sets, right=value_sets, gate_type=gate_types)
def test_forward_evaluation_is_exact_image(left, right, gate_type):
    result = evaluate_gate_sets(gate_type, [left, right])
    expected = 0
    for a in members(left):
        for b in members(right):
            expected |= evaluate_delay_gate(gate_type, (a, b)).mask
    assert result == expected


def test_backward_input_sets_prunes_impossible_values():
    # AND output must be a clean steady one: both inputs must be clean ones.
    pruned = backward_input_sets(GateType.AND, [FULL_SET, FULL_SET], set_of(V1))
    assert pruned[0] == set_of(V1)
    assert pruned[1] == set_of(V1)


def test_backward_input_sets_for_fault_output():
    pruned = backward_input_sets(GateType.AND, [set_of(RC), FULL_SET], set_of(RC))
    # The off-path input must have a final value of one.
    assert pruned[1] == set_of(V1, H1, R, RC)


def test_backward_input_sets_is_sound():
    """Every removed value really cannot contribute to the output set."""
    input_sets = [set_of(R, F, V0), set_of(V1, H1)]
    output_set = set_of(R)
    pruned = backward_input_sets(GateType.AND, input_sets, output_set)
    for position in range(2):
        removed = input_sets[position] & ~pruned[position]
        for value in members(removed):
            other = members(input_sets[1 - position])
            for partner in other:
                pair = (value, partner) if position == 0 else (partner, value)
                assert not contains(output_set, evaluate_delay_gate(GateType.AND, pair))


def test_backward_input_sets_wide_gate_falls_back_unchanged():
    sets = [FULL_SET] * 5
    assert backward_input_sets(GateType.AND, sets, set_of(V1)) == sets


def test_backward_single_input_gate():
    pruned = backward_input_sets(GateType.NOT, [FULL_SET], set_of(F))
    assert pruned[0] == set_of(R)


def test_format_set():
    assert format_set(set_of(R, RC)) == "{R, Rc}"
    assert format_set(EMPTY_SET) == "{}"

"""Independent functional verification of generated test sequences.

The ATPG engine and the fault simulator share the eight-valued algebra, so a
bug there could produce consistently wrong but self-agreeing results.  This
module provides an *independent* check based only on plain three-valued logic
simulation and the gross delay fault interpretation: the faulted line misses
the fast clock entirely, i.e. at the fast sample time it still shows the value
it had in the previous (slow) frame.

A robust gate delay fault test must detect every fault size above the slack,
in particular the gross one, so every sequence produced by the flow has to
pass this check; the test-suite relies on it heavily.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.circuit.gates import evaluate_gate
from repro.circuit.levelize import combinational_order
from repro.circuit.netlist import Circuit, LineKind
from repro.core.results import TestSequence
from repro.faults.model import GateDelayFault
from repro.fausim.backends import create_simulator
from repro.fausim.logic_sim import SignalValues


@dataclasses.dataclass
class VerificationReport:
    """Outcome of replaying a test sequence against the gross delay fault."""

    detected: bool
    detection_frame: Optional[int] = None
    primary_output: Optional[str] = None
    good_trace: List[SignalValues] = dataclasses.field(default_factory=list)
    faulty_trace: List[SignalValues] = dataclasses.field(default_factory=list)

    def __bool__(self) -> bool:
        return self.detected


def _faulty_fast_frame(
    circuit: Circuit,
    order: List[str],
    pi_vector: SignalValues,
    state: SignalValues,
    fault: GateDelayFault,
    stale_value: Optional[int],
) -> SignalValues:
    """Evaluate the fast frame with the faulted line frozen at its stale value."""
    values: SignalValues = {}
    for pi in circuit.primary_inputs:
        values[pi] = pi_vector.get(pi)
    for ppi in circuit.pseudo_primary_inputs:
        values[ppi] = state.get(ppi)

    stem_fault = fault.line.kind is LineKind.STEM
    if stem_fault and fault.line.signal in values:
        values[fault.line.signal] = stale_value

    for name in order:
        gate = circuit.gate(name)
        inputs = []
        for pin, source in enumerate(gate.fanin):
            value = values[source]
            if (
                not stem_fault
                and fault.line.sink == name
                and fault.line.pin == pin
                and source == fault.line.signal
            ):
                value = stale_value
            inputs.append(value)
        output = evaluate_gate(gate.gate_type, inputs)
        if stem_fault and name == fault.line.signal:
            output = stale_value
        values[name] = output
    return values


def verify_test_sequence(
    circuit: Circuit,
    sequence: TestSequence,
    backend: Optional[str] = None,
) -> VerificationReport:
    """Replay a test sequence and check that the gross delay fault is caught.

    Both machines start in the all-unknown state, the initialisation and
    propagation frames use fault-free (slow clock) behaviour, and the fast
    frame of the faulty machine freezes the faulted line at its value from the
    previous frame.  Detection requires a primary output where the good value
    is binary and provably differs from the faulty value.

    ``backend`` selects the good-machine simulator (see
    :mod:`repro.fausim.backends`); the faulty fast frame always uses the
    independent scalar replay so the verification stays a second opinion.
    """
    simulator = create_simulator(circuit, backend)
    order = combinational_order(circuit)
    fault = sequence.fault
    fast_index = sequence.clock_schedule.fast_frame_index
    vectors = sequence.vectors

    good_state: SignalValues = {}
    faulty_state: SignalValues = {}
    good_trace: List[SignalValues] = []
    faulty_trace: List[SignalValues] = []
    previous_good_frame: SignalValues = {}

    for index, vector in enumerate(vectors):
        good_frame = simulator.clock(vector, good_state)
        if index < fast_index:
            # Slow clock, fault-free: both machines are identical.
            faulty_values = dict(good_frame.values)
            faulty_next = dict(good_frame.next_state)
        elif index == fast_index:
            stale = previous_good_frame.get(fault.line.signal)
            faulty_values = _faulty_fast_frame(
                circuit, order, vector, faulty_state, fault, stale
            )
            faulty_next = {
                dff.name: faulty_values[dff.fanin[0]] for dff in circuit.flip_flops
            }
        else:
            faulty_frame = simulator.clock(vector, faulty_state)
            faulty_values = faulty_frame.values
            faulty_next = faulty_frame.next_state

        good_trace.append(simulator.outputs(good_frame.values))
        faulty_trace.append({po: faulty_values[po] for po in circuit.primary_outputs})

        if index >= fast_index:
            for po in circuit.primary_outputs:
                good_po = good_frame.values[po]
                faulty_po = faulty_values[po]
                if good_po is not None and faulty_po is not None and good_po != faulty_po:
                    return VerificationReport(
                        detected=True,
                        detection_frame=index,
                        primary_output=po,
                        good_trace=good_trace,
                        faulty_trace=faulty_trace,
                    )

        previous_good_frame = good_frame.values
        good_state = good_frame.next_state
        faulty_state = faulty_next

    return VerificationReport(
        detected=False, good_trace=good_trace, faulty_trace=faulty_trace
    )

"""Campaign coordinator: sharded ATPG with a deterministic replay merge.

The orchestration contract is *serial equivalence*: whatever the worker
count, partitioning mode or scheduling order, the merged
:class:`~repro.core.results.CampaignResult` is bit-identical (coverage,
untestable breakdown, pattern counts) to ``SequentialDelayATPG.run`` on the
same circuit and fault universe.  Three mechanisms combine to get there:

1. **Optimistic parallel execution.**  Workers target their shard's faults in
   global enumeration order.  Per-fault targeting
   (:meth:`~repro.core.flow.SequentialDelayATPG.target_fault`) is a pure
   function of (circuit, settings, fault) — it has no campaign state — so a
   worker's record is exactly what the serial campaign would have computed.

2. **Cross-shard detection exchange.**  Every generated sequence's TDsim
   detection set is broadcast to the other shards, which drop the listed
   faults before targeting them — restoring the serial campaign's fault
   dropping *exactly*: the broadcast carries the same detection list that
   :func:`~repro.core.flow.credit_fault_result` later credits, so a worker
   never over-drops a fault the serial order would have targeted (the
   historical gross-delay re-grading pre-filter did, forcing the merge to
   recompute).  Drops obey the *earlier sequences only* rule (see
   :mod:`repro.orchestrate.worker`), keeping them inside what the serial
   order could do.

3. **Deterministic replay merge.**  After the workers finish, the
   coordinator replays the serial campaign loop over the fault universe in
   enumeration order, using the recorded results as a memo table: recorded
   detections (from the serial TDsim criterion) decide fault dropping exactly
   as ``run()`` would, speculative records the serial order never reaches are
   discarded, and the rare fault a worker over-dropped (its gross-delay
   pre-filter fired where TDsim's detections would not) is recomputed
   serially on the spot.  The merged Table 3 row is therefore independent of
   worker count and scheduling by construction.

Every record is journaled (JSONL, see :mod:`repro.orchestrate.journal`), so a
killed campaign resumes: already-recorded faults are not re-targeted, their
sequences are re-broadcast so the remaining faults still drop, and the final
replay runs over old and new records together.
"""

from __future__ import annotations

import dataclasses
import logging
import multiprocessing
import os
import queue as queue_module
import time
from typing import Dict, List, Optional, Sequence

from repro.circuit.netlist import Circuit
from repro.core.flow import SequentialDelayATPG, credit_fault_result
from repro.core.results import CampaignResult, FaultResult
from repro.faults.model import FaultList, FaultStatus, GateDelayFault, enumerate_delay_faults
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot, resolve_metrics
from repro.obs.tracing import FaultCost, fold_cost
from repro.orchestrate.journal import (
    CampaignJournal,
    JournalSegment,
    campaign_digest,
    load_segments,
)
from repro.orchestrate.partition import PARTITION_MODES, derive_shard_seed, plan_shards
from repro.orchestrate.worker import worker_main

logger = logging.getLogger(__name__)


class CampaignInterrupted(RuntimeError):
    """An orchestrated campaign was stopped before finishing.

    Raised when the orchestrator's ``should_stop`` hook fires (graceful
    daemon shutdown, job cancellation).  Every record received before the
    stop is already journaled, so a campaign interrupted this way resumes
    from its journal with nothing lost but the faults that were in flight.
    """

    def __init__(self, circuit_name: str, recorded: int) -> None:
        super().__init__(
            f"campaign for {circuit_name!r} interrupted with {recorded} fault(s) recorded"
        )
        self.circuit_name = circuit_name
        self.recorded = recorded


@dataclasses.dataclass
class OrchestratorConfig:
    """Settings of a sharded campaign.

    The ATPG knobs mirror :class:`~repro.core.flow.SequentialDelayATPG`; the
    orchestration knobs are the worker count, the partitioning mode
    (:data:`~repro.orchestrate.partition.PARTITION_MODES`) and the campaign
    seed from which every worker derives its own RNG seed
    (:func:`~repro.orchestrate.partition.derive_shard_seed`).
    """

    jobs: int = 2
    partition: str = "size-aware"
    campaign_seed: int = 0
    robust: bool = True
    local_backtrack_limit: int = 100
    sequential_backtrack_limit: int = 100
    max_local_retries: int = 3
    fill_value: int = 0
    verify_sequences: bool = True
    enable_fault_simulation: bool = True
    backend: Optional[str] = None
    #: Hybrid campaign: run the random-pattern prefix (Phase A, see
    #: :mod:`repro.core.prefilter`) before partitioning, so the shards are
    #: cut from the residue the random sequences could not detect.
    rpg_prefix: bool = False
    rpg_budget: int = 256
    rpg_window: int = 16
    rpg_length: int = 8
    #: Give every shard its own :class:`~repro.obs.metrics.MetricsRegistry`
    #: and collect per-fault cost records.  Observability only: deliberately
    #: absent from :meth:`digest_payload` (and from :meth:`atpg_kwargs` —
    #: workers receive it as a separate argument) because instrumentation
    #: never changes per-fault results.
    collect_metrics: bool = False

    def atpg_kwargs(self) -> Dict[str, object]:
        """Keyword arguments for building a worker's ``SequentialDelayATPG``."""
        return {
            "robust": self.robust,
            "local_backtrack_limit": self.local_backtrack_limit,
            "sequential_backtrack_limit": self.sequential_backtrack_limit,
            "max_local_retries": self.max_local_retries,
            "fill_value": self.fill_value,
            "verify_sequences": self.verify_sequences,
            "enable_fault_simulation": self.enable_fault_simulation,
            "backend": self.backend,
        }

    def digest_payload(self) -> Dict[str, object]:
        """The settings that affect per-fault results, for the journal digest.

        ``jobs`` and ``partition`` are deliberately absent: a journal may be
        resumed with a different worker count or scheduling mode because the
        replay merge makes them irrelevant to the outcome.  ``backend`` is
        absent for the same reason — every registered backend is
        differentially pinned to be bit-exact (``tests/fuzz``,
        ``tests/core``), so a campaign journaled under one backend may be
        resumed under another without invalidating the finished faults.
        """
        payload: Dict[str, object] = {
            "robust": self.robust,
            "local_backtrack_limit": self.local_backtrack_limit,
            "sequential_backtrack_limit": self.sequential_backtrack_limit,
            "max_local_retries": self.max_local_retries,
            "fill_value": self.fill_value,
            "verify_sequences": self.verify_sequences,
            "enable_fault_simulation": self.enable_fault_simulation,
            "campaign_seed": self.campaign_seed,
        }
        if self.rpg_prefix:
            # The prefix settings change which faults Phase B ever targets, so
            # they are part of a hybrid campaign's identity.  Deterministic-only
            # campaigns keep their pre-hybrid digests (no new keys).
            payload["rpg_prefix"] = True
            payload["rpg_budget"] = self.rpg_budget
            payload["rpg_window"] = self.rpg_window
            payload["rpg_length"] = self.rpg_length
        return payload

    def prefix_config(self):
        """The prefix phase settings, or ``None`` for a deterministic-only run.

        The prefix seed is the campaign seed itself — each sequence then
        derives its own RNG seed via
        :func:`~repro.core.prefilter.derive_prefix_seed`, mirroring how the
        shard seeds are derived from the same campaign seed.
        """
        if not self.rpg_prefix:
            return None
        from repro.core.prefilter import PrefixConfig

        return PrefixConfig(
            budget=self.rpg_budget,
            window=self.rpg_window,
            sequence_length=self.rpg_length,
            seed=self.campaign_seed,
        )


def _mp_context():
    """The multiprocessing context: ``fork`` where available, else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class CampaignOrchestrator:
    """Run one circuit's ATPG campaign across worker processes.

    After :meth:`run` returns, :attr:`shard_stats` holds one per-worker
    summary dictionary (for :func:`repro.core.reporting.format_shard_summary`)
    and :attr:`recomputed` counts the faults the replay merge had to
    recompute serially because a worker over-dropped them.

    Args:
        circuit: circuit under test.
        config: orchestration settings; defaults to
            :class:`OrchestratorConfig`'s defaults.
        journal_path: when given, every record is checkpointed to this JSONL
            file and the final merged result is appended at the end.
        resume: continue from ``journal_path`` instead of starting over;
            requires the journal to exist and its digest to match.
        on_record: progress hook — called with every journal-format record
            (``campaign`` header, ``fault``, ``drop``, final ``result``) as it
            is produced, whether or not a journal file is attached.  Called
            from the orchestrating thread; the service layer
            (:mod:`repro.service`) uses it to stream per-fault progress.
        should_stop: polled between records (and before every replay-merge
            recompute); returning True terminates the workers and raises
            :class:`CampaignInterrupted`, leaving the journal resumable.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry` the
            merged campaign aggregates land on.  When omitted but
            ``config.collect_metrics`` is set, a fresh registry is created
            (read it back via :attr:`metrics`).  The deterministic counters
            are folded from the *credited* per-fault cost records during the
            replay merge, so the aggregates are identical for any worker
            count or partition mode — and equal to a serial campaign's.
    """

    def __init__(
        self,
        circuit: Circuit,
        config: Optional[OrchestratorConfig] = None,
        journal_path: Optional[str] = None,
        resume: bool = False,
        on_record=None,
        should_stop=None,
        metrics=None,
    ) -> None:
        self.circuit = circuit
        self.config = config or OrchestratorConfig()
        if metrics is None and self.config.collect_metrics:
            metrics = MetricsRegistry()
        self.metrics = resolve_metrics(metrics)
        if self.config.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.config.partition not in PARTITION_MODES:
            raise ValueError(
                f"unknown partition mode {self.config.partition!r}; known: {PARTITION_MODES}"
            )
        if resume and journal_path is None:
            raise ValueError("resume requires a journal path")
        self.journal_path = journal_path
        self.resume = resume
        self.on_record = on_record
        self.should_stop = should_stop
        self.shard_stats: List[Dict[str, object]] = []
        self.recomputed = 0
        self._fallback_atpg: Optional[SequentialDelayATPG] = None
        #: Credited per-fault cost records, in enumeration order (replay
        #: merge); empty when instrumentation is off.
        self.fault_costs: List[FaultCost] = []
        #: Merged raw worker snapshots (speculative work included) — a
        #: diagnostic view; the deterministic aggregates live on
        #: :attr:`metrics`.
        self.shard_metrics: Optional[MetricsSnapshot] = None
        self._worker_snapshots: List[MetricsSnapshot] = []

    def _emit(self, journal: Optional[CampaignJournal], record: Dict[str, object]) -> None:
        """Checkpoint one record and forward it to the progress hook."""
        if journal is not None:
            journal.append(record)
        if self.on_record is not None:
            self.on_record(record)

    def _stop_requested(self) -> bool:
        """True when the ``should_stop`` hook asks for an early exit."""
        return self.should_stop is not None and bool(self.should_stop())

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def run(
        self,
        faults: Optional[Sequence[GateDelayFault]] = None,
        max_target_faults: Optional[int] = None,
    ) -> CampaignResult:
        """Run (or resume) the sharded campaign and return the merged result.

        Args:
            faults: explicit fault universe; defaults to
                :func:`~repro.faults.model.enumerate_delay_faults`.
            max_target_faults: cap on explicitly targeted faults, applied in
                serial enumeration order during the replay merge (workers may
                speculatively compute more; the surplus is discarded).
        """
        started = time.perf_counter()
        self.fault_costs = []
        self._worker_snapshots = []
        self.shard_metrics = None
        universe = (
            list(faults) if faults is not None else enumerate_delay_faults(self.circuit)
        )
        digest = campaign_digest(
            self.circuit.name, self.config.digest_payload(), universe
        )

        records: Dict[int, Dict[str, object]] = {}
        prefix_records: Dict[int, Dict[str, object]] = {}
        prefix_done: Optional[Dict[str, object]] = None
        if self.resume:
            segment = self._load_resume_segment(digest)
            if segment is not None:
                final = segment.final
                if final is not None and final.get("max_target_faults") == max_target_faults:
                    # Finished campaign with the same cap: reuse the stored
                    # merge.  A different cap falls through to a fresh replay
                    # over the recorded per-fault results instead.
                    return CampaignResult.from_json(final["campaign"])
                records.update(segment.fault_records)
                prefix_records.update(segment.prefix_records)
                prefix_done = segment.prefix_done
        elif self.journal_path is not None and os.path.exists(self.journal_path):
            # A fresh run must not append an incompatible header to an
            # existing journal: the digest clash would make *every* later
            # resume of the file fail.  Reject up front instead.
            existing = load_segments(self.journal_path).get(self.circuit.name)
            if existing is not None and existing.digest != digest:
                raise ValueError(
                    f"journal {self.journal_path!r} already holds circuit "
                    f"{self.circuit.name!r} records from a different campaign "
                    f"(digest {existing.digest} != {digest}); delete the file "
                    "or pass a different journal path"
                )

        journal = CampaignJournal(self.journal_path) if self.journal_path else None
        try:
            with self.metrics.timed("repro_phase_seconds", phase="campaign"):
                return self._run_campaign(
                    universe, records, prefix_records, prefix_done, digest,
                    journal, max_target_faults, started,
                )
        finally:
            if journal is not None:
                journal.close()

    def _run_campaign(
        self,
        universe: List[GateDelayFault],
        records: Dict[int, Dict[str, object]],
        prefix_records: Dict[int, Dict[str, object]],
        prefix_done: Optional[Dict[str, object]],
        digest: str,
        journal: Optional[CampaignJournal],
        max_target_faults: Optional[int],
        started: float,
    ) -> CampaignResult:
        """The campaign body of :meth:`run` (split out for phase timing)."""
        self._emit(
            journal,
            {
                "type": "campaign",
                "circuit": self.circuit.name,
                "digest": digest,
                "total_faults": len(universe),
                "jobs": self.config.jobs,
                "partition": self.config.partition,
                "campaign_seed": self.config.campaign_seed,
                "resumed_records": len(records),
                "resumed_prefix": len(prefix_records),
            },
        )
        # Phase A of a hybrid campaign runs once, single-threaded, before
        # any partitioning: the shards are then cut from the residue the
        # random prefix could not detect, and the serial/parallel results
        # stay bit-identical because Phase A never depends on jobs.
        prefix_outcome = self._run_prefix(
            universe, prefix_records, prefix_done, journal
        )
        prefix_detected = (
            set(prefix_outcome.detected) if prefix_outcome is not None else set()
        )
        remaining = [
            index
            for index in range(len(universe))
            if index not in records and universe[index] not in prefix_detected
        ]
        if remaining:
            self._run_workers(universe, remaining, records, journal, max_target_faults)
        campaign = self._replay(
            universe, records, max_target_faults, journal, started, prefix_outcome
        )
        self._emit(
            journal,
            {
                "type": "result",
                "circuit": self.circuit.name,
                "digest": digest,
                "max_target_faults": max_target_faults,
                "campaign": campaign.to_json(),
            },
        )
        return campaign

    # ------------------------------------------------------------------ #
    # random-pattern prefix (Phase A of a hybrid campaign)
    # ------------------------------------------------------------------ #
    def _run_prefix(
        self,
        universe: List[GateDelayFault],
        prefix_records: Dict[int, Dict[str, object]],
        prefix_done: Optional[Dict[str, object]],
        journal: Optional[CampaignJournal],
    ):
        """Run, resume or reload Phase A; returns its outcome (or ``None``).

        Already-journaled prefix records are replayed without re-grading; a
        ``prefix-done`` record short-circuits the phase entirely.  Newly
        applied sequences are journaled one record at a time, so a campaign
        interrupted mid-prefix resumes at the exact sequence index it stopped
        at (every sequence's RNG seed depends only on its index).
        """
        prefix_cfg = self.config.prefix_config()
        if prefix_cfg is None:
            return None
        from repro.core.prefilter import PrefixOutcome, PrefixRecord, RandomPrefixEngine

        replay = [
            PrefixRecord.from_journal(prefix_records[seq])
            for seq in sorted(prefix_records)
        ]
        if prefix_done is not None:
            # Phase A already finished in an earlier run: rebuild its outcome
            # from the journal alone.  The prefix counters are replayed too,
            # so a resumed campaign's aggregates match an uninterrupted one.
            if self.metrics.enabled:
                for record in replay:
                    self.metrics.inc("repro_prefix_sequences_total")
                    self.metrics.inc(
                        "repro_prefix_candidates_total", record.candidates
                    )
                    self.metrics.inc(
                        "repro_prefix_detections_total", len(record.detections)
                    )
            detected = [fault for record in replay for fault in record.detections]
            return PrefixOutcome(
                records=replay,
                detected=detected,
                stop_reason=str(prefix_done["reason"]),
            )

        engine = RandomPrefixEngine(
            self.circuit,
            prefix_cfg,
            robust=self.config.robust,
            fill_value=self.config.fill_value,
            metrics=self.metrics,
            backend=self.config.backend,
        )

        def on_record(record: PrefixRecord) -> None:
            self._emit(journal, record.to_journal())
            if self._stop_requested():
                raise CampaignInterrupted(self.circuit.name, record.seq + 1)

        with self.metrics.timed("repro_phase_seconds", phase="prefix"):
            outcome = engine.run(universe, replay=replay, on_record=on_record)
        self._emit(
            journal,
            {
                "type": "prefix-done",
                "reason": outcome.stop_reason,
                "applied": outcome.applied,
                "detected": len(outcome.detected),
            },
        )
        return outcome

    # ------------------------------------------------------------------ #
    # worker fan-out
    # ------------------------------------------------------------------ #
    def _run_workers(
        self,
        universe: List[GateDelayFault],
        remaining: List[int],
        records: Dict[int, Dict[str, object]],
        journal: Optional[CampaignJournal],
        max_target_faults: Optional[int] = None,
    ) -> None:
        """Spawn the shard workers and collect one record per remaining fault."""
        config = self.config
        jobs = max(1, min(config.jobs, len(remaining)))
        ctx = _mp_context()
        if max_target_faults is not None:
            # Bound the speculative overshoot of a capped campaign: at most
            # the cap per shard.  The replay merge recomputes any capped-out
            # fault the serial order does end up targeting.
            remaining = remaining[: max(max_target_faults, 0) * jobs]
            if not remaining:
                return
            jobs = max(1, min(jobs, len(remaining)))
        plan = plan_shards(config.partition, remaining, universe, self.circuit, jobs)
        if plan is not None and max_target_faults is not None:
            plan = dataclasses.replace(
                plan,
                shards=tuple(shard[:max_target_faults] for shard in plan.shards),
            )

        result_queue = ctx.Queue()
        broadcast_queues = [ctx.Queue() for _ in range(jobs)]
        task_queue = None
        if plan is None:  # dynamic work-queue mode
            task_queue = ctx.Queue()
            for index in remaining:
                task_queue.put(index)
            for _ in range(jobs):
                task_queue.put(None)

        # Re-broadcast the journaled detection sets of a resumed campaign so
        # the remaining faults can still be dropped by them.
        for index in sorted(records):
            detections = records[index].get("detections")
            if detections:
                for inbox in broadcast_queues:
                    inbox.put({"index": index, "detections": detections})

        logger.info(
            "spawning %d worker(s): partition=%s remaining=%d",
            jobs, config.partition, len(remaining),
        )
        processes = []
        for worker_id in range(jobs):
            # Dynamic mode: the shared task queue assigns the work, but the
            # worker still gets the remaining indices as its grading scope so
            # broadcasts are never graded against already-recorded faults.
            assigned = list(remaining) if plan is None else list(plan.shards[worker_id])
            process = ctx.Process(
                target=worker_main,
                name=f"repro-shard-{worker_id}",
                args=(
                    worker_id,
                    derive_shard_seed(config.campaign_seed, worker_id),
                    self.circuit,
                    universe,
                    assigned,
                    task_queue,
                    result_queue,
                    broadcast_queues[worker_id],
                    config.atpg_kwargs(),
                    self.metrics.enabled,
                ),
            )
            process.start()
            processes.append(process)

        self.shard_stats = []
        done: set = set()
        #: Every completed (fault or drop) index in arrival order, plus a
        #: per-worker cursor: each broadcast piggy-backs the indices completed
        #: since that worker's previous broadcast, so workers — the dynamic
        #: mode in particular, whose scope is the whole universe — stop
        #: grading sequences against faults that already have a record.
        completed_log: List[int] = []
        sent_upto = [0] * jobs
        try:
            while len(done) < jobs:
                if self._stop_requested():
                    raise CampaignInterrupted(self.circuit.name, len(records))
                try:
                    message = result_queue.get(timeout=1.0)
                except queue_module.Empty:
                    self._check_liveness(processes, done)
                    continue
                kind = message["type"]
                if kind == "error":
                    raise RuntimeError(
                        f"campaign worker {message['worker']} failed:\n{message['error']}"
                    )
                if kind == "done":
                    done.add(message["worker"])
                    stats = dict(message["stats"])
                    shard_snapshot = stats.pop("metrics", None)
                    if shard_snapshot is not None:
                        self._worker_snapshots.append(
                            MetricsSnapshot.from_json(shard_snapshot)
                        )
                    self.shard_stats.append(stats)
                    continue
                self._emit(journal, message)
                if kind in ("fault", "drop"):
                    completed_log.append(int(message["index"]))
                if kind == "fault":
                    records[int(message["index"])] = message
                    # Broadcast the TDsim detection set — the exact list the
                    # replay merge credits — so other shards drop precisely
                    # the faults the serial order would drop, no more.
                    if message["detections"]:
                        for worker_id, inbox in enumerate(broadcast_queues):
                            if worker_id == message["worker"] or worker_id in done:
                                continue
                            inbox.put(
                                {
                                    "index": message["index"],
                                    "detections": message["detections"],
                                    "completed": completed_log[sent_upto[worker_id]:],
                                }
                            )
                            sent_upto[worker_id] = len(completed_log)
        finally:
            for process in processes:
                process.join(timeout=5.0)
                if process.is_alive():
                    process.terminate()
                    process.join()
            for inbox in broadcast_queues:
                inbox.cancel_join_thread()
                inbox.close()
            if task_queue is not None:
                task_queue.cancel_join_thread()
                task_queue.close()
            result_queue.cancel_join_thread()
            result_queue.close()
        self.shard_stats.sort(key=lambda stats: stats["worker"])
        if self._worker_snapshots:
            # Key-wise sums: the merge is commutative and associative, so any
            # arrival order (and any worker count) yields the same snapshot.
            self.shard_metrics = MetricsSnapshot.merge_all(self._worker_snapshots)

    @staticmethod
    def _check_liveness(processes, done) -> None:
        """Raise if any worker died without reporting a result."""
        for worker_id, process in enumerate(processes):
            if worker_id in done or process.is_alive():
                continue
            if process.exitcode not in (0, None):
                raise RuntimeError(
                    f"campaign worker {worker_id} exited with code {process.exitcode} "
                    "without reporting a result"
                )

    # ------------------------------------------------------------------ #
    # deterministic merge
    # ------------------------------------------------------------------ #
    def _replay(
        self,
        universe: List[GateDelayFault],
        records: Dict[int, Dict[str, object]],
        max_target_faults: Optional[int],
        journal: Optional[CampaignJournal],
        started: float,
        prefix_outcome=None,
    ) -> CampaignResult:
        """Replay the serial campaign loop over the recorded per-fault results.

        This *is* ``SequentialDelayATPG.run`` with ``target_fault`` memoised
        by the records: same enumeration order, same skip rule (a fault
        already credited by an earlier sequence's detections is never
        targeted), same crediting via
        :func:`~repro.core.flow.credit_fault_result`.  A fault the serial
        order needs but no worker computed (over-dropped) is recomputed here.
        """
        fault_list = FaultList(universe)
        campaign = CampaignResult(
            circuit_name=self.circuit.name, total_faults=len(universe)
        )
        if prefix_outcome is not None:
            # The same crediting path the serial hybrid flow uses: prefix
            # detections are marked tested before the loop, so Phase B's
            # enumeration skips them exactly as ``run(prefix=...)`` would.
            from repro.core.prefilter import apply_prefix_outcome

            apply_prefix_outcome(campaign, fault_list, prefix_outcome)
        self.recomputed = 0
        for index, fault in enumerate(universe):
            if fault_list.status(fault) is not FaultStatus.UNTARGETED:
                continue
            if max_target_faults is not None and campaign.targeted >= max_target_faults:
                break
            record = records.get(index)
            cost_payload: Optional[Dict[str, object]] = None
            if record is None:
                if self._stop_requested():
                    raise CampaignInterrupted(self.circuit.name, len(records))
                result = self._fallback(fault)
                self.recomputed += 1
                fallback_atpg = self._fallback_atpg
                if fallback_atpg is not None and fallback_atpg.cost_log:
                    cost_payload = fallback_atpg.cost_log.pop().to_json()
                fallback_record = {
                    "type": "fault",
                    "index": index,
                    "worker": -1,  # recomputed by the coordinator
                    "result": _result_payload(result),
                    "detections": [
                        detection.to_json()
                        for detection in result.additionally_detected
                    ],
                }
                if cost_payload is not None:
                    fallback_record["cost"] = cost_payload
                self._emit(journal, fallback_record)
            else:
                result = FaultResult.from_json(record["result"])
                result.additionally_detected = [
                    GateDelayFault.from_json(payload)
                    for payload in record["detections"]
                ]
                cost_payload = record.get("cost")
            if self.metrics.enabled and cost_payload is not None:
                # Only the records the serial order actually reaches are
                # folded — speculative worker records are discarded with
                # their costs, which is what makes the aggregates (and the
                # cost log) independent of jobs and partitioning.
                cost = FaultCost.from_json(cost_payload)
                fold_cost(self.metrics, cost)
                self.fault_costs.append(cost)
            newly = credit_fault_result(result, fault_list)
            campaign.record(result, newly)
        campaign.finalize(fault_list.counts(), time.perf_counter() - started)
        logger.info(
            "replay merge done: circuit=%s tested=%d untestable=%d aborted=%d recomputed=%d",
            campaign.circuit_name, campaign.tested, campaign.untestable,
            campaign.aborted, self.recomputed,
        )
        return campaign

    def _fallback(self, fault: GateDelayFault) -> FaultResult:
        """Serially recompute one fault the optimistic execution skipped."""
        if self._fallback_atpg is None:
            # A *private* registry: the recomputed fault's cost record is
            # folded into the campaign aggregates exactly like a worker's, so
            # counting its engine work on the shared registry too would
            # double-count it.
            self._fallback_atpg = SequentialDelayATPG(
                self.circuit,
                metrics=MetricsRegistry() if self.metrics.enabled else None,
                **self.config.atpg_kwargs(),
            )
        return self._fallback_atpg.target_fault(fault)

    # ------------------------------------------------------------------ #
    def _load_resume_segment(self, digest: str) -> Optional[JournalSegment]:
        """Validate and fetch this circuit's journal segment for a resume."""
        if not os.path.exists(self.journal_path):
            raise FileNotFoundError(
                f"cannot resume: journal {self.journal_path!r} does not exist"
            )
        segment = load_segments(self.journal_path).get(self.circuit.name)
        if segment is None:
            return None
        if segment.digest != digest:
            raise ValueError(
                f"cannot resume circuit {self.circuit.name!r}: journal digest "
                f"{segment.digest} does not match this campaign ({digest}) — "
                "the settings or the fault universe changed"
            )
        return segment


def _result_payload(result: FaultResult) -> Dict[str, object]:
    """Serialise a result with its raw detections stripped (stored separately)."""
    detections = result.additionally_detected
    result.additionally_detected = []
    try:
        return result.to_json()
    finally:
        result.additionally_detected = detections


def run_parallel_campaign(
    circuit: Circuit,
    jobs: Optional[int] = None,
    faults: Optional[Sequence[GateDelayFault]] = None,
    max_target_faults: Optional[int] = None,
    journal_path: Optional[str] = None,
    resume: bool = False,
    config: Optional[OrchestratorConfig] = None,
    **config_overrides: object,
) -> CampaignResult:
    """Convenience wrapper: orchestrate one campaign and return the merge.

    ``config_overrides`` are :class:`OrchestratorConfig` field values (e.g.
    ``partition="dynamic"``, ``backend="reference"``); ``jobs`` is a plain
    argument because it is the one everyone sets.  When ``config`` is given,
    an omitted ``jobs`` keeps the config's worker count.
    """
    if jobs is not None:
        config_overrides["jobs"] = jobs
    if config is None:
        config = OrchestratorConfig(**config_overrides)  # type: ignore[arg-type]
    elif config_overrides:
        config = dataclasses.replace(config, **config_overrides)  # type: ignore[arg-type]
    orchestrator = CampaignOrchestrator(
        circuit, config=config, journal_path=journal_path, resume=resume
    )
    return orchestrator.run(faults=faults, max_target_faults=max_target_faults)

"""Differential tests: sharded campaigns must equal the serial campaign.

The orchestration contract (see :mod:`repro.orchestrate.coordinator`) is that
the merged result is *bit-identical* to ``SequentialDelayATPG.run`` — same
Table 3 row, same untestable breakdown, same per-fault verdicts, sequences
and detection credits — independent of worker count, partitioning mode and
scheduling order.  These tests enforce the contract on the embedded s27, on
surrogates whose campaigns exercise heavy cross-shard fault dropping, and
across a kill-and-resume cycle.
"""

import json

import pytest

from repro.core.flow import SequentialDelayATPG
from repro.data import load_circuit
from repro.faults.model import enumerate_delay_faults
from repro.orchestrate import (
    CampaignOrchestrator,
    OrchestratorConfig,
    read_journal,
    run_parallel_campaign,
)


def _fingerprint(campaign):
    """Everything the serial-equivalence contract covers, minus wall time."""
    row = {key: value for key, value in campaign.as_table3_row().items() if key != "time_s"}
    per_fault = [
        (
            str(result.fault),
            result.status.value,
            result.phase.name,
            sorted(str(fault) for fault in result.additionally_detected),
            result.sequence.vectors if result.sequence is not None else None,
            str(result.sequence.clock_schedule) if result.sequence is not None else None,
        )
        for result in campaign.fault_results
    ]
    return (
        row,
        campaign.untestable_breakdown(),
        campaign.targeted,
        campaign.detected_by_simulation,
        per_fault,
    )


@pytest.fixture(scope="module")
def s344_small():
    """Surrogate whose campaign generates tests and drops many faults."""
    return load_circuit("s344", scale=0.3)


@pytest.fixture(scope="module")
def s344_serial(s344_small):
    return SequentialDelayATPG(s344_small).run()


def test_s27_jobs4_matches_serial(s27):
    serial = SequentialDelayATPG(s27).run()
    parallel = run_parallel_campaign(s27, jobs=4)
    assert _fingerprint(parallel) == _fingerprint(serial)


def test_static_modes_match_serial_with_dropping(s344_small, s344_serial):
    for mode in ("round-robin", "size-aware"):
        orchestrator = CampaignOrchestrator(
            s344_small, config=OrchestratorConfig(jobs=4, partition=mode)
        )
        parallel = orchestrator.run()
        assert _fingerprint(parallel) == _fingerprint(s344_serial), mode
        stats_total = sum(stats["targeted"] + stats["dropped"] for stats in orchestrator.shard_stats)
        assert stats_total == s344_serial.total_faults
        # The campaign must actually have exercised the broadcast exchange.
        assert sum(stats["dropped"] for stats in orchestrator.shard_stats) > 0
        assert sum(stats["absorbed_broadcasts"] for stats in orchestrator.shard_stats) > 0


def test_broadcast_detections_eliminate_merge_recompute(s344_small, s344_serial):
    """Regression: the merge must not recompute over-dropped faults.

    Broadcasts used to carry raw sequences that receiving shards re-graded
    with the gross-delay pre-filter — a superset of the TDsim detections the
    replay merge credits, so ~20 faults per s344@0.3 campaign were dropped in
    parallel, missing from the records, and recomputed serially during the
    merge.  Broadcasting the source shard's TDsim detection set instead makes
    worker drops exactly the serial drops: zero recomputes.
    """
    for mode in ("round-robin", "size-aware", "dynamic"):
        orchestrator = CampaignOrchestrator(
            s344_small, config=OrchestratorConfig(jobs=4, partition=mode)
        )
        parallel = orchestrator.run()
        assert _fingerprint(parallel) == _fingerprint(s344_serial), mode
        assert orchestrator.recomputed == 0, mode
        # Dropping still happens — it just mirrors the serial credit exactly.
        assert sum(stats["dropped"] for stats in orchestrator.shard_stats) > 0, mode


def test_dynamic_work_queue_matches_serial(s344_small, s344_serial):
    parallel = run_parallel_campaign(s344_small, jobs=3, partition="dynamic")
    assert _fingerprint(parallel) == _fingerprint(s344_serial)


def test_s838_surrogate_matches_serial():
    """The acceptance pairing: s27 is covered above, s838-surrogate here."""
    circuit = load_circuit("s838-surrogate", scale=0.12)
    serial = SequentialDelayATPG(circuit).run()
    assert serial.tested > 0, "campaign must generate sequences to be a meaningful check"
    parallel = run_parallel_campaign(circuit, jobs=4)
    assert _fingerprint(parallel) == _fingerprint(serial)


def test_capped_campaign_matches_serial(s344_small):
    serial = SequentialDelayATPG(s344_small).run(max_target_faults=15)
    parallel = run_parallel_campaign(s344_small, jobs=3, max_target_faults=15)
    assert _fingerprint(parallel) == _fingerprint(serial)


def test_explicit_fault_subset_matches_serial(s344_small):
    faults = enumerate_delay_faults(s344_small)
    subset = faults[:60]
    serial = SequentialDelayATPG(s344_small).run(faults=subset)
    parallel = run_parallel_campaign(s344_small, jobs=2, faults=subset)
    assert _fingerprint(parallel) == _fingerprint(serial)


def test_kill_and_resume_reaches_identical_result(tmp_path, s344_small, s344_serial):
    """Interrupting a journaled campaign and resuming must change nothing.

    The 'kill' is simulated at the journal level: the complete journal is cut
    after the first 40 per-fault records plus a torn half-written line —
    exactly what a SIGKILL mid-campaign leaves behind.  The resume then runs
    with a different worker count *and* partitioning mode and must still
    produce the serial fingerprint.
    """
    path = str(tmp_path / "journal.jsonl")
    orchestrator = CampaignOrchestrator(
        s344_small, config=OrchestratorConfig(jobs=2), journal_path=path
    )
    complete = orchestrator.run()
    assert _fingerprint(complete) == _fingerprint(s344_serial)

    records = read_journal(path)
    kept, per_fault = [], 0
    for record in records:
        if record["type"] == "campaign":
            kept.append(record)
        elif record["type"] in ("fault", "drop") and per_fault < 40:
            kept.append(record)
            per_fault += 1
    with open(path, "w", encoding="utf-8") as handle:
        for record in kept:
            handle.write(json.dumps(record) + "\n")
        handle.write('{"type": "fault", "index": 999, "torn')  # mid-write kill

    resumed_orchestrator = CampaignOrchestrator(
        s344_small,
        config=OrchestratorConfig(jobs=3, partition="dynamic"),
        journal_path=path,
        resume=True,
    )
    resumed = resumed_orchestrator.run()
    assert _fingerprint(resumed) == _fingerprint(s344_serial)

    # A second resume finds the final result record and returns it directly.
    final = CampaignOrchestrator(
        s344_small, config=OrchestratorConfig(jobs=2), journal_path=path, resume=True
    ).run()
    assert _fingerprint(final) == _fingerprint(s344_serial)


def test_resume_requires_matching_digest(tmp_path, s27):
    path = str(tmp_path / "journal.jsonl")
    CampaignOrchestrator(
        s27, config=OrchestratorConfig(jobs=2), journal_path=path
    ).run(max_target_faults=3)
    mismatched = CampaignOrchestrator(
        s27,
        config=OrchestratorConfig(jobs=2, robust=False),  # different settings
        journal_path=path,
        resume=True,
    )
    with pytest.raises(ValueError, match="digest"):
        mismatched.run(max_target_faults=3)


def test_resume_without_journal_fails(s27):
    with pytest.raises(ValueError):
        CampaignOrchestrator(s27, resume=True)
    orchestrator = CampaignOrchestrator(
        s27, journal_path="/nonexistent/journal.jsonl", resume=True
    )
    with pytest.raises(FileNotFoundError):
        orchestrator.run()


def test_worker_failure_is_reported(s27):
    """A fault for a signal the circuit does not have crashes the worker."""
    foreign = load_circuit("s298", scale=0.2)
    faults = enumerate_delay_faults(s27)
    orchestrator = CampaignOrchestrator(foreign, config=OrchestratorConfig(jobs=2))
    with pytest.raises(RuntimeError, match="worker"):
        orchestrator.run(faults=faults[:4])


def test_resume_under_different_backend(tmp_path, s344_small, s344_serial):
    """A campaign journaled under one backend resumes under another.

    The digest deliberately excludes the backend (all backends are pinned
    bit-exact), so the finished per-fault records of a ``packed`` campaign
    must be accepted — and completed identically — by a ``bigint`` resume.
    """
    path = str(tmp_path / "journal.jsonl")
    CampaignOrchestrator(
        s344_small,
        config=OrchestratorConfig(jobs=2, backend="packed"),
        journal_path=path,
    ).run()

    records = read_journal(path)
    kept, per_fault = [], 0
    for record in records:
        if record["type"] == "campaign":
            kept.append(record)
        elif record["type"] in ("fault", "drop") and per_fault < 30:
            kept.append(record)
            per_fault += 1
    with open(path, "w", encoding="utf-8") as handle:
        for record in kept:
            handle.write(json.dumps(record) + "\n")

    resumed = CampaignOrchestrator(
        s344_small,
        config=OrchestratorConfig(jobs=2, backend="bigint"),
        journal_path=path,
        resume=True,
    ).run()
    assert _fingerprint(resumed) == _fingerprint(s344_serial)

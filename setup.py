from setuptools import find_packages, setup

setup(
    name="repro-brakel-gkv95",
    version="0.6.0",
    description=(
        "Delay-fault ATPG for non-scan sequential circuits "
        "(TDgen + SEMILET + TDsim), reproduced from Brakel et al., DATE'95"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.11",
    # The core package is dependency-free.  numpy unlocks the levelized
    # uint64 kernel behind --backend numpy; without it the backend degrades
    # to the bit-identical bigint tier (see docs/ARCHITECTURE.md).
    extras_require={
        "numpy": ["numpy"],
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
    },
)

"""Tests of span tracing and cost folding (:mod:`repro.obs.tracing`).

The load-bearing property is *fold equivalence*: replaying a serial
campaign's :class:`FaultCost` records into a fresh registry with
:func:`fold_cost` must reproduce the serial registry's deterministic
counters exactly — that is what makes the orchestrator's merged aggregates
independent of ``--jobs`` and partitioning.
"""

from __future__ import annotations

import json

from repro.core.flow import SequentialDelayATPG
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import FaultCost, deterministic_counters, fold_cost


def test_fault_cost_json_round_trip():
    cost = FaultCost(
        fault="G10 StF", status="aborted", phase="local test generation",
        seconds=0.125, attempts=3, local_backtracks=7, sequential_backtracks=2,
        decisions=19, implication_sweeps=20, wavefront_skipped=5,
        words_simulated=64, engine="bigint",
    )
    payload = json.loads(json.dumps(cost.to_json()))
    assert FaultCost.from_json(payload) == cost


def test_serial_campaign_emits_one_cost_per_targeted_fault(s27):
    registry = MetricsRegistry()
    atpg = SequentialDelayATPG(s27, metrics=registry)
    campaign = atpg.run()
    assert len(atpg.cost_log) == campaign.targeted
    statuses = {cost.status for cost in atpg.cost_log}
    assert statuses <= {"tested", "untestable", "aborted"}
    # The status counter agrees with the cost log.
    assert registry.counter_sum("repro_faults_total") == campaign.targeted
    # Engine work was actually attributed.
    assert sum(cost.decisions for cost in atpg.cost_log) > 0
    assert sum(cost.implication_sweeps for cost in atpg.cost_log) > 0
    assert sum(cost.words_simulated for cost in atpg.cost_log) > 0


def test_fold_cost_reproduces_serial_counters(s27):
    registry = MetricsRegistry()
    atpg = SequentialDelayATPG(s27, metrics=registry)
    atpg.run()

    folded = MetricsRegistry()
    for cost in atpg.cost_log:
        fold_cost(folded, cost)
    # Prefix counters are absent from both (no prefix phase ran).
    assert deterministic_counters(folded) == deterministic_counters(registry)


def test_fold_cost_round_trips_through_json(s27):
    registry = MetricsRegistry()
    atpg = SequentialDelayATPG(s27, metrics=registry)
    atpg.run()

    folded = MetricsRegistry()
    for cost in atpg.cost_log:
        fold_cost(folded, FaultCost.from_json(cost.to_json()))
    assert deterministic_counters(folded) == deterministic_counters(registry)


def test_deterministic_counters_collapse_labels():
    labelled = MetricsRegistry()
    labelled.inc("repro_backtracks_total", 3, engine="tdgen")
    labelled.inc("repro_backtracks_total", 4, engine="semilet")
    flat = MetricsRegistry()
    flat.inc("repro_backtracks_total", 7)
    assert (
        deterministic_counters(labelled)["repro_backtracks_total"]
        == deterministic_counters(flat)["repro_backtracks_total"]
        == 7
    )


def test_cost_log_is_empty_without_a_registry(s27):
    atpg = SequentialDelayATPG(s27)
    atpg.run()
    assert atpg.cost_log == []

#!/usr/bin/env python3
"""Print the eight-valued robust delay algebra (paper Tables 1 and 2).

Shows the truth tables the local test generator TDgen is built on, explains
the robustness rules they encode, and contrasts the robust tables with the
relaxed non-robust variant mentioned in the paper's conclusions.

Run with::

    python examples/algebra_tables.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import GateType, format_truth_table
from repro.algebra.tables import and2, or2
from repro.algebra.values import ALL_VALUES, FC, RC, V1


def main() -> None:
    print("Eight-valued robust delay algebra")
    print("=================================")
    print()
    print("values: 0, 1 (steady, hazard free)   R, F (rising / falling)")
    print("        0h, 1h (steady with hazard)  Rc, Fc (transition carrying the fault effect)")
    print()

    print("Table 1 — AND gate")
    print(format_truth_table(GateType.AND))
    print()
    print("Table 2 — inverter")
    print(format_truth_table(GateType.NOT))
    print()
    print("Derived by De Morgan — OR gate")
    print(format_truth_table(GateType.OR))
    print()

    print("Robustness rules encoded in Table 1:")
    print("  * Rc AND x = Rc for every x whose final value is 1:")
    row = ", ".join(f"{value.name}->{and2(RC, value).name}" for value in ALL_VALUES)
    print(f"      {row}")
    print("  * Fc AND x = Fc only for x = 1 (clean steady one) or x = Fc:")
    row = ", ".join(f"{value.name}->{and2(FC, value).name}" for value in ALL_VALUES)
    print(f"      {row}")
    print()

    print("Non-robust relaxation (paper, conclusions): Fc survives any final-one off-path value")
    for value in ALL_VALUES:
        robust = and2(FC, value, robust=True)
        relaxed = and2(FC, value, robust=False)
        marker = "  <-- relaxed" if robust is not relaxed else ""
        print(f"  Fc AND {value.name:<3} robust: {robust.name:<3} non-robust: {relaxed.name:<3}{marker}")
    print()

    print("Dual rules for the OR gate (fault propagation needs final-zero off-path values):")
    print(f"  Rc OR 0  = {or2(RC, ALL_VALUES[0]).name},  Rc OR 0h = {or2(RC, ALL_VALUES[4]).name}")
    print(f"  Fc OR 0  = {or2(FC, ALL_VALUES[0]).name},  Fc OR 0h = {or2(FC, ALL_VALUES[4]).name}")


if __name__ == "__main__":
    main()

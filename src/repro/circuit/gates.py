"""Primitive gate types and their Boolean semantics.

The gate set is the ISCAS'89 primitive library: AND, NAND, OR, NOR, NOT,
BUF, XOR, XNOR plus the sequential DFF element.  All combinational
evaluation helpers in this module operate on three-valued logic encoded as
``0``, ``1`` and ``None`` (unknown / X), which is the encoding used by the
good-machine simulator and the sequential engines.  The eight-valued robust
delay algebra lives in :mod:`repro.algebra` and has its own evaluation
tables.
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence


class GateType(enum.Enum):
    """Primitive cell types supported by the netlist model."""

    INPUT = "INPUT"
    AND = "AND"
    NAND = "NAND"
    OR = "OR"
    NOR = "NOR"
    NOT = "NOT"
    BUF = "BUF"
    XOR = "XOR"
    XNOR = "XNOR"
    DFF = "DFF"

    @property
    def is_sequential(self) -> bool:
        """``True`` for state elements (D flip-flops)."""
        return self is GateType.DFF

    @property
    def is_combinational(self) -> bool:
        """``True`` for every gate that is neither an input nor a DFF."""
        return self not in (GateType.INPUT, GateType.DFF)

    @property
    def is_inverting(self) -> bool:
        """``True`` if the gate output is the complement of its AND/OR/XOR core."""
        return self in (GateType.NAND, GateType.NOR, GateType.NOT, GateType.XNOR)


_ALIASES = {
    "BUFF": GateType.BUF,
    "BUFFER": GateType.BUF,
    "INV": GateType.NOT,
    "INVERTER": GateType.NOT,
    "FF": GateType.DFF,
    "DFFSR": GateType.DFF,
}


def gate_type_from_name(name: str) -> GateType:
    """Translate a (case-insensitive) cell name into a :class:`GateType`.

    Accepts the common aliases found in ``.bench`` files (``BUFF``, ``INV``).
    """
    upper = name.strip().upper()
    if upper in _ALIASES:
        return _ALIASES[upper]
    try:
        return GateType(upper)
    except ValueError as exc:
        raise ValueError(f"unknown gate type: {name!r}") from exc


def controlling_value(gate_type: GateType) -> Optional[int]:
    """Return the controlling input value of a gate, or ``None`` if it has none.

    A controlling value on any input fully determines the gate output
    (0 for AND/NAND, 1 for OR/NOR).  XOR-family gates and single-input gates
    have no controlling value.
    """
    if gate_type in (GateType.AND, GateType.NAND):
        return 0
    if gate_type in (GateType.OR, GateType.NOR):
        return 1
    return None


def non_controlling_value(gate_type: GateType) -> Optional[int]:
    """Return the non-controlling input value of a gate, or ``None``."""
    ctrl = controlling_value(gate_type)
    if ctrl is None:
        return None
    return 1 - ctrl


def inversion_parity(gate_type: GateType) -> int:
    """Return ``1`` if the gate inverts (NAND/NOR/NOT/XNOR), ``0`` otherwise."""
    return 1 if gate_type.is_inverting else 0


def evaluate_gate(gate_type: GateType, inputs: Sequence[Optional[int]]) -> Optional[int]:
    """Evaluate a combinational gate in three-valued (0/1/X) logic.

    ``None`` encodes the unknown value X.  The evaluation is the standard
    pessimistic three-valued semantics: a controlling value forces the output
    even when other inputs are unknown, otherwise any unknown input makes the
    output unknown.

    DFF and INPUT types cannot be evaluated combinationally and raise
    ``ValueError``.
    """
    if gate_type is GateType.BUF:
        _require_arity(gate_type, inputs, 1)
        return inputs[0]
    if gate_type is GateType.NOT:
        _require_arity(gate_type, inputs, 1)
        return None if inputs[0] is None else 1 - inputs[0]
    if gate_type in (GateType.AND, GateType.NAND):
        value = _and_reduce(inputs)
    elif gate_type in (GateType.OR, GateType.NOR):
        value = _or_reduce(inputs)
    elif gate_type in (GateType.XOR, GateType.XNOR):
        value = _xor_reduce(inputs)
    else:
        raise ValueError(f"gate type {gate_type} is not combinationally evaluable")
    if value is None:
        return None
    return 1 - value if gate_type.is_inverting else value


def _require_arity(gate_type: GateType, inputs: Sequence[Optional[int]], arity: int) -> None:
    if len(inputs) != arity:
        raise ValueError(f"{gate_type.value} expects {arity} input(s), got {len(inputs)}")


def _and_reduce(inputs: Sequence[Optional[int]]) -> Optional[int]:
    if not inputs:
        raise ValueError("AND/NAND gate with no inputs")
    if any(value == 0 for value in inputs):
        return 0
    if any(value is None for value in inputs):
        return None
    return 1


def _or_reduce(inputs: Sequence[Optional[int]]) -> Optional[int]:
    if not inputs:
        raise ValueError("OR/NOR gate with no inputs")
    if any(value == 1 for value in inputs):
        return 1
    if any(value is None for value in inputs):
        return None
    return 0


def _xor_reduce(inputs: Sequence[Optional[int]]) -> Optional[int]:
    if not inputs:
        raise ValueError("XOR/XNOR gate with no inputs")
    parity = 0
    for value in inputs:
        if value is None:
            return None
        parity ^= value
    return parity

"""Value-set arithmetic over the eight-valued algebra.

During local test generation every signal holds a *set* of still-possible
values (paper section 3, following Rajski/Cox style necessary-assignment
computation).  Sets are represented as 8-bit masks (bit *i* set means value
with index *i* is possible), which keeps forward evaluation and backward
implication cheap.

Two operations are provided:

* :func:`evaluate_gate_sets` — the image of a gate function over input sets
  (forward implication),
* :func:`backward_input_sets` — for each input, the subset of its values that
  can still produce some value of the output set together with some value of
  the other inputs (backward implication / necessary assignments).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.algebra.tables import evaluate_delay_gate
from repro.algebra.values import ALL_VALUES, DelayValue, FAULT_VALUES, PI_VALUES
from repro.circuit.gates import GateType

#: A value set is a plain int bit mask over the eight value indices.
ValueSet = int

EMPTY_SET: ValueSet = 0
FULL_SET: ValueSet = (1 << len(ALL_VALUES)) - 1
#: Values allowed on primary inputs and flip-flop outputs (hazard free,
#: never fault-originating).
PI_SET: ValueSet = 0
for _value in PI_VALUES:
    PI_SET |= _value.mask
FAULT_SET: ValueSet = 0
for _value in FAULT_VALUES:
    FAULT_SET |= _value.mask


def set_of(*values: DelayValue) -> ValueSet:
    """Build a value set from explicit values."""
    mask = 0
    for value in values:
        mask |= value.mask
    return mask


def members(value_set: ValueSet) -> List[DelayValue]:
    """Expand a value set into the list of its members (in index order)."""
    return [value for value in ALL_VALUES if value_set & value.mask]


def is_singleton(value_set: ValueSet) -> bool:
    """True if exactly one value is possible."""
    return value_set != 0 and (value_set & (value_set - 1)) == 0


def single_value(value_set: ValueSet) -> DelayValue:
    """Return the unique member of a singleton set."""
    if not is_singleton(value_set):
        raise ValueError(f"value set {value_set:#04x} is not a singleton")
    return members(value_set)[0]


def contains(value_set: ValueSet, value: DelayValue) -> bool:
    """True if ``value`` is a member of ``value_set``."""
    return bool(value_set & value.mask)


def has_fault_value(value_set: ValueSet) -> bool:
    """True if the set contains a fault-carrying value (``Rc`` or ``Fc``)."""
    return bool(value_set & FAULT_SET)


def only_fault_values(value_set: ValueSet) -> bool:
    """True if the set is non-empty and every member carries the fault effect."""
    return value_set != 0 and (value_set & ~FAULT_SET) == 0


# --------------------------------------------------------------------------- #
# gate evaluation over sets
# --------------------------------------------------------------------------- #
_PAIR_CACHE: Dict[Tuple[GateType, bool, ValueSet, ValueSet], ValueSet] = {}


def _pairwise_image(gate_type: GateType, left: ValueSet, right: ValueSet, robust: bool) -> ValueSet:
    """Image of a two-input gate over two input sets (memoised)."""
    key = (gate_type, robust, left, right)
    cached = _PAIR_CACHE.get(key)
    if cached is not None:
        return cached
    result = 0
    for a in members(left):
        for b in members(right):
            result |= evaluate_delay_gate(gate_type, (a, b), robust).mask
    _PAIR_CACHE[key] = result
    return result


def evaluate_gate_sets(
    gate_type: GateType, input_sets: Sequence[ValueSet], robust: bool = True
) -> ValueSet:
    """Forward implication: the set of output values producible from the input sets.

    Multi-input AND/OR/XOR families are folded pairwise, which is exact for
    these associative gate functions.  An empty input set yields an empty
    output set (a conflict upstream).
    """
    if any(value_set == 0 for value_set in input_sets):
        return EMPTY_SET
    if gate_type is GateType.BUF:
        return input_sets[0]
    if gate_type is GateType.NOT:
        result = 0
        for value in members(input_sets[0]):
            result |= evaluate_delay_gate(GateType.NOT, (value,)).mask
        return result

    if gate_type in (GateType.AND, GateType.NAND):
        core, invert = GateType.AND, gate_type is GateType.NAND
    elif gate_type in (GateType.OR, GateType.NOR):
        core, invert = GateType.OR, gate_type is GateType.NOR
    elif gate_type in (GateType.XOR, GateType.XNOR):
        core, invert = GateType.XOR, gate_type is GateType.XNOR
    else:
        raise ValueError(f"gate type {gate_type} is not combinationally evaluable")

    result = input_sets[0]
    for value_set in input_sets[1:]:
        result = _pairwise_image(core, result, value_set, robust)
    if invert:
        inverted = 0
        for value in members(result):
            inverted |= evaluate_delay_gate(GateType.NOT, (value,)).mask
        result = inverted
    return result


_BACKWARD_CACHE: Dict[Tuple, Tuple[ValueSet, ...]] = {}


def backward_input_sets(
    gate_type: GateType,
    input_sets: Sequence[ValueSet],
    output_set: ValueSet,
    robust: bool = True,
) -> List[ValueSet]:
    """Backward implication: prune each input set against the output set.

    For every input *i*, keep only the values ``v`` for which some choice of
    the other inputs (within their current sets) makes the gate output fall in
    ``output_set``.  Computed exactly via prefix/suffix fold images (see
    :func:`_backward_input_sets_uncached`); fanins above a small bound fall
    back to no pruning, which is sound (never removes a possible value).
    Results are memoised — the key is a handful of small ints, and the
    searching engines re-pose the same pruning queries once per decision.
    """
    arity = len(input_sets)
    if arity > 4:
        # Sound no-pruning fallback — cheaper than a cache lookup, and
        # caching it would grow the memo without bound on wide gates.
        return list(input_sets)
    key = (gate_type, robust, output_set, tuple(input_sets))
    cached = _BACKWARD_CACHE.get(key)
    if cached is not None:
        return list(cached)
    result = _backward_input_sets_uncached(gate_type, input_sets, output_set, robust)
    _BACKWARD_CACHE[key] = tuple(result)
    return result


#: Multi-input gate type -> (pairwise fold core, invert the folded result),
#: matching :func:`repro.algebra.tables.evaluate_delay_gate` exactly.
_FOLD_CORE: Dict[GateType, Tuple[GateType, bool]] = {
    GateType.AND: (GateType.AND, False),
    GateType.NAND: (GateType.AND, True),
    GateType.OR: (GateType.OR, False),
    GateType.NOR: (GateType.OR, True),
    GateType.XOR: (GateType.XOR, False),
    GateType.XNOR: (GateType.XOR, True),
}

_NOT_IMAGE_CACHE: Dict[ValueSet, ValueSet] = {}


def _not_image(value_set: ValueSet) -> ValueSet:
    """Image of a value set under the inverter table (memoised).

    The inverter is an involution, so the image doubles as the preimage:
    ``reduce(...) in _not_image(out)`` iff ``not1(reduce(...)) in out``.
    """
    cached = _NOT_IMAGE_CACHE.get(value_set)
    if cached is not None:
        return cached
    result = 0
    for value in members(value_set):
        result |= evaluate_delay_gate(GateType.NOT, (value,)).mask
    _NOT_IMAGE_CACHE[value_set] = result
    return result


def _backward_input_sets_uncached(
    gate_type: GateType,
    input_sets: Sequence[ValueSet],
    output_set: ValueSet,
    robust: bool,
) -> List[ValueSet]:
    """The uncached pruning computation behind :func:`backward_input_sets`.

    An input value ``v`` at position ``i`` survives iff some choice of the
    other inputs makes the gate's left-fold land in the output set.  Because
    every input is consumed exactly once by the fold, the set of reachable
    intermediate results is exactly the pairwise fold *image* — so instead of
    enumerating combinations, the fold image of the prefix inputs is computed
    once, extended by the candidate value, and folded through the suffix
    inputs (the fold order is preserved throughout: the non-robust XOR table
    is not associative, so reordering would change results).  This is
    value-for-value identical to the historical exhaustive recursion, which
    the differential suite keeps as its oracle.
    """
    arity = len(input_sets)
    if arity == 1:
        allowed = 0
        for value in members(input_sets[0]):
            if contains(output_set, evaluate_delay_gate(gate_type, (value,), robust)):
                allowed |= value.mask
        return [allowed]

    if arity > 4:
        # Sound fallback: report the unchanged sets.
        return list(input_sets)

    core, invert = _FOLD_CORE[gate_type]
    core_output_set = _not_image(output_set) if invert else output_set

    # prefixes[i] is the fold image of inputs[0 .. i-1] (unused for i == 0).
    prefixes: List[ValueSet] = [0] * arity
    accumulated = input_sets[0]
    for position in range(1, arity):
        prefixes[position] = accumulated
        accumulated = _pairwise_image(core, accumulated, input_sets[position], robust)

    pruned: List[ValueSet] = []
    for position in range(arity):
        allowed = 0
        for value in members(input_sets[position]):
            if position == 0:
                image = value.mask
            else:
                image = _pairwise_image(core, prefixes[position], value.mask, robust)
            for suffix in range(position + 1, arity):
                image = _pairwise_image(core, image, input_sets[suffix], robust)
                if not image:
                    break
            if image & core_output_set:
                allowed |= value.mask
        pruned.append(allowed)
    return pruned


def format_set(value_set: ValueSet) -> str:
    """Human readable rendering of a value set, e.g. ``{R, Rc}``."""
    return "{" + ", ".join(value.name for value in members(value_set)) + "}"

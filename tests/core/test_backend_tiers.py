"""Campaign equivalence of the kernel tier: bigint and numpy vs packed.

The acceptance contract of the kernel tier is that ``--backend bigint`` and
``--backend numpy`` produce **bit-identical campaign results** to the packed
oracle — same Table 3 row, same per-fault verdicts, same sequences, same
detection credits — on the embedded s27 and on surrogate circuits.  (The
random-circuit population is covered by ``tests/fuzz``; this file pins the
end-to-end ATPG flow, which additionally exercises the two-frame simulator,
the implication engines and the search kernels the backend name resolves.)
"""

from __future__ import annotations

import pytest

from repro.core.flow import SequentialDelayATPG
from repro.data import load_circuit
from repro.faults.model import enumerate_delay_faults
from repro.fausim import HAVE_NUMPY

TIERS = ("bigint", "numpy")


def _fingerprint(campaign):
    """Everything the bit-identical contract covers, minus wall time."""
    row = {
        key: value
        for key, value in campaign.as_table3_row().items()
        if key != "time_s"
    }
    per_fault = [
        (
            str(result.fault),
            result.status.value,
            result.phase.name,
            sorted(str(fault) for fault in result.additionally_detected),
            result.sequence.vectors if result.sequence is not None else None,
            str(result.sequence.clock_schedule)
            if result.sequence is not None
            else None,
        )
        for result in campaign.fault_results
    ]
    return (
        row,
        campaign.untestable_breakdown(),
        campaign.targeted,
        campaign.detected_by_simulation,
        per_fault,
    )


@pytest.fixture(scope="module")
def s27_packed(s27):
    return _fingerprint(SequentialDelayATPG(s27, backend="packed").run())


@pytest.mark.parametrize("tier", TIERS)
def test_s27_campaign_bit_identical(tier, s27, s27_packed):
    campaign = SequentialDelayATPG(s27, backend=tier).run()
    assert _fingerprint(campaign) == s27_packed


@pytest.mark.parametrize("tier", TIERS)
def test_surrogate_campaign_bit_identical(tier):
    circuit = load_circuit("s344", scale=0.3)
    subset = enumerate_delay_faults(circuit)[:40]
    packed = SequentialDelayATPG(circuit, backend="packed").run(faults=subset)
    tiered = SequentialDelayATPG(circuit, backend=tier).run(faults=subset)
    assert _fingerprint(tiered) == _fingerprint(packed)


def test_numpy_tier_reports_availability():
    """The optional-dependency switch is a plain module flag, not a probe."""
    assert isinstance(HAVE_NUMPY, bool)

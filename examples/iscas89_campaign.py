#!/usr/bin/env python3
"""Reproduce the paper's Table 3 on the ISCAS'89 benchmark suite.

Runs the full TDgen + SEMILET (FOGBUSTER) campaign on the selected circuits
and prints a table with the paper's columns: tested, untestable, aborted,
number of patterns and CPU seconds.

Examples::

    # quick run: three circuits, down-scaled surrogates, 30 targeted faults each
    python examples/iscas89_campaign.py --circuits s27,s298,s386 --scale 0.25 --max-faults 30

    # the real s27 netlist, every fault, no caps (takes about a second)
    python examples/iscas89_campaign.py --circuits s27 --scale 1.0 --max-faults 0

    # the complete suite at published sizes (hours of CPU time)
    python examples/iscas89_campaign.py --scale 1.0 --max-faults 0
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import SequentialDelayATPG, format_campaign_table, list_circuits, load_circuit
from repro.core.reporting import format_untestable_breakdown
from repro.faults import enumerate_delay_faults, sample_faults
from repro.orchestrate import run_parallel_campaign


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument(
        "--circuits",
        default=",".join(list_circuits()),
        help="comma separated circuit names (default: all twelve Table 3 circuits)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.25,
        help="surrogate size scale; 1.0 = published circuit sizes (default: 0.25)",
    )
    parser.add_argument(
        "--max-faults",
        type=int,
        default=40,
        help="cap on explicitly targeted faults per circuit; 0 = no cap (default: 40)",
    )
    parser.add_argument(
        "--backtrack-limit",
        type=int,
        default=100,
        help="abort limit for both generators (paper: 100)",
    )
    parser.add_argument(
        "--non-robust",
        action="store_true",
        help="use the relaxed non-robust fault model instead of the robust one",
    )
    parser.add_argument(
        "--time-limit",
        type=float,
        default=None,
        help="optional wall-clock limit per circuit in seconds (serial runs only)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes per circuit (default: 1 = serial); the merged "
             "result is bit-identical to the serial campaign",
    )
    parser.add_argument(
        "--partition",
        default="size-aware",
        choices=("round-robin", "size-aware", "dynamic"),
        help="fault sharding mode for --jobs > 1 (default: size-aware)",
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    if args.jobs > 1 and args.time_limit is not None:
        sys.exit("error: --time-limit is not supported with --jobs > 1")
    names = [name.strip() for name in args.circuits.split(",") if name.strip()]
    max_faults = args.max_faults if args.max_faults > 0 else None

    campaigns = []
    for name in names:
        circuit = load_circuit(name, scale=args.scale)
        print(f"[{name}] {circuit.stats()['gates']} gates, "
              f"{circuit.stats()['flip_flops']} flip-flops, "
              f"{2 * circuit.line_count()} delay faults", flush=True)
        # A capped run targets a uniform-stride sample of the fault universe so
        # the reported shape stays representative of the whole circuit.
        faults = sample_faults(enumerate_delay_faults(circuit), max_faults)
        if args.jobs > 1:
            campaign = run_parallel_campaign(
                circuit,
                jobs=args.jobs,
                faults=faults,
                partition=args.partition,
                robust=not args.non_robust,
                local_backtrack_limit=args.backtrack_limit,
                sequential_backtrack_limit=args.backtrack_limit,
            )
        else:
            atpg = SequentialDelayATPG(
                circuit,
                robust=not args.non_robust,
                local_backtrack_limit=args.backtrack_limit,
                sequential_backtrack_limit=args.backtrack_limit,
            )
            campaign = atpg.run(faults=faults, time_limit_s=args.time_limit)
        campaign.circuit_name = name
        campaigns.append(campaign)
        row = campaign.as_table3_row()
        print(f"[{name}] tested={row['tested']} untestable={row['untestable']} "
              f"aborted={row['aborted']} patterns={row['patterns']} time={row['time_s']}s",
              flush=True)

    print()
    model = "non-robust" if args.non_robust else "robust"
    print(format_campaign_table(
        campaigns,
        title=f"Table 3 reproduction ({model} model, scale={args.scale:g}, "
              f"max targeted faults={max_faults or 'all'})",
    ))
    print()
    print(format_untestable_breakdown(campaigns))


if __name__ == "__main__":
    main()

"""Incremental ATPG on a netlist delta, memoised by the campaign store.

The genuinely new capability the ROADMAP names: after an edit to a netlist
whose campaign is already in the store, only the faults the edit can affect
are re-targeted — everything else reuses its stored outcome.

The contract is deliberately stronger than "the unchanged cone matches": the
incremental campaign's :meth:`~repro.core.results.CampaignResult.fingerprint`
must be **bit-identical to a from-scratch serial campaign on the new
circuit**.  That works because the incremental run *is* the serial campaign
loop of :meth:`~repro.core.flow.SequentialDelayATPG.run` — same enumeration
order, same skip rule, same crediting — with
:meth:`~repro.core.flow.SequentialDelayATPG.target_fault` memoised from the
store for the kept faults (the property-based harness in
``tests/fuzz/test_incremental_fuzz.py`` pins this for random perturbations).

Invalidation rule (the correctness argument lives in ``docs/STORE.md``):

1. :func:`~repro.fausim.compile.diff_compiled` splits the changed-gate set
   into value-changing differences ``C`` (type, fanin, existence) and
   observability-only differences ``O`` (fanout sink set, primary-output
   membership — the driving function is identical).
2. ``A = seqTFO*(C)``: the sequential forward closure over fanout edges
   (flip-flops are ordinary sinks, so the closure crosses registers).  Every
   signal whose *value* can differ between the two circuits under any input
   sequence is in ``A``; signals in ``O`` keep their values, so they add
   nothing forward.
3. ``B = seqTFI*(A ∪ O)``: the sequential backward closure over fanin
   edges.  A fault whose signal is outside ``B`` has activation cone,
   observation cone and every side input of its propagation paths untouched
   — its targeting search and its sequence's behaviour are identical on
   both circuits.
4. :func:`invalidate` re-targets exactly the faults on signals in ``B`` (the
   residue); the rest reuse their stored outcome.

For reused *tested* faults the stored sequence's TDsim detection list is
always recomputed on the new circuit (``backend``-dispatched, bit-exact
across backends) instead of patched from the store: detections range over
the whole circuit, and recomputing reproduces the from-scratch list — order
included — by construction.  The stored sequences are additionally re-graded
word-parallel (:func:`~repro.core.verify.grade_test_sequence`) against the
residue as a *diagnostic*: the gross-delay coverage bound tells how much of
the residue existing patterns may still cover, but it never drops a residue
fault (gross grading over-approximates the eight-valued TDsim rule, the
standing PR-4 lesson).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.circuit.netlist import Circuit
from repro.core.flow import (
    SequentialDelayATPG,
    credit_fault_result,
    simulate_sequence_detections,
)
from repro.core.results import CampaignResult
from repro.core.verify import grade_test_sequence
from repro.faults.model import FaultList, FaultStatus, GateDelayFault, enumerate_delay_faults
from repro.fausim.compile import NetlistDelta, compile_circuit, diff_compiled
from repro.obs.tracing import fold_cost
from repro.store.store import BaseCampaign, CampaignStore


def influence_cone(circuit: Circuit, delta: NetlistDelta) -> FrozenSet[str]:
    """The sequential influence cone of a netlist delta.

    ``B = seqTFI*( seqTFO*(changed) ∪ observability )``: value-changing
    edits propagate forward first (any signal whose simulated value can
    differ lies in that forward closure), then one backward closure collects
    every fault site whose activation cone, observation paths or propagation
    side inputs can see a difference.  Observability-only edits (a gained or
    lost fanout sink, a primary-output change) skip the forward step — they
    change no value, only who observes it, which is a fanin-cone effect.

    Both closures are reflexive and cross flip-flops (a flip-flop is a
    fanout sink like any gate, and its data input is its fanin), so the cone
    covers multi-frame effects of the change in both directions.
    """
    forward: Set[str] = {name for name in delta.changed if name in circuit.gates}
    work = list(forward)
    while work:
        signal = work.pop()
        for sink, _pin in circuit.fanout(signal):
            if sink not in forward:
                forward.add(sink)
                work.append(sink)
    cone: Set[str] = set(forward)
    cone.update(name for name in delta.observability if name in circuit.gates)
    work = list(cone)
    while work:
        signal = work.pop()
        for source in circuit.gates[signal].fanin:
            if source not in cone:
                cone.add(source)
                work.append(source)
    return frozenset(cone)


def invalidate(
    faults: Sequence[GateDelayFault], cone: FrozenSet[str]
) -> Tuple[List[GateDelayFault], List[GateDelayFault]]:
    """Partition a fault universe into ``(kept, invalidated)`` by the cone.

    A fault is invalidated exactly when its signal lies in the influence
    cone.  Branch faults need no separate check: a branch's sink gate is in
    the cone only if the branch's stem signal is too (the cone is closed
    backward over fanin edges).
    """
    kept: List[GateDelayFault] = []
    invalidated: List[GateDelayFault] = []
    for fault in faults:
        if fault.line.signal in cone:
            invalidated.append(fault)
        else:
            kept.append(fault)
    return kept, invalidated


@dataclasses.dataclass
class IncrementalOutcome:
    """Result and bookkeeping of one incremental re-run."""

    result: CampaignResult
    base_campaign_id: int
    delta: NetlistDelta
    cone_size: int
    kept: int
    invalidated: int
    #: Memo hits: faults whose stored outcome was reused.
    reused: int
    #: Faults re-targeted through the full FOGBUSTER flow (residue plus any
    #: kept fault the base campaign never recorded, e.g. under a cap).
    retargeted: int
    #: Diagnostic: residue faults gross-covered by re-grading the stored
    #: sequences word-parallel (an upper bound on surviving coverage — never
    #: used to drop a fault).
    residue_gross_covered: int
    #: Per-fault :mod:`repro.obs` cost records when metrics were collected —
    #: stored costs folded back in for reused faults, fresh ones for the
    #: residue (empty with metrics off).
    costs: List = dataclasses.field(default_factory=list)

    def summary(self) -> Dict[str, object]:
        """Compact JSON-friendly view for CLI/service reporting."""
        return {
            "base_campaign_id": self.base_campaign_id,
            "changed_signals": len(self.delta.changed),
            "observability_signals": len(self.delta.observability),
            "removed_signals": len(self.delta.removed),
            "cone_size": self.cone_size,
            "kept": self.kept,
            "invalidated": self.invalidated,
            "reused": self.reused,
            "retargeted": self.retargeted,
            "residue_gross_covered": self.residue_gross_covered,
        }


def regrade_residue(
    circuit: Circuit,
    records,
    kept_order: Sequence[str],
    residue: Sequence[GateDelayFault],
    backend: Optional[str],
) -> int:
    """Word-parallel gross re-grade of stored sequences against the residue.

    Walks the stored sequences (in stored order) and grades each against the
    still-uncovered residue faults with
    :func:`~repro.core.verify.grade_test_sequence`, early-exiting once every
    residue fault is covered.  Returns the number of residue faults at least
    one stored sequence gross-detects — a coverage *upper bound* (gross
    grading over-approximates TDsim crediting), reported as a diagnostic.
    A sequence that no longer applies to the edited circuit (for example a
    vanished primary input) is skipped.
    """
    uncovered = list(residue)
    covered = 0
    for fault_name in kept_order:
        if not uncovered:
            break
        record = records.get(fault_name)
        if record is None or record.sequence_json is None:
            continue
        sequence = record.build_result().sequence
        try:
            grades = grade_test_sequence(circuit, sequence, uncovered, backend=backend)
        except (KeyError, ValueError):
            continue
        uncovered = [fault for fault, grade in zip(uncovered, grades) if not grade.detected]
        covered = len(residue) - len(uncovered)
    return covered


def run_incremental(
    circuit: Circuit,
    store: CampaignStore,
    config,
    *,
    max_target_faults: Optional[int] = None,
    metrics=None,
    base: Optional[BaseCampaign] = None,
) -> IncrementalOutcome:
    """Re-run a campaign incrementally against a stored base.

    ``config`` is an :class:`~repro.orchestrate.coordinator.OrchestratorConfig`
    carrying the generation settings and the simulation ``backend``; the
    base campaign is located (and digest-validated) in the store by circuit
    name and config payload.  The returned campaign is fingerprint-identical
    to ``SequentialDelayATPG(circuit, **config.atpg_kwargs()).run(...)`` on
    the new circuit.

    Random-prefix campaigns are not supported: the prefix phase is seeded
    over the *whole* universe, so there is no cone argument for reusing it —
    re-run those from scratch.
    """
    if getattr(config, "rpg_prefix", False):
        raise ValueError("incremental re-runs do not support --rpg-prefix campaigns")
    started = time.perf_counter()
    if base is None:
        base = store.find_base(circuit.name, config)
    delta = diff_compiled(compile_circuit(base.circuit), compile_circuit(circuit))
    cone = influence_cone(circuit, delta)
    universe = enumerate_delay_faults(circuit)
    kept, residue = invalidate(universe, cone)
    kept_names = {str(fault) for fault in kept}
    records = store.fault_records(base.campaign_id)
    kept_order = [name for name in records if name in kept_names]

    atpg = SequentialDelayATPG(circuit, metrics=metrics, **config.atpg_kwargs())
    registry = atpg.metrics
    residue_gross_covered = regrade_residue(
        circuit, records, kept_order, residue, atpg.backend
    )

    fault_list = FaultList(universe)
    campaign = CampaignResult(circuit_name=circuit.name, total_faults=len(universe))
    reused = retargeted = 0
    for fault in universe:
        if fault_list.status(fault) is not FaultStatus.UNTARGETED:
            continue
        if max_target_faults is not None and campaign.targeted >= max_target_faults:
            break
        name = str(fault)
        record = records.get(name) if name in kept_names else None
        if record is not None:
            result = record.build_result()
            if (
                result.tested
                and result.sequence is not None
                and atpg.enable_fault_simulation
            ):
                # Detections range over the whole circuit, so the stored
                # list is recomputed on the edited netlist — content *and*
                # order then match the from-scratch run by construction.
                _refit_sequence(result.sequence, circuit, atpg.fill_value)
                with registry.timed("repro_phase_seconds", phase="tdsim"):
                    result.additionally_detected = simulate_sequence_detections(
                        circuit, atpg.context, atpg.fault_simulator,
                        result.sequence, atpg.backend,
                    )
            reused += 1
            if registry.enabled:
                cost = record.build_cost()
                if cost is not None:
                    fold_cost(registry, cost)
                    atpg.cost_log.append(cost)
        else:
            result = atpg.target_fault(fault)
            retargeted += 1
        newly = credit_fault_result(result, fault_list)
        campaign.record(result, newly)
    campaign.finalize(fault_list.counts(), time.perf_counter() - started)
    return IncrementalOutcome(
        result=campaign,
        base_campaign_id=base.campaign_id,
        delta=delta,
        cone_size=len(cone),
        kept=len(kept),
        invalidated=len(residue),
        reused=reused,
        retargeted=retargeted,
        residue_gross_covered=residue_gross_covered,
        costs=list(atpg.cost_log),
    )


def _refit_sequence(sequence, circuit: Circuit, fill_value: int) -> None:
    """Align a stored sequence's PPI map with the edited circuit's state.

    Flip-flops added by the edit have no entry in the stored
    ``ppi_initial_values`` (and removed ones leave stale entries behind).
    For a *kept* fault the search never constrains those registers — they
    live inside the influence cone — so the from-scratch flow would leave
    them at the fill value; mirroring that keeps the reused sequence
    identical to the regenerated one.  A no-op when the state set is
    unchanged.
    """
    current = set(sequence.ppi_initial_values)
    expected = circuit.pseudo_primary_inputs
    if current != set(expected):
        sequence.ppi_initial_values = {
            ppi: sequence.ppi_initial_values.get(ppi, fill_value) for ppi in expected
        }

"""Verification harness, result containers and Table 3 style reporting."""

import pytest

from repro.algebra.values import R, V0, V1
from repro.circuit.netlist import Line, LineKind
from repro.core.clocking import ClockSchedule
from repro.core.reporting import (
    campaign_row,
    format_campaign_table,
    format_shard_summary,
    format_untestable_breakdown,
)
from repro.core.results import (
    CampaignResult,
    FaultResult,
    FaultResultStatus,
    FlowPhase,
    TestSequence,
)
from repro.core.verify import verify_test_sequence
from repro.faults.model import DelayFaultType, GateDelayFault


def _sequence_for(circuit, fault, init, v1, v2, prop):
    return TestSequence(
        fault=fault,
        initialization_vectors=init,
        v1=v1,
        v2=v2,
        propagation_vectors=prop,
        clock_schedule=ClockSchedule.for_sequence(len(init), len(prop)),
        observation_point=circuit.primary_outputs[0],
        observed_at_po=True,
    )


# --------------------------------------------------------------------------- #
# verification
# --------------------------------------------------------------------------- #
def test_verify_detects_hand_built_test(and_chain):
    # a rises while b=1, c=0: a slow-to-rise on 'a' keeps y at 0 in the fast frame.
    fault = GateDelayFault(Line("a"), DelayFaultType.SLOW_TO_RISE)
    sequence = _sequence_for(
        and_chain,
        fault,
        init=[],
        v1={"a": 0, "b": 1, "c": 0},
        v2={"a": 1, "b": 1, "c": 0},
        prop=[],
    )
    report = verify_test_sequence(and_chain, sequence)
    assert report.detected
    assert report.primary_output == "y"
    assert report.detection_frame == 1


def test_verify_rejects_non_test(and_chain):
    # No transition on 'a': the fault cannot be provoked.
    fault = GateDelayFault(Line("a"), DelayFaultType.SLOW_TO_RISE)
    sequence = _sequence_for(
        and_chain,
        fault,
        init=[],
        v1={"a": 1, "b": 1, "c": 0},
        v2={"a": 1, "b": 1, "c": 0},
        prop=[],
    )
    assert not verify_test_sequence(and_chain, sequence).detected


def test_verify_sequential_detection_through_propagation(resettable_ff):
    # Provoke a rising transition on 'data' -> next_q while observe masks the
    # output in the fast frame; the wrong captured state is seen one frame later.
    fault = GateDelayFault(Line("data"), DelayFaultType.SLOW_TO_RISE)
    sequence = _sequence_for(
        resettable_ff,
        fault,
        init=[{"data": 0, "reset": 1, "observe": 0}],
        v1={"data": 0, "reset": 0, "observe": 0},
        v2={"data": 1, "reset": 0, "observe": 0},
        prop=[{"data": 0, "reset": 0, "observe": 1}],
    )
    report = verify_test_sequence(resettable_ff, sequence)
    assert report.detected
    assert report.detection_frame == 3


def test_verify_branch_fault(and_chain):
    # Branch fault b -> bc: provoke a rise on b, observe through bc while ab
    # stays at 0 (a=0).
    fault = GateDelayFault(
        Line("b", LineKind.BRANCH, sink="bc", pin=0),
        DelayFaultType.SLOW_TO_RISE,
    )
    sequence = _sequence_for(
        and_chain,
        fault,
        init=[],
        v1={"a": 0, "b": 0, "c": 1},
        v2={"a": 0, "b": 1, "c": 1},
        prop=[],
    )
    assert verify_test_sequence(and_chain, sequence).detected


# --------------------------------------------------------------------------- #
# result containers
# --------------------------------------------------------------------------- #
def test_test_sequence_vector_accounting(and_chain):
    fault = GateDelayFault(Line("a"), DelayFaultType.SLOW_TO_RISE)
    sequence = _sequence_for(
        and_chain,
        fault,
        init=[{"a": 0, "b": 0, "c": 0}],
        v1={"a": 0, "b": 1, "c": 0},
        v2={"a": 1, "b": 1, "c": 0},
        prop=[{"a": 0, "b": 0, "c": 0}] * 2,
    )
    assert sequence.pattern_count == 5
    assert sequence.vectors[0] == {"a": 0, "b": 0, "c": 0}
    assert sequence.vectors[1] == sequence.v1
    assert sequence.vectors[2] == sequence.v2


def test_campaign_result_accounting(and_chain):
    fault = GateDelayFault(Line("a"), DelayFaultType.SLOW_TO_RISE)
    campaign = CampaignResult(circuit_name="demo", total_faults=10)
    sequence = _sequence_for(
        and_chain, fault, init=[], v1={"a": 0}, v2={"a": 1}, prop=[]
    )
    campaign.record(
        FaultResult(fault, FaultResultStatus.TESTED, FlowPhase.COMPLETE, sequence=sequence),
        newly_detected=3,
    )
    campaign.record(
        FaultResult(fault, FaultResultStatus.UNTESTABLE, FlowPhase.LOCAL), newly_detected=0
    )
    campaign.record(
        FaultResult(fault, FaultResultStatus.UNTESTABLE, FlowPhase.INITIALIZATION),
        newly_detected=0,
    )
    campaign.record(
        FaultResult(fault, FaultResultStatus.ABORTED, FlowPhase.PROPAGATION), newly_detected=0
    )
    assert campaign.targeted == 4
    assert campaign.pattern_count == 2
    assert campaign.untestable_local == 1
    assert campaign.untestable_sequential == 1
    assert campaign.aborted_sequential == 1
    assert campaign.detected_by_simulation == 2

    campaign.finalize({"tested": 3, "untestable": 2, "aborted": 1, "untargeted": 4}, 1.5)
    assert campaign.tested == 3
    assert campaign.untestable == 2
    assert campaign.aborted == 5  # aborted + never targeted
    assert campaign.cpu_seconds == 1.5
    assert campaign.fault_coverage == pytest.approx(0.3)
    assert campaign.fault_efficiency == pytest.approx(0.5)


# --------------------------------------------------------------------------- #
# reporting
# --------------------------------------------------------------------------- #
def _dummy_campaign(name, tested, untestable, aborted, patterns, seconds):
    campaign = CampaignResult(circuit_name=name, total_faults=tested + untestable + aborted)
    campaign.tested = tested
    campaign.untestable = untestable
    campaign.aborted = aborted
    campaign.pattern_count = patterns
    campaign.cpu_seconds = seconds
    return campaign


def test_campaign_row_columns():
    row = campaign_row(_dummy_campaign("s27", 39, 11, 2, 40, 0.7))
    assert row == {
        "circuit": "s27",
        "tested": 39,
        "untstbl": 11,
        "aborted": 2,
        "#pat": 40,
        "time[s]": 0.7,
    }


def test_format_campaign_table_contains_all_rows():
    table = format_campaign_table(
        [
            _dummy_campaign("s27", 39, 11, 2, 40, 0.5),
            _dummy_campaign("s298", 112, 242, 163, 16, 452.0),
        ],
        title="Table 3",
    )
    assert "Table 3" in table
    assert "s27" in table and "s298" in table
    assert "tested" in table and "time[s]" in table
    # Column alignment: every data row has the same number of columns.
    lines = [line for line in table.splitlines() if line and not line.startswith("Table")]
    assert len(lines) >= 4


def test_format_untestable_breakdown():
    campaign = _dummy_campaign("s27", 39, 11, 2, 40, 0.5)
    campaign.untestable_local = 4
    campaign.untestable_sequential = 7
    text = format_untestable_breakdown([campaign])
    assert "s27" in text
    assert "4" in text and "7" in text


def test_format_shard_summary_renders_worker_stats():
    stats = [
        {
            "worker": 0, "assigned": 13, "targeted": 5, "dropped": 8,
            "tested": 1, "untestable": 2, "aborted": 2,
            "absorbed_broadcasts": 6, "seconds": 0.25,
        },
        {
            "worker": 1, "assigned": None, "targeted": 4, "dropped": 9,
            "tested": 4, "untestable": 0, "aborted": 0,
            "absorbed_broadcasts": 3, "seconds": 0.5,
        },
    ]
    text = format_shard_summary(stats, recomputed=2, title="Shard summary — s27")
    assert "Shard summary — s27" in text
    assert "shard" in text and "dropped" in text and "absorbed" in text
    assert "-" in text  # dynamic-mode shard shows no assigned count
    assert "recomputed 2" in text
    lines = text.splitlines()
    assert len(lines) == 2 + 2 + len(stats) + 1  # title+blank, header+rule, rows, footer

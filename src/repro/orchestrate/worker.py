"""Worker process entry for sharded ATPG campaigns.

Each worker builds its own :class:`~repro.core.flow.SequentialDelayATPG`
(compiling the packed netlist once per process) and streams one record per
fault back to the coordinator over a ``multiprocessing`` queue.  Cross-shard
fault dropping works through the sequence broadcast: whenever any worker
generates a test, the coordinator fans the sequence out to every other
worker, which fault-simulates it with the packed
:func:`~repro.core.verify.grade_test_sequence` against its own untargeted
faults and drops the covered ones before ever targeting them.

The drop rule is *earlier sequences only*: fault ``i`` may be dropped by a
sequence generated for fault ``j`` only if ``j < i`` in the global
enumeration order.  A serial campaign can only ever drop ``i`` that way, so
the rule keeps the optimistic parallel execution within what the
coordinator's replay merge can reproduce exactly (anything over-dropped is
recomputed serially during the merge; anything under-dropped is merely
wasted work that the merge discards).
"""

from __future__ import annotations

import os
import queue as queue_module
import random
import time
import traceback
from typing import Dict, List, Optional, Sequence, Set

from repro.circuit.netlist import Circuit
from repro.core.flow import SequentialDelayATPG
from repro.core.results import FaultResultStatus, TestSequence
from repro.core.verify import grade_test_sequence
from repro.faults.model import GateDelayFault


class _ShardState:
    """Book-keeping of one worker's view of the campaign."""

    def __init__(
        self,
        worker_id: int,
        circuit: Circuit,
        faults: Sequence[GateDelayFault],
        scope: Set[int],
        backend: Optional[str],
    ) -> None:
        self.worker_id = worker_id
        self.circuit = circuit
        self.faults = list(faults)
        self.index_of: Dict[GateDelayFault, int] = {
            fault: index for index, fault in enumerate(self.faults)
        }
        #: Indices this worker may still target (its shard in static modes,
        #: the whole universe in dynamic mode); shrinks as faults complete.
        self.scope = set(scope)
        #: fault index -> index of the earlier fault whose sequence covers it.
        self.covered: Dict[int, int] = {}
        self.backend = backend
        self.graded_sequences = 0

    def absorb_sequence(self, source_index: int, sequence: TestSequence) -> None:
        """Grade one broadcast sequence and drop the shard faults it covers."""
        candidates = sorted(
            index
            for index in self.scope
            if index > source_index and index not in self.covered
        )
        if not candidates:
            return
        grades = grade_test_sequence(
            self.circuit,
            sequence,
            [self.faults[index] for index in candidates],
            backend=self.backend,
        )
        self.graded_sequences += 1
        for index, grade in zip(candidates, grades):
            if grade.detected:
                self.covered[index] = source_index

    def absorb_detections(
        self, source_index: int, detections: Sequence[GateDelayFault]
    ) -> None:
        """Drop shard faults covered by this worker's own new sequence."""
        for fault in detections:
            index = self.index_of.get(fault)
            if index is not None and index > source_index and index in self.scope:
                self.covered.setdefault(index, source_index)


def _drain_broadcasts(state: _ShardState, broadcast_queue) -> None:
    """Apply every pending broadcast before deciding the next fault."""
    while True:
        try:
            message = broadcast_queue.get_nowait()
        except queue_module.Empty:
            return
        for index in message.get("completed", ()):
            # Faults another worker already recorded can never be targeted
            # here, so grading sequences against them would be wasted work.
            state.scope.discard(index)
        sequence = TestSequence.from_json(message["sequence"])
        state.absorb_sequence(int(message["index"]), sequence)


def _process_fault(
    state: _ShardState,
    atpg: SequentialDelayATPG,
    index: int,
    result_queue,
    stats: Dict[str, int],
) -> None:
    """Target one fault (or record its drop) and stream the record back."""
    state.scope.discard(index)
    if index in state.covered:
        stats["dropped"] += 1
        result_queue.put(
            {
                "type": "drop",
                "index": index,
                "worker": state.worker_id,
                "by": state.covered[index],
            }
        )
        return

    result = atpg.target_fault(state.faults[index])
    detections = result.additionally_detected
    result.additionally_detected = []
    stats["targeted"] += 1
    if result.status is FaultResultStatus.TESTED:
        stats["tested"] += 1
        state.absorb_detections(index, detections)
    elif result.status is FaultResultStatus.UNTESTABLE:
        stats["untestable"] += 1
    else:
        stats["aborted"] += 1
    result_queue.put(
        {
            "type": "fault",
            "index": index,
            "worker": state.worker_id,
            "result": result.to_json(),
            "detections": [fault.to_json() for fault in detections],
        }
    )


def worker_main(
    worker_id: int,
    seed: int,
    circuit: Circuit,
    faults: Sequence[GateDelayFault],
    assigned: Optional[Sequence[int]],
    task_queue,
    result_queue,
    broadcast_queue,
    atpg_kwargs: Dict[str, object],
) -> None:
    """Process entry: run one shard of an ATPG campaign.

    Args:
        worker_id: shard id, ``0 .. jobs-1``.
        seed: per-shard RNG seed (see
            :func:`repro.orchestrate.partition.derive_shard_seed`); seeds the
            :mod:`random` module so any stochastic component inside the
            worker is reproducible run-to-run.
        circuit: circuit under test (pickled into the process).
        faults: the full campaign fault universe in enumeration order.
        assigned: the fault indices this worker may end up targeting — its
            shard in the static modes, every still-untargeted index in the
            dynamic mode (where the actual assignment happens via
            ``task_queue``).
        task_queue: shared index queue for dynamic mode (``None`` selects the
            static loop over ``assigned``); a ``None`` entry is the shutdown
            sentinel.
        result_queue: stream of fault / drop / done / error records back to
            the coordinator.
        broadcast_queue: this worker's inbox of sequences generated by other
            shards (and, on resume, of journaled sequences).
        atpg_kwargs: keyword arguments for
            :class:`~repro.core.flow.SequentialDelayATPG`.
    """
    random.seed(seed)
    parent = os.getppid()
    start = time.perf_counter()
    stats: Dict[str, int] = {
        "targeted": 0,
        "tested": 0,
        "untestable": 0,
        "aborted": 0,
        "dropped": 0,
    }
    try:
        atpg = SequentialDelayATPG(circuit, **atpg_kwargs)
        backend = atpg.backend
        scope = set(assigned) if assigned is not None else set(range(len(faults)))
        state = _ShardState(worker_id, circuit, faults, scope, backend)

        if task_queue is None:
            for index in sorted(assigned):
                if os.getppid() != parent:
                    return  # orphaned by a killed coordinator: stop promptly
                _drain_broadcasts(state, broadcast_queue)
                _process_fault(state, atpg, index, result_queue, stats)
        else:
            while True:
                if os.getppid() != parent:
                    return  # orphaned by a killed coordinator: stop promptly
                try:
                    # A timeout (rather than a blocking get) keeps the orphan
                    # check live even when the queue's feeder died with the
                    # coordinator and no sentinel will ever arrive.
                    index = task_queue.get(timeout=1.0)
                except queue_module.Empty:
                    continue
                if index is None:
                    break
                _drain_broadcasts(state, broadcast_queue)
                _process_fault(state, atpg, index, result_queue, stats)

        result_queue.put(
            {
                "type": "done",
                "worker": worker_id,
                "stats": {
                    "worker": worker_id,
                    "seed": seed,
                    "assigned": len(assigned) if task_queue is None else None,
                    "graded_sequences": state.graded_sequences,
                    "seconds": round(time.perf_counter() - start, 3),
                    **stats,
                },
            }
        )
    except BaseException:  # noqa: BLE001 - the coordinator must hear about any death
        result_queue.put(
            {
                "type": "error",
                "worker": worker_id,
                "error": traceback.format_exc(),
            }
        )
        raise

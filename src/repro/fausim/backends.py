"""Registry of interchangeable good-machine simulation backends.

Four backends ship with the library:

``reference``
    :class:`~repro.fausim.logic_sim.LogicSimulator` — the per-gate
    interpreter.  Slow but transparent; it is the oracle the differential
    test harness checks every other backend against.

``packed``
    :class:`~repro.fausim.packed_sim.PackedLogicSimulator` — the compiled
    bit-parallel evaluator (64 patterns per word).

``bigint``
    :class:`~repro.fausim.bigint_sim.BigintLogicSimulator` — the packed
    evaluator on unbounded-width Python integer planes: one gate evaluation
    covers the entire pattern/fault batch in a single big-integer operation
    instead of one Python loop iteration per 64-bit word.

``numpy``
    :class:`~repro.fausim.numpy_sim.NumpyLogicSimulator` — the levelized
    vectorised kernel: each topological level of the compiled netlist
    evaluates as uint64 array operations across all gates of the level at
    once.  numpy is optional; without it the factory silently degrades to
    the bit-identical ``bigint`` tier.

All consumers (:class:`~repro.fausim.fault_sim.PropagationFaultSimulator`,
:func:`~repro.core.verify.verify_test_sequence`, the flow and the baselines)
take a ``backend`` argument and resolve it here, so selecting a backend is
uniform across the code base::

    simulator = create_simulator(circuit, backend="packed")

``backend=None`` resolves to the process-wide default.  The default is
``packed``: the compiled backend is differentially tested to be bit-exact
against the reference interpreter (``tests/fausim``, ``tests/core``,
``tests/tdsim``), so the fast path is safe to use everywhere.  Pass
``backend="reference"`` (or call ``set_default_backend("reference")``) to
fall back to the transparent per-gate interpreter — the escape hatch when
debugging the packed evaluator itself.

The search-side *implication engines* (:mod:`repro.tdgen.implication`) are
registered under the same names and resolve ``backend=None`` through
:func:`default_backend` as well, so one backend choice — per call, via
:func:`set_default_backend`, or via the CLI ``--backend`` flag — governs
fault simulation and forward implication together.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.circuit.netlist import Circuit
from repro.fausim.bigint_sim import (
    BigintLogicSimulator,
    BigintTwoFrameSimulator,
)
from repro.fausim.logic_sim import LogicSimulator
from repro.fausim.numpy_sim import HAVE_NUMPY, create_numpy_simulator
from repro.fausim.packed_sim import PackedLogicSimulator
from repro.fausim.packed_two_frame import PackedTwoFrameSimulator

#: A backend factory builds a simulator bound to one circuit.  The returned
#: object must implement the scalar ``LogicSimulator`` interface
#: (``combinational`` / ``next_state`` / ``clock`` / ``outputs``); batch
#: methods (``clock_batch`` …) are optional accelerations.
BackendFactory = Callable[[Circuit], object]

REFERENCE_BACKEND = "reference"
PACKED_BACKEND = "packed"
BIGINT_BACKEND = "bigint"
NUMPY_BACKEND = "numpy"

#: Backends whose planes live on the compiled netlist; they share the packed
#: data model and differ only in word width / evaluation strategy.
COMPILED_BACKENDS = (PACKED_BACKEND, BIGINT_BACKEND, NUMPY_BACKEND)

_REGISTRY: Dict[str, BackendFactory] = {}
_default_backend = PACKED_BACKEND


def register_backend(name: str, factory: BackendFactory, overwrite: bool = False) -> None:
    """Register a simulation backend under ``name``.

    Args:
        name: registry key used in every ``backend=`` argument.
        factory: callable building a simulator for a circuit.
        overwrite: allow replacing an existing registration.
    """
    if not overwrite and name in _REGISTRY:
        raise ValueError(f"backend {name!r} is already registered")
    _REGISTRY[name] = factory


def available_backends() -> Tuple[str, ...]:
    """Names of all registered backends, sorted."""
    return tuple(sorted(_REGISTRY))


def resolve_backend(name: "str | None" = None) -> str:
    """Resolve ``None`` to the default backend and validate the name."""
    resolved = name if name is not None else _default_backend
    if resolved not in _REGISTRY:
        raise ValueError(
            f"unknown simulation backend {resolved!r}; available: {', '.join(available_backends())}"
        )
    return resolved


def default_backend() -> str:
    """Name of the process-wide default backend."""
    return _default_backend


def set_default_backend(name: str) -> str:
    """Change the process-wide default backend; returns the previous default."""
    global _default_backend
    resolved = resolve_backend(name)
    previous = _default_backend
    _default_backend = resolved
    return previous


def create_simulator(circuit: Circuit, backend: "str | None" = None):
    """Build a simulator for ``circuit`` using the selected backend."""
    return _REGISTRY[resolve_backend(backend)](circuit)


def create_two_frame_simulator(
    circuit: Circuit, robust: bool = True, backend: "str | None" = None
):
    """Build the eight-valued two-frame simulator matching a backend tier.

    Returns ``None`` for the ``reference`` backend (its consumers route the
    exact injection checks through the interpreted implication engine
    instead).  The ``packed`` tier chunks injections at 64 per word; the
    ``bigint`` and ``numpy`` tiers run the whole injection batch through one
    unbounded-width pass (the eight-valued set planes are plane-count bound,
    not level bound, so the vectorised tier shares the bigint substrate
    here).
    """
    resolved = resolve_backend(backend)
    if resolved == PACKED_BACKEND:
        return PackedTwoFrameSimulator(circuit, robust=robust)
    if resolved in (BIGINT_BACKEND, NUMPY_BACKEND):
        return BigintTwoFrameSimulator(circuit, robust=robust)
    return None


register_backend(REFERENCE_BACKEND, LogicSimulator)
register_backend(PACKED_BACKEND, PackedLogicSimulator)
register_backend(BIGINT_BACKEND, BigintLogicSimulator)
register_backend(NUMPY_BACKEND, create_numpy_simulator)

"""Three-valued gate evaluation and gate-type helpers."""

import pytest

from repro.circuit.gates import (
    GateType,
    controlling_value,
    evaluate_gate,
    gate_type_from_name,
    inversion_parity,
    non_controlling_value,
)


def test_gate_type_from_name_accepts_aliases():
    assert gate_type_from_name("BUFF") is GateType.BUF
    assert gate_type_from_name("buff") is GateType.BUF
    assert gate_type_from_name("INV") is GateType.NOT
    assert gate_type_from_name("nand") is GateType.NAND
    assert gate_type_from_name("dff") is GateType.DFF
    with pytest.raises(ValueError):
        gate_type_from_name("MAJORITY")


def test_sequential_and_combinational_classification():
    assert GateType.DFF.is_sequential
    assert not GateType.DFF.is_combinational
    assert GateType.NAND.is_combinational
    assert not GateType.INPUT.is_combinational


def test_controlling_values():
    assert controlling_value(GateType.AND) == 0
    assert controlling_value(GateType.NAND) == 0
    assert controlling_value(GateType.OR) == 1
    assert controlling_value(GateType.NOR) == 1
    assert controlling_value(GateType.XOR) is None
    assert non_controlling_value(GateType.AND) == 1
    assert non_controlling_value(GateType.NOR) == 0
    assert non_controlling_value(GateType.NOT) is None


def test_inversion_parity():
    assert inversion_parity(GateType.NAND) == 1
    assert inversion_parity(GateType.NOR) == 1
    assert inversion_parity(GateType.NOT) == 1
    assert inversion_parity(GateType.XNOR) == 1
    assert inversion_parity(GateType.AND) == 0
    assert inversion_parity(GateType.BUF) == 0


@pytest.mark.parametrize(
    "gate_type,inputs,expected",
    [
        (GateType.AND, (1, 1, 1), 1),
        (GateType.AND, (1, 0, None), 0),
        (GateType.AND, (1, None), None),
        (GateType.NAND, (1, 1), 0),
        (GateType.NAND, (0, None), 1),
        (GateType.OR, (0, 0), 0),
        (GateType.OR, (None, 1), 1),
        (GateType.OR, (None, 0), None),
        (GateType.NOR, (0, 0, 0), 1),
        (GateType.NOT, (0,), 1),
        (GateType.NOT, (None,), None),
        (GateType.BUF, (1,), 1),
        (GateType.XOR, (1, 0), 1),
        (GateType.XOR, (1, 1), 0),
        (GateType.XOR, (1, None), None),
        (GateType.XNOR, (1, 0), 0),
        (GateType.XNOR, (0, 0), 1),
    ],
)
def test_three_valued_evaluation(gate_type, inputs, expected):
    assert evaluate_gate(gate_type, inputs) == expected


def test_controlling_value_dominates_unknowns():
    assert evaluate_gate(GateType.AND, (0, None, None)) == 0
    assert evaluate_gate(GateType.OR, (1, None)) == 1
    assert evaluate_gate(GateType.NAND, (0, None)) == 1
    assert evaluate_gate(GateType.NOR, (1, None)) == 0


def test_arity_errors():
    with pytest.raises(ValueError):
        evaluate_gate(GateType.NOT, (0, 1))
    with pytest.raises(ValueError):
        evaluate_gate(GateType.BUF, ())
    with pytest.raises(ValueError):
        evaluate_gate(GateType.AND, ())
    with pytest.raises(ValueError):
        evaluate_gate(GateType.DFF, (1,))
    with pytest.raises(ValueError):
        evaluate_gate(GateType.INPUT, ())

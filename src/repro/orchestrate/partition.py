"""Fault sharding for multi-process ATPG campaigns.

A campaign over ``enumerate_delay_faults`` is embarrassingly parallel per
fault except for fault dropping, which the coordinator restores through the
sequence broadcast (see :mod:`repro.orchestrate.coordinator`).  This module
only decides *which worker targets which fault*:

``round-robin``
    Static interleaved split: fault ``i`` goes to shard ``i % jobs``.  Cheap
    and usually well balanced because neighbouring faults (both transitions
    of the same line, lines of the same cone) have similar cost.

``size-aware``
    Static longest-processing-time split over a structural cost estimate
    (the fanin plus fanout cone size of the fault line): heavy faults are
    spread first, each onto the currently lightest shard.

``dynamic``
    No static plan at all — the coordinator feeds a shared work queue and
    idle workers steal the next untargeted fault, so a shard that finishes
    early keeps contributing.

Whatever the mode, every shard processes its faults in global enumeration
order and the coordinator's replay merge makes the final campaign independent
of the scheduling, so the mode is purely a wall-clock knob.
"""

from __future__ import annotations

import dataclasses
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.levelize import combinational_order
from repro.circuit.netlist import Circuit
from repro.faults.model import GateDelayFault

#: The supported partitioning modes, in documentation order.
PARTITION_MODES: Tuple[str, ...] = ("round-robin", "size-aware", "dynamic")


@dataclasses.dataclass(frozen=True)
class ShardPlan:
    """Static assignment of fault indices to worker shards.

    ``shards[w]`` holds the global fault-universe indices worker ``w``
    targets, sorted ascending — workers must process their shard in global
    enumeration order so that the earlier-sequence drop rule (a fault may
    only be dropped by a sequence generated for a lower-index fault) mirrors
    the serial campaign.
    """

    mode: str
    shards: Tuple[Tuple[int, ...], ...]

    @property
    def jobs(self) -> int:
        """Number of worker shards in the plan."""
        return len(self.shards)

    @property
    def fault_count(self) -> int:
        """Total number of faults distributed over the shards."""
        return sum(len(shard) for shard in self.shards)


def derive_shard_seed(campaign_seed: int, shard_id: int) -> int:
    """Deterministic per-shard RNG seed derived from one campaign seed.

    Uses :func:`zlib.crc32` over an explicit token (not :func:`hash`, which is
    randomised per process via ``PYTHONHASHSEED``), so a sharded surrogate
    campaign is reproducible run-to-run and across machines.  Worker ``w`` of
    every campaign with the same ``campaign_seed`` always sees the same seed.
    """
    token = f"repro-shard:{campaign_seed}:{shard_id}".encode("utf-8")
    return (zlib.crc32(token) ^ ((campaign_seed * 0x9E3779B1) & 0xFFFFFFFF)) & 0x7FFFFFFF


def partition_round_robin(indices: Sequence[int], jobs: int) -> ShardPlan:
    """Interleave the fault indices over ``jobs`` shards."""
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    shards: List[List[int]] = [[] for _ in range(jobs)]
    for position, index in enumerate(indices):
        shards[position % jobs].append(index)
    return ShardPlan(
        mode="round-robin", shards=tuple(tuple(sorted(shard)) for shard in shards)
    )


def signal_cone_sizes(circuit: Circuit) -> Dict[str, int]:
    """Structural cost estimate per signal: fanin-cone plus fanout-cone size.

    Both cones are computed with bitset dynamic programming over the
    levelised combinational block (state boundaries cut the cones, matching
    the per-frame searches of TDgen/SEMILET).  The estimate tracks how much
    circuit a per-fault search can touch, which is what makes it a usable
    load-balancing weight for :func:`partition_size_aware`.
    """
    order = combinational_order(circuit)
    sources = list(circuit.primary_inputs) + list(circuit.pseudo_primary_inputs)
    bit_of: Dict[str, int] = {}
    for name in sources + order:
        if name not in bit_of:
            bit_of[name] = 1 << len(bit_of)

    fanin_cone: Dict[str, int] = {name: bit_of[name] for name in sources}
    for name in order:
        cone = bit_of[name]
        for source in circuit.gate(name).fanin:
            cone |= fanin_cone.get(source, 0)
        fanin_cone[name] = cone

    fanout_cone: Dict[str, int] = {}
    for name in reversed(order):
        cone = bit_of[name]
        for sink, _pin in circuit.fanout(name):
            cone |= fanout_cone.get(sink, 0)
        fanout_cone[name] = cone
    for name in sources:
        cone = bit_of[name]
        for sink, _pin in circuit.fanout(name):
            cone |= fanout_cone.get(sink, 0)
        fanout_cone[name] = cone

    return {
        name: (fanin_cone.get(name, 0)).bit_count() + (fanout_cone.get(name, 0)).bit_count()
        for name in bit_of
    }


def fault_weight(cone_sizes: Dict[str, int], fault: GateDelayFault) -> int:
    """Estimated targeting cost of one fault (see :func:`signal_cone_sizes`)."""
    weight = 1 + cone_sizes.get(fault.line.signal, 0)
    if fault.line.is_branch and fault.line.sink is not None:
        weight += cone_sizes.get(fault.line.sink, 0)
    return weight


def partition_size_aware(
    indices: Sequence[int],
    faults: Sequence[GateDelayFault],
    circuit: Circuit,
    jobs: int,
) -> ShardPlan:
    """Longest-processing-time split over the structural fault weights.

    Faults are assigned heaviest first, each to the currently lightest shard
    (ties broken by shard id), which is the classic LPT approximation of
    balanced makespan.  ``indices`` index into ``faults`` — the full campaign
    universe — so a resumed campaign can partition just its remaining faults.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    cone_sizes = signal_cone_sizes(circuit)
    weighted = sorted(
        ((fault_weight(cone_sizes, faults[index]), index) for index in indices),
        key=lambda item: (-item[0], item[1]),
    )
    loads = [0] * jobs
    shards: List[List[int]] = [[] for _ in range(jobs)]
    for weight, index in weighted:
        lightest = min(range(jobs), key=lambda shard: (loads[shard], shard))
        loads[lightest] += weight
        shards[lightest].append(index)
    return ShardPlan(
        mode="size-aware", shards=tuple(tuple(sorted(shard)) for shard in shards)
    )


def plan_shards(
    mode: str,
    indices: Sequence[int],
    faults: Sequence[GateDelayFault],
    circuit: Circuit,
    jobs: int,
) -> Optional[ShardPlan]:
    """Build the static shard plan for ``mode``; ``None`` for ``dynamic``.

    The dynamic mode has no static plan — the coordinator feeds a shared
    work queue instead and idle workers steal the next untargeted fault.
    """
    if mode not in PARTITION_MODES:
        raise ValueError(f"unknown partition mode {mode!r}; known: {PARTITION_MODES}")
    if mode == "round-robin":
        return partition_round_robin(indices, jobs)
    if mode == "size-aware":
        return partition_size_aware(indices, faults, circuit, jobs)
    return None

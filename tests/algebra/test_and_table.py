"""Paper Table 1: the AND gate truth table of the eight-valued algebra.

The rows reproduced literally in the paper (the Rc and Fc rows, which carry
the robustness rules) are checked cell by cell; the remaining rows are
checked against the frame/hazard semantics.
"""

import pytest

from repro.algebra.tables import and2, paper_table1_and
from repro.algebra.values import ALL_VALUES, F, FC, H0, H1, R, RC, V0, V1


def test_clean_zero_dominates():
    for value in ALL_VALUES:
        assert and2(V0, value) is V0
        assert and2(value, V0) is V0


def test_clean_one_is_identity():
    for value in ALL_VALUES:
        assert and2(V1, value) is value
        assert and2(value, V1) is value


def test_commutativity():
    for a in ALL_VALUES:
        for b in ALL_VALUES:
            assert and2(a, b) is and2(b, a)


# --- the Rc row of Table 1 --------------------------------------------------- #
@pytest.mark.parametrize(
    "off_path,expected",
    [
        (V0, V0),
        (V1, RC),
        (R, RC),
        (F, H0),
        (H0, H0),
        (H1, RC),
        (RC, RC),
        (FC, H0),
    ],
)
def test_table1_rc_row(off_path, expected):
    assert and2(RC, off_path) is expected


# --- the Fc row of Table 1 --------------------------------------------------- #
@pytest.mark.parametrize(
    "off_path,expected",
    [
        (V0, V0),
        (V1, FC),
        (R, H0),
        (F, F),
        (H0, H0),
        (H1, F),
        (RC, H0),
        (FC, FC),
    ],
)
def test_table1_fc_row(off_path, expected):
    assert and2(FC, off_path) is expected


def test_rc_propagates_with_any_final_one_off_path():
    """Paper: "Rc propagates ... with any value on the off path input that is 1
    in it's final value"."""
    for off_path in ALL_VALUES:
        result = and2(RC, off_path)
        if off_path.final == 1:
            assert result is RC
        else:
            assert not result.fault


def test_fc_propagates_only_with_steady_one_or_fc():
    """Paper: "Fc propagates only with a steady one or Fc on the off path"."""
    for off_path in ALL_VALUES:
        result = and2(FC, off_path)
        if off_path is V1 or off_path is FC:
            assert result is FC
        else:
            assert not result.fault


def test_no_fault_value_emerges_without_fault_input():
    """Rc/Fc never appear at a gate output unless present at an input."""
    for a in ALL_VALUES:
        for b in ALL_VALUES:
            if not a.fault and not b.fault:
                assert not and2(a, b).fault


def test_transition_combinations():
    assert and2(R, R) is R
    assert and2(F, F) is F
    assert and2(R, F) is H0
    assert and2(R, H1) is R
    assert and2(F, H1) is F


def test_hazard_combinations():
    assert and2(H1, H1) is H1
    assert and2(H1, V1) is H1
    assert and2(H0, V1) is H0
    assert and2(H0, H1) is H0
    assert and2(H0, R) is H0


def test_frame_semantics_hold_for_every_cell():
    """The output's per-frame values are always the AND of the input frames."""
    for a in ALL_VALUES:
        for b in ALL_VALUES:
            result = and2(a, b)
            assert result.initial == (a.initial & b.initial)
            assert result.final == (a.final & b.final)


def test_paper_table1_export_is_complete():
    table = paper_table1_and()
    assert len(table) == 64
    assert table[("Rc", "1h")] == "Rc"
    assert table[("Fc", "1h")] == "F"


def test_non_robust_relaxation():
    """The non-robust variant lets Fc pass any final-one off-path value."""
    assert and2(FC, H1, robust=False) is FC
    assert and2(FC, FC, robust=False) is FC
    assert and2(FC, R, robust=False) is H0  # output is not even a transition
    # The robust table is unchanged for Rc.
    assert and2(RC, H1, robust=False) is RC

"""Baseline test generation strategies used for comparison benchmarks.

The paper itself has no quantitative baseline (there was no comparable
sequential delay-fault ATPG at the time); these baselines exist to put the
deterministic FOGBUSTER flow in context:

* :class:`repro.baselines.random_atpg.RandomSequenceATPG` — random input
  sequences with a fast frame at a random position, graded by the same delay
  fault simulator;
* :class:`repro.baselines.scan_atpg.EnhancedScanATPG` — assumes an
  enhanced-scan environment where the state is directly controllable and
  observable (the approach of the prior combinational/scan work the paper
  contrasts itself with), i.e. TDgen alone with PPIs treated as inputs and
  PPOs as outputs.
"""

from repro.baselines.random_atpg import RandomSequenceATPG, RandomCampaignResult
from repro.baselines.scan_atpg import EnhancedScanATPG, ScanCampaignResult

__all__ = [
    "RandomSequenceATPG",
    "RandomCampaignResult",
    "EnhancedScanATPG",
    "ScanCampaignResult",
]

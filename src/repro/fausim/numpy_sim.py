"""The ``numpy`` kernel tier: levelized uint64 array evaluation.

The ``packed`` and ``bigint`` tiers still interpret the compiled gate program
one gate at a time in Python; only the *patterns* are parallel.  This module
adds the orthogonal axis: the compiled netlist is grouped into topological
**levels** (every gate's fanin lives at a strictly lower level), the gates of
one level are partitioned by opcode and arity, and each partition evaluates
as a handful of vectorised ``uint64`` array operations across **all gates of
the level at once**.  Pattern words beyond 64 bits become a second array
axis, so one pass covers an arbitrarily wide fault/pattern population with
``levels x partitions`` numpy calls instead of ``gates x words`` Python loop
iterations.

The plane identities are exactly those of
:mod:`repro.fausim.packed_sim` (two-plane {0, 1, X} encoding)::

    AND   one = AND(one_i)          zero = OR(zero_i)
    OR    one = OR(one_i)           zero = AND(zero_i)
    NOT   swap the planes
    XOR   parity of the one planes, masked to the all-known patterns

numpy is an **optional** dependency: when it is missing,
:data:`HAVE_NUMPY` is false and :func:`create_numpy_simulator` silently
degrades to the :class:`~repro.fausim.bigint_sim.BigintLogicSimulator`, so a
``--backend numpy`` request stays correct (and still batch-parallel) on a
numpy-less host.  The differential fuzz harness in ``tests/fuzz`` pins the
vectorised pass bit-for-bit against the ``packed`` oracle and the reference
interpreter.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.netlist import Circuit
from repro.fausim.bigint_sim import BIGINT_WORD_BITS, BigintLogicSimulator
from repro.fausim.compile import (
    OP_BUF,
    OP_NAND,
    OP_NOR,
    OP_NOT,
    OP_XNOR,
    CompiledCircuit,
    compile_circuit,
)
from repro.fausim.packed_sim import PackedLogicSimulator, PackedPlanes

try:  # pragma: no cover - exercised by the no-numpy CI leg
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: True when numpy imported; the sole switch between the vectorised pass and
#: the bigint fallback.
HAVE_NUMPY = _np is not None


@dataclasses.dataclass(frozen=True)
class LevelGroup:
    """One (opcode, arity) partition of one topological level.

    Attributes:
        op: the shared opcode of every gate in the partition.
        out_slots: signal slot of each gate's output (``int64[m]``).
        fanin: fanin slots in pin order (``int64[m, k]``).
        first_position: flat fanin position of each gate's pin 0, so a flat
            position ``p`` of row ``r`` maps to column ``p -
            first_position[r]`` (used to patch branch-forced reads).
    """

    op: int
    out_slots: "object"
    fanin: "object"
    first_position: Tuple[int, ...]


@dataclasses.dataclass(frozen=True)
class LevelizedProgram:
    """The compiled gate program regrouped for level-parallel evaluation.

    Attributes:
        levels: per topological level, its (opcode, arity) partitions.
        level_of_out: gate output slot -> level index.
        group_of_position: flat fanin position -> ``(level, group, row,
            column)`` of the read it feeds, for branch-force patching.
        num_signals: slot count of the underlying compiled circuit.
    """

    levels: Tuple[Tuple[LevelGroup, ...], ...]
    level_of_out: Dict[int, int]
    group_of_position: Dict[int, Tuple[int, int, int, int]]
    num_signals: int


def levelize_program(compiled: CompiledCircuit) -> LevelizedProgram:
    """Group ``compiled``'s gate program by topological level and opcode.

    Cached on the source circuit next to the compiled arrays; rebuilding
    after a structural edit happens automatically because the cache is keyed
    by the compiled object's identity.
    """
    circuit = compiled.circuit
    cached = getattr(circuit, "_levelized_cache", None)
    if cached is not None and cached[0] is compiled:
        return cached[1]

    offsets = compiled.fanin_offsets
    fanin_flat = compiled.fanin_flat
    outputs = compiled.outputs
    ops = compiled.ops

    level_of_slot = [0] * compiled.num_signals
    # rows[level][(op, arity)] -> list of gate-program indices
    rows: List[Dict[Tuple[int, int], List[int]]] = []
    level_of_out: Dict[int, int] = {}
    for index in range(len(ops)):
        start = offsets[index]
        end = offsets[index + 1]
        level = 1 + max(level_of_slot[fanin_flat[p]] for p in range(start, end))
        out = outputs[index]
        level_of_slot[out] = level
        level_of_out[out] = level - 1  # level 0 is the source plane
        while len(rows) < level:
            rows.append({})
        rows[level - 1].setdefault((ops[index], end - start), []).append(index)

    group_of_position: Dict[int, Tuple[int, int, int, int]] = {}
    levels: List[Tuple[LevelGroup, ...]] = []
    for level_index, partitions in enumerate(rows):
        groups: List[LevelGroup] = []
        for (op, arity), indices in sorted(partitions.items()):
            out_slots = [outputs[i] for i in indices]
            fanin = [
                [fanin_flat[p] for p in range(offsets[i], offsets[i] + arity)]
                for i in indices
            ]
            first = tuple(offsets[i] for i in indices)
            for row, i in enumerate(indices):
                for column in range(arity):
                    group_of_position[offsets[i] + column] = (
                        level_index,
                        len(groups),
                        row,
                        column,
                    )
            if HAVE_NUMPY:
                out_arr = _np.asarray(out_slots, dtype=_np.int64)
                fan_arr = _np.asarray(fanin, dtype=_np.int64)
            else:  # pragma: no cover - structure still useful for inspection
                out_arr = tuple(out_slots)
                fan_arr = tuple(tuple(row) for row in fanin)
            groups.append(
                LevelGroup(
                    op=op, out_slots=out_arr, fanin=fan_arr, first_position=first
                )
            )
        levels.append(tuple(groups))

    program = LevelizedProgram(
        levels=tuple(levels),
        level_of_out=level_of_out,
        group_of_position=group_of_position,
        num_signals=compiled.num_signals,
    )
    circuit._levelized_cache = (compiled, program)
    return program


# --------------------------------------------------------------------------- #
# int <-> uint64-word conversion
# --------------------------------------------------------------------------- #
def _planes_to_array(plane_list: Sequence[int], words: int):
    """Pack one Python-int plane per signal into a ``uint64[slots, words]``."""
    size = words * 8
    buffer = b"".join(value.to_bytes(size, "little") for value in plane_list)
    return (
        _np.frombuffer(buffer, dtype="<u8").reshape(len(plane_list), words).copy()
    )


def _array_to_planes(array) -> List[int]:
    """Unpack a ``uint64[slots, words]`` back into Python-int planes."""
    data = array.astype("<u8", copy=False).tobytes()
    size = array.shape[1] * 8
    return [
        int.from_bytes(data[offset : offset + size], "little")
        for offset in range(0, len(data), size)
    ]


def _mask_to_words(mask: int, words: int):
    """One force/selection mask as a ``uint64[words]`` row."""
    return _np.frombuffer(mask.to_bytes(words * 8, "little"), dtype="<u8")


class NumpyLogicSimulator(PackedLogicSimulator):
    """Levelized three-valued plane simulator on uint64 arrays.

    A drop-in :class:`~repro.fausim.packed_sim.PackedLogicSimulator` with the
    bigint tier's unbounded chunk width whose full-program passes
    (:meth:`evaluate_planes`, :meth:`evaluate_planes_forced`) run level by
    level as vectorised array operations.  Incremental cone passes
    (``gate_indices``) keep the exact per-gate path — the wavefront subsets
    the search side requests are too narrow for vectorisation to pay.
    """

    def __init__(self, circuit: Circuit) -> None:
        if not HAVE_NUMPY:
            raise RuntimeError(
                "numpy is not installed; use create_numpy_simulator() for the "
                "graceful bigint fallback"
            )
        super().__init__(circuit, word_bits=BIGINT_WORD_BITS)
        self.program: LevelizedProgram = levelize_program(self.compiled)

    # ------------------------------------------------------------------ #
    def evaluate_planes(
        self, planes: PackedPlanes, gate_indices: "Sequence[int] | None" = None
    ) -> None:
        """Run the gate program level-parallel (or fall back for subsets)."""
        if gate_indices is not None:
            super().evaluate_planes(planes, gate_indices)
            return
        self._run_vectorised(planes, (), {}, {})

    def evaluate_planes_forced(
        self,
        planes: PackedPlanes,
        source_forces: Sequence[Tuple[int, int, int, int]] = (),
        gate_forces: Optional[Dict[int, Tuple[int, int, int]]] = None,
        branch_forces: Optional[Dict[int, Tuple[int, int, int]]] = None,
    ) -> None:
        """Level-parallel pass with the packed tier's per-pattern forces."""
        self._run_vectorised(
            planes, source_forces, gate_forces or {}, branch_forces or {}
        )

    # ------------------------------------------------------------------ #
    def _run_vectorised(
        self,
        planes: PackedPlanes,
        source_forces: Sequence[Tuple[int, int, int, int]],
        gate_forces: Dict[int, Tuple[int, int, int]],
        branch_forces: Dict[int, Tuple[int, int, int]],
    ) -> None:
        """The vectorised core shared by the plain and the forced pass."""
        zero = planes.zero
        one = planes.one
        for slot, clear, set_zero, set_one in source_forces:
            zero[slot] = (zero[slot] & ~clear) | set_zero
            one[slot] = (one[slot] & ~clear) | set_one

        words = (planes.width + 63) // 64
        zero_w = _planes_to_array(zero, words)
        one_w = _planes_to_array(one, words)
        word_mask = _mask_to_words((1 << planes.width) - 1, words)

        program = self.program
        # Forces grouped by the level whose outputs they patch; a force on a
        # slot the program never writes (impossible by construction of
        # _build_forces) would simply be ignored, like in the packed pass.
        forces_by_level: Dict[int, List[Tuple[int, Tuple]]] = {}
        for slot, force in gate_forces.items():
            level = program.level_of_out.get(slot)
            if level is not None:
                forces_by_level.setdefault(level, []).append(
                    (slot, tuple(_mask_to_words(mask, words) for mask in force))
                )
        patches_by_group: Dict[Tuple[int, int], List[Tuple[int, int, Tuple]]] = {}
        for position, force in branch_forces.items():
            located = program.group_of_position.get(position)
            if located is None:
                continue
            level, group, row, column = located
            patches_by_group.setdefault((level, group), []).append(
                (row, column, tuple(_mask_to_words(mask, words) for mask in force))
            )

        bit_and = _np.bitwise_and
        bit_or = _np.bitwise_or
        bit_xor = _np.bitwise_xor
        for level_index, groups in enumerate(program.levels):
            for group_index, group in enumerate(groups):
                fan = group.fanin
                z_in = zero_w[fan]
                o_in = one_w[fan]
                patches = patches_by_group.get((level_index, group_index))
                if patches:
                    for row, column, (clear, set_zero, set_one) in patches:
                        z_in[row, column] = (z_in[row, column] & ~clear) | set_zero
                        o_in[row, column] = (o_in[row, column] & ~clear) | set_one
                op = group.op
                if op <= OP_NAND:  # AND / NAND
                    acc_one = bit_and.reduce(o_in, axis=1)
                    acc_zero = bit_or.reduce(z_in, axis=1)
                    if op == OP_NAND:
                        acc_zero, acc_one = acc_one, acc_zero
                elif op <= OP_NOR:  # OR / NOR
                    acc_one = bit_or.reduce(o_in, axis=1)
                    acc_zero = bit_and.reduce(z_in, axis=1)
                    if op == OP_NOR:
                        acc_zero, acc_one = acc_one, acc_zero
                elif op == OP_NOT:
                    acc_zero = o_in[:, 0]
                    acc_one = z_in[:, 0]
                elif op == OP_BUF:
                    acc_zero = z_in[:, 0]
                    acc_one = o_in[:, 0]
                else:  # XOR / XNOR
                    parity = bit_xor.reduce(o_in, axis=1)
                    known = bit_and.reduce(z_in | o_in, axis=1)
                    acc_one = parity & known
                    acc_zero = ~parity & known & word_mask
                    if op == OP_XNOR:
                        acc_zero, acc_one = acc_one, acc_zero
                zero_w[group.out_slots] = acc_zero
                one_w[group.out_slots] = acc_one
            level_forces = forces_by_level.get(level_index)
            if level_forces:
                for slot, (clear, set_zero, set_one) in level_forces:
                    zero_w[slot] = (zero_w[slot] & ~clear) | set_zero
                    one_w[slot] = (one_w[slot] & ~clear) | set_one

        planes.zero[:] = _array_to_planes(zero_w)
        planes.one[:] = _array_to_planes(one_w)
        if self.metrics.enabled:
            self.metrics.inc(
                "repro_sim_gate_words_total", len(self.compiled.ops) * words
            )


def create_numpy_simulator(circuit: Circuit):
    """Factory of the ``numpy`` backend: vectorised, or bigint when absent.

    Registered in :mod:`repro.fausim.backends` under ``"numpy"``; the
    graceful-degradation contract is that selecting the backend never fails —
    a host without numpy transparently gets the bigint tier, which is
    bit-identical (both are differentially pinned against ``packed``).
    """
    if HAVE_NUMPY:
        return NumpyLogicSimulator(circuit)
    return BigintLogicSimulator(circuit)

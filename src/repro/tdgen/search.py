"""Backend-dispatched search kernels: objective selection, backtrace, scans.

PR 3 routed every *forward implication* of the searching phases through the
backend-dispatched engine of :mod:`repro.tdgen.implication`; what remained
interpreted was the per-decision *search residue* — the walks each decision
loop runs between two implications:

* **objective selection** — TDgen's D-frontier scan plus the off-path
  objective choice (:meth:`SearchKernels.propagation_objective`),
* **multiple backtrace** — mapping an objective back to an unassigned
  decision variable, in TDgen's eight-valued form
  (:meth:`SearchKernels.backtrace`) and in the three-valued form of
  SEMILET's frame justification
  (:meth:`SearchKernels.justification_backtrace`),
* **the potential-difference scan** — SEMILET propagation's X-path
  over-approximation of which signals could still differ between the good
  and the faulty machine (:meth:`SearchKernels.potential_difference`),
  plus the pair-frame D-frontier decision built on it
  (:meth:`SearchKernels.pair_frame_decision`).

A :class:`SearchKernels` object bundles those five queries behind the same
backend names as the implication engines: ``reference`` keeps the historical
interpreted walks (moved here verbatim from ``tdgen/engine.py``,
``semilet/propagation.py`` and ``semilet/justification.py``) as the
differential-testing oracle; ``packed`` reruns them as compiled kernels over
the flat arrays of :mod:`repro.fausim.compile` and the packed planes of
:mod:`repro.algebra.packed_sets` / :mod:`repro.fausim.packed_sim` — the
objective scan works on a state's extracted slot column, the backtraces are
iterative worklists over the flat fanin arrays with memoised
observability-distance weights (frontier ranking) and the memoised backward
implication of :mod:`repro.algebra.sets` as the controllability store, and
the potential-difference scan is a word-parallel sweep computed once per
candidate batch (all frame pairs of the batch at once).

Both implementations are **bit-identical by contract** — same frontier
order, same pin order, same value preferences — so one ``--backend`` choice
still governs simulation, implication *and* the search heuristics without
changing any campaign outcome (``tests/tdgen/test_search_backends.py``
enforces this, and the campaign-equivalence harness re-checks end to end).

Kernels are obtained from an engine via
:meth:`repro.tdgen.implication.ImplicationEngine.search_kernels`, which
resolves through the registry below.  :func:`set_default_search_kernels`
overrides the backend-following default process-wide — the escape hatch the
search-kernel ablation benchmark uses to time the interpreted residue.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.algebra.sets import (
    ValueSet,
    backward_input_sets,
    contains,
    has_fault_value,
    is_singleton,
    members,
)
from repro.algebra.values import (
    DelayValue,
    F,
    H0,
    H1,
    PI_VALUES,
    R,
    RC,
    V0,
    V1,
)
from repro.circuit.gates import GateType, controlling_value, inversion_parity
from repro.circuit.levelize import combinational_order
from repro.circuit.netlist import LineKind
from repro.faults.model import GateDelayFault
from repro.fausim.compile import _OPCODES, OP_BUF, OP_NOT, compile_circuit
from repro.tdgen.simulation import (
    FAULT_MASK,
    TwoFrameState,
    _inject,
    gate_input_sets,
)

#: ``(good, faulty)`` machine value of one signal (``None`` encodes X).
PairValue = Tuple[Optional[int], Optional[int]]

#: A TDgen objective: drive ``signal`` towards ``value``.
Objective = Tuple[str, DelayValue]

#: A TDgen decision variable: ``("pi" | "ppi", name)``.
DecisionKey = Tuple[str, str]

#: Opcode -> gate type, the inverse of the compiler's opcode map.
_TYPE_OF_OP: Dict[int, GateType] = {op: gate_type for gate_type, op in _OPCODES.items()}


# --------------------------------------------------------------------------- #
# shared value-preference rules (identical for every backend by construction)
# --------------------------------------------------------------------------- #
def preferred_objective_value(allowed: ValueSet) -> Optional[DelayValue]:
    """Pick a value from a set, preferring clean steady values."""
    candidates = members(allowed)
    if not candidates:
        return None
    for value in (V1, V0):
        if value in candidates:
            return value
    for value in candidates:
        if not value.fault:
            return value
    return candidates[0]


def preferred_backtrace_value(
    allowed: ValueSet, desired: DelayValue
) -> Optional[DelayValue]:
    """Pick the backtrace value closest to the desired one."""
    candidates = members(allowed)
    if not candidates:
        return None
    if desired in candidates:
        return desired
    # Prefer values that share the desired final value, then steady values.
    for value in candidates:
        if value.final == desired.final and not value.fault:
            return value
    for value in candidates:
        if not value.fault:
            return value
    return candidates[0]


def clamp_to_pi(value: DelayValue) -> DelayValue:
    """Project an algebra value onto the primary-input domain."""
    if value in PI_VALUES:
        return value
    if value is H0:
        return V0
    if value is H1:
        return V1
    if value is RC:
        return R
    return F


def _differs(good_value: Optional[int], faulty_value: Optional[int]) -> bool:
    """True when both machines have binary values that provably differ."""
    return good_value is not None and faulty_value is not None and good_value != faulty_value


# --------------------------------------------------------------------------- #
# historical backward implication — the reference kernels' oracle
# --------------------------------------------------------------------------- #
_EXHAUSTIVE_BACKWARD_CACHE: Dict[Tuple, Tuple[ValueSet, ...]] = {}


def exhaustive_backward_input_sets(
    gate_type: GateType,
    input_sets: Sequence[ValueSet],
    output_set: ValueSet,
    robust: bool = True,
) -> List[ValueSet]:
    """The historical combination-enumerating backward implication.

    Bit-identical to :func:`repro.algebra.sets.backward_input_sets` (the
    differential suite enforces it), but computed by enumerating input
    combinations the way the pre-kernel search did.  The reference kernels
    keep it so their cost profile stays the historical one — it is both the
    correctness oracle for the fold-image implementation and the baseline
    the search-kernel ablation benchmark times against.
    """
    from repro.algebra.tables import evaluate_delay_gate

    arity = len(input_sets)
    if arity > 4:
        # Sound no-pruning fallback, exactly as the shared implementation.
        return list(input_sets)
    key = (gate_type, robust, output_set, tuple(input_sets))
    cached = _EXHAUSTIVE_BACKWARD_CACHE.get(key)
    if cached is not None:
        return list(cached)

    if arity == 1:
        allowed = 0
        for value in members(input_sets[0]):
            if contains(output_set, evaluate_delay_gate(gate_type, (value,), robust)):
                allowed |= value.mask
        result = [allowed]
    else:
        expanded = [members(value_set) for value_set in input_sets]

        def exists_combination(position: int, candidate: DelayValue) -> bool:
            def recurse(index: int, chosen: List[DelayValue]) -> bool:
                if index == len(expanded):
                    return contains(
                        output_set, evaluate_delay_gate(gate_type, chosen, robust)
                    )
                if index == position:
                    chosen.append(candidate)
                    found = recurse(index + 1, chosen)
                    chosen.pop()
                    return found
                for value in expanded[index]:
                    chosen.append(value)
                    if recurse(index + 1, chosen):
                        chosen.pop()
                        return True
                    chosen.pop()
                return False

            return recurse(0, [])

        result = []
        for position in range(arity):
            allowed = 0
            for candidate in expanded[position]:
                if exists_combination(position, candidate):
                    allowed |= candidate.mask
            result.append(allowed)
    _EXHAUSTIVE_BACKWARD_CACHE[key] = tuple(result)
    return result


# --------------------------------------------------------------------------- #
# kernel interface
# --------------------------------------------------------------------------- #
class SearchKernels:
    """Per-decision search queries behind one backend choice.

    One instance is bound to one implication engine (and therefore one
    circuit and one robustness mode); the searching phases obtain it via
    :meth:`repro.tdgen.implication.ImplicationEngine.search_kernels` and
    never dispatch on the backend themselves.

    Attributes:
        name: registry name of the kernel backend.
        engine: the implication engine the kernels are bound to.
    """

    name = "abstract"

    def __init__(self, engine) -> None:
        self.engine = engine
        self.circuit = engine.circuit
        self.robust = engine.robust

    # -- TDgen two-frame search ---------------------------------------- #
    def propagation_objective(
        self,
        state: TwoFrameState,
        fault: GateDelayFault,
        prefer_po_observation: bool,
    ) -> Optional[Objective]:
        """Pick a D-frontier propagation objective (step 3 of TDgen).

        Scans for gates with a definite fault value on an input but an
        undetermined output, ranks them by observability distance, and
        returns the first satisfiable off-path input objective.
        """
        raise NotImplementedError

    def backtrace(
        self,
        state: TwoFrameState,
        fault: Optional[GateDelayFault],
        objective: Objective,
        pi_values: Mapping[str, Optional[DelayValue]],
        ppi_initial: Mapping[str, Optional[int]],
    ) -> Tuple[Optional[DecisionKey], Optional[object]]:
        """Map a TDgen objective back to an unassigned decision variable."""
        raise NotImplementedError

    # -- SEMILET propagation (pair frames) ------------------------------ #
    def potential_difference(self, frames, index: int) -> Mapping[str, bool]:
        """Over-approximate which signals could still differ between machines.

        ``frames`` is the :class:`~repro.tdgen.implication.CandidatePairFrames`
        batch holding the frame, ``index`` the candidate.  The result maps a
        signal name to ``True`` when the good and the faulty machine could
        still disagree on it (the propagation PODEM's X-path check).
        """
        raise NotImplementedError

    def pair_frame_decision(
        self,
        frames,
        index: int,
        pi_values: Mapping[str, Optional[int]],
        free_ppi_values: Mapping[str, Optional[int]],
    ) -> Optional[Tuple[str, bool, int]]:
        """Choose the next pair-frame input assignment (D-frontier backtrace)."""
        raise NotImplementedError

    # -- SEMILET frame justification (three-valued frames) -------------- #
    def justification_backtrace(
        self,
        frames,
        index: int,
        signal: str,
        target: int,
        pi_values: Mapping[str, Optional[int]],
        ppi_values: Mapping[str, Optional[int]],
        decide_ppis: bool,
    ) -> Optional[Tuple[str, bool, int]]:
        """Controlling-value backtrace of a justification objective.

        ``frames`` is the :class:`~repro.tdgen.implication.CandidateFrames`
        batch, ``index`` the candidate whose three-valued frame is walked.
        Prefers landing on an unassigned primary input; an unassigned pseudo
        primary input is only returned when no primary input is reachable.
        """
        raise NotImplementedError


# --------------------------------------------------------------------------- #
# reference kernels — the historical interpreted walks, moved verbatim
# --------------------------------------------------------------------------- #
class ReferenceSearchKernels(SearchKernels):
    """The interpreted search walks, kept bit-exact with the historical code.

    Every method is the pre-kernel implementation of its caller — TDgen's
    ``_d_frontier`` / ``_off_path_objective`` / ``_backtrace``, SEMILET
    propagation's ``_potential_difference`` / ``_frame_decision`` and the
    frame justifier's recursive backtrace — operating on the same per-name
    dictionaries those loops used.  It is the oracle the packed kernels are
    differential-tested against, and the `backend="reference"` search path.
    """

    name = "reference"

    def __init__(self, engine) -> None:
        super().__init__(engine)
        #: Pre-resolved (name, fanin) rows in evaluation order, built on
        #: first pair-frame use (the TDgen-side queries use the context's
        #: order instead and must not force this).
        self._gate_rows: Optional[List[Tuple[str, Tuple[str, ...]]]] = None

    def _rows(self) -> List[Tuple[str, Tuple[str, ...]]]:
        if self._gate_rows is None:
            self._gate_rows = [
                (name, tuple(self.circuit.gate(name).fanin))
                for name in combinational_order(self.circuit)
            ]
        return self._gate_rows

    # -- TDgen ----------------------------------------------------------- #
    def propagation_objective(self, state, fault, prefer_po_observation):
        """Interpreted D-frontier scan and off-path objective choice."""
        frontier = self._d_frontier(state, fault)
        if not frontier:
            return None
        frontier.sort(key=lambda name: self._frontier_rank(name, prefer_po_observation))
        for gate_name in frontier:
            objective = self._off_path_objective(state, fault, gate_name)
            if objective is not None:
                return objective
        return None

    def _frontier_rank(self, gate_name: str, prefer_po_observation: bool) -> Tuple[int, str]:
        context = self.engine.context
        if prefer_po_observation:
            distance = context.observation_distance(gate_name, pos_only=True)
            if distance is None:
                distance = 500_000 + (
                    context.observation_distance(gate_name, pos_only=False) or 500_000
                )
        else:
            distance = context.observation_distance(gate_name, pos_only=False)
            if distance is None:
                distance = 1_000_000
        return (distance, gate_name)

    def _d_frontier(self, state: TwoFrameState, fault: GateDelayFault) -> List[str]:
        """Gates with a definite fault value on an input but not on the output."""
        context = self.engine.context
        frontier: List[str] = []
        for name in context.order:
            output_set = state.signal_sets[name]
            if not has_fault_value(output_set):
                continue
            if is_singleton(output_set):
                continue
            input_sets = gate_input_sets(state, context, name, fault)
            if any(
                is_singleton(value_set) and has_fault_value(value_set)
                for value_set in input_sets.values()
            ):
                frontier.append(name)
        return frontier

    def _off_path_objective(
        self, state: TwoFrameState, fault: GateDelayFault, gate_name: str
    ) -> Optional[Objective]:
        gate = self.circuit.gate(gate_name)
        input_sets = gate_input_sets(state, self.engine.context, gate_name, fault)
        ordered_sets = [input_sets[pin] for pin in range(len(gate.fanin))]
        pruned = exhaustive_backward_input_sets(
            gate.gate_type, ordered_sets, FAULT_MASK, self.robust
        )
        for pin, source in enumerate(gate.fanin):
            current = ordered_sets[pin]
            if is_singleton(current):
                continue
            allowed = pruned[pin] & current
            if allowed == 0:
                continue
            value = preferred_objective_value(allowed)
            if value is not None:
                return (source, value)
        return None

    def backtrace(self, state, fault, objective, pi_values, ppi_initial):
        """Interpreted eight-valued multiple backtrace."""
        signal, desired = objective
        context = self.engine.context
        for _ in range(len(self.circuit.gates) + 1):
            gate = self.circuit.gate(signal)
            if gate.is_input:
                if pi_values[signal] is not None:
                    return None, None
                return ("pi", signal), clamp_to_pi(desired)
            if gate.is_dff:
                if ppi_initial[signal] is not None:
                    return None, None
                return ("ppi", signal), desired.initial
            input_sets = gate_input_sets(state, context, signal, fault)
            ordered_sets = [input_sets[pin] for pin in range(len(gate.fanin))]
            pruned = exhaustive_backward_input_sets(
                gate.gate_type, ordered_sets, desired.mask, self.robust
            )
            descended = False
            for pin, source in enumerate(gate.fanin):
                if is_singleton(ordered_sets[pin]):
                    continue
                allowed = pruned[pin] & ordered_sets[pin]
                if allowed == 0:
                    continue
                value = preferred_backtrace_value(allowed, desired)
                if value is None:
                    continue
                signal, desired = source, value
                descended = True
                break
            if not descended:
                return None, None
        return None, None

    # -- SEMILET propagation --------------------------------------------- #
    def potential_difference(self, frames, index):
        """Interpreted per-signal scan over the pair values of one frame."""
        pairs = frames.pairs(index)
        potential: Dict[str, bool] = {}
        for pi in self.circuit.primary_inputs:
            potential[pi] = False
        for ppi in self.circuit.pseudo_primary_inputs:
            good_value, faulty_value = pairs[ppi]
            if good_value is None or faulty_value is None:
                potential[ppi] = good_value is not faulty_value and not (
                    good_value is None and faulty_value is None
                )
                # An X/X pair is the *same* unknown in both machines, never a
                # difference source; a binary/X mix could be.
                if good_value is None and faulty_value is None:
                    potential[ppi] = False
            else:
                potential[ppi] = good_value != faulty_value
        for name, fanin in self._rows():
            good_value, faulty_value = pairs[name]
            if good_value is not None and faulty_value is not None:
                potential[name] = good_value != faulty_value
            else:
                potential[name] = any(potential[s] for s in fanin)
        return potential

    def pair_frame_decision(self, frames, index, pi_values, free_ppi_values):
        """Interpreted pair-frame D-frontier scan plus backtrace."""
        pairs = frames.pairs(index)
        frontier = self._pair_d_frontier(pairs)
        for gate_name in frontier:
            gate = self.circuit.gate(gate_name)
            ctrl = controlling_value(gate.gate_type)
            non_ctrl = 1 - ctrl if ctrl is not None else 1
            for source in gate.fanin:
                good_value, faulty_value = pairs[source]
                if good_value is None and faulty_value is None:
                    traced = self._pair_backtrace(
                        source, non_ctrl, pairs, pi_values, free_ppi_values
                    )
                    if traced is not None:
                        return traced
        # Fallback: assign any free variable.
        for pi, value in pi_values.items():
            if value is None:
                return (pi, True, 0)
        for ppi, value in free_ppi_values.items():
            if value is None:
                return (ppi, False, 0)
        return None

    def _pair_d_frontier(self, pairs: Mapping[str, PairValue]) -> List[str]:
        frontier = []
        for name, fanin in self._rows():
            good_value, faulty_value = pairs[name]
            if good_value is not None and faulty_value is not None:
                continue
            if any(_differs(*pairs[s]) for s in fanin):
                frontier.append(name)
        return frontier

    def _pair_backtrace(
        self,
        signal: str,
        target: int,
        pairs: Mapping[str, PairValue],
        pi_values: Mapping[str, Optional[int]],
        free_ppi_values: Mapping[str, Optional[int]],
    ) -> Optional[Tuple[str, bool, int]]:
        current, desired = signal, target
        for _ in range(len(self.circuit.gates) + 1):
            gate = self.circuit.gate(current)
            if gate.is_input:
                if pi_values[current] is not None:
                    return None
                return (current, True, desired)
            if gate.is_dff:
                if current in free_ppi_values and free_ppi_values[current] is None:
                    return (current, False, desired)
                return None
            gate_type = gate.gate_type
            if gate_type in (GateType.NOT, GateType.BUF):
                desired ^= inversion_parity(gate_type)
                current = gate.fanin[0]
                continue
            x_inputs = [s for s in gate.fanin if pairs[s][0] is None and pairs[s][1] is None]
            if not x_inputs:
                return None
            ctrl = controlling_value(gate_type)
            desired_core = desired ^ inversion_parity(gate_type)
            current = x_inputs[0]
            if ctrl is None:
                desired = desired_core
            elif desired_core == ctrl:
                desired = ctrl
            else:
                desired = 1 - ctrl
        return None

    # -- SEMILET frame justification -------------------------------------- #
    def justification_backtrace(
        self, frames, index, signal, target, pi_values, ppi_values, decide_ppis
    ):
        """Interpreted recursive controlling-value backtrace."""
        frame = frames.frame(index)
        best_ppi: List[Tuple[str, bool, int]] = []
        visited: Set[Tuple[str, int]] = set()
        circuit = self.circuit

        def descend(current: str, desired: int, depth: int) -> Optional[Tuple[str, bool, int]]:
            if depth > len(circuit.gates) + 1:
                return None
            if (current, desired) in visited:
                return None
            visited.add((current, desired))
            gate = circuit.gate(current)
            if gate.is_input:
                if pi_values[current] is not None:
                    return None
                return (current, True, desired)
            if gate.is_dff:
                if decide_ppis and ppi_values[current] is None:
                    best_ppi.append((current, False, desired))
                return None

            gate_type = gate.gate_type
            if gate_type in (GateType.NOT, GateType.BUF):
                return descend(gate.fanin[0], desired ^ inversion_parity(gate_type), depth + 1)

            x_inputs = [s for s in gate.fanin if frame[s] is None]
            if not x_inputs:
                return None
            desired_core = desired ^ inversion_parity(gate_type)

            if gate_type in (GateType.XOR, GateType.XNOR):
                known_parity = 0
                for source in gate.fanin:
                    if frame[source] is not None:
                        known_parity ^= frame[source]
                for source in x_inputs:
                    found = descend(source, desired_core ^ known_parity, depth + 1)
                    if found is not None:
                        return found
                return None

            ctrl = controlling_value(gate_type)
            branch_target = ctrl if desired_core == ctrl else 1 - ctrl
            for source in x_inputs:
                found = descend(source, branch_target, depth + 1)
                if found is not None:
                    return found
            return None

        found = descend(signal, target, 0)
        if found is not None:
            return found
        if best_ppi:
            return best_ppi[0]
        return None


# --------------------------------------------------------------------------- #
# packed kernels — compiled walks over flat arrays and packed planes
# --------------------------------------------------------------------------- #
class _PotentialView:
    """Read-only name-keyed view of a packed potential-difference column.

    Bit ``2 * index`` of ``planes[slot]`` carries candidate ``index``'s
    potential for the signal in that slot (the good-machine bit position of
    the pair encoding, so the column aligns with the pair planes it was
    computed from).
    """

    __slots__ = ("_planes", "_slot_of", "_bit")

    def __init__(self, planes: Sequence[int], slot_of: Mapping[str, int], index: int) -> None:
        self._planes = planes
        self._slot_of = slot_of
        self._bit = 1 << (2 * index)

    def __getitem__(self, name: str) -> bool:
        return bool(self._planes[self._slot_of[name]] & self._bit)

    def get(self, name: str, default: Optional[bool] = None) -> Optional[bool]:
        """Mapping-style read; ``default`` for signals outside the circuit."""
        slot = self._slot_of.get(name)
        if slot is None:
            return default
        return bool(self._planes[slot] & self._bit)

    def __contains__(self, name: str) -> bool:
        return name in self._slot_of

    def to_dict(self) -> Dict[str, bool]:
        """Materialise the full per-signal dictionary (test support)."""
        return {name: self[name] for name in self._slot_of}


class PackedSearchKernels(SearchKernels):
    """Compiled search walks over the flat gate program and packed planes.

    The queries run on integer slots instead of name-keyed dictionaries: the
    objective scan reads a packed state's extracted slot column (cached on
    the state, shared with the incremental implication sweeps), the
    backtraces walk ``fanin_flat`` with memoised observability-distance
    ranks, and the potential-difference scan is computed word-parallel for
    a whole candidate batch in one pass and cached on the batch.  Every
    result is bit-identical to :class:`ReferenceSearchKernels` — same
    frontier order, same pin preferences — which the differential suite
    enforces; inputs that did not come from the packed engine (no packed
    handle) fall back to the reference walks.
    """

    name = "packed"

    def __init__(self, engine) -> None:
        super().__init__(engine)
        # Engines without a compiled netlist (the reference engine, when
        # these kernels are forced onto it) get one from the per-circuit
        # cache; their states carry no packed handle, so every query then
        # takes the reference fallback path.
        self.compiled = getattr(engine, "compiled", None) or compile_circuit(
            engine.circuit
        )
        compiled = self.compiled
        self._n_pi = len(compiled.pi_slots)
        self._n_ppi = len(compiled.ppi_slots)
        #: GateType per gate-program index (for the backward implication).
        self._gate_types: List[GateType] = [_TYPE_OF_OP[op] for op in compiled.ops]
        self._rank_cache: Dict[bool, List[int]] = {}
        self._fallback: Optional[ReferenceSearchKernels] = None

    # -- shared helpers -------------------------------------------------- #
    def _reference(self) -> ReferenceSearchKernels:
        if self._fallback is None:
            self._fallback = ReferenceSearchKernels(self.engine)
        return self._fallback

    def _ranks(self, prefer_po_observation: bool) -> List[int]:
        """Memoised observability-distance rank per signal slot."""
        cached = self._rank_cache.get(prefer_po_observation)
        if cached is not None:
            return cached
        compiled = self.compiled
        context = self.engine.context
        ranks = [0] * compiled.num_signals
        for out in compiled.outputs:
            name = compiled.signal_names[out]
            if prefer_po_observation:
                distance = context.observation_distance(name, pos_only=True)
                if distance is None:
                    distance = 500_000 + (
                        context.observation_distance(name, pos_only=False) or 500_000
                    )
            else:
                distance = context.observation_distance(name, pos_only=False)
                if distance is None:
                    distance = 1_000_000
            ranks[out] = distance
        self._rank_cache[prefer_po_observation] = ranks
        return ranks

    def _branch_info(self, fault: Optional[GateDelayFault]):
        """Flat fanin position a branch fault injects at, or ``None``."""
        if fault is None or fault.line.kind is not LineKind.BRANCH:
            return None
        compiled = self.compiled
        slot = compiled.slot_of.get(fault.line.signal)
        sink_slot = compiled.slot_of.get(fault.line.sink)
        gate_index = compiled.gate_index_of.get(sink_slot)
        if gate_index is None or fault.line.pin is None or fault.line.pin < 0:
            return None
        position = compiled.fanin_offsets[gate_index] + fault.line.pin
        if (
            position < compiled.fanin_offsets[gate_index + 1]
            and compiled.fanin_flat[position] == slot
        ):
            return position
        return None

    @staticmethod
    def _state_column(state: TwoFrameState) -> Optional[List[ValueSet]]:
        """The packed slot column behind a state, or ``None`` for reference states."""
        handle = state.packed_handle
        if handle is None:
            return None
        states, index = handle
        return states.column_sets(index)

    # -- TDgen ----------------------------------------------------------- #
    def propagation_objective(self, state, fault, prefer_po_observation):
        """Compiled D-frontier scan over the state's slot column."""
        column = self._state_column(state)
        if column is None:
            return self._reference().propagation_objective(
                state, fault, prefer_po_observation
            )
        compiled = self.compiled
        offsets = compiled.fanin_offsets
        fanin_flat = compiled.fanin_flat
        outputs = compiled.outputs
        signal_names = compiled.signal_names
        ranks = self._ranks(prefer_po_observation)
        branch_position = self._branch_info(fault)
        fault_type = fault.fault_type if branch_position is not None else None
        fault_set = FAULT_MASK

        frontier: List[Tuple[int, str, int]] = []
        for gate_index in range(len(outputs)):
            out = outputs[gate_index]
            output_set = column[out]
            if not (output_set & fault_set):
                continue
            if output_set & (output_set - 1) == 0:
                continue
            start = offsets[gate_index]
            end = offsets[gate_index + 1]
            for position in range(start, end):
                value_set = column[fanin_flat[position]]
                if position == branch_position:
                    value_set = _inject(value_set, fault_type)
                if (
                    value_set
                    and value_set & (value_set - 1) == 0
                    and value_set & fault_set
                ):
                    frontier.append((ranks[out], signal_names[out], gate_index))
                    break
        frontier.sort()
        for _, _, gate_index in frontier:
            objective = self._off_path_objective(
                column, gate_index, branch_position, fault_type
            )
            if objective is not None:
                return objective
        return None

    def _off_path_objective(
        self,
        column: List[ValueSet],
        gate_index: int,
        branch_position: Optional[int],
        fault_type,
    ) -> Optional[Objective]:
        compiled = self.compiled
        start = compiled.fanin_offsets[gate_index]
        end = compiled.fanin_offsets[gate_index + 1]
        ordered_sets: List[ValueSet] = []
        for position in range(start, end):
            value_set = column[compiled.fanin_flat[position]]
            if position == branch_position:
                value_set = _inject(value_set, fault_type)
            ordered_sets.append(value_set)
        pruned = backward_input_sets(
            self._gate_types[gate_index], ordered_sets, FAULT_MASK, self.robust
        )
        for pin in range(end - start):
            current = ordered_sets[pin]
            if current and current & (current - 1) == 0:
                continue
            allowed = pruned[pin] & current
            if allowed == 0:
                continue
            value = preferred_objective_value(allowed)
            if value is not None:
                return (compiled.signal_names[compiled.fanin_flat[start + pin]], value)
        return None

    def backtrace(self, state, fault, objective, pi_values, ppi_initial):
        """Compiled eight-valued backtrace over the flat fanin arrays."""
        column = self._state_column(state)
        if column is None:
            return self._reference().backtrace(
                state, fault, objective, pi_values, ppi_initial
            )
        compiled = self.compiled
        offsets = compiled.fanin_offsets
        fanin_flat = compiled.fanin_flat
        signal_names = compiled.signal_names
        n_pi = self._n_pi
        n_sources = n_pi + self._n_ppi
        branch_position = self._branch_info(fault)
        fault_type = fault.fault_type if branch_position is not None else None

        signal, desired = objective
        slot = compiled.slot_of[signal]
        for _ in range(len(self.circuit.gates) + 1):
            if slot < n_pi:
                name = signal_names[slot]
                if pi_values[name] is not None:
                    return None, None
                return ("pi", name), clamp_to_pi(desired)
            if slot < n_sources:
                name = signal_names[slot]
                if ppi_initial[name] is not None:
                    return None, None
                return ("ppi", name), desired.initial
            gate_index = compiled.gate_index_of[slot]
            start = offsets[gate_index]
            end = offsets[gate_index + 1]
            ordered_sets: List[ValueSet] = []
            for position in range(start, end):
                value_set = column[fanin_flat[position]]
                if position == branch_position:
                    value_set = _inject(value_set, fault_type)
                ordered_sets.append(value_set)
            pruned = backward_input_sets(
                self._gate_types[gate_index], ordered_sets, desired.mask, self.robust
            )
            descended = False
            for pin in range(end - start):
                current = ordered_sets[pin]
                if current and current & (current - 1) == 0:
                    continue
                allowed = pruned[pin] & current
                if allowed == 0:
                    continue
                value = preferred_backtrace_value(allowed, desired)
                if value is None:
                    continue
                slot = fanin_flat[start + pin]
                desired = value
                descended = True
                break
            if not descended:
                return None, None
        return None, None

    # -- SEMILET propagation --------------------------------------------- #
    def potential_difference(self, frames, index):
        """Word-parallel scan, computed once per candidate batch."""
        planes = getattr(frames, "potential_planes", None)
        if planes is None:
            return self._reference().potential_difference(frames, index)
        return _PotentialView(planes(), self.compiled.slot_of, index)

    def pair_frame_decision(self, frames, index, pi_values, free_ppi_values):
        """Compiled pair-frame D-frontier scan plus backtrace."""
        if getattr(frames, "packed_planes", None) is None:
            return self._reference().pair_frame_decision(
                frames, index, pi_values, free_ppi_values
            )
        planes = frames.packed_planes()
        zero = planes.zero
        one = planes.one
        good_bit = 1 << (2 * index)
        faulty_bit = good_bit << 1
        both_bits = good_bit | faulty_bit
        compiled = self.compiled
        offsets = compiled.fanin_offsets
        fanin_flat = compiled.fanin_flat
        outputs = compiled.outputs

        for gate_index in range(len(outputs)):
            out = outputs[gate_index]
            defined = zero[out] | one[out]
            if defined & good_bit and defined & faulty_bit:
                continue
            start = offsets[gate_index]
            end = offsets[gate_index + 1]
            on_frontier = False
            for position in range(start, end):
                slot = fanin_flat[position]
                defined_in = zero[slot] | one[slot]
                if (
                    defined_in & good_bit
                    and defined_in & faulty_bit
                    and bool(one[slot] & good_bit) != bool(one[slot] & faulty_bit)
                ):
                    on_frontier = True
                    break
            if not on_frontier:
                continue
            gate_type = self._gate_types[gate_index]
            ctrl = controlling_value(gate_type)
            non_ctrl = 1 - ctrl if ctrl is not None else 1
            for position in range(start, end):
                slot = fanin_flat[position]
                if (zero[slot] | one[slot]) & both_bits:
                    continue  # not an X/X pair
                traced = self._pair_backtrace(
                    slot, non_ctrl, zero, one, both_bits, pi_values, free_ppi_values
                )
                if traced is not None:
                    return traced
        # Fallback: assign any free variable.
        for pi, value in pi_values.items():
            if value is None:
                return (pi, True, 0)
        for ppi, value in free_ppi_values.items():
            if value is None:
                return (ppi, False, 0)
        return None

    def _pair_backtrace(
        self,
        slot: int,
        target: int,
        zero: Sequence[int],
        one: Sequence[int],
        both_bits: int,
        pi_values: Mapping[str, Optional[int]],
        free_ppi_values: Mapping[str, Optional[int]],
    ) -> Optional[Tuple[str, bool, int]]:
        compiled = self.compiled
        offsets = compiled.fanin_offsets
        fanin_flat = compiled.fanin_flat
        signal_names = compiled.signal_names
        ops = compiled.ops
        n_pi = self._n_pi
        n_sources = n_pi + self._n_ppi
        desired = target
        for _ in range(len(self.circuit.gates) + 1):
            if slot < n_pi:
                name = signal_names[slot]
                if pi_values[name] is not None:
                    return None
                return (name, True, desired)
            if slot < n_sources:
                name = signal_names[slot]
                if name in free_ppi_values and free_ppi_values[name] is None:
                    return (name, False, desired)
                return None
            gate_index = compiled.gate_index_of[slot]
            gate_type = self._gate_types[gate_index]
            start = offsets[gate_index]
            if ops[gate_index] in (OP_NOT, OP_BUF):
                desired ^= inversion_parity(gate_type)
                slot = fanin_flat[start]
                continue
            end = offsets[gate_index + 1]
            first_x = -1
            for position in range(start, end):
                source = fanin_flat[position]
                if not ((zero[source] | one[source]) & both_bits):
                    first_x = source
                    break
            if first_x < 0:
                return None
            ctrl = controlling_value(gate_type)
            desired_core = desired ^ inversion_parity(gate_type)
            slot = first_x
            if ctrl is None:
                desired = desired_core
            elif desired_core == ctrl:
                desired = ctrl
            else:
                desired = 1 - ctrl
        return None

    # -- SEMILET frame justification -------------------------------------- #
    def justification_backtrace(
        self, frames, index, signal, target, pi_values, ppi_values, decide_ppis
    ):
        """Iterative worklist form of the controlling-value backtrace."""
        if getattr(frames, "packed_planes", None) is None:
            return self._reference().justification_backtrace(
                frames, index, signal, target, pi_values, ppi_values, decide_ppis
            )
        planes = frames.packed_planes()
        zero = planes.zero
        one = planes.one
        bit = 1 << index
        compiled = self.compiled
        offsets = compiled.fanin_offsets
        fanin_flat = compiled.fanin_flat
        signal_names = compiled.signal_names
        ops = compiled.ops
        n_pi = self._n_pi
        n_sources = n_pi + self._n_ppi
        depth_bound = len(self.circuit.gates) + 1

        best_ppi: Optional[Tuple[str, bool, int]] = None
        visited: Set[Tuple[int, int]] = set()
        # Explicit DFS worklist; children are pushed in reverse so the pop
        # order reproduces the reference recursion's visit order exactly.
        stack: List[Tuple[int, int, int]] = [(compiled.slot_of[signal], target, 0)]
        while stack:
            slot, desired, depth = stack.pop()
            if depth > depth_bound:
                continue
            if (slot, desired) in visited:
                continue
            visited.add((slot, desired))
            if slot < n_pi:
                name = signal_names[slot]
                if pi_values[name] is None:
                    return (name, True, desired)
                continue
            if slot < n_sources:
                name = signal_names[slot]
                if decide_ppis and ppi_values[name] is None and best_ppi is None:
                    best_ppi = (name, False, desired)
                continue
            gate_index = compiled.gate_index_of[slot]
            gate_type = self._gate_types[gate_index]
            start = offsets[gate_index]
            end = offsets[gate_index + 1]
            if ops[gate_index] in (OP_NOT, OP_BUF):
                stack.append(
                    (fanin_flat[start], desired ^ inversion_parity(gate_type), depth + 1)
                )
                continue
            x_slots = [
                fanin_flat[position]
                for position in range(start, end)
                if not ((zero[fanin_flat[position]] | one[fanin_flat[position]]) & bit)
            ]
            if not x_slots:
                continue
            desired_core = desired ^ inversion_parity(gate_type)
            if gate_type in (GateType.XOR, GateType.XNOR):
                known_parity = 0
                for position in range(start, end):
                    source = fanin_flat[position]
                    if one[source] & bit:
                        known_parity ^= 1
                branch_target = desired_core ^ known_parity
            else:
                ctrl = controlling_value(gate_type)
                branch_target = ctrl if desired_core == ctrl else 1 - ctrl
            for source in reversed(x_slots):
                stack.append((source, branch_target, depth + 1))
        return best_ppi


# --------------------------------------------------------------------------- #
# registry — same backend names as the implication engines
# --------------------------------------------------------------------------- #
#: A kernel factory builds :class:`SearchKernels` bound to an engine.
SearchKernelsFactory = Callable[[object], SearchKernels]

_REGISTRY: Dict[str, SearchKernelsFactory] = {}

#: Process-wide override; ``None`` means "follow the engine's backend".
_DEFAULT_OVERRIDE: Optional[str] = None


def register_search_kernels(
    name: str, factory: SearchKernelsFactory, overwrite: bool = False
) -> None:
    """Register a search-kernel backend under ``name``.

    Args:
        name: registry key; align it with the implication engine of the same
            substrate so one ``backend=`` choice selects both.
        factory: ``factory(engine)`` builder.
        overwrite: allow replacing an existing registration.
    """
    if not overwrite and name in _REGISTRY:
        raise ValueError(f"search kernels {name!r} are already registered")
    _REGISTRY[name] = factory


def available_search_kernels() -> Tuple[str, ...]:
    """Names of all registered search-kernel backends, sorted."""
    return tuple(sorted(_REGISTRY))


def set_default_search_kernels(name: Optional[str]) -> None:
    """Override which kernels newly built engines hand out.

    ``None`` (the initial state) means every engine uses the kernels of its
    own backend — the normal coupling where ``--backend`` governs simulation,
    implication and the search heuristics together.  Setting a name forces
    that kernel backend regardless of the engine, which is how the ablation
    benchmark times the interpreted search residue under the packed engine.
    Only engines whose kernels have not been created yet are affected.
    """
    global _DEFAULT_OVERRIDE
    if name is not None and name not in _REGISTRY:
        raise ValueError(
            f"unknown search kernels {name!r}; "
            f"available: {', '.join(available_search_kernels())}"
        )
    _DEFAULT_OVERRIDE = name


def default_search_kernels() -> Optional[str]:
    """The current process-wide override (``None`` = follow the backend)."""
    return _DEFAULT_OVERRIDE


def create_search_kernels(engine, name: Optional[str] = None) -> SearchKernels:
    """Build the search kernels for ``engine`` on the selected backend.

    Resolution order: explicit ``name``, then the process-wide override of
    :func:`set_default_search_kernels`, then the engine's own backend name
    (unknown engine names fall back to the reference kernels, so third-party
    engines work out of the box).
    """
    resolved = name if name is not None else _DEFAULT_OVERRIDE
    if resolved is None:
        resolved = engine.name if engine.name in _REGISTRY else ReferenceSearchKernels.name
    if resolved not in _REGISTRY:
        raise ValueError(
            f"unknown search kernels {resolved!r}; "
            f"available: {', '.join(available_search_kernels())}"
        )
    return _REGISTRY[resolved](engine)


class BigintSearchKernels(PackedSearchKernels):
    """The compiled search walks for the unbounded-width ``bigint`` engine.

    The kernels themselves are width-agnostic — they read extracted slot
    columns and walk the flat arrays — so the bigint tier reuses the packed
    kernels verbatim; the registration only keeps the name coupling intact
    (``engine.name`` resolves to the kernels of the same substrate).
    """

    name = "bigint"


class NumpySearchKernels(PackedSearchKernels):
    """The compiled search walks for the levelized ``numpy`` engine.

    Search queries are per-decision scalar walks (frontier scans, pin-order
    backtraces) with no per-word loop to vectorise, so the numpy tier shares
    the packed kernels; the potential-difference scan it inherits is already
    computed once per candidate batch.
    """

    name = "numpy"


register_search_kernels(ReferenceSearchKernels.name, ReferenceSearchKernels)
register_search_kernels(PackedSearchKernels.name, PackedSearchKernels)
register_search_kernels(BigintSearchKernels.name, BigintSearchKernels)
register_search_kernels(NumpySearchKernels.name, NumpySearchKernels)

"""End-to-end tests of ``GET /metrics`` and the enriched ``GET /status``.

A real in-process daemon on a loopback port is scraped exactly like a
Prometheus server would scrape it: raw HTTP, text exposition parsing, no
shortcuts through the app object.  The JSON variant
(``/metrics?format=json``) and the per-job metric snapshots in result
payloads are covered too.
"""

from __future__ import annotations

import re
import urllib.request

from repro.service.jobs import JOB_STATES

# Label values may contain braces (route="/jobs/{job_id}"), so the label
# block is matched greedily up to the last closing brace before the value.
_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? -?[0-9+][0-9eE.+-]*$"
)


def _scrape_text(client):
    """Fetch /metrics as a scraper would: raw body plus the content type."""
    with urllib.request.urlopen(client.base + "/metrics", timeout=30) as resp:
        return resp.read().decode("utf-8"), resp.headers.get("Content-Type")


def test_metrics_exposition_is_valid_prometheus(daemon):
    _, client = daemon
    # Generate some traffic first so HTTP counters exist.
    assert client.get("/status")[0] == 200
    text, content_type = _scrape_text(client)
    assert content_type.startswith("text/plain")
    assert "version=0.0.4" in content_type
    helps = set()
    for line in text.rstrip("\n").split("\n"):
        if line.startswith("# HELP "):
            helps.add(line.split()[2])
            continue
        if line.startswith("# TYPE "):
            continue
        assert _SAMPLE_LINE.match(line), line
    assert "repro_http_requests_total" in helps
    assert "repro_uptime_seconds" in helps
    assert "repro_queue_depth" in helps


def test_metrics_track_http_requests_by_route(daemon):
    _, client = daemon
    for _ in range(3):
        assert client.get("/status")[0] == 200
    assert client.get("/jobs/nope")[0] == 404
    text, _ = _scrape_text(client)
    match = re.search(
        r'repro_http_requests_total\{.*route="/status".*\} (\d+)', text
    )
    assert match and int(match.group(1)) >= 3
    # Error responses are counted too, labelled by their status code.
    assert re.search(
        r'repro_http_requests_total\{.*status="404"\} \d+', text
    )


def test_metrics_json_variant(daemon):
    _, client = daemon
    status, body = client.get("/metrics?format=json")
    assert status == 200
    assert body["version"] == 1
    assert body["context"] == {"service": "repro-atpg"}
    assert set(body["metrics"]) == {"counters", "timers", "histograms", "gauges"}
    gauges = body["metrics"]["gauges"]
    assert gauges["repro_uptime_seconds"] >= 0
    assert gauges["repro_queue_paused"] == 0
    # Every lifecycle state appears as a zero-filled jobs_state gauge.
    for state in JOB_STATES:
        assert f'repro_jobs_state{{state="{state}"}}' in gauges


def test_finished_job_feeds_campaign_counters_into_metrics(daemon):
    _, client = daemon
    job_id = client.submit({"circuit": "s27", "jobs": 2, "seed": 3})
    assert client.wait(job_id)["status"] == "done"

    text, _ = _scrape_text(client)
    match = re.search(r'repro_faults_total\{status="tested"\} (\d+)', text)
    assert match and int(match.group(1)) > 0
    assert re.search(r'repro_jobs_total\{state="done"\} 1\b', text)

    # The job's own snapshot rides along in its result payload.
    result = client.result(job_id)
    metrics = result["metrics"]
    assert metrics["version"] == 1
    assert metrics["context"]["job_id"] == job_id
    assert len(metrics["fault_costs"]) > 0
    counters = metrics["metrics"]["counters"]
    assert sum(
        value for key, value in counters.items()
        if key.startswith("repro_faults_total")
    ) == len(metrics["fault_costs"])


def test_status_reports_uptime_states_and_queue(daemon):
    _, client = daemon
    status, body = client.get("/status")
    assert status == 200
    assert body["uptime_s"] >= 0
    assert body["queue_depth"] == 0
    assert body["paused"] is False
    assert set(body["jobs"]) == set(JOB_STATES)
    assert all(count == 0 for count in body["jobs"].values())

    job_id = client.submit({"circuit": "s27", "jobs": 1, "seed": 3})
    client.wait(job_id)
    _, body = client.get("/status")
    assert body["jobs"]["done"] == 1
    assert sum(body["jobs"].values()) == 1

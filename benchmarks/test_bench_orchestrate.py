"""Sharded campaign orchestration: wall-clock speedup and serial equality.

The orchestration layer (:mod:`repro.orchestrate`) promises two things at
once: sharding a campaign over worker processes makes it faster, and the
deterministic replay merge keeps the result bit-identical to the serial
campaign.  ``test_bench_orchestrate_speedup`` is the acceptance gate for
both, on a multi-circuit surrogate campaign: at ``--jobs 4`` the wall clock
must drop at least 2x below the serial run while every circuit's coverage,
untestable breakdown and pattern counts stay identical.

The gate needs real hardware parallelism; on machines with fewer than four
usable cores (CI runners provide four) it skips rather than reporting a
meaningless ratio.
"""

from __future__ import annotations

import os
import time

import pytest

from benchconfig import write_bench_results
from repro.core.flow import SequentialDelayATPG
from repro.data import load_circuit
from repro.faults.model import enumerate_delay_faults, sample_faults
from repro.orchestrate import CampaignOrchestrator, OrchestratorConfig

#: Multi-circuit surrogate workload.  Each circuit contributes a
#: stride-sampled slice of its fault universe so heavy (deep-cone) and light
#: faults mix, which is exactly the load-balancing case sharding must handle.
CIRCUITS = (("s641", 0.4), ("s713", 0.4), ("s838", 0.4))
N_FAULTS_PER_CIRCUIT = 120
JOBS = 4


def _usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux fallback
        return os.cpu_count() or 1


def _workloads():
    """Fresh circuits plus their sampled fault universes."""
    for name, scale in CIRCUITS:
        circuit = load_circuit(name, scale=scale, seed=0)
        faults = sample_faults(enumerate_delay_faults(circuit), N_FAULTS_PER_CIRCUIT)
        yield circuit, faults


def _fingerprint(campaign):
    """Everything the serial-equivalence contract covers, minus wall time."""
    row = {key: value for key, value in campaign.as_table3_row().items() if key != "time_s"}
    return (
        row,
        campaign.untestable_breakdown(),
        campaign.targeted,
        campaign.detected_by_simulation,
        [
            (
                str(result.fault),
                result.status.value,
                result.sequence.vectors if result.sequence is not None else None,
            )
            for result in campaign.fault_results
        ],
    )


@pytest.mark.skipif(
    _usable_cpus() < JOBS,
    reason=f"needs >= {JOBS} usable cores for a meaningful wall-clock gate",
)
def test_bench_orchestrate_speedup():
    """Acceptance: --jobs 4 >= 2x faster than serial, coverage identical."""
    serial_campaigns = []
    serial_start = time.perf_counter()
    for circuit, faults in _workloads():
        serial_campaigns.append(SequentialDelayATPG(circuit).run(faults=faults))
    serial_seconds = time.perf_counter() - serial_start

    parallel_campaigns = []
    recomputed = 0
    parallel_start = time.perf_counter()
    for circuit, faults in _workloads():
        orchestrator = CampaignOrchestrator(
            circuit, config=OrchestratorConfig(jobs=JOBS, partition="size-aware")
        )
        parallel_campaigns.append(orchestrator.run(faults=faults))
        recomputed += orchestrator.recomputed
    parallel_seconds = time.perf_counter() - parallel_start

    for serial, parallel in zip(serial_campaigns, parallel_campaigns):
        assert _fingerprint(parallel) == _fingerprint(serial), (
            f"sharded campaign diverged from serial on {serial.circuit_name}"
        )

    speedup = serial_seconds / parallel_seconds
    total_faults = sum(campaign.total_faults for campaign in serial_campaigns)
    print(
        f"\nMulti-circuit campaign ({len(serial_campaigns)} circuits, "
        f"{total_faults} faults): serial {serial_seconds:.2f}s -> "
        f"--jobs {JOBS} {parallel_seconds:.2f}s ({speedup:.2f}x, "
        f"{recomputed} fault(s) recomputed in the merge)"
    )
    write_bench_results(
        "orchestrate",
        {
            "workload": {
                "circuits": [f"{name}@{scale}" for name, scale in CIRCUITS],
                "n_faults_per_circuit": N_FAULTS_PER_CIRCUIT,
                "jobs": JOBS,
                "description": "multi-circuit campaign, sharded vs serial",
            },
            "serial_seconds": round(serial_seconds, 6),
            "parallel_seconds": round(parallel_seconds, 6),
            "speedup": round(speedup, 2),
            "recomputed": recomputed,
            "gate": 2.0,
        },
    )
    assert speedup >= 2.0, (
        f"sharded campaign only {speedup:.2f}x faster than serial "
        f"({serial_seconds:.2f}s vs {parallel_seconds:.2f}s)"
    )


def test_bench_orchestrate_equality_only():
    """Core-count-independent safety net: jobs=2 equals serial bit-for-bit.

    Runs everywhere (including single-core CI shards) so the equality half of
    the acceptance gate is never skipped even when the wall-clock half is.
    """
    circuit, faults = next(_workloads())
    serial = SequentialDelayATPG(circuit).run(faults=faults)
    parallel = CampaignOrchestrator(
        circuit, config=OrchestratorConfig(jobs=2)
    ).run(faults=faults)
    assert _fingerprint(parallel) == _fingerprint(serial)

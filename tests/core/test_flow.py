"""End-to-end tests of the extended FOGBUSTER flow (Figure 4)."""

import pytest

from repro.circuit.netlist import Line
from repro.core.flow import SequentialDelayATPG
from repro.core.results import FaultResultStatus, FlowPhase
from repro.core.verify import verify_test_sequence
from repro.faults.model import DelayFaultType, GateDelayFault, enumerate_delay_faults


@pytest.fixture(scope="module")
def s27_campaign(s27):
    atpg = SequentialDelayATPG(s27)
    return atpg.run()


def test_campaign_covers_every_fault_with_a_verdict(s27, s27_campaign):
    total = len(enumerate_delay_faults(s27))
    assert s27_campaign.total_faults == total
    assert (
        s27_campaign.tested + s27_campaign.untestable + s27_campaign.aborted == total
    )


def test_campaign_shape_matches_paper_table3_row(s27_campaign):
    """Paper Table 3, s27: 39 tested / 11 untestable / 2 aborted / 40 patterns.

    The flow reproduces at least the paper's tested count (the additional
    inter-phase backtracking on unsynchronisable states can pick up one extra
    fault), the untestable+aborted total is at most the paper's 13, and the
    pattern count is in the same range.  Every counted test is independently
    verified in test_every_generated_sequence_detects_its_fault.
    """
    assert 39 <= s27_campaign.tested <= 41
    assert 11 <= s27_campaign.untestable + s27_campaign.aborted <= 13
    assert s27_campaign.tested + s27_campaign.untestable + s27_campaign.aborted == 52
    assert 10 <= s27_campaign.pattern_count <= 80


def test_every_generated_sequence_detects_its_fault(s27, s27_campaign):
    assert s27_campaign.sequences
    for sequence in s27_campaign.sequences:
        report = verify_test_sequence(s27, sequence)
        assert report.detected, f"sequence for {sequence.fault} fails verification"


def test_sequences_have_valid_clocking(s27_campaign):
    for sequence in s27_campaign.sequences:
        assert sequence.clock_schedule.is_valid()
        assert sequence.pattern_count == len(sequence.vectors)
        assert sequence.clock_schedule.frame_count == sequence.pattern_count


def test_fault_results_record_phase_information(s27_campaign):
    phases = {result.phase for result in s27_campaign.fault_results}
    assert FlowPhase.COMPLETE in phases
    statuses = {result.status for result in s27_campaign.fault_results}
    assert FaultResultStatus.TESTED in statuses


def test_single_fault_entry_point(s27):
    atpg = SequentialDelayATPG(s27)
    fault = GateDelayFault(Line("G11"), DelayFaultType.SLOW_TO_RISE)
    result = atpg.generate_for_fault(fault)
    assert result.status is FaultResultStatus.TESTED
    assert result.sequence is not None
    assert verify_test_sequence(s27, result.sequence).detected
    assert result.sequence.observed_at_po


def test_fault_needing_sequential_propagation(s27):
    atpg = SequentialDelayATPG(s27)
    # G13 only feeds the state register in the local frames, so a test needs
    # the propagation phase.
    fault = GateDelayFault(Line("G13"), DelayFaultType.SLOW_TO_RISE)
    result = atpg.generate_for_fault(fault)
    assert result.status is FaultResultStatus.TESTED
    sequence = result.sequence
    assert sequence.propagation_vectors, "expected slow-clock propagation frames"
    assert not sequence.observed_at_po
    assert verify_test_sequence(s27, sequence).detected


def test_max_target_faults_limits_work(s27):
    atpg = SequentialDelayATPG(s27)
    campaign = atpg.run(max_target_faults=3)
    assert campaign.targeted <= 3
    # Unprocessed faults are reported in the aborted column (no verdict).
    assert campaign.tested + campaign.untestable + campaign.aborted == campaign.total_faults


def test_time_limit_is_honoured(s27):
    atpg = SequentialDelayATPG(s27)
    campaign = atpg.run(time_limit_s=0.0)
    assert campaign.targeted <= 1


def test_fault_simulation_credits_additional_faults(s27):
    with_sim = SequentialDelayATPG(s27, enable_fault_simulation=True).run()
    without_sim = SequentialDelayATPG(s27, enable_fault_simulation=False).run()
    # Fault simulation can only reduce the number of explicitly targeted faults.
    assert with_sim.targeted <= without_sim.targeted
    assert with_sim.tested >= 1
    assert without_sim.tested >= 1


def test_explicit_fault_universe(s27):
    faults = [
        GateDelayFault(Line("G11"), DelayFaultType.SLOW_TO_RISE),
        GateDelayFault(Line("G11"), DelayFaultType.SLOW_TO_FALL),
    ]
    campaign = SequentialDelayATPG(s27).run(faults=faults)
    assert campaign.total_faults == 2
    assert campaign.tested == 2


def test_non_robust_mode_runs(s27):
    relaxed = SequentialDelayATPG(s27, robust=False).run(max_target_faults=10)
    assert relaxed.tested >= 1


def test_untestable_breakdown_consistency(s27_campaign):
    breakdown = s27_campaign.untestable_breakdown()
    assert (
        breakdown["combinationally_untestable"] + breakdown["sequentially_untestable"]
        <= s27_campaign.untestable + s27_campaign.aborted
    )


def test_flow_on_toggle_circuit(toggle_ff):
    """A toggle flip-flop without reset: local tests exist but cannot be initialised."""
    campaign = SequentialDelayATPG(toggle_ff).run()
    assert campaign.tested == 0
    assert campaign.untestable > 0


def test_flow_on_resettable_circuit(resettable_ff):
    campaign = SequentialDelayATPG(resettable_ff).run()
    assert campaign.tested > 0
    for sequence in campaign.sequences:
        assert verify_test_sequence(resettable_ff, sequence).detected

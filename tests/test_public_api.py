"""The top-level package exposes the documented public API."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.{name} missing"


def test_quickstart_snippet_runs():
    """The README / module docstring quickstart must work as written."""
    circuit = repro.load_circuit("s27")
    atpg = repro.SequentialDelayATPG(circuit)
    campaign = atpg.run(max_target_faults=2)
    row = campaign.as_table3_row()
    assert row["circuit"] == "s27"
    assert set(row) == {"circuit", "tested", "untestable", "aborted", "patterns", "time_s"}


def test_truth_table_rendering_via_public_api():
    rendered = repro.format_truth_table(repro.GateType.AND)
    assert "Rc" in rendered and "Fc" in rendered


def test_fault_enumeration_via_public_api():
    circuit = repro.load_circuit("s27")
    faults = repro.enumerate_delay_faults(circuit)
    assert len(faults) == 52

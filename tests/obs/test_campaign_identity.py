"""Instrumentation must never perturb results (the hard obs constraint).

Two contracts from the observability acceptance criteria:

* **bit-identity** — a campaign run with a live registry produces a
  CampaignResult fingerprint-identical to the uninstrumented run, serially
  and under ``--jobs 4`` for every partition mode;
* **jobs-invariant aggregates** — the deterministic counters and the cost
  log of an orchestrated campaign are identical to the serial campaign's
  for any worker count and partitioning, and the shard snapshots merge
  order-independently.
"""

from __future__ import annotations

import pytest

from repro.core.flow import SequentialDelayATPG
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.obs.tracing import deterministic_counters, fold_cost
from repro.orchestrate import CampaignOrchestrator, OrchestratorConfig
from repro.orchestrate.partition import PARTITION_MODES


def _fingerprint(campaign):
    """Everything the bit-identical contract covers, minus wall time."""
    row = {key: value for key, value in campaign.as_table3_row().items() if key != "time_s"}
    per_fault = [
        (
            str(result.fault),
            result.status.value,
            result.phase.name,
            sorted(str(fault) for fault in result.additionally_detected),
            result.sequence.vectors if result.sequence is not None else None,
            str(result.sequence.clock_schedule) if result.sequence is not None else None,
        )
        for result in campaign.fault_results
    ]
    return (
        row,
        campaign.untestable_breakdown(),
        campaign.targeted,
        campaign.detected_by_simulation,
        per_fault,
    )


@pytest.fixture(scope="module")
def s27_plain(s27):
    """The uninstrumented serial reference campaign."""
    return _fingerprint(SequentialDelayATPG(s27).run())


@pytest.fixture(scope="module")
def s27_serial_registry(s27):
    """One serial metrics-on run: ``(fingerprint, registry, cost_log)``."""
    registry = MetricsRegistry()
    atpg = SequentialDelayATPG(s27, metrics=registry)
    campaign = atpg.run()
    return _fingerprint(campaign), registry, list(atpg.cost_log)


def test_serial_campaign_identical_with_metrics_on(s27_plain, s27_serial_registry):
    fingerprint, registry, cost_log = s27_serial_registry
    assert fingerprint == s27_plain
    # ... and the instrumentation actually measured the campaign.
    assert registry.counter_sum("repro_faults_total") == len(cost_log) > 0
    assert registry.counter_sum("repro_decisions_total") > 0


@pytest.mark.parametrize("partition", PARTITION_MODES)
def test_jobs4_campaign_identical_with_metrics_on(partition, s27, s27_plain):
    orchestrator = CampaignOrchestrator(
        s27,
        config=OrchestratorConfig(jobs=4, partition=partition, collect_metrics=True),
    )
    campaign = orchestrator.run()
    assert _fingerprint(campaign) == s27_plain, partition


@pytest.mark.parametrize("jobs", (2, 3))
def test_orchestrated_aggregates_match_serial(jobs, s27, s27_serial_registry):
    _, serial_registry, serial_costs = s27_serial_registry
    orchestrator = CampaignOrchestrator(
        s27, config=OrchestratorConfig(jobs=jobs, collect_metrics=True)
    )
    orchestrator.run()
    assert deterministic_counters(orchestrator.metrics) == deterministic_counters(
        serial_registry
    )
    # The replayed cost log matches the serial one field-for-field except
    # wall time (seconds), in the same fault-enumeration order.
    def stripped(costs):
        return [
            {k: v for k, v in cost.to_json().items() if k != "seconds"}
            for cost in costs
        ]

    assert stripped(orchestrator.fault_costs) == stripped(serial_costs)


def test_shard_snapshots_merge_order_independently(s27):
    orchestrator = CampaignOrchestrator(
        s27, config=OrchestratorConfig(jobs=4, collect_metrics=True)
    )
    orchestrator.run()
    assert orchestrator.shard_metrics is not None
    snapshots = orchestrator._worker_snapshots
    assert len(snapshots) >= 2
    forward = MetricsSnapshot.merge_all(snapshots).to_json()
    backward = MetricsSnapshot.merge_all(reversed(snapshots)).to_json()
    assert forward == backward == orchestrator.shard_metrics.to_json()


def test_orchestrated_without_collect_metrics_stays_null(s27, s27_plain):
    orchestrator = CampaignOrchestrator(s27, config=OrchestratorConfig(jobs=2))
    campaign = orchestrator.run()
    assert _fingerprint(campaign) == s27_plain
    assert orchestrator.metrics.enabled is False
    assert orchestrator.fault_costs == []
    assert orchestrator.shard_metrics is None


def test_fold_of_shard_costs_equals_orchestrator_registry(s27):
    """The orchestrator's registry is exactly the fold of its cost log."""
    orchestrator = CampaignOrchestrator(
        s27, config=OrchestratorConfig(jobs=2, collect_metrics=True)
    )
    orchestrator.run()
    folded = MetricsRegistry()
    for cost in orchestrator.fault_costs:
        fold_cost(folded, cost)
    assert deterministic_counters(folded) == deterministic_counters(
        orchestrator.metrics
    )

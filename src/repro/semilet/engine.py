"""SEMILET facade used by the combined flow.

Bundles the three sequential tasks (propagation, propagation justification
feedback and synchronisation) behind one object so that the FOGBUSTER flow in
:mod:`repro.core.flow` only deals with a single sequential engine, mirroring
the TDgen / SEMILET coupling described in the paper.

One ``backend`` parameter (the shared :mod:`repro.fausim.backends` names)
is threaded into all three tasks, selecting their implication engines and
search kernels together with the flow's fault simulation.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.circuit.netlist import Circuit
from repro.fausim.logic_sim import SignalValues
from repro.semilet.propagation import PropagationEngine, PropagationResult
from repro.semilet.synchronization import SynchronizationResult, Synchronizer


class Semilet:
    """Sequential test generation services for the delay-fault flow.

    Args:
        circuit: circuit under test.
        backtrack_limit: per-task backtrack limit (paper: 100 for the
            sequential test pattern generator).
        max_propagation_frames: bound on the number of slow-clock frames used
            to drive a captured fault effect to a primary output.
        max_synchronization_frames: bound on the length of the initialising
            sequence searched for.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`
            threaded into both tasks (defaults to the no-op null registry).
        backend: implication/simulation backend shared by all three tasks
            (``None`` selects the process default).
    """

    def __init__(
        self,
        circuit: Circuit,
        backtrack_limit: int = 100,
        max_propagation_frames: Optional[int] = None,
        max_synchronization_frames: Optional[int] = None,
        metrics: Optional[object] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.circuit = circuit
        self.backtrack_limit = backtrack_limit
        self.propagation_engine = PropagationEngine(
            circuit,
            max_frames=max_propagation_frames,
            backtrack_limit=backtrack_limit,
            metrics=metrics,
            backend=backend,
        )
        self.synchronizer = Synchronizer(
            circuit,
            max_frames=max_synchronization_frames,
            backtrack_limit=backtrack_limit,
            metrics=metrics,
            backend=backend,
        )

    def propagate(
        self,
        good_state: SignalValues,
        faulty_state: SignalValues,
        assignable_ppis: Optional[Sequence[str]] = None,
        deadline: Optional[float] = None,
    ) -> PropagationResult:
        """Forward time processing: drive the captured fault effect to a PO.

        ``deadline`` is an optional :func:`time.perf_counter` timestamp after
        which the search gives up (reported as aborted).
        """
        return self.propagation_engine.propagate(
            good_state, faulty_state, assignable_ppis, deadline=deadline
        )

    def synchronize(
        self, required_state: Dict[str, int], deadline: Optional[float] = None
    ) -> SynchronizationResult:
        """Reverse time processing: compute an initialising sequence.

        ``deadline`` is an optional :func:`time.perf_counter` timestamp after
        which the search gives up (reported as aborted).
        """
        return self.synchronizer.synchronize(required_state, deadline=deadline)

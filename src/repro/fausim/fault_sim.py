"""Propagation-phase fault simulation (second phase of the paper's section 5).

At the end of the fast clock frame the delay fault effect, if provoked, sits
in the state register: one or more pseudo primary outputs latched the faulty
value.  During the propagation frames only slow clocks are applied, so the
machine itself is fault free; the fault effect behaves exactly like a stuck-at
fault injected once at the observation point (the PPO) and then carried along
by the good machine dynamics.

:class:`PropagationFaultSimulator` therefore simulates the good machine and a
faulty machine that differs only in the initial value of the candidate PPO,
and reports in which frame (if any) the difference becomes visible at a
primary output.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.circuit.netlist import Circuit
from repro.fausim.logic_sim import LogicSimulator, SignalValues


@dataclasses.dataclass
class PPOObservability:
    """Observability of a fault effect captured at one pseudo primary output."""

    ppi: str
    observable: bool
    frame: Optional[int] = None
    primary_output: Optional[str] = None

    def __bool__(self) -> bool:
        return self.observable


class PropagationFaultSimulator:
    """Check which captured fault effects reach a primary output.

    Args:
        circuit: the circuit under test.
        propagation_vectors: the input vectors of the propagation phase (slow
            clock frames after the fast test frame).
    """

    def __init__(self, circuit: Circuit, propagation_vectors: Sequence[SignalValues]) -> None:
        self.circuit = circuit
        self.vectors = list(propagation_vectors)
        self._simulator = LogicSimulator(circuit)

    def observability(
        self,
        good_state: SignalValues,
        ppi: str,
        faulty_value: Optional[int] = None,
    ) -> PPOObservability:
        """Determine whether a fault effect captured in ``ppi`` reaches a PO.

        Args:
            good_state: good-machine state right after the fast frame (value per
                PPI; missing entries are X).
            ppi: the state bit (flip-flop output) that captured the fault effect.
            faulty_value: value of that bit in the faulty machine.  Defaults to
                the complement of the good value; if the good value is unknown
                the effect cannot be credited and the result is unobservable.

        The check is conservative: a difference only counts when the good
        machine output value is binary (not X) and provably differs from the
        faulty machine output value.
        """
        good_value = good_state.get(ppi)
        if faulty_value is None:
            if good_value is None:
                return PPOObservability(ppi=ppi, observable=False)
            faulty_value = 1 - good_value
        if good_value is not None and faulty_value == good_value:
            return PPOObservability(ppi=ppi, observable=False)

        faulty_state = dict(good_state)
        faulty_state[ppi] = faulty_value

        good = dict(good_state)
        faulty = faulty_state
        for frame_index, vector in enumerate(self.vectors):
            good_frame = self._simulator.clock(vector, good)
            faulty_frame = self._simulator.clock(vector, faulty)
            for po in self.circuit.primary_outputs:
                good_po = good_frame.values[po]
                faulty_po = faulty_frame.values[po]
                if good_po is not None and faulty_po is not None and good_po != faulty_po:
                    return PPOObservability(
                        ppi=ppi, observable=True, frame=frame_index, primary_output=po
                    )
            good = good_frame.next_state
            faulty = faulty_frame.next_state
        return PPOObservability(ppi=ppi, observable=False)

    def observability_map(
        self,
        good_state: SignalValues,
        candidate_ppis: Sequence[str],
    ) -> Dict[str, PPOObservability]:
        """Observability of every candidate PPI under the stored vectors."""
        return {ppi: self.observability(good_state, ppi) for ppi in candidate_ppis}

    def state_trace(self, state: SignalValues) -> List[SignalValues]:
        """Good-machine state after each propagation frame (for diagnostics)."""
        trace: List[SignalValues] = []
        current = dict(state)
        for vector in self.vectors:
            frame = self._simulator.clock(vector, current)
            current = frame.next_state
            trace.append(dict(current))
        return trace

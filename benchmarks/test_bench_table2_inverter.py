"""Experiment E2 — regenerate Table 2 (inverter truth table)."""

from repro.algebra.tables import format_truth_table, paper_table2_inverter
from repro.algebra.values import ALL_VALUES
from repro.circuit.gates import GateType

#: Table 2 of the paper, in the column order 0, 1, R, F, 0h, 1h, Rc, Fc.
PAPER_TABLE2 = ["1", "0", "F", "R", "1h", "0h", "Fc", "Rc"]


def test_bench_table2_inverter_truth_table(benchmark):
    table = benchmark(paper_table2_inverter)
    ours = [table[value.name] for value in ALL_VALUES]
    assert ours == PAPER_TABLE2

    print()
    print("Table 2 — truth table for the inverter")
    print(format_truth_table(GateType.NOT))
    print("paper row:", " ".join(PAPER_TABLE2))
    print("ours  row:", " ".join(ours))

"""Property-based tests of the eight-valued algebra (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.tables import and2, evaluate_delay_gate, not1, or2
from repro.algebra.values import ALL_VALUES, FAULT_VALUES, V0, V1
from repro.circuit.gates import GateType

values = st.sampled_from(ALL_VALUES)
value_lists = st.lists(values, min_size=2, max_size=5)
robust_flags = st.booleans()


@given(a=values, b=values, robust=robust_flags)
def test_and_commutative(a, b, robust):
    assert and2(a, b, robust) is and2(b, a, robust)


@given(a=values, b=values, c=values, robust=robust_flags)
def test_and_associative(a, b, c, robust):
    assert and2(and2(a, b, robust), c, robust) is and2(a, and2(b, c, robust), robust)


@given(a=values, b=values, c=values, robust=robust_flags)
def test_or_associative(a, b, c, robust):
    assert or2(or2(a, b, robust), c, robust) is or2(a, or2(b, c, robust), robust)


@given(a=values, b=values, robust=robust_flags)
def test_de_morgan(a, b, robust):
    assert not1(and2(a, b, robust)) is evaluate_delay_gate(GateType.NAND, (a, b), robust)
    assert or2(a, b, robust) is not1(and2(not1(a), not1(b), robust))


@given(a=values, b=values, robust=robust_flags)
def test_frame_projection_is_boolean_and(a, b, robust):
    """The two-frame projection of every cell matches plain Boolean AND."""
    result = and2(a, b, robust)
    assert result.initial == (a.initial & b.initial)
    assert result.final == (a.final & b.final)


@given(a=values, b=values, robust=robust_flags)
def test_fault_never_created(a, b, robust):
    """A fault-carrying output requires a fault-carrying input."""
    if not a.fault and not b.fault:
        assert not and2(a, b, robust).fault
        assert not or2(a, b, robust).fault


@given(a=values, b=values)
def test_robust_is_stricter_than_non_robust(a, b):
    """Whenever the robust table keeps the fault effect, so does the relaxed one."""
    robust_result = and2(a, b, robust=True)
    relaxed_result = and2(a, b, robust=False)
    if robust_result.fault:
        assert relaxed_result.fault
    # And both always agree on the frame values.
    assert robust_result.initial == relaxed_result.initial
    assert robust_result.final == relaxed_result.final


@given(a=values)
def test_idempotence_of_and_or(a):
    """x AND x / x OR x keep the waveform (fault and hazard attributes intact)."""
    assert and2(a, a).initial == a.initial
    assert and2(a, a).final == a.final
    assert or2(a, a).initial == a.initial
    assert or2(a, a).final == a.final


@given(a=values)
def test_identity_elements(a):
    assert and2(a, V1) is a
    assert or2(a, V0) is a
    assert and2(a, V0) is V0
    assert or2(a, V1) is V1


@given(inputs=value_lists, robust=robust_flags)
@settings(max_examples=200)
def test_nary_gates_match_pairwise_fold(inputs, robust):
    for gate_type, pairwise in ((GateType.AND, and2), (GateType.OR, or2)):
        expected = inputs[0]
        for value in inputs[1:]:
            expected = pairwise(expected, value, robust)
        assert evaluate_delay_gate(gate_type, inputs, robust) is expected


@given(inputs=value_lists, robust=robust_flags)
@settings(max_examples=200)
def test_inverting_gates_are_complements(inputs, robust):
    assert evaluate_delay_gate(GateType.NAND, inputs, robust) is not1(
        evaluate_delay_gate(GateType.AND, inputs, robust)
    )
    assert evaluate_delay_gate(GateType.NOR, inputs, robust) is not1(
        evaluate_delay_gate(GateType.OR, inputs, robust)
    )

"""Three-valued logic simulation of the good machine.

Values are ``0``, ``1`` and ``None`` (unknown, X).  The simulator evaluates
the combinational block in levelised order and clocks the D flip-flops
explicitly, which is all the sequential engines need: during initialisation
and propagation only slow clocks are applied, so the machine under simulation
is always the good machine (the delay fault cannot manifest).

:class:`LogicSimulator` is the ``reference`` implementation of the scalar
simulator interface; the module-level convenience helpers take a
``backend`` parameter and resolve it through :mod:`repro.fausim.backends`
(``packed`` by default), so callers never hard-code the interpreter.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.circuit.gates import evaluate_gate
from repro.circuit.levelize import combinational_order
from repro.circuit.netlist import Circuit

LogicValue = Optional[int]
SignalValues = Dict[str, LogicValue]


class LogicSimulator:
    """Levelised three-valued simulator bound to one circuit.

    The evaluation order is computed once at construction; each call to
    :meth:`combinational` or :meth:`clock` is then a single linear pass.
    """

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self._order = combinational_order(circuit)

    def combinational(
        self,
        pi_values: SignalValues,
        state: SignalValues,
    ) -> SignalValues:
        """Evaluate the combinational block for one time frame.

        Args:
            pi_values: value per primary input (missing entries default to X).
            state: value per pseudo primary input (missing entries default to X).

        Returns:
            A dictionary with a value for every signal of the circuit
            (primary inputs, PPIs and every gate output).
        """
        values: SignalValues = {}
        for pi in self.circuit.primary_inputs:
            values[pi] = pi_values.get(pi)
        for ppi in self.circuit.pseudo_primary_inputs:
            values[ppi] = state.get(ppi)
        for name in self._order:
            gate = self.circuit.gate(name)
            inputs = [values[source] for source in gate.fanin]
            values[name] = evaluate_gate(gate.gate_type, inputs)
        return values

    def next_state(self, frame_values: SignalValues) -> SignalValues:
        """Extract the state that the flip-flops latch at the end of a frame."""
        state: SignalValues = {}
        for dff in self.circuit.flip_flops:
            state[dff.name] = frame_values[dff.fanin[0]]
        return state

    def clock(
        self,
        pi_values: SignalValues,
        state: SignalValues,
    ) -> "FrameResult":
        """Simulate one clock cycle: evaluate the frame and latch the next state."""
        frame_values = self.combinational(pi_values, state)
        return FrameResult(values=frame_values, next_state=self.next_state(frame_values))

    def outputs(self, frame_values: SignalValues) -> SignalValues:
        """Project the frame values onto the primary outputs."""
        return {po: frame_values[po] for po in self.circuit.primary_outputs}


@dataclasses.dataclass
class FrameResult:
    """Values of one simulated time frame and the state latched at its end."""

    values: SignalValues
    next_state: SignalValues


@dataclasses.dataclass
class SequenceResult:
    """Result of simulating an input sequence frame by frame."""

    frames: List[FrameResult]
    final_state: SignalValues

    @property
    def frame_count(self) -> int:
        """Number of simulated time frames."""
        return len(self.frames)

    def primary_output_trace(self, circuit: Circuit) -> List[SignalValues]:
        """Primary output values of every frame."""
        return [{po: frame.values[po] for po in circuit.primary_outputs} for frame in self.frames]


def simulate_combinational(
    circuit: Circuit,
    pi_values: SignalValues,
    state: Optional[SignalValues] = None,
    backend: Optional[str] = None,
) -> SignalValues:
    """One-shot combinational evaluation (convenience wrapper)."""
    from repro.fausim.backends import create_simulator

    return create_simulator(circuit, backend).combinational(pi_values, state or {})


def simulate_sequence(
    circuit: Circuit,
    vectors: Sequence[SignalValues],
    initial_state: Optional[SignalValues] = None,
    backend: Optional[str] = None,
) -> SequenceResult:
    """Simulate an input vector sequence starting from ``initial_state``.

    Missing state entries and missing primary input values are X.  Returns the
    per-frame values and the state after the last vector.
    """
    from repro.fausim.backends import create_simulator

    simulator = create_simulator(circuit, backend)
    state: SignalValues = dict(initial_state or {})
    frames: List[FrameResult] = []
    for vector in vectors:
        frame = simulator.clock(vector, state)
        frames.append(frame)
        state = frame.next_state
    return SequenceResult(frames=frames, final_state=state)

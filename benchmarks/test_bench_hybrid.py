"""Hybrid campaign flow: random prefix + deterministic residue vs det-only.

The hybrid flow (``--rpg-prefix``, :mod:`repro.core.prefilter`) fronts the
deterministic TDgen/SEMILET campaign with a seeded random-pattern prefix:
sequences are graded word-parallel against the whole remaining fault
universe, credited under the exact eight-valued TDsim rule, and every
credited fault is stripped before the residue is targeted.

``test_bench_hybrid_speedup`` is the acceptance gate of that flow: on a
full-universe s838@0.5 campaign the hybrid run must finish at least
**1.5x** faster than the deterministic-only run with the *same* campaign
settings, while detecting at least as many faults.  The workload pins the
settings under which the prefix honestly pays end-to-end:

* a random-testable surrogate instance (``seed=53``, picked by scanning
  the surrogate family for gross-delay detectability under short random
  sequences — the family varies widely; on hard instances the prefix
  strips nothing and the hybrid flow degenerates to the deterministic
  flow plus a cheap window of wasted sequences, while on this one the
  deterministic search proves or aborts most faults yet random patterns
  credit hundreds);
* the non-robust fault model (the paper's ablation): robust TDsim
  confirmation rejects most gross-delay candidates, so under the robust
  model the prefix buys mostly *coverage* (it detects faults the
  deterministic search aborts on) rather than wall clock;
* the ``bigint`` kernel tier, whose whole-universe grading keeps the
  prefix's own cost small (see ``BENCH_kernels.json``).

The hybrid leg runs *first*, so the global search/implication memo caches
are cold for it and warm for the deterministic leg — the bias runs against
the gate.  Results land in ``BENCH_hybrid.json`` at the repository root.
"""

from __future__ import annotations

import time

from benchconfig import write_bench_results
from repro.core.flow import SequentialDelayATPG
from repro.core.prefilter import PrefixConfig
from repro.data import load_circuit
from repro.faults.model import enumerate_delay_faults

#: Benchmark workload: the complete fault universe of a random-testable
#: s838 surrogate at half scale, under the non-robust model.
CIRCUIT, SCALE, SURROGATE_SEED = "s838", 0.5, 53
BACKEND = "bigint"
ROBUST = False
#: Prefix settings of the hybrid leg (campaign seed doubles as prefix seed).
BUDGET, WINDOW, LENGTH = 512, 64, 8


def _fresh_workload():
    """A fresh circuit + its full fault universe (circuits cache state)."""
    circuit = load_circuit(CIRCUIT, scale=SCALE, seed=SURROGATE_SEED)
    return circuit, enumerate_delay_faults(circuit)


def _run(prefix):
    circuit, faults = _fresh_workload()
    atpg = SequentialDelayATPG(circuit, robust=ROBUST, backend=BACKEND)
    start = time.perf_counter()
    campaign = atpg.run(faults=faults, prefix=prefix)
    return campaign, time.perf_counter() - start


def test_bench_hybrid_speedup():
    """Acceptance: hybrid >= 1.5x faster, fault coverage >= deterministic."""
    prefix = PrefixConfig(
        budget=BUDGET, window=WINDOW, sequence_length=LENGTH, seed=SURROGATE_SEED
    )
    hybrid, hybrid_seconds = _run(prefix)
    deterministic, det_seconds = _run(None)

    assert hybrid.prefix_applied > 0
    assert hybrid.prefix_detected > 0, "workload must be random-testable"
    assert hybrid.total_faults == deterministic.total_faults

    speedup = det_seconds / hybrid_seconds
    print(
        f"\nhybrid campaign ({CIRCUIT}@{SCALE} seed {SURROGATE_SEED}, "
        f"{hybrid.total_faults} faults, non-robust, {BACKEND}): "
        f"deterministic {det_seconds:.1f}s -> hybrid {hybrid_seconds:.1f}s "
        f"({speedup:.2f}x); coverage {deterministic.tested} -> {hybrid.tested} "
        f"(prefix: {hybrid.prefix_applied} sequences applied, "
        f"{hybrid.prefix_detected} faults credited, "
        f"stop={hybrid.prefix_stop_reason})"
    )
    write_bench_results(
        "hybrid",
        {
            "workload": {
                "circuit": f"{CIRCUIT}@{SCALE}",
                "surrogate_seed": SURROGATE_SEED,
                "n_faults": hybrid.total_faults,
                "robust": ROBUST,
                "backend": BACKEND,
                "prefix": {"budget": BUDGET, "window": WINDOW, "length": LENGTH},
                "description": "full-universe campaign, hybrid vs deterministic-only",
            },
            "deterministic_seconds": round(det_seconds, 6),
            "hybrid_seconds": round(hybrid_seconds, 6),
            "speedup": round(speedup, 2),
            "deterministic_coverage": deterministic.tested,
            "hybrid_coverage": hybrid.tested,
            "prefix_applied": hybrid.prefix_applied,
            "prefix_detected": hybrid.prefix_detected,
            "prefix_stop_reason": hybrid.prefix_stop_reason,
            "gate": 1.5,
        },
    )
    assert hybrid.tested >= deterministic.tested, (
        f"hybrid coverage {hybrid.tested} below deterministic "
        f"{deterministic.tested}"
    )
    assert speedup >= 1.5, (
        f"hybrid campaign only {speedup:.2f}x faster than deterministic-only "
        f"({det_seconds:.1f}s vs {hybrid_seconds:.1f}s)"
    )

"""Truth tables of the eight-valued robust delay algebra.

The two-input AND table implements the semantics of the paper's Table 1; the
inverter implements Table 2.  Every other primitive (OR, NAND, NOR, XOR,
XNOR, BUF) is derived from these two by De Morgan's rules / two-level
decomposition, exactly as the paper prescribes ("From these two truth tables
the truth tables for the other primitive gates can be constructed using
de Morgans rules").

Key robustness rules encoded here (and asserted by the test-suite):

* ``Rc`` propagates through an AND gate if every off-path input has a final
  value of one (``1``, ``1h``, ``R`` or ``Rc``).
* ``Fc`` propagates through an AND gate only if every off-path input is a
  clean steady one (``1``) or carries the same falling fault (``Fc``).
* ``Rc``/``Fc`` never appear at a gate output unless present at an input.
"""

from __future__ import annotations

import functools
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.algebra.values import (
    ALL_VALUES,
    DelayValue,
    F,
    FC,
    H0,
    H1,
    R,
    RC,
    V0,
    V1,
)
from repro.circuit.gates import GateType


def _and2_semantics(a: DelayValue, b: DelayValue, robust: bool = True) -> DelayValue:
    """Two-input AND following the paper's Table 1 semantics.

    With ``robust=False`` the table is relaxed to the non-robust gate delay
    fault model the paper's conclusions point to: the fault effect survives
    whenever every off-path input has a non-controlling *final* value, even if
    it transitions or may glitch.
    """
    # A clean steady zero input dominates: the output is a clean steady zero
    # regardless of hazards or fault effects on the other input.
    if a is V0 or b is V0:
        return V0

    initial = a.initial & b.initial
    final = a.final & b.final

    if initial != final:
        rising = final == 1
        carries = a.fault or b.fault
        if carries:
            if rising:
                # Slow-to-rise effect: the output can only reach the good final
                # value (1) if the fault site actually rose, so any off-path
                # input with a final value of one preserves robustness.
                return RC
            if not robust:
                # Non-robust model: a final value of one on the off-path input
                # is enough (test may be invalidated by hazards).
                return FC
            # Slow-to-fall effect: a hazard or late transition on an off-path
            # input could pull the output to the good final value (0) even
            # though the fault site is still high, invalidating the test.
            # Robustness therefore requires every non-carrying input to be a
            # clean steady one.
            off_path_ok = all(value.fault or value is V1 for value in (a, b))
            return FC if off_path_ok else F
        return R if rising else F

    if final == 1:
        # Both inputs are steady one; a hazard on either can glitch the output.
        return H1 if (a.hazard or b.hazard) else V1

    # Steady zero output without a clean steady zero input: transitions or
    # hazards on the inputs can momentarily drive the output high.
    return H0


def not1(value: DelayValue) -> DelayValue:
    """Inverter truth table (paper Table 2)."""
    return _NOT_TABLE[value]


_NOT_TABLE: Dict[DelayValue, DelayValue] = {
    V0: V1,
    V1: V0,
    R: F,
    F: R,
    H0: H1,
    H1: H0,
    RC: FC,
    FC: RC,
}

# Precompute the 8x8 AND tables once; everything else folds over them.
_AND_TABLE: Dict[Tuple[DelayValue, DelayValue], DelayValue] = {
    (a, b): _and2_semantics(a, b, robust=True) for a in ALL_VALUES for b in ALL_VALUES
}
_AND_TABLE_NONROBUST: Dict[Tuple[DelayValue, DelayValue], DelayValue] = {
    (a, b): _and2_semantics(a, b, robust=False) for a in ALL_VALUES for b in ALL_VALUES
}


def and2(a: DelayValue, b: DelayValue, robust: bool = True) -> DelayValue:
    """Two-input AND (paper Table 1)."""
    table = _AND_TABLE if robust else _AND_TABLE_NONROBUST
    return table[(a, b)]


def or2(a: DelayValue, b: DelayValue, robust: bool = True) -> DelayValue:
    """Two-input OR, derived via De Morgan from the AND table."""
    return not1(and2(not1(a), not1(b), robust))


def xor2(a: DelayValue, b: DelayValue, robust: bool = True) -> DelayValue:
    """Two-input XOR, derived from the two-level AND/OR decomposition."""
    return or2(and2(a, not1(b), robust), and2(not1(a), b, robust), robust)


def _reduce(pairwise, values: Sequence[DelayValue], robust: bool) -> DelayValue:
    result = values[0]
    for value in values[1:]:
        result = pairwise(result, value, robust)
    return result


def evaluate_delay_gate(
    gate_type: GateType, inputs: Sequence[DelayValue], robust: bool = True
) -> DelayValue:
    """Evaluate a combinational gate in the eight-valued algebra.

    Multi-input gates fold the two-input tables associatively; the inverting
    types apply the inverter table to the non-inverted core.
    """
    if not inputs:
        raise ValueError(f"{gate_type.value} gate with no inputs")
    if gate_type is GateType.BUF:
        if len(inputs) != 1:
            raise ValueError("BUF expects exactly one input")
        return inputs[0]
    if gate_type is GateType.NOT:
        if len(inputs) != 1:
            raise ValueError("NOT expects exactly one input")
        return not1(inputs[0])
    if gate_type is GateType.AND:
        return _reduce(and2, inputs, robust)
    if gate_type is GateType.NAND:
        return not1(_reduce(and2, inputs, robust))
    if gate_type is GateType.OR:
        return _reduce(or2, inputs, robust)
    if gate_type is GateType.NOR:
        return not1(_reduce(or2, inputs, robust))
    if gate_type is GateType.XOR:
        return _reduce(xor2, inputs, robust)
    if gate_type is GateType.XNOR:
        return not1(_reduce(xor2, inputs, robust))
    raise ValueError(f"gate type {gate_type} is not combinationally evaluable")


@functools.lru_cache(maxsize=None)
def table_for_gate(
    gate_type: GateType, robust: bool = True
) -> Dict[Tuple[DelayValue, DelayValue], DelayValue]:
    """Return the full two-input truth table of a gate type as a dictionary."""
    if gate_type in (GateType.NOT, GateType.BUF):
        raise ValueError("single-input gates have no two-input table")
    return {
        (a, b): evaluate_delay_gate(gate_type, (a, b), robust)
        for a in ALL_VALUES
        for b in ALL_VALUES
    }


def format_truth_table(gate_type: GateType) -> str:
    """Render the two-input truth table of a gate in the style of Table 1.

    Rows and columns are ordered ``0, 1, R, F, 0h, 1h, Rc, Fc``.  Used by the
    examples and the Table 1 / Table 2 regeneration benchmarks.
    """
    if gate_type is GateType.NOT:
        header = " ".join(f"{value.name:>3}" for value in ALL_VALUES)
        row = " ".join(f"{not1(value).name:>3}" for value in ALL_VALUES)
        return f"NOT  {header}\n     {row}"
    table = table_for_gate(gate_type)
    lines: List[str] = []
    header = " ".join(f"{value.name:>3}" for value in ALL_VALUES)
    lines.append(f"{gate_type.value:<4} {header}")
    for a in ALL_VALUES:
        cells = " ".join(f"{table[(a, b)].name:>3}" for b in ALL_VALUES)
        lines.append(f"{a.name:<4} {cells}")
    return "\n".join(lines)


def paper_table1_and() -> Dict[Tuple[str, str], str]:
    """The AND-gate truth table keyed and valued by printable names (Table 1)."""
    return {(a.name, b.name): and2(a, b).name for a in ALL_VALUES for b in ALL_VALUES}


def paper_table2_inverter() -> Dict[str, str]:
    """The inverter truth table keyed and valued by printable names (Table 2)."""
    return {value.name: not1(value).name for value in ALL_VALUES}

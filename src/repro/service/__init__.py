"""ATPG-as-a-service: the long-lived daemon in front of the batch stack.

Everything below this package serves one submission at a time from scratch;
:mod:`repro.service` keeps the expensive state warm across requests — an
asyncio HTTP/JSON API (:mod:`~repro.service.api`), a priority job queue
feeding the :mod:`repro.orchestrate` worker pool
(:mod:`~repro.service.jobs`), digest-keyed caches of compiled netlists and
finished campaigns (:mod:`~repro.service.cache`) and signal-driven graceful
shutdown that checkpoints in-flight campaigns through the JSONL journal
(:mod:`~repro.service.shutdown`).  Start it with ``python -m repro serve``;
the endpoint reference lives in ``docs/SERVICE.md``.

Quickstart::

    from repro.service import ServiceThread

    with ServiceThread(state_dir="/tmp/atpg-state") as daemon:
        ...  # POST http://127.0.0.1:{daemon.port}/jobs
"""

from repro.service.api import ApiError
from repro.service.app import AtpgService, ServiceThread
from repro.service.cache import NetlistCache, ResultCache, campaign_cache_key, netlist_digest
from repro.service.jobs import Job, JobSpec, JobStore
from repro.service.shutdown import ShutdownController

__all__ = [
    "ApiError",
    "AtpgService",
    "ServiceThread",
    "NetlistCache",
    "ResultCache",
    "campaign_cache_key",
    "netlist_digest",
    "Job",
    "JobSpec",
    "JobStore",
    "ShutdownController",
]

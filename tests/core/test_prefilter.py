"""Unit tests of the random-pattern prefix phase (:mod:`repro.core.prefilter`).

The hybrid campaign's Phase A must be a pure function of (circuit, universe,
config): seeded per-sequence, credited under the exact eight-valued rule, and
resumable from journaled records without replaying the RNG history.  These
tests pin the seed derivation, the config validation, the record round-trip,
the adaptive stopping rules and the replay-equals-fresh-run contract.
"""

import pytest

from repro.core.flow import SequentialDelayATPG
from repro.core.prefilter import (
    STOP_BUDGET,
    STOP_EXHAUSTED,
    STOP_WINDOW,
    PrefixConfig,
    PrefixRecord,
    RandomPrefixEngine,
    derive_prefix_seed,
)
from repro.data import load_circuit
from repro.faults.model import enumerate_delay_faults

#: A prefix workload with real detections: s344@0.3 seed 0 credits ~40 faults
#: within ~35 sequences before the window rule stops it (sub-second).
CONFIG = PrefixConfig(budget=64, window=8, sequence_length=8, seed=0)


@pytest.fixture(scope="module")
def s344_small():
    return load_circuit("s344", scale=0.3)


@pytest.fixture(scope="module")
def prefix_outcome(s344_small):
    engine = RandomPrefixEngine(s344_small, CONFIG, backend="packed")
    return engine.run(enumerate_delay_faults(s344_small))


# --------------------------------------------------------------------------- #
# seed derivation / config validation
# --------------------------------------------------------------------------- #
def test_derive_prefix_seed_is_deterministic_and_index_local():
    assert derive_prefix_seed(7, 3) == derive_prefix_seed(7, 3)
    seeds = {derive_prefix_seed(7, k) for k in range(100)}
    assert len(seeds) == 100, "per-sequence seeds must not collide on a small run"
    assert all(0 <= seed <= 0x7FFFFFFF for seed in seeds)
    # different campaigns draw different sequences
    assert derive_prefix_seed(7, 0) != derive_prefix_seed(8, 0)


def test_prefix_config_validation():
    with pytest.raises(ValueError, match="budget"):
        PrefixConfig(budget=0)
    with pytest.raises(ValueError, match="window"):
        PrefixConfig(window=0)
    with pytest.raises(ValueError, match="two frames"):
        PrefixConfig(sequence_length=1)


# --------------------------------------------------------------------------- #
# record round-trip
# --------------------------------------------------------------------------- #
def test_prefix_record_journal_round_trip(prefix_outcome):
    assert prefix_outcome.detected, "workload must credit faults to be meaningful"
    for record in prefix_outcome.records:
        rebuilt = PrefixRecord.from_journal(record.to_journal())
        assert rebuilt.seq == record.seq
        assert rebuilt.candidates == record.candidates
        assert rebuilt.detections == record.detections
        if record.sequence is None:
            assert rebuilt.sequence is None
        else:
            assert rebuilt.sequence.to_json() == record.sequence.to_json()


def test_sequences_kept_only_when_crediting(prefix_outcome):
    for record in prefix_outcome.records:
        assert (record.sequence is not None) == bool(record.detections)
        # the gross-delay grade is a necessary condition of the credit
        assert len(record.detections) <= record.candidates


# --------------------------------------------------------------------------- #
# stopping rules
# --------------------------------------------------------------------------- #
def test_window_stop(prefix_outcome):
    """The workload's natural stop: a full window without a new credit."""
    assert prefix_outcome.stop_reason == STOP_WINDOW
    window = CONFIG.window
    tail = prefix_outcome.records[-window:]
    assert sum(len(record.detections) for record in tail) == 0
    assert prefix_outcome.applied < CONFIG.budget


def test_budget_stop(s344_small):
    config = PrefixConfig(budget=5, window=64, sequence_length=8, seed=0)
    engine = RandomPrefixEngine(s344_small, config, backend="packed")
    outcome = engine.run(enumerate_delay_faults(s344_small))
    assert outcome.stop_reason == STOP_BUDGET
    assert outcome.applied == 5


def test_exhausted_stop_on_empty_universe(s344_small):
    engine = RandomPrefixEngine(s344_small, CONFIG, backend="packed")
    outcome = engine.run([])
    assert outcome.stop_reason == STOP_EXHAUSTED
    assert outcome.applied == 0 and outcome.detected == []


# --------------------------------------------------------------------------- #
# determinism + replay
# --------------------------------------------------------------------------- #
def _journal_form(outcome):
    return (
        [record.to_journal() for record in outcome.records],
        [fault.to_json() for fault in outcome.detected],
        outcome.stop_reason,
    )


def test_rerun_is_bit_identical(s344_small, prefix_outcome):
    engine = RandomPrefixEngine(s344_small, CONFIG, backend="packed")
    again = engine.run(enumerate_delay_faults(s344_small))
    assert _journal_form(again) == _journal_form(prefix_outcome)


def test_replay_from_any_cut_matches_fresh_run(s344_small, prefix_outcome):
    """Resuming from journaled records continues the identical prefix."""
    faults = enumerate_delay_faults(s344_small)
    for cut in (1, len(prefix_outcome.records) // 2, len(prefix_outcome.records)):
        replay = [
            PrefixRecord.from_journal(record.to_journal())
            for record in prefix_outcome.records[:cut]
        ]
        engine = RandomPrefixEngine(s344_small, CONFIG, backend="packed")
        emitted = []
        resumed = engine.run(faults, replay=replay, on_record=emitted.append)
        assert _journal_form(resumed) == _journal_form(prefix_outcome), cut
        # only newly applied sequences are re-emitted
        assert len(emitted) == prefix_outcome.applied - cut


def test_replay_out_of_order_is_rejected(s344_small, prefix_outcome):
    engine = RandomPrefixEngine(s344_small, CONFIG, backend="packed")
    with pytest.raises(ValueError, match="out of order"):
        engine.run(
            enumerate_delay_faults(s344_small), replay=prefix_outcome.records[1:]
        )


def test_backends_agree(s344_small, prefix_outcome):
    """The prefix phase is backend-independent like every other layer."""
    engine = RandomPrefixEngine(s344_small, CONFIG, backend="bigint")
    outcome = engine.run(enumerate_delay_faults(s344_small))
    assert _journal_form(outcome) == _journal_form(prefix_outcome)


# --------------------------------------------------------------------------- #
# serial hybrid flow
# --------------------------------------------------------------------------- #
def test_serial_hybrid_campaign_bookkeeping(s344_small, prefix_outcome):
    """``SequentialDelayATPG.run(prefix=...)`` folds Phase A into the result."""
    campaign = SequentialDelayATPG(s344_small, backend="packed").run(prefix=CONFIG)
    assert campaign.prefix_applied == prefix_outcome.applied
    assert campaign.prefix_detected == len(prefix_outcome.detected)
    assert campaign.prefix_stop_reason == prefix_outcome.stop_reason
    assert len(campaign.prefix_sequences) == len(prefix_outcome.kept_sequences)
    # prefix-credited faults are tested without being targeted
    assert campaign.tested >= campaign.prefix_detected
    assert campaign.targeted <= campaign.total_faults - campaign.prefix_detected
    assert campaign.total_faults == len(enumerate_delay_faults(s344_small))

    # the hybrid result round-trips through JSON with its prefix fields
    rebuilt = type(campaign).from_json(campaign.to_json())
    assert rebuilt.prefix_applied == campaign.prefix_applied
    assert rebuilt.prefix_detected == campaign.prefix_detected
    assert rebuilt.prefix_stop_reason == campaign.prefix_stop_reason
    assert len(rebuilt.prefix_sequences) == len(campaign.prefix_sequences)
    assert rebuilt.pattern_count == campaign.pattern_count

"""Tests of the campaign orchestration subsystem."""

"""Packed bit-parallel backend vs the reference simulator.

The paper's flow spends nearly all of its time in repeated good-machine
simulation; this benchmark quantifies what the compiled word-packed backend
buys on that workload.  The measured scenario is the one the baselines
actually run: many independent input sequences simulated through a surrogate
sequential circuit, observing the primary outputs and the final state.

``test_bench_packed_speedup`` additionally asserts the acceptance bar of the
backend: at least a 10x speedup over the reference interpreter, with
identical results.
"""

from __future__ import annotations

import random
import time

import pytest

from benchconfig import write_bench_results
from repro.data import load_circuit
from repro.fausim import LogicSimulator, PackedLogicSimulator, simulate_sequence

#: Benchmark workload: N random sequences of F frames each.
N_SEQUENCES = 256
N_FRAMES = 16


@pytest.fixture(scope="module")
def workload():
    circuit = load_circuit("s838", scale=0.5, seed=0)
    rng = random.Random(1)
    sequences = [
        [{pi: rng.randint(0, 1) for pi in circuit.primary_inputs} for _ in range(N_FRAMES)]
        for _ in range(N_SEQUENCES)
    ]
    return circuit, sequences


def _reference_run(circuit, sequences):
    return [simulate_sequence(circuit, sequence) for sequence in sequences]


def _packed_run(circuit, sequences):
    simulator = PackedLogicSimulator(circuit)
    return simulator.sequence_batch(sequences, observe=circuit.primary_outputs)


def test_bench_reference_backend(benchmark, workload):
    circuit, sequences = workload
    results = benchmark(_reference_run, circuit, sequences)
    assert len(results) == N_SEQUENCES


def test_bench_packed_backend(benchmark, workload):
    circuit, sequences = workload
    results = benchmark(_packed_run, circuit, sequences)
    assert len(results) == N_SEQUENCES


def test_bench_packed_scalar_adapter(benchmark, workload):
    """Cost of the packed backend when used through the scalar interface."""
    circuit, sequences = workload
    simulator = PackedLogicSimulator(circuit)

    def scalar_run():
        state = {}
        for vector in sequences[0]:
            state = simulator.clock(vector, state).next_state
        return state

    benchmark(scalar_run)


def test_bench_packed_speedup(workload):
    """Acceptance: packed >= 10x faster than reference, identical results."""
    circuit, sequences = workload

    start = time.perf_counter()
    reference = _reference_run(circuit, sequences)
    reference_seconds = time.perf_counter() - start

    start = time.perf_counter()
    packed = _packed_run(circuit, sequences)
    packed_seconds = time.perf_counter() - start

    for want, got in zip(reference, packed):
        assert got.final_state == want.final_state
        for want_frame, got_frame in zip(want.frames, got.frames):
            for po in circuit.primary_outputs:
                assert got_frame.values[po] == want_frame.values[po]

    speedup = reference_seconds / packed_seconds
    print(
        f"\npacked backend: {reference_seconds:.3f}s -> {packed_seconds:.3f}s "
        f"({speedup:.1f}x, {N_SEQUENCES} sequences x {N_FRAMES} frames on {circuit.name})"
    )
    write_bench_results(
        "packed_sim",
        {
            "workload": {
                "circuit": circuit.name,
                "n_sequences": N_SEQUENCES,
                "n_frames": N_FRAMES,
                "description": "good-machine sequence batch, packed vs reference",
            },
            "reference_seconds": round(reference_seconds, 6),
            "packed_seconds": round(packed_seconds, 6),
            "speedup": round(speedup, 2),
            "gate": 10.0,
        },
    )
    assert speedup >= 10.0, (
        f"packed backend only {speedup:.1f}x faster than reference "
        f"({reference_seconds:.3f}s vs {packed_seconds:.3f}s)"
    )


def test_bench_observability_map(benchmark, workload):
    """Bit-parallel propagation-phase fault simulation on all state bits."""
    from repro.fausim.fault_sim import PropagationFaultSimulator

    circuit, sequences = workload
    rng = random.Random(2)
    vectors = sequences[0]
    state = {ppi: rng.randint(0, 1) for ppi in circuit.pseudo_primary_inputs}
    simulator = PropagationFaultSimulator(circuit, vectors, backend="packed")
    results = benchmark(
        simulator.observability_map, state, circuit.pseudo_primary_inputs
    )
    reference = PropagationFaultSimulator(circuit, vectors, backend="reference")
    want = reference.observability_map(state, circuit.pseudo_primary_inputs)
    assert {k: bool(v) for k, v in results.items()} == {k: bool(v) for k, v in want.items()}

"""Differential harness: packed search kernels vs the interpreted reference.

The packed kernels of :mod:`repro.tdgen.search` must be *bit-exact* against
the interpreted walks they replace, query for query:

* TDgen's D-frontier objective selection and eight-valued multiple
  backtrace (over full and incremental packed states, stem and branch
  faults, both robustness modes),
* SEMILET propagation's potential-difference scan and pair-frame decision
  backtrace,
* SEMILET justification's controlling-value backtrace (the recursion vs the
  iterative worklist),
* the fold-image backward implication of :mod:`repro.algebra.sets` vs the
  historical combination-enumerating oracle kept in
  :func:`repro.tdgen.search.exhaustive_backward_input_sets`,

and whole campaigns must come out identical whichever kernel backend is
forced.  Any mismatch prints the failing seed, so a reproduction is one
``random_circuit(seed)`` call away.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

import pytest

from repro.algebra.sets import FULL_SET, backward_input_sets
from repro.algebra.values import ALL_VALUES, DelayValue, PI_VALUES
from repro.circuit.gates import GateType
from repro.core.flow import SequentialDelayATPG
from repro.data import load_circuit
from repro.faults.model import enumerate_delay_faults, sample_faults
from repro.tdgen.context import TDgenContext
from repro.tdgen.implication import (
    create_implication_engine,
    force_implication_backend,
)
from repro.tdgen.search import (
    PackedSearchKernels,
    ReferenceSearchKernels,
    available_search_kernels,
    create_search_kernels,
    default_search_kernels,
    exhaustive_backward_input_sets,
    set_default_search_kernels,
)

from tests.fausim.test_packed_differential import random_circuit

SEEDS = list(range(1, 25, 2))


def _kernel_pairs(circuit, robust=True):
    """(reference engine + kernels, packed engine + kernels) for one circuit."""
    context = TDgenContext(circuit)
    reference = create_implication_engine(
        circuit, "reference", robust=robust, context=context
    )
    packed = create_implication_engine(
        circuit, "packed", robust=robust, context=context
    )
    return (
        (reference, reference.search_kernels()),
        (packed, packed.search_kernels()),
    )


def _partial_assignment(rng, circuit, density=0.55):
    pi_values: Dict[str, Optional[DelayValue]] = {
        pi: (rng.choice(PI_VALUES) if rng.random() < density else None)
        for pi in circuit.primary_inputs
    }
    ppi_initial: Dict[str, Optional[int]] = {
        ppi: (rng.randint(0, 1) if rng.random() < density else None)
        for ppi in circuit.pseudo_primary_inputs
    }
    return pi_values, ppi_initial


def _random_states(rng, circuit):
    """Random captured good/faulty machine states (X allowed)."""
    good = {}
    faulty = {}
    for ppi in circuit.pseudo_primary_inputs:
        good[ppi] = rng.choice([0, 1, None])
        faulty[ppi] = good[ppi] if rng.random() < 0.6 else rng.choice([0, 1, None])
    return good, faulty


# --------------------------------------------------------------------------- #
# registry and dispatch
# --------------------------------------------------------------------------- #
def test_registry_names():
    assert set(available_search_kernels()) >= {"reference", "packed"}


def test_kernels_follow_engine_backend():
    circuit = random_circuit(0)
    (reference, reference_kernels), (packed, packed_kernels) = _kernel_pairs(circuit)
    assert isinstance(reference_kernels, ReferenceSearchKernels)
    assert isinstance(packed_kernels, PackedSearchKernels)
    # Cached per engine.
    assert reference.search_kernels() is reference_kernels
    assert packed.search_kernels() is packed_kernels


def test_default_override():
    """``set_default_search_kernels`` forces the kernels of new engines."""
    circuit = random_circuit(0)
    assert default_search_kernels() is None
    set_default_search_kernels("reference")
    try:
        engine = create_implication_engine(circuit, "packed")
        assert isinstance(engine.search_kernels(), ReferenceSearchKernels)
    finally:
        set_default_search_kernels(None)
    engine = create_implication_engine(circuit, "packed")
    assert isinstance(engine.search_kernels(), PackedSearchKernels)


def test_unknown_kernels_rejected():
    circuit = random_circuit(0)
    engine = create_implication_engine(circuit, "packed")
    with pytest.raises(ValueError, match="unknown search kernels"):
        create_search_kernels(engine, "no-such-kernels")
    with pytest.raises(ValueError, match="unknown search kernels"):
        set_default_search_kernels("no-such-kernels")


def test_packed_kernels_on_reference_engine():
    """Forcing ``packed`` kernels onto the reference engine is harmless.

    The kernels compile the netlist themselves (per-circuit cache) and
    every query takes the reference fallback because reference states carry
    no packed handle.
    """
    circuit = random_circuit(5)
    set_default_search_kernels("packed")
    try:
        engine = create_implication_engine(circuit, "reference")
        kernels = engine.search_kernels()
        assert isinstance(kernels, PackedSearchKernels)
    finally:
        set_default_search_kernels(None)
    rng = random.Random(5)
    pi_values, ppi_initial = _partial_assignment(rng, circuit)
    fault = enumerate_delay_faults(circuit)[0]
    state = engine.implicate(pi_values, ppi_initial, fault)
    want = ReferenceSearchKernels(engine).propagation_objective(state, fault, True)
    assert kernels.propagation_objective(state, fault, True) == want


def test_packed_kernels_fall_back_on_reference_states():
    """A reference state (no packed handle) still answers packed queries."""
    circuit = random_circuit(3)
    (reference, reference_kernels), (_, packed_kernels) = _kernel_pairs(circuit)
    rng = random.Random(3)
    pi_values, ppi_initial = _partial_assignment(rng, circuit)
    fault = enumerate_delay_faults(circuit)[0]
    state = reference.implicate(pi_values, ppi_initial, fault)
    assert state.packed_handle is None
    want = reference_kernels.propagation_objective(state, fault, True)
    got = packed_kernels.propagation_objective(state, fault, True)
    assert got == want


# --------------------------------------------------------------------------- #
# backward implication: fold images vs the exhaustive oracle
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("robust", [True, False])
@pytest.mark.parametrize(
    "gate_type",
    [
        GateType.AND,
        GateType.NAND,
        GateType.OR,
        GateType.NOR,
        GateType.XOR,
        GateType.XNOR,
    ],
)
def test_backward_input_sets_matches_exhaustive_oracle(gate_type, robust):
    """Random set combinations, arity 1-4, vs the combination enumeration."""
    rng = random.Random(hash((gate_type.value, robust)) & 0xFFFF)
    for _ in range(150):
        arity = rng.randint(2, 4)
        input_sets = [rng.randint(0, FULL_SET) for _ in range(arity)]
        output_set = rng.randint(0, FULL_SET)
        want = exhaustive_backward_input_sets(gate_type, input_sets, output_set, robust)
        got = backward_input_sets(gate_type, input_sets, output_set, robust)
        assert got == want, (gate_type, robust, input_sets, output_set)


def test_backward_input_sets_exhaustive_pairs():
    """Every singleton/pair input combination of the two-input AND/XOR."""
    small_sets = [value.mask for value in ALL_VALUES] + [
        ALL_VALUES[i].mask | ALL_VALUES[j].mask for i in range(8) for j in range(i)
    ]
    rng = random.Random(99)
    outputs = [rng.randint(1, FULL_SET) for _ in range(5)]
    for gate_type in (GateType.AND, GateType.XOR):
        for left in small_sets:
            for right in small_sets[:12]:
                for output_set in outputs:
                    want = exhaustive_backward_input_sets(
                        gate_type, [left, right], output_set, False
                    )
                    got = backward_input_sets(gate_type, [left, right], output_set, False)
                    assert got == want, (gate_type, left, right, output_set)


def test_backward_input_sets_wide_gates_unpruned():
    """Fanins above the bound fall back to no pruning in both versions."""
    input_sets = [FULL_SET] * 5
    assert backward_input_sets(GateType.AND, input_sets, 1, True) == input_sets
    assert exhaustive_backward_input_sets(GateType.AND, input_sets, 1, True) == input_sets


# --------------------------------------------------------------------------- #
# TDgen: objective selection and backtrace
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("robust", [True, False])
def test_objective_and_backtrace_bit_exact(seed, robust):
    """Objective choice and backtrace agree on identical random states."""
    circuit = random_circuit(seed)
    (reference, reference_kernels), (packed, packed_kernels) = _kernel_pairs(
        circuit, robust=robust
    )
    rng = random.Random(4321 + seed)
    faults = enumerate_delay_faults(circuit)

    for trial in range(4):
        pi_values, ppi_initial = _partial_assignment(rng, circuit)
        fault = rng.choice(faults)
        reference_state = reference.implicate(pi_values, ppi_initial, fault)
        packed_state = packed.implicate(pi_values, ppi_initial, fault)
        if reference_state.has_conflict():
            continue
        for prefer_po in (True, False):
            want = reference_kernels.propagation_objective(
                reference_state, fault, prefer_po
            )
            got = packed_kernels.propagation_objective(packed_state, fault, prefer_po)
            assert got == want, f"seed {seed} trial {trial} objective differs"
            if want is None:
                continue
            want_key = reference_kernels.backtrace(
                reference_state, fault, want, pi_values, ppi_initial
            )
            got_key = packed_kernels.backtrace(
                packed_state, fault, want, pi_values, ppi_initial
            )
            assert got_key == want_key, f"seed {seed} trial {trial} backtrace differs"


@pytest.mark.parametrize("seed", SEEDS[:6])
def test_objective_bit_exact_on_incremental_states(seed):
    """Kernels agree on states produced by incremental candidate sweeps."""
    circuit = random_circuit(seed)
    (reference, reference_kernels), (packed, packed_kernels) = _kernel_pairs(circuit)
    rng = random.Random(777 + seed)
    faults = enumerate_delay_faults(circuit)
    fault = rng.choice(faults)

    pi_values = {pi: None for pi in circuit.primary_inputs}
    ppi_initial = {ppi: None for ppi in circuit.pseudo_primary_inputs}
    reference_state = reference.implicate(pi_values, ppi_initial, fault)
    packed_state = packed.implicate(pi_values, ppi_initial, fault)

    # Chain three decisions like TDgen does, comparing after each sweep.
    for _ in range(3):
        free = [pi for pi in circuit.primary_inputs if pi_values[pi] is None]
        if not free or packed_state.has_conflict():
            break
        name = rng.choice(free)
        candidates = [("pi", name, value) for value in PI_VALUES]
        reference_states = reference.implicate_candidates(
            pi_values, ppi_initial, fault, candidates
        )
        packed_states = packed.implicate_candidates(
            pi_values, ppi_initial, fault, candidates, base=packed_state
        )
        slot = rng.randrange(len(candidates))
        pi_values[name] = candidates[slot][2]
        reference_state = reference_states.state(slot)
        packed_state = packed_states.state(slot)
        if reference_state.has_conflict():
            assert packed_state.has_conflict()
            break
        for prefer_po in (True, False):
            want = reference_kernels.propagation_objective(
                reference_state, fault, prefer_po
            )
            got = packed_kernels.propagation_objective(
                packed_state, fault, prefer_po
            )
            assert got == want, f"seed {seed} incremental objective differs"
            if want is not None:
                assert packed_kernels.backtrace(
                    packed_state, fault, want, pi_values, ppi_initial
                ) == reference_kernels.backtrace(
                    reference_state, fault, want, pi_values, ppi_initial
                )


# --------------------------------------------------------------------------- #
# SEMILET propagation: potential difference and pair decisions
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", SEEDS)
def test_potential_difference_bit_exact(seed):
    """The word-parallel scan equals the interpreted scan on every signal."""
    circuit = random_circuit(seed)
    (reference, reference_kernels), (packed, packed_kernels) = _kernel_pairs(circuit)
    rng = random.Random(888 + seed)

    for trial in range(4):
        good, faulty = _random_states(rng, circuit)
        pi_values = {
            pi: (rng.randint(0, 1) if rng.random() < 0.5 else None)
            for pi in circuit.primary_inputs
        }
        free = {
            ppi: None
            for ppi in circuit.pseudo_primary_inputs
            if rng.random() < 0.4
        }
        decisions = [None]
        if circuit.primary_inputs:
            name = rng.choice(circuit.primary_inputs)
            decisions = [(name, True, 0), (name, True, 1)]
        reference_frames = reference.pair_frame_candidates(
            pi_values, good, faulty, free, decisions
        )
        packed_frames = packed.pair_frame_candidates(
            pi_values, good, faulty, free, decisions
        )
        for index in range(len(decisions)):
            want = reference_kernels.potential_difference(reference_frames, index)
            got = packed_kernels.potential_difference(packed_frames, index)
            got_dict = {name: got[name] for name in want}
            assert got_dict == want, f"seed {seed} trial {trial} potential differs"

            want_key = reference_kernels.pair_frame_decision(
                reference_frames, index, pi_values, free
            )
            got_key = packed_kernels.pair_frame_decision(
                packed_frames, index, pi_values, free
            )
            assert got_key == want_key, f"seed {seed} trial {trial} decision differs"


# --------------------------------------------------------------------------- #
# SEMILET justification: controlling-value backtrace
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", SEEDS)
def test_justification_backtrace_bit_exact(seed):
    """The iterative worklist reproduces the recursion, node for node."""
    circuit = random_circuit(seed)
    (reference, reference_kernels), (packed, packed_kernels) = _kernel_pairs(circuit)
    rng = random.Random(555 + seed)
    signals = [
        name
        for name in circuit.gates
        if not circuit.gates[name].is_input and not circuit.gates[name].is_dff
    ]

    for trial in range(4):
        pi_values = {
            pi: (rng.randint(0, 1) if rng.random() < 0.4 else None)
            for pi in circuit.primary_inputs
        }
        ppi_values = {
            ppi: (rng.randint(0, 1) if rng.random() < 0.4 else None)
            for ppi in circuit.pseudo_primary_inputs
        }
        reference_frames = reference.frame_candidates(pi_values, ppi_values, (None,))
        packed_frames = packed.frame_candidates(pi_values, ppi_values, (None,))
        for signal in rng.sample(signals, min(4, len(signals))):
            for target in (0, 1):
                for decide_ppis in (True, False):
                    want = reference_kernels.justification_backtrace(
                        reference_frames, 0, signal, target,
                        pi_values, ppi_values, decide_ppis,
                    )
                    got = packed_kernels.justification_backtrace(
                        packed_frames, 0, signal, target,
                        pi_values, ppi_values, decide_ppis,
                    )
                    assert got == want, (
                        f"seed {seed} trial {trial} justification backtrace differs "
                        f"({signal} -> {target}, decide_ppis={decide_ppis})"
                    )


# --------------------------------------------------------------------------- #
# campaign equivalence under forced kernel / implication ablations
# --------------------------------------------------------------------------- #
def _campaign_fingerprint(campaign):
    """Everything each fault decision produced, via the JSON round-trip."""
    return [result.to_json() for result in campaign.fault_results]


def _run_s27(force_kernels=None, force_implication=None):
    set_default_search_kernels(force_kernels)
    force_implication_backend(force_implication)
    try:
        circuit = load_circuit("s27")
        atpg = SequentialDelayATPG(circuit, backend="packed")
        return atpg.run(enumerate_delay_faults(circuit))
    finally:
        set_default_search_kernels(None)
        force_implication_backend(None)


def test_campaign_equivalence_under_kernel_ablation_s27():
    """Forcing the interpreted kernels changes nothing about the campaign."""
    compiled = _run_s27()
    interpreted = _run_s27(force_kernels="reference")
    assert _campaign_fingerprint(compiled) == _campaign_fingerprint(interpreted)


def test_campaign_equivalence_under_search_ablation_s27():
    """Forcing the whole search side interpreted changes nothing either."""
    compiled = _run_s27()
    interpreted = _run_s27(force_implication="reference")
    assert _campaign_fingerprint(compiled) == _campaign_fingerprint(interpreted)


def test_campaign_equivalence_under_kernel_ablation_surrogate():
    """Sampled s838-surrogate campaign, compiled vs interpreted kernels."""
    def run(kernels):
        set_default_search_kernels(kernels)
        try:
            circuit = load_circuit("s838", scale=0.25, seed=0)
            faults = sample_faults(enumerate_delay_faults(circuit), 16)
            return SequentialDelayATPG(circuit, backend="packed").run(faults)
        finally:
            set_default_search_kernels(None)

    assert _campaign_fingerprint(run(None)) == _campaign_fingerprint(run("reference"))

"""CircuitBuilder, levelisation and structural validation."""

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gates import GateType
from repro.circuit.levelize import (
    CombinationalLoopError,
    combinational_order,
    levelize,
    max_level,
)
from repro.circuit.netlist import Circuit
from repro.circuit.validate import CircuitValidationError, validate_circuit


# --------------------------------------------------------------------------- #
# builder
# --------------------------------------------------------------------------- #
def test_builder_fluent_construction():
    builder = CircuitBuilder("demo")
    builder.inputs(["a", "b"])
    builder.nand("n1", ["a", "b"])
    builder.nor("n2", ["a", "n1"])
    builder.xor("n3", ["n1", "n2"])
    builder.xnor("n4", ["n3", "a"])
    builder.buf("n5", "n4")
    builder.not_("n6", "n5")
    builder.or_("n7", ["n6", "b"])
    builder.and_("y", ["n7", "n1"])
    builder.output("y")
    circuit = builder.build()
    assert circuit.gate("n1").gate_type is GateType.NAND
    assert circuit.gate("n4").gate_type is GateType.XNOR
    assert circuit.primary_outputs == ["y"]


def test_builder_dff_data_defined_later():
    builder = CircuitBuilder("ff")
    builder.input("en")
    builder.dff("q", "next_q")
    builder.xor("next_q", ["en", "q"])
    builder.output("q")
    circuit = builder.build()
    assert circuit.gate("q").gate_type is GateType.DFF
    assert circuit.pseudo_primary_outputs == ["next_q"]


def test_builder_validation_failure_propagates():
    builder = CircuitBuilder("broken")
    builder.input("a")
    builder.and_("y", ["a", "ghost"])
    builder.output("y")
    with pytest.raises(CircuitValidationError):
        builder.build()
    # validation can be skipped explicitly
    builder2 = CircuitBuilder("broken2")
    builder2.input("a")
    builder2.and_("y", ["a", "ghost"])
    builder2.output("y")
    circuit = builder2.build(validate=False)
    assert "y" in circuit


# --------------------------------------------------------------------------- #
# levelisation
# --------------------------------------------------------------------------- #
def test_levelize_s27(s27):
    levels = levelize(s27)
    assert levels["G0"] == 0
    assert levels["G5"] == 0  # PPIs are sources
    assert levels["G14"] == 1
    assert levels["G8"] == 2
    assert levels["G8"] < levels["G16"]
    assert max_level(s27) >= 4


def test_combinational_order_respects_dependencies(s27):
    order = combinational_order(s27)
    assert len(order) == 10
    position = {name: index for index, name in enumerate(order)}
    for name in order:
        gate = s27.gate(name)
        for source in gate.fanin:
            if source in position:
                assert position[source] < position[name]


def test_combinational_loop_detection():
    circuit = Circuit("loop")
    circuit.add_input("a")
    circuit.add_gate("x", GateType.AND, ["a", "y"])
    circuit.add_gate("y", GateType.AND, ["a", "x"])
    circuit.add_output("y")
    with pytest.raises(CombinationalLoopError):
        combinational_order(circuit)


def test_feedback_through_dff_is_not_a_loop(toggle_ff):
    order = combinational_order(toggle_ff)
    assert "next_q" in order


# --------------------------------------------------------------------------- #
# validation
# --------------------------------------------------------------------------- #
def test_validate_accepts_s27(s27):
    validate_circuit(s27)


def test_validate_reports_undefined_signal():
    circuit = Circuit("bad")
    circuit.add_input("a")
    circuit.add_gate("y", GateType.AND, ["a", "ghost"])
    circuit.add_output("y")
    with pytest.raises(CircuitValidationError) as excinfo:
        validate_circuit(circuit)
    assert any("ghost" in problem for problem in excinfo.value.problems)


def test_validate_reports_bad_arity():
    circuit = Circuit("bad_arity")
    circuit.add_input("a")
    circuit.add_input("b")
    circuit.add_gate("y", GateType.NOT, ["a", "b"])
    circuit.add_output("y")
    with pytest.raises(CircuitValidationError) as excinfo:
        validate_circuit(circuit)
    assert any("exactly one input" in problem for problem in excinfo.value.problems)


def test_validate_reports_undriven_output():
    circuit = Circuit("bad_po")
    circuit.add_input("a")
    circuit.primary_outputs.append("nothing")
    with pytest.raises(CircuitValidationError):
        validate_circuit(circuit)


def test_validate_reports_combinational_loop():
    circuit = Circuit("loop")
    circuit.add_input("a")
    circuit.add_gate("x", GateType.OR, ["a", "y"])
    circuit.add_gate("y", GateType.AND, ["x", "a"])
    circuit.add_output("y")
    with pytest.raises(CircuitValidationError) as excinfo:
        validate_circuit(circuit)
    assert any("loop" in problem for problem in excinfo.value.problems)


def test_validation_error_lists_multiple_problems():
    circuit = Circuit("multi")
    circuit.add_input("a")
    circuit.add_gate("x", GateType.NOT, ["a", "a"])
    circuit.add_gate("y", GateType.AND, ["ghost", "x"])
    circuit.add_output("zzz")
    with pytest.raises(CircuitValidationError) as excinfo:
        validate_circuit(circuit)
    assert len(excinfo.value.problems) >= 3

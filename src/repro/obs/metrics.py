"""Thread-safe metric primitives with a zero-overhead null default.

The instrumentation contract of the whole repo hangs off two classes:

* :class:`MetricsRegistry` — a thread-safe bag of counters, timers and
  histograms.  Every instrumented layer (the FOGBUSTER flow, TDgen, SEMILET,
  TDsim, the packed simulators, the orchestrator, the service) holds a
  reference and calls :meth:`~MetricsRegistry.inc` /
  :meth:`~MetricsRegistry.observe` / :meth:`~MetricsRegistry.timed`.
* :class:`NullRegistry` — the process-wide default (:data:`NULL_REGISTRY`).
  Every method is a ``pass``, so an uninstrumented campaign pays at most one
  no-op method call per *pass* (never per gate) and its results and wall
  clock stay within noise of an unpatched build.

Snapshots (:class:`MetricsSnapshot`) are plain data: JSON round-trippable
and mergeable.  The merge is a key-wise sum, which makes it **commutative
and associative** — the orchestrator relies on this so that shard snapshots
merged in any arrival order yield identical aggregates.

Metric names follow the Prometheus convention (``repro_<noun>_total`` for
counters, ``repro_<noun>_seconds`` for timers/histograms); labels are
rendered into the canonical ``name{key="value",...}`` key with the label
keys sorted, so the same (name, labels) pair always maps to the same
snapshot key on every worker.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

#: Default latency buckets (seconds) of :meth:`MetricsRegistry.observe_value`.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0,
)

#: Help strings of every metric the instrumented layers emit — the metric
#: name catalogue (see ``docs/OBSERVABILITY.md``); also the ``# HELP`` text
#: of the Prometheus exposition (:mod:`repro.obs.export`).
METRIC_HELP: Dict[str, str] = {
    "repro_faults_total": "Targeted faults by final status (tested/untestable/aborted).",
    "repro_fault_aborts_total": "Aborted faults by the FOGBUSTER phase that gave up.",
    "repro_decisions_total": "TDgen decision-tree nodes opened.",
    "repro_backtracks_total": "Search backtracks by engine (tdgen/semilet).",
    "repro_implication_sweeps_total": "Forward implication sweeps by call site.",
    "repro_wavefront_gates_evaluated_total": "Gates evaluated by event-driven set sweeps.",
    "repro_wavefront_gates_skipped_total": "Gates skipped (off the change wavefront) by event-driven set sweeps.",
    "repro_sim_gate_words_total": "Gate-word evaluations of the packed/bigint/numpy simulators.",
    "repro_tdsim_passes_total": "TDsim critical-path-tracing simulation passes.",
    "repro_tdsim_stem_analyses_total": "TDsim exact stem analyses (injection re-simulations).",
    "repro_tdsim_ppo_confirmations_total": "TDsim PPO candidate confirmations (injection + invalidation checks).",
    "repro_prefix_sequences_total": "Random-prefix sequences generated and graded (Phase A).",
    "repro_prefix_candidates_total": "Gross-delay candidates produced by prefix grading.",
    "repro_prefix_detections_total": "Faults credited to the random prefix after TDsim confirmation.",
    "repro_phase_seconds": "Wall time per flow phase (campaign/prefix/tdgen/propagation/synchronization/tdsim/verify).",
    "repro_fault_seconds": "Wall-time distribution of per-fault targeting.",
    "repro_http_requests_total": "Service HTTP requests by route and status code.",
    "repro_http_request_seconds": "Service HTTP request latency.",
    "repro_jobs_total": "Service job transitions by final state.",
    "repro_jobs_state": "Jobs currently in each lifecycle state at scrape time.",
    "repro_uptime_seconds": "Daemon uptime at scrape time.",
    "repro_queue_depth": "Queued jobs at scrape time.",
    "repro_queue_paused": "1 when the job queue is paused, else 0.",
}


def metric_key(name: str, labels: Optional[Mapping[str, object]] = None) -> str:
    """Canonical snapshot key of a (name, labels) pair.

    Labels are sorted by key and rendered Prometheus-style, so every worker
    produces the same key for the same metric and the snapshot merge can sum
    by key.
    """
    if not labels:
        return name
    rendered = ",".join(
        f'{key}="{labels[key]}"' for key in sorted(labels)
    )
    return f"{name}{{{rendered}}}"


def split_metric_key(key: str) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
    """Invert :func:`metric_key` into ``(name, ((label, value), ...))``."""
    if "{" not in key:
        return key, ()
    name, _, rest = key.partition("{")
    body = rest.rstrip("}")
    labels: List[Tuple[str, str]] = []
    for part in body.split(","):
        if not part:
            continue
        label, _, value = part.partition("=")
        labels.append((label, value.strip('"')))
    return name, tuple(labels)


class MetricsSnapshot:
    """A frozen, mergeable view of one registry's state.

    Attributes:
        counters: key -> monotonically accumulated amount.
        timers: key -> ``{"count": n, "sum": seconds}``.
        histograms: key -> ``{"buckets": bounds, "counts": per-bucket,
            "sum": total, "count": n}`` (counts are per-bucket, not
            cumulative; the exposition layer cumulates).
        gauges: key -> last set value.
    """

    __slots__ = ("counters", "timers", "histograms", "gauges")

    def __init__(
        self,
        counters: Optional[Dict[str, float]] = None,
        timers: Optional[Dict[str, Dict[str, float]]] = None,
        histograms: Optional[Dict[str, Dict[str, object]]] = None,
        gauges: Optional[Dict[str, float]] = None,
    ) -> None:
        self.counters = dict(counters or {})
        self.timers = dict(timers or {})
        self.histograms = dict(histograms or {})
        self.gauges = dict(gauges or {})

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Key-wise sum of two snapshots (commutative and associative).

        Counters, timer counts/sums and histogram bucket counts add; gauges
        add as well (shard gauges are not emitted, so in practice gauges
        only appear in single-source snapshots).  Histogram merges require
        identical bucket bounds — all emitters share
        :data:`DEFAULT_BUCKETS`, so this holds by construction.
        """
        merged = MetricsSnapshot(
            counters=self.counters, timers={k: dict(v) for k, v in self.timers.items()},
            histograms={k: dict(v) for k, v in self.histograms.items()},
            gauges=self.gauges,
        )
        for key, amount in other.counters.items():
            merged.counters[key] = merged.counters.get(key, 0) + amount
        for key, timer in other.timers.items():
            into = merged.timers.setdefault(key, {"count": 0, "sum": 0.0})
            into["count"] += timer["count"]
            into["sum"] += timer["sum"]
        for key, hist in other.histograms.items():
            into = merged.histograms.get(key)
            if into is None:
                merged.histograms[key] = {
                    "buckets": list(hist["buckets"]),
                    "counts": list(hist["counts"]),
                    "sum": hist["sum"],
                    "count": hist["count"],
                }
                continue
            if list(into["buckets"]) != list(hist["buckets"]):
                raise ValueError(f"histogram {key!r} has mismatched bucket bounds")
            into["counts"] = [a + b for a, b in zip(into["counts"], hist["counts"])]
            into["sum"] += hist["sum"]
            into["count"] += hist["count"]
        for key, value in other.gauges.items():
            merged.gauges[key] = merged.gauges.get(key, 0) + value
        return merged

    @staticmethod
    def merge_all(snapshots: Iterable["MetricsSnapshot"]) -> "MetricsSnapshot":
        """Fold any number of snapshots into one (order-independent)."""
        merged = MetricsSnapshot()
        for snapshot in snapshots:
            merged = merged.merge(snapshot)
        return merged

    def to_json(self) -> Dict[str, object]:
        """JSON-serialisable form (see :meth:`from_json`)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "timers": {
                key: dict(value) for key, value in sorted(self.timers.items())
            },
            "histograms": {
                key: {
                    "buckets": list(value["buckets"]),
                    "counts": list(value["counts"]),
                    "sum": value["sum"],
                    "count": value["count"],
                }
                for key, value in sorted(self.histograms.items())
            },
            "gauges": dict(sorted(self.gauges.items())),
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "MetricsSnapshot":
        """Rebuild a snapshot from its :meth:`to_json` form."""
        return cls(
            counters=dict(payload.get("counters", {})),
            timers={k: dict(v) for k, v in payload.get("timers", {}).items()},
            histograms={k: dict(v) for k, v in payload.get("histograms", {}).items()},
            gauges=dict(payload.get("gauges", {})),
        )


class _Timer:
    """Context manager of :meth:`MetricsRegistry.timed` (one per call)."""

    __slots__ = ("_registry", "_name", "_labels", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str, labels) -> None:
        self._registry = registry
        self._name = name
        self._labels = labels
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._registry.observe(
            self._name, time.perf_counter() - self._start, **self._labels
        )


class MetricsRegistry:
    """Thread-safe counters, timers and histograms behind one lock.

    One registry instance spans one *scope*: a campaign, a worker shard, a
    service process or a single job.  Snapshots taken at any moment are
    consistent (the lock covers reads too) and merge key-wise.
    """

    #: Instrumented hot paths branch on this once per pass, never per gate.
    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._timers: Dict[str, Dict[str, float]] = {}
        self._histograms: Dict[str, Dict[str, object]] = {}
        self._gauges: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    def inc(self, name: str, amount: float = 1, **labels: object) -> None:
        """Add ``amount`` to the counter ``name`` (with optional labels)."""
        key = metric_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + amount

    def observe(self, name: str, seconds: float, **labels: object) -> None:
        """Record one duration into the timer ``name``."""
        key = metric_key(name, labels)
        with self._lock:
            timer = self._timers.get(key)
            if timer is None:
                timer = self._timers[key] = {"count": 0, "sum": 0.0}
            timer["count"] += 1
            timer["sum"] += seconds

    def observe_value(
        self,
        name: str,
        value: float,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: object,
    ) -> None:
        """Record one observation into the histogram ``name``."""
        key = metric_key(name, labels)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = {
                    "buckets": list(buckets),
                    "counts": [0] * len(buckets),
                    "sum": 0.0,
                    "count": 0,
                }
            for index, bound in enumerate(hist["buckets"]):
                if value <= bound:
                    hist["counts"][index] += 1
                    break
            hist["sum"] += value
            hist["count"] += 1

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        """Set the gauge ``name`` to ``value`` (scrape-time state)."""
        key = metric_key(name, labels)
        with self._lock:
            self._gauges[key] = value

    def timed(self, name: str, **labels: object) -> _Timer:
        """A context manager timing its ``with`` body into timer ``name``."""
        return _Timer(self, name, labels)

    # ------------------------------------------------------------------ #
    def counter_value(self, name: str, **labels: object) -> float:
        """Current value of one exact (name, labels) counter (0 if unset)."""
        key = metric_key(name, labels)
        with self._lock:
            return self._counters.get(key, 0)

    def counter_sum(self, name: str) -> float:
        """Sum of a counter over all its label combinations.

        Used by the per-fault cost spans (:mod:`repro.obs.tracing`) to delta
        labelled counters like ``repro_implication_sweeps_total`` without
        enumerating the label space.
        """
        prefix = name + "{"
        with self._lock:
            return sum(
                value
                for key, value in self._counters.items()
                if key == name or key.startswith(prefix)
            )

    def absorb(self, snapshot: MetricsSnapshot) -> None:
        """Fold a finished scope's snapshot into this registry.

        The service registry absorbs every finished job's campaign snapshot
        this way, so ``GET /metrics`` exposes cumulative campaign counters
        next to the HTTP/runner metrics.  Same key-wise sum as
        :meth:`MetricsSnapshot.merge` (gauges included), so absorption order
        does not matter.
        """
        with self._lock:
            for key, amount in snapshot.counters.items():
                self._counters[key] = self._counters.get(key, 0) + amount
            for key, timer in snapshot.timers.items():
                into = self._timers.setdefault(key, {"count": 0, "sum": 0.0})
                into["count"] += timer["count"]
                into["sum"] += timer["sum"]
            for key, hist in snapshot.histograms.items():
                into = self._histograms.get(key)
                if into is None:
                    self._histograms[key] = {
                        "buckets": list(hist["buckets"]),
                        "counts": list(hist["counts"]),
                        "sum": hist["sum"],
                        "count": hist["count"],
                    }
                    continue
                if list(into["buckets"]) != list(hist["buckets"]):
                    raise ValueError(
                        f"histogram {key!r} has mismatched bucket bounds"
                    )
                into["counts"] = [
                    a + b for a, b in zip(into["counts"], hist["counts"])
                ]
                into["sum"] += hist["sum"]
                into["count"] += hist["count"]
            for key, value in snapshot.gauges.items():
                self._gauges[key] = self._gauges.get(key, 0) + value

    def snapshot(self) -> MetricsSnapshot:
        """A consistent copy of the current state."""
        with self._lock:
            return MetricsSnapshot(
                counters=dict(self._counters),
                timers={key: dict(value) for key, value in self._timers.items()},
                histograms={
                    key: {
                        "buckets": list(value["buckets"]),
                        "counts": list(value["counts"]),
                        "sum": value["sum"],
                        "count": value["count"],
                    }
                    for key, value in self._histograms.items()
                },
                gauges=dict(self._gauges),
            )


class _NullTimer:
    """Reusable no-op context manager of :class:`NullRegistry`."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_TIMER = _NullTimer()


class NullRegistry:
    """The do-nothing registry: the process-wide default.

    Every method is a no-op; :meth:`timed` hands back one shared no-op
    context manager.  Instrumented code never needs a ``metrics is None``
    check — it calls the same API and pays one attribute lookup plus one
    no-op call per instrumentation point.
    """

    enabled = False

    def inc(self, name: str, amount: float = 1, **labels: object) -> None:
        """No-op."""

    def observe(self, name: str, seconds: float, **labels: object) -> None:
        """No-op."""

    def observe_value(self, name: str, value: float, buckets=DEFAULT_BUCKETS, **labels: object) -> None:
        """No-op."""

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        """No-op."""

    def timed(self, name: str, **labels: object) -> _NullTimer:
        """The shared no-op context manager."""
        return _NULL_TIMER

    def absorb(self, snapshot: MetricsSnapshot) -> None:
        """No-op."""

    def counter_value(self, name: str, **labels: object) -> float:
        """Always 0."""
        return 0

    def counter_sum(self, name: str) -> float:
        """Always 0."""
        return 0

    def snapshot(self) -> MetricsSnapshot:
        """Always an empty snapshot."""
        return MetricsSnapshot()


#: The shared no-op registry every instrumented layer defaults to.
NULL_REGISTRY = NullRegistry()


def resolve_metrics(metrics: Optional[object]) -> object:
    """Normalise an optional registry argument (``None`` -> the null registry)."""
    return metrics if metrics is not None else NULL_REGISTRY

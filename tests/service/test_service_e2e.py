"""End-to-end tests of the ATPG daemon over real HTTP.

An in-process daemon (:class:`~repro.service.app.ServiceThread`) binds an
ephemeral loopback port; every test drives it exactly like an external
client would — ``POST /jobs``, poll, fetch the result.  The headline
assertions are the service-level acceptance criteria:

* a served campaign is fingerprint-identical to calling the orchestrate
  layer directly (the daemon adds no nondeterminism);
* an identical resubmission is a result-cache hit — finishes without any
  compute and says so;
* a same-netlist resubmission with different settings recomputes the
  campaign but never recompiles the netlist (compile counter pinned);
* jobs run in priority order, higher first, FIFO within a priority;
* a per-job time limit runs the serial bounded path and is never cached;
* malformed requests surface as 4xx JSON errors, not hung connections.
"""

from __future__ import annotations

import json
import socket
import time

import pytest

from repro.data import load_circuit
from repro.data.s27 import S27_BENCH
from repro.fausim.compile import compile_count
from repro.orchestrate import run_parallel_campaign

from tests.service.conftest import result_fingerprint


@pytest.fixture(scope="module")
def s27_direct():
    """Direct orchestrate-layer run of the spec the e2e tests submit."""
    circuit = load_circuit("s27")
    return run_parallel_campaign(circuit, jobs=2, campaign_seed=3).to_json()


# --------------------------------------------------------------------- #
# served results match direct runs
# --------------------------------------------------------------------- #
def test_served_result_matches_direct_run(daemon, s27_direct):
    _, client = daemon
    job_id = client.submit({"circuit": "s27", "jobs": 2, "seed": 3})
    job = client.wait(job_id)
    assert job["status"] == "done", job
    assert job["error"] is None
    assert job["total_faults"] == 52

    body = client.result(job_id)
    assert body["cache_hit"] is False
    assert result_fingerprint(body["campaign"]) == result_fingerprint(s27_direct)


def test_served_surrogate_matches_direct_run(daemon):
    _, client = daemon
    job_id = client.submit({"circuit": "s344", "scale": 0.25, "jobs": 2, "seed": 5})
    assert client.wait(job_id)["status"] == "done"
    served = client.result(job_id)["campaign"]

    direct = run_parallel_campaign(
        load_circuit("s344", scale=0.25), jobs=2, campaign_seed=5
    ).to_json()
    assert result_fingerprint(served) == result_fingerprint(direct)


def test_inline_bench_submission(daemon, s27_direct):
    _, client = daemon
    job_id = client.submit({"bench": S27_BENCH, "name": "s27", "jobs": 2, "seed": 3})
    assert client.wait(job_id)["status"] == "done"
    served = client.result(job_id)["campaign"]
    assert result_fingerprint(served) == result_fingerprint(s27_direct)


def test_served_hybrid_campaign_matches_direct_run(daemon):
    """A hybrid JobSpec round-trips: prefix events, counters and the result."""
    _, client = daemon
    spec = {
        "circuit": "s344", "scale": 0.3, "jobs": 2, "seed": 0,
        "rpg_prefix": True, "rpg_budget": 64, "rpg_window": 8,
    }
    job_id = client.submit(spec)
    job = client.wait(job_id)
    assert job["status"] == "done", job
    assert job["prefix_recorded"] > 0

    served = client.result(job_id)["campaign"]
    assert served["prefix_applied"] == job["prefix_recorded"]
    assert served["prefix_detected"] > 0
    assert served["prefix_stop_reason"] in ("window", "budget", "exhausted")

    direct = run_parallel_campaign(
        load_circuit("s344", scale=0.3),
        jobs=2, campaign_seed=0,
        rpg_prefix=True, rpg_budget=64, rpg_window=8,
    ).to_json()
    assert result_fingerprint(served) == result_fingerprint(direct)

    _, events = client.get(f"/jobs/{job_id}/events")
    kinds = [record["type"] for record in events["events"]]
    assert kinds.count("prefix") == job["prefix_recorded"]
    assert "prefix-done" in kinds
    assert kinds.index("prefix-done") < kinds.index("result")

    # the hybrid result is cached under its own key: a plain resubmission
    # of the same circuit/seed must NOT hit it
    plain = client.submit({"circuit": "s344", "scale": 0.3, "jobs": 2, "seed": 0})
    assert client.wait(plain)["cache_hit"] is False
    # ... while an identical hybrid resubmission does
    again = client.submit(spec)
    assert client.wait(again)["cache_hit"] is True


# --------------------------------------------------------------------- #
# caches
# --------------------------------------------------------------------- #
def test_identical_resubmission_is_a_result_cache_hit(daemon):
    _, client = daemon
    spec = {"circuit": "s27", "jobs": 2, "seed": 3}
    first = client.submit(spec)
    assert client.wait(first)["status"] == "done"
    compiles_after_first = compile_count()
    events_after_first = client.get(f"/jobs/{first}/events")[1]["next_offset"]
    assert events_after_first > 0  # the first run really computed

    second = client.submit(spec)
    job = client.wait(second)
    assert job["status"] == "done"
    assert job["cache_hit"] is True
    # no compute happened: no compile, no per-fault records — one cache note
    assert compile_count() == compiles_after_first
    _, events = client.get(f"/jobs/{second}/events")
    assert [record["type"] for record in events["events"]] == ["cache-hit"]

    # both report the same result; the second says it came from cache
    assert client.result(second)["cache_hit"] is True
    assert result_fingerprint(client.result(second)["campaign"]) == result_fingerprint(
        client.result(first)["campaign"]
    )

    _, stats = client.get("/cache")
    assert stats["results"]["hits"] >= 1


def test_same_netlist_resubmission_skips_compilation(daemon):
    _, client = daemon
    first = client.submit({"bench": S27_BENCH, "jobs": 2, "seed": 3})
    assert client.wait(first)["status"] == "done"
    compiles_after_first = compile_count()

    # different seed -> different campaign (result-cache miss), same netlist
    second = client.submit({"bench": S27_BENCH, "jobs": 2, "seed": 4})
    job = client.wait(second)
    assert job["status"] == "done"
    assert job["cache_hit"] is False
    _, events = client.get(f"/jobs/{second}/events")
    assert events["next_offset"] > 1  # it really re-ran the campaign
    assert compile_count() == compiles_after_first  # ... on the warm netlist

    _, stats = client.get("/cache")
    assert stats["netlists"]["hits"] >= 1
    assert stats["netlists"]["entries"] == 1


# --------------------------------------------------------------------- #
# queue semantics
# --------------------------------------------------------------------- #
def test_priority_ordering(daemon_factory):
    _, client = daemon_factory(paused=True)
    low = client.submit({"circuit": "s27", "seed": 10, "priority": 0, "jobs": 1})
    mid = client.submit({"circuit": "s27", "seed": 11, "priority": 5, "jobs": 1})
    high = client.submit({"circuit": "s27", "seed": 12, "priority": 9, "jobs": 1})
    late_mid = client.submit({"circuit": "s27", "seed": 13, "priority": 5, "jobs": 1})

    _, status = client.get("/status")
    assert status["paused"] is True
    assert status["queue"] == [high, mid, late_mid, low]

    assert client.post("/queue/resume")[0] == 200
    jobs = {job_id: client.wait(job_id) for job_id in (low, mid, high, late_mid)}
    assert all(job["status"] == "done" for job in jobs.values())
    started = sorted(jobs, key=lambda job_id: jobs[job_id]["started_at"])
    assert started == [high, mid, late_mid, low]


def test_cancel_queued_job(daemon_factory):
    _, client = daemon_factory(paused=True)
    job_id = client.submit({"circuit": "s27"})
    status, body = client.post(f"/jobs/{job_id}/cancel")
    assert status == 200 and body["job"]["status"] == "cancelled"
    assert client.get(f"/jobs/{job_id}/result")[0] == 409
    # cancelling again is a 409: the job is already terminal
    assert client.post(f"/jobs/{job_id}/cancel")[0] == 409
    # resuming the queue must not run the cancelled job
    client.post("/queue/resume")
    time.sleep(0.2)
    assert client.get(f"/jobs/{job_id}")[1]["job"]["status"] == "cancelled"


def test_time_limited_job_runs_serial_and_is_not_cached(daemon):
    _, client = daemon
    spec = {"circuit": "s344", "scale": 0.3, "jobs": 1, "time_limit_s": 0.2}
    first = client.submit(spec)
    job = client.wait(first)
    assert job["status"] == "done"
    campaign = client.result(first)["campaign"]
    # the limit bit: the campaign stopped early, leaving faults untargeted
    assert campaign["targeted"] < campaign["total_faults"]

    second = client.submit(spec)
    job = client.wait(second)
    assert job["status"] == "done"
    assert job["cache_hit"] is False  # time-limited results are never cached


# --------------------------------------------------------------------- #
# events: offset polling and NDJSON streaming
# --------------------------------------------------------------------- #
def test_event_polling_pagination(daemon):
    _, client = daemon
    job_id = client.submit({"circuit": "s27", "jobs": 2})
    client.wait(job_id)
    _, first_page = client.get(f"/jobs/{job_id}/events?offset=0")
    assert first_page["done"] is True
    records = first_page["events"]
    assert records[0]["type"] == "campaign"
    assert any(record["type"] in ("fault", "drop") for record in records)
    assert records[-1]["type"] == "result"
    assert first_page["next_offset"] == len(records)

    _, rest = client.get(f"/jobs/{job_id}/events?offset={first_page['next_offset']}")
    assert rest["events"] == []
    _, tail = client.get(f"/jobs/{job_id}/events?offset={len(records) - 2}")
    assert tail["events"] == records[-2:]


def test_event_stream_delivers_all_records(daemon):
    _, client = daemon
    job_id = client.submit({"circuit": "s27", "jobs": 2})
    # connect while the job is (probably) still running: the stream must
    # deliver every record exactly once and close at completion
    with socket.create_connection(("127.0.0.1", client.port), timeout=120) as sock:
        sock.sendall(
            f"GET /jobs/{job_id}/events?stream=1 HTTP/1.1\r\n"
            "Host: localhost\r\n\r\n".encode()
        )
        raw = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            raw += chunk
    head, _, body = raw.partition(b"\r\n\r\n")
    assert b"200 OK" in head and b"application/x-ndjson" in head
    streamed = [json.loads(line) for line in body.decode().splitlines()]

    client.wait(job_id)
    _, polled = client.get(f"/jobs/{job_id}/events?offset=0")
    assert streamed == polled["events"]


# --------------------------------------------------------------------- #
# malformed requests -> 4xx JSON errors
# --------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "payload, fragment",
    [
        ({"circuit": "never-heard-of-it"}, "unknown circuit"),
        ({"circuit": "s27", "bench": "x"}, "exactly one"),
        ({"circuit": "s27", "time_limit_s": 1.0, "jobs": 2}, "requires 'jobs' == 1"),
        ({"circuit": "s27", "frobnicate": True}, "unknown field"),
        ({"bench": "this is not bench syntax ("}, ""),
        ([1, 2, 3], "JSON object"),
    ],
)
def test_bad_submissions_are_400(daemon, payload, fragment):
    _, client = daemon
    status, body = client.post("/jobs", payload)
    assert status == 400
    assert fragment in body["error"]


def test_error_paths(daemon):
    _, client = daemon
    assert client.get("/jobs/job-999999")[0] == 404
    assert client.get("/jobs/job-999999/result")[0] == 404
    assert client.get("/nope")[0] == 404
    assert client.request("DELETE", "/jobs")[0] == 405

    # result of a queued/running job is a 409, not a 404
    job_id = client.submit({"circuit": "s27"})
    status, body = client.get(f"/jobs/{job_id}/result")
    if status != 200:  # may legitimately have finished already
        assert status == 409
    client.wait(job_id)

    # offset validation happens after the job lookup (unknown job -> 404)
    assert client.get(f"/jobs/{job_id}/events?offset=-1")[0] == 400
    assert client.get(f"/jobs/{job_id}/events?offset=nope")[0] == 400
    assert client.get("/jobs/job-999999/events?offset=-1")[0] == 404

    # non-JSON body
    status, body = client.request("POST", "/jobs", payload=None)
    assert status == 400 and "JSON" in body["error"]


def test_raw_socket_malformed_requests(daemon):
    _, client = daemon

    def roundtrip(raw: bytes) -> bytes:
        with socket.create_connection(("127.0.0.1", client.port), timeout=30) as sock:
            sock.sendall(raw)
            response = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    return response
                response += chunk

    assert b"400" in roundtrip(b"GARBAGE\r\n\r\n").split(b"\r\n", 1)[0]
    oversized = (
        b"POST /jobs HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n"
    )
    assert b"413" in roundtrip(oversized).split(b"\r\n", 1)[0]


def test_index_and_status_endpoints(daemon):
    _, client = daemon
    status, body = client.get("/")
    assert status == 200 and "POST /jobs" in body["endpoints"]
    status, body = client.get("/status")
    assert status == 200 and body["status"] == "running"
    status, body = client.get("/jobs")
    assert status == 200 and body["jobs"] == []


# --------------------------------------------------------------------- #
# store-backed incremental jobs
# --------------------------------------------------------------------- #
@pytest.fixture()
def s27_store(tmp_path):
    """A store holding one finished s27 base under JobSpec default settings."""
    from repro.core.flow import SequentialDelayATPG
    from repro.orchestrate import OrchestratorConfig
    from repro.store import CampaignStore

    circuit = load_circuit("s27")
    config = OrchestratorConfig(
        jobs=1,
        campaign_seed=0,
        robust=True,
        local_backtrack_limit=100,
        sequential_backtrack_limit=100,
    )
    result = SequentialDelayATPG(circuit, **config.atpg_kwargs()).run()
    path = str(tmp_path / "base.sqlite")
    with CampaignStore(path) as store:
        store.ingest_result(result, circuit=circuit, config=config)
    return path, config


def test_incremental_job_matches_scratch(daemon, s27_store):
    """An incremental_from job returns the exact from-scratch campaign."""
    from repro.circuit.bench import write_bench
    from repro.circuit.gates import GateType
    from repro.core.flow import SequentialDelayATPG

    store_path, config = s27_store
    edited = load_circuit("s27")
    edited.add_gate("eco_obs", GateType.AND, list(edited.primary_inputs[:2]))
    edited.add_output("eco_obs")
    scratch = SequentialDelayATPG(edited.copy(), **config.atpg_kwargs()).run()

    _, client = daemon
    job_id = client.submit(
        {
            "bench": write_bench(edited),
            "name": "s27",
            "incremental_from": store_path,
            "jobs": 4,  # orchestration-only: ignored by the incremental path
        }
    )
    job = client.wait(job_id)
    assert job["status"] == "done", job
    body = client.result(job_id)
    assert body["cache_hit"] is False
    assert result_fingerprint(body["campaign"]) == result_fingerprint(
        scratch.to_json()
    )

    # The job's event stream records the reuse accounting.
    status, events = client.get(f"/jobs/{job_id}/events")
    assert status == 200
    (record,) = [e for e in events["events"] if e.get("type") == "incremental"]
    assert record["kept"] + record["invalidated"] == body["campaign"]["total_faults"]
    assert record["reused"] > 0

    # Bit-identity makes the result cacheable under the ordinary campaign
    # key: an equivalent from-scratch submission is a cache hit.
    rerun = client.submit({"bench": write_bench(edited), "name": "s27"})
    client.wait(rerun)
    assert client.result(rerun)["cache_hit"] is True


def test_incremental_job_mismatched_store_fails_cleanly(daemon, s27_store):
    """A spec whose settings have no stored base fails the job, not the daemon."""
    store_path, _ = s27_store
    _, client = daemon
    job_id = client.submit(
        {"circuit": "s27", "incremental_from": store_path, "robust": False}
    )
    job = client.wait(job_id)
    assert job["status"] == "failed"
    assert "no campaign" in job["error"]
    # the daemon is still serving
    assert client.get("/status")[0] == 200


def test_incremental_job_rejects_conflicting_flags(daemon, s27_store):
    store_path, _ = s27_store
    _, client = daemon
    status, body = client.post(
        "/jobs",
        {"circuit": "s27", "incremental_from": store_path, "rpg_prefix": True},
    )
    assert status == 400
    assert "rpg_prefix" in body["error"]
    status, body = client.post(
        "/jobs",
        {"circuit": "s27", "incremental_from": store_path, "time_limit_s": 1},
    )
    assert status == 400
    assert "time_limit_s" in body["error"]

"""Benchmark circuits.

The paper evaluates on the ISCAS'89 sequential benchmark suite.  ``s27`` is
embedded verbatim (its netlist is tiny and widely published); the remaining
circuits are *surrogates*: deterministically generated synchronous circuits
with the published interface statistics (primary inputs, primary outputs,
flip-flops) and comparable gate counts.  See DESIGN.md section 5 for why this
substitution preserves the behaviour the experiments exercise.
"""

from repro.data.iscas89 import (
    BenchmarkSpec,
    ISCAS89_SPECS,
    list_circuits,
    load_circuit,
    circuit_spec,
)
from repro.data.surrogate import generate_surrogate

__all__ = [
    "BenchmarkSpec",
    "ISCAS89_SPECS",
    "list_circuits",
    "load_circuit",
    "circuit_spec",
    "generate_surrogate",
]

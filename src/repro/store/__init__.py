"""Persistent campaign store and incremental ATPG.

Campaign results no longer die with the process: :mod:`repro.store.store`
persists per-fault outcomes, sequences, timings and cost records into a
stdlib-sqlite3 file (schema in :mod:`repro.store.schema`), with cross-
campaign analytics (coverage trends, cost outliers, backend ablations) as
plain SQL.  On top of it, :mod:`repro.store.incremental` re-runs a campaign
after a netlist edit by re-targeting only the faults inside the edit's
sequential influence cone — fingerprint-identical to a from-scratch run.

CLI surface: ``python -m repro store {ingest,query,report}``, plus
``--store`` / ``--incremental-from`` on ``python -m repro campaign`` and the
``incremental_from`` field of a service job.  The full schema and the
invalidation correctness argument live in ``docs/STORE.md``.
"""

from repro.store.incremental import (
    IncrementalOutcome,
    influence_cone,
    invalidate,
    run_incremental,
)
from repro.store.schema import SCHEMA_VERSION
from repro.store.store import BaseCampaign, CampaignStore, StoredFaultRecord

__all__ = [
    "BaseCampaign",
    "CampaignStore",
    "IncrementalOutcome",
    "SCHEMA_VERSION",
    "StoredFaultRecord",
    "influence_cone",
    "invalidate",
    "run_incremental",
]

"""Span-style phase tracing and per-fault cost attribution.

The span model mirrors the campaign's nesting:

* **campaign span** — one ``repro_phase_seconds{phase="campaign"}`` timer
  observation around :meth:`repro.core.flow.SequentialDelayATPG.run`;
* **prefix span** — ``phase="prefix"`` around the random-pattern prefix;
* **fault span** (:class:`FaultSpan`) — one per targeted fault, emitting a
  ``repro_fault_seconds`` histogram observation, the
  ``repro_faults_total{status=...}`` / ``repro_fault_aborts_total{phase=...}``
  counters, and a :class:`FaultCost` record that attributes the fault's
  decisions, backtracks, implication sweeps, wavefront skips and simulated
  gate-words by *deltaing* the registry's counters around the targeting
  call;
* **engine spans** — ``phase="tdgen"/"propagation"/"justification"/
  "synchronization"/"tdsim"/"verify"`` timers inside the flow's attempt
  loop (plain :meth:`MetricsRegistry.timed` context managers).

:class:`FaultCost` records are deterministic (pure counter deltas of a
single-threaded targeting call), so the orchestrator can re-fold worker
shard costs in enumeration order (:func:`fold_cost`) and reproduce the
exact counters a serial campaign would have accumulated — the basis of the
"identical aggregates for any ``--jobs``" guarantee.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from .metrics import MetricsRegistry

#: Counters folded back into a registry by :func:`fold_cost`, keyed by the
#: :class:`FaultCost` field carrying the per-fault delta.
_FOLDED_FIELDS = {
    "decisions": "repro_decisions_total",
    "implication_sweeps": "repro_implication_sweeps_total",
    "wavefront_skipped": "repro_wavefront_gates_skipped_total",
    "words_simulated": "repro_sim_gate_words_total",
}


@dataclass
class FaultCost:
    """The attributable cost of targeting one fault.

    All integer fields are exact counter deltas of the targeting call and
    therefore deterministic for a given (circuit, settings, fault) triple;
    ``seconds`` is wall clock and is not.
    """

    fault: str
    status: str
    phase: str
    seconds: float
    attempts: int
    local_backtracks: int
    sequential_backtracks: int
    decisions: int
    implication_sweeps: int
    wavefront_skipped: int
    words_simulated: int
    engine: str

    def to_json(self) -> Dict[str, object]:
        """JSON-serialisable form (see :meth:`from_json`)."""
        return {
            "fault": self.fault,
            "status": self.status,
            "phase": self.phase,
            "seconds": round(self.seconds, 9),
            "attempts": self.attempts,
            "local_backtracks": self.local_backtracks,
            "sequential_backtracks": self.sequential_backtracks,
            "decisions": self.decisions,
            "implication_sweeps": self.implication_sweeps,
            "wavefront_skipped": self.wavefront_skipped,
            "words_simulated": self.words_simulated,
            "engine": self.engine,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "FaultCost":
        """Rebuild a cost record from its :meth:`to_json` form."""
        return cls(
            fault=str(payload["fault"]),
            status=str(payload["status"]),
            phase=str(payload["phase"]),
            seconds=float(payload["seconds"]),
            attempts=int(payload["attempts"]),
            local_backtracks=int(payload["local_backtracks"]),
            sequential_backtracks=int(payload["sequential_backtracks"]),
            decisions=int(payload["decisions"]),
            implication_sweeps=int(payload["implication_sweeps"]),
            wavefront_skipped=int(payload["wavefront_skipped"]),
            words_simulated=int(payload["words_simulated"]),
            engine=str(payload["engine"]),
        )


class FaultSpan:
    """Delta-captures one fault's cost out of a live registry.

    Open the span before targeting (records counter baselines and the
    clock), call :meth:`finish` with the :class:`~repro.core.results.FaultResult`
    afterwards: the span emits the fault-level metrics and returns the
    :class:`FaultCost` delta record.
    """

    __slots__ = ("_registry", "_fault", "_engine", "_start", "_base")

    def __init__(self, registry: MetricsRegistry, fault: object, engine: str) -> None:
        self._registry = registry
        self._fault = str(fault)
        self._engine = engine
        self._base = {
            field: registry.counter_sum(name)
            for field, name in _FOLDED_FIELDS.items()
        }
        self._start = time.perf_counter()

    def finish(self, result: object) -> FaultCost:
        """Close the span against the fault's result and emit its metrics."""
        seconds = time.perf_counter() - self._start
        registry = self._registry
        status = result.status.value
        phase = result.phase.value
        registry.inc("repro_faults_total", status=status)
        if status == "aborted":
            registry.inc("repro_fault_aborts_total", phase=phase)
        registry.observe_value("repro_fault_seconds", seconds)
        if result.local_backtracks:
            registry.inc(
                "repro_backtracks_total", result.local_backtracks, engine="tdgen"
            )
        if result.sequential_backtracks:
            registry.inc(
                "repro_backtracks_total",
                result.sequential_backtracks,
                engine="semilet",
            )
        deltas = {
            field: int(registry.counter_sum(name) - self._base[field])
            for field, name in _FOLDED_FIELDS.items()
        }
        return FaultCost(
            fault=self._fault,
            status=status,
            phase=phase,
            seconds=seconds,
            attempts=result.attempts,
            local_backtracks=result.local_backtracks,
            sequential_backtracks=result.sequential_backtracks,
            engine=self._engine,
            **deltas,
        )


def fold_cost(registry: MetricsRegistry, cost: FaultCost) -> None:
    """Replay one fault's deterministic cost deltas into ``registry``.

    The orchestrator's replay merge calls this once per *credited* fault,
    in fault-enumeration order, so the merged registry carries exactly the
    integer counters a serial campaign over the same credited set would
    have accumulated — independent of ``--jobs`` and partitioning.  Label
    breakdowns (per-site sweeps, per-engine backtracks) are collapsed into
    the unlabelled total here because :class:`FaultCost` stores deltas of
    :meth:`~repro.obs.metrics.MetricsRegistry.counter_sum`.
    """
    registry.inc("repro_faults_total", status=cost.status)
    if cost.status == "aborted":
        registry.inc("repro_fault_aborts_total", phase=cost.phase)
    registry.observe_value("repro_fault_seconds", cost.seconds)
    for field, name in _FOLDED_FIELDS.items():
        amount = getattr(cost, field)
        if amount:
            registry.inc(name, amount)
    if cost.local_backtracks:
        registry.inc("repro_backtracks_total", cost.local_backtracks, engine="tdgen")
    if cost.sequential_backtracks:
        registry.inc(
            "repro_backtracks_total", cost.sequential_backtracks, engine="semilet"
        )


def deterministic_counters(registry: MetricsRegistry) -> Dict[str, int]:
    """The registry's integer counters that are jobs-invariant by contract.

    Wall-clock timers and histograms are excluded; labelled counters are
    collapsed to their unlabelled sums so serial registries (which emit
    per-site/per-engine labels) compare equal to replay-folded registries
    (which fold unlabelled totals).
    """
    names = (
        "repro_faults_total",
        "repro_fault_aborts_total",
        "repro_decisions_total",
        "repro_backtracks_total",
        "repro_implication_sweeps_total",
        "repro_wavefront_gates_skipped_total",
        "repro_sim_gate_words_total",
        "repro_prefix_sequences_total",
        "repro_prefix_candidates_total",
        "repro_prefix_detections_total",
    )
    return {name: int(registry.counter_sum(name)) for name in names}

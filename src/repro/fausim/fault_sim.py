"""Propagation-phase fault simulation (second phase of the paper's section 5).

At the end of the fast clock frame the delay fault effect, if provoked, sits
in the state register: one or more pseudo primary outputs latched the faulty
value.  During the propagation frames only slow clocks are applied, so the
machine itself is fault free; the fault effect behaves exactly like a stuck-at
fault injected once at the observation point (the PPO) and then carried along
by the good machine dynamics.

:class:`PropagationFaultSimulator` therefore simulates the good machine and a
faulty machine that differs only in the initial value of the candidate PPO,
and reports in which frame (if any) the difference becomes visible at a
primary output.

With ``backend="packed"`` the many-candidate query
(:meth:`PropagationFaultSimulator.observability_map`) packs one faulty
machine per pattern slot, so all candidate state bits are fault simulated in
one bit-parallel pass per frame instead of one full sequential simulation per
candidate.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.circuit.netlist import Circuit
from repro.fausim.backends import create_simulator
from repro.fausim.logic_sim import SignalValues
from repro.fausim.packed_sim import PackedLogicSimulator, pack_column


@dataclasses.dataclass
class PPOObservability:
    """Observability of a fault effect captured at one pseudo primary output."""

    ppi: str
    observable: bool
    frame: Optional[int] = None
    primary_output: Optional[str] = None

    def __bool__(self) -> bool:
        return self.observable


class PropagationFaultSimulator:
    """Check which captured fault effects reach a primary output.

    Args:
        circuit: the circuit under test.
        propagation_vectors: the input vectors of the propagation phase (slow
            clock frames after the fast test frame).
        backend: simulation backend name (see :mod:`repro.fausim.backends`);
            ``None`` selects the process default.
    """

    def __init__(
        self,
        circuit: Circuit,
        propagation_vectors: Sequence[SignalValues],
        backend: Optional[str] = None,
    ) -> None:
        self.circuit = circuit
        self.vectors = list(propagation_vectors)
        self._simulator = create_simulator(circuit, backend)

    def observability(
        self,
        good_state: SignalValues,
        ppi: str,
        faulty_value: Optional[int] = None,
    ) -> PPOObservability:
        """Determine whether a fault effect captured in ``ppi`` reaches a PO.

        Args:
            good_state: good-machine state right after the fast frame (value per
                PPI; missing entries are X).
            ppi: the state bit (flip-flop output) that captured the fault effect.
            faulty_value: value of that bit in the faulty machine.  Defaults to
                the complement of the good value; if the good value is unknown
                the effect cannot be credited and the result is unobservable.

        The check is conservative: a difference only counts when the good
        machine output value is binary (not X) and provably differs from the
        faulty machine output value.
        """
        good_value = good_state.get(ppi)
        if faulty_value is None:
            if good_value is None:
                return PPOObservability(ppi=ppi, observable=False)
            faulty_value = 1 - good_value
        if good_value is not None and faulty_value == good_value:
            return PPOObservability(ppi=ppi, observable=False)

        faulty_state = dict(good_state)
        faulty_state[ppi] = faulty_value

        good = dict(good_state)
        faulty = faulty_state
        for frame_index, vector in enumerate(self.vectors):
            good_frame = self._simulator.clock(vector, good)
            faulty_frame = self._simulator.clock(vector, faulty)
            for po in self.circuit.primary_outputs:
                good_po = good_frame.values[po]
                faulty_po = faulty_frame.values[po]
                if good_po is not None and faulty_po is not None and good_po != faulty_po:
                    return PPOObservability(
                        ppi=ppi, observable=True, frame=frame_index, primary_output=po
                    )
            good = good_frame.next_state
            faulty = faulty_frame.next_state
        return PPOObservability(ppi=ppi, observable=False)

    def observability_map(
        self,
        good_state: SignalValues,
        candidate_ppis: Sequence[str],
    ) -> Dict[str, PPOObservability]:
        """Observability of every candidate PPI under the stored vectors.

        With the packed backend all candidates share one bit-parallel faulty
        machine simulation (one pattern slot per candidate); the result is
        bit-exact with running :meth:`observability` per candidate.
        """
        if isinstance(self._simulator, PackedLogicSimulator) and len(candidate_ppis) > 1:
            return self._observability_map_packed(good_state, candidate_ppis)
        return {ppi: self.observability(good_state, ppi) for ppi in candidate_ppis}

    def _observability_map_packed(
        self,
        good_state: SignalValues,
        candidate_ppis: Sequence[str],
    ) -> Dict[str, PPOObservability]:
        """One faulty machine per pattern slot, all frames bit-parallel."""
        results: Dict[str, PPOObservability] = {}
        slots: List[str] = []
        for ppi in candidate_ppis:
            if good_state.get(ppi) is None:
                # An unknown good value can never be credited (the default
                # faulty value is the complement of the good one).
                results[ppi] = PPOObservability(ppi=ppi, observable=False)
            else:
                slots.append(ppi)
        if not slots:
            return results

        simulator = self._simulator
        ppis = self.circuit.pseudo_primary_inputs
        width = len(slots)
        # The good machine occupies one extra slot, so chunk one below the
        # word width to keep every plane on single-word integers.
        chunk_width = max(1, simulator.word_bits - 1)
        if width > chunk_width:
            for start in range(0, width, chunk_width):
                results.update(
                    self._observability_map_packed(good_state, slots[start : start + chunk_width])
                )
            return results

        # The good machine rides in pattern slot 0 of the same planes, so one
        # evaluation pass per frame simulates it together with all faulty
        # machines; faulty machine j (good state with its candidate bit
        # flipped) occupies slot j + 1.
        total_width = width + 1
        state_zero: List[int] = []
        state_one: List[int] = []
        for ppi in ppis:
            good_value = good_state.get(ppi)
            column = [good_value]
            for slot_ppi in slots:
                if ppi == slot_ppi:
                    column.append(1 - good_value if good_value is not None else None)
                else:
                    column.append(good_value)
            zero, one = pack_column(column)
            state_zero.append(zero)
            state_one.append(one)

        observed_mask = 0
        all_mask = ((1 << width) - 1) << 1
        compiled = simulator.compiled
        for frame_index, vector in enumerate(self.vectors):
            planes = simulator.load_broadcast_planes(
                vector, state_zero, state_one, total_width
            )
            simulator.evaluate_planes(planes)

            for po in self.circuit.primary_outputs:
                po_slot = compiled.slot_of[po]
                # A provable difference needs a binary faulty value on the
                # opposite plane of the binary good value (slot 0).
                if planes.one[po_slot] & 1:
                    diff = planes.zero[po_slot]
                elif planes.zero[po_slot] & 1:
                    diff = planes.one[po_slot]
                else:
                    continue
                fresh = diff & all_mask & ~observed_mask
                if not fresh:
                    continue
                for index, ppi in enumerate(slots):
                    if fresh & (1 << (index + 1)):
                        results[ppi] = PPOObservability(
                            ppi=ppi, observable=True, frame=frame_index, primary_output=po
                        )
                observed_mask |= fresh
            if observed_mask == all_mask:
                break

            state_zero, state_one = simulator.next_state_planes(planes)

        for ppi in slots:
            results.setdefault(ppi, PPOObservability(ppi=ppi, observable=False))
        return results

    def state_trace(self, state: SignalValues) -> List[SignalValues]:
        """Good-machine state after each propagation frame (for diagnostics)."""
        trace: List[SignalValues] = []
        current = dict(state)
        for vector in self.vectors:
            frame = self._simulator.clock(vector, current)
            current = frame.next_state
            trace.append(dict(current))
        return trace

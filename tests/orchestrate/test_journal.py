"""Tests of the JSONL campaign journal: write, read, torn tails, segments."""

import json

import pytest

from repro.orchestrate.journal import (
    CampaignJournal,
    campaign_digest,
    load_segments,
    read_journal,
)


def _header(circuit="s27", digest="abc"):
    return {"type": "campaign", "circuit": circuit, "digest": digest}


def test_append_and_read_round_trip(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    with CampaignJournal(path) as journal:
        journal.append(_header())
        journal.append({"type": "fault", "index": 3, "worker": 0, "result": {}, "detections": []})
        journal.append({"type": "drop", "index": 4, "worker": 1, "by": 3})
    records = read_journal(path)
    assert [record["type"] for record in records] == ["campaign", "fault", "drop"]


def test_closed_journal_refuses_appends(tmp_path):
    journal = CampaignJournal(str(tmp_path / "journal.jsonl"))
    journal.close()
    with pytest.raises(ValueError):
        journal.append(_header())


def test_read_tolerates_torn_final_line_only(tmp_path):
    path = tmp_path / "journal.jsonl"
    path.write_text(json.dumps(_header()) + "\n" + '{"type": "fault", "ind')
    records = read_journal(str(path))
    assert len(records) == 1

    path.write_text('{"torn' + "\n" + json.dumps(_header()) + "\n")
    with pytest.raises(ValueError):
        read_journal(str(path))


def test_reopening_truncates_torn_tail(tmp_path):
    """A resume must cut the torn fragment, or it corrupts the next record."""
    path = tmp_path / "journal.jsonl"
    path.write_text(json.dumps(_header()) + "\n" + '{"type": "fault", "ind')
    with CampaignJournal(str(path)) as journal:
        journal.append({"type": "drop", "index": 1, "worker": 0, "by": 0})
    records = read_journal(str(path))
    assert [record["type"] for record in records] == ["campaign", "drop"]


def test_segments_merge_resumed_runs(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    with CampaignJournal(path) as journal:
        journal.append(_header("s27", "d1"))
        journal.append({"type": "fault", "index": 0, "worker": 0, "result": {}, "detections": []})
        journal.append(_header("s386", "d2"))
        journal.append({"type": "fault", "index": 5, "worker": 0, "result": {}, "detections": []})
        # Resumed run of s27 appends a fresh header plus more records.
        journal.append(_header("s27", "d1"))
        journal.append({"type": "fault", "index": 1, "worker": 1, "result": {}, "detections": []})
        journal.append({"type": "result", "circuit": "s27", "campaign": {}})
    segments = load_segments(path)
    assert set(segments) == {"s27", "s386"}
    assert segments["s27"].completed_indices == [0, 1]
    assert segments["s27"].final is not None
    assert segments["s386"].completed_indices == [5]
    assert segments["s386"].final is None


def test_segments_reject_digest_change(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    with CampaignJournal(path) as journal:
        journal.append(_header("s27", "d1"))
        journal.append(_header("s27", "DIFFERENT"))
    with pytest.raises(ValueError):
        load_segments(path)


def test_records_before_header_are_rejected(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    with CampaignJournal(path) as journal:
        journal.append({"type": "fault", "index": 0, "worker": 0, "result": {}, "detections": []})
    with pytest.raises(ValueError):
        load_segments(path)


def test_digest_tracks_circuit_config_and_universe(s27):
    from repro.faults.model import enumerate_delay_faults

    faults = enumerate_delay_faults(s27)
    base = campaign_digest("s27", {"robust": True}, faults)
    assert base == campaign_digest("s27", {"robust": True}, faults)
    assert base != campaign_digest("s298", {"robust": True}, faults)
    assert base != campaign_digest("s27", {"robust": False}, faults)
    assert base != campaign_digest("s27", {"robust": True}, faults[:-1])
    assert base != campaign_digest("s27", {"robust": True}, list(reversed(faults)))


def test_digest_ignores_backend():
    """Backends are bit-exact, so the digest must not pin one.

    Regression test: ``OrchestratorConfig.digest_payload`` used to include
    the resolved backend, wrongly blocking a cross-backend ``--resume`` even
    though every backend produces identical per-fault results.
    """
    from repro.orchestrate.coordinator import OrchestratorConfig

    payloads = {
        backend: OrchestratorConfig(backend=backend).digest_payload()
        for backend in (None, "packed", "bigint", "numpy", "reference")
    }
    reference = payloads[None]
    for backend, payload in payloads.items():
        assert payload == reference, f"digest payload differs for {backend}"
    assert "backend" not in reference

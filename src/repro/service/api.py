"""Minimal HTTP/1.1 JSON layer of the ATPG daemon.

Hand-rolled on ``asyncio`` streams — the stdlib ships no async HTTP server
and the repo takes no new dependencies — and deliberately small: every
response is JSON, every connection is ``Connection: close``, bodies are
bounded, and malformed requests map to 4xx JSON errors instead of dropped
connections.  The request surface is documented in ``docs/SERVICE.md``.

Routing is a plain table of ``(method, pattern)`` pairs where a pattern
segment like ``{id}`` captures one path segment::

    router.add("GET", "/jobs/{id}/result", handler)

Handlers are ``async def handler(request, **captures)`` returning either a
``(status, payload)`` pair or a :class:`StreamResponse` for endpoints that
stream NDJSON progress records.
"""

from __future__ import annotations

import asyncio
import json
import urllib.parse
from typing import AsyncIterator, Callable, Dict, List, Optional, Tuple

#: Upper bound on request bodies (a large .bench is ~100 bytes per gate, so
#: 8 MiB comfortably covers s38417-class netlists).
MAX_BODY_BYTES = 8 * 1024 * 1024
#: Upper bound on the request line + each header line.
MAX_LINE_BYTES = 64 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ApiError(Exception):
    """An error response: HTTP status plus a JSON ``error`` message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class Request:
    """One parsed HTTP request."""

    def __init__(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        headers: Dict[str, str],
        body: bytes,
    ) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body

    def json(self) -> object:
        """The request body parsed as JSON; raises :class:`ApiError` (400)."""
        if not self.body:
            raise ApiError(400, "request body must be JSON (got an empty body)")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ApiError(400, f"request body is not valid JSON: {exc}") from None

    def query_int(self, name: str, default: int) -> int:
        """An integer query parameter; raises :class:`ApiError` (400)."""
        raw = self.query.get(name)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError:
            raise ApiError(400, f"query parameter {name!r} must be an integer") from None


class TextResponse:
    """A complete plain-text response (the Prometheus exposition format).

    Handlers return one of these instead of a ``(status, payload)`` pair
    when the body is not JSON; ``content_type`` defaults to the Prometheus
    text exposition version 0.0.4.
    """

    def __init__(
        self,
        body: str,
        status: int = 200,
        content_type: str = "text/plain; version=0.0.4; charset=utf-8",
    ) -> None:
        self.body = body
        self.status = status
        self.content_type = content_type


class StreamResponse:
    """An EOF-terminated NDJSON streaming response.

    The daemon answers streams with ``Connection: close`` and no
    ``Content-Length``; each item of ``records`` is written as one JSON line
    and flushed immediately, so a client following a running campaign sees
    every per-fault record as it happens.
    """

    def __init__(self, records: AsyncIterator[Dict[str, object]]) -> None:
        self.records = records


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the stream; None when the peer closed cleanly."""
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ApiError(400, "truncated request line") from None
    except asyncio.LimitOverrunError:
        raise ApiError(400, "request line too long") from None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise ApiError(400, "malformed request line")
    method, target = parts[0].upper(), parts[1]

    headers: Dict[str, str] = {}
    while True:
        try:
            line = await reader.readuntil(b"\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise ApiError(400, "truncated request headers") from None
        text = line.decode("latin-1").strip()
        if not text:
            break
        name, sep, value = text.partition(":")
        if not sep:
            raise ApiError(400, f"malformed header line: {text!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise ApiError(400, "malformed Content-Length header") from None
        if length < 0:
            raise ApiError(400, "malformed Content-Length header")
        if length > MAX_BODY_BYTES:
            raise ApiError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length)
    elif headers.get("transfer-encoding", "").lower() == "chunked":
        raise ApiError(400, "chunked request bodies are not supported")

    parsed = urllib.parse.urlsplit(target)
    query = dict(urllib.parse.parse_qsl(parsed.query, keep_blank_values=True))
    return Request(method, parsed.path, query, headers, body)


def _head(status: int, extra: str = "") -> bytes:
    reason = _REASONS.get(status, "Unknown")
    return (
        f"HTTP/1.1 {status} {reason}\r\n"
        "Server: repro-atpg\r\n"
        "Connection: close\r\n"
        f"{extra}"
    ).encode("latin-1")


async def write_json(
    writer: asyncio.StreamWriter, status: int, payload: object
) -> None:
    """Send one complete JSON response."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    writer.write(
        _head(
            status,
            f"Content-Type: application/json\r\nContent-Length: {len(body)}\r\n\r\n",
        )
    )
    writer.write(body)
    await writer.drain()


async def write_text(
    writer: asyncio.StreamWriter, response: TextResponse
) -> None:
    """Send one complete plain-text response."""
    body = response.body.encode("utf-8")
    writer.write(
        _head(
            response.status,
            f"Content-Type: {response.content_type}\r\n"
            f"Content-Length: {len(body)}\r\n\r\n",
        )
    )
    writer.write(body)
    await writer.drain()


async def write_stream(
    writer: asyncio.StreamWriter, response: StreamResponse
) -> None:
    """Send an NDJSON stream, flushing record by record, EOF-terminated."""
    writer.write(_head(200, "Content-Type: application/x-ndjson\r\n\r\n"))
    await writer.drain()
    async for record in response.records:
        writer.write((json.dumps(record, sort_keys=True) + "\n").encode("utf-8"))
        await writer.drain()


Handler = Callable[..., object]


class Router:
    """Method + path-pattern dispatch table."""

    def __init__(self) -> None:
        self._routes: List[Tuple[str, Tuple[str, ...], Handler]] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        """Register ``handler`` for ``method`` on ``pattern``."""
        self._routes.append((method.upper(), tuple(pattern.strip("/").split("/")), handler))

    def resolve(self, method: str, path: str) -> Tuple[Handler, Dict[str, str]]:
        """The handler and captures for a request; raises 404/405 ApiError."""
        segments = tuple(segment for segment in path.strip("/").split("/") if segment != "")
        path_matched = False
        for route_method, route_segments, handler in self._routes:
            captures = _match(route_segments, segments)
            if captures is None:
                continue
            path_matched = True
            if route_method == method:
                return handler, captures
        if path_matched:
            raise ApiError(405, f"method {method} is not allowed on {path}")
        raise ApiError(404, f"no such endpoint: {path}")


def _match(
    pattern: Tuple[str, ...], segments: Tuple[str, ...]
) -> Optional[Dict[str, str]]:
    """Match one route pattern against path segments, capturing ``{name}``s."""
    if pattern == ("",):
        pattern = ()
    if len(pattern) != len(segments):
        return None
    captures: Dict[str, str] = {}
    for expected, actual in zip(pattern, segments):
        if expected.startswith("{") and expected.endswith("}"):
            captures[expected[1:-1]] = urllib.parse.unquote(actual)
        elif expected != actual:
            return None
    return captures


async def handle_connection(
    router: Router, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    """Serve one connection: parse, route, respond, close."""
    try:
        try:
            request = await read_request(reader)
            if request is None:
                return
            handler, captures = router.resolve(request.method, request.path)
            response = await handler(request, **captures)
        except ApiError as exc:
            await write_json(writer, exc.status, {"error": exc.message})
            return
        except (ConnectionError, asyncio.IncompleteReadError):
            return
        except Exception as exc:  # noqa: BLE001 - any handler bug -> 500, not a hang
            await write_json(writer, 500, {"error": f"{type(exc).__name__}: {exc}"})
            return
        if isinstance(response, StreamResponse):
            await write_stream(writer, response)
        elif isinstance(response, TextResponse):
            await write_text(writer, response)
        else:
            status, payload = response
            await write_json(writer, status, payload)
    except (ConnectionError, asyncio.CancelledError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

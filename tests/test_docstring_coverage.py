"""Docstring-coverage gate for ``src/repro/`` (interrogate-equivalent).

The multi-backend architecture only stays navigable if every module says
what it is and every public object says what it does.  This gate walks the
package with :mod:`ast` (no third-party dependency, so it runs in the plain
tier-1 environment) and fails listing every offender:

* **every module** — including every package ``__init__.py`` — must have a
  module docstring;
* **every public class, function and method** (name not starting with an
  underscore; dunders exempt) must have a docstring;
* **every public module that exposes a ``backend`` parameter** (on a public
  function or a public class's ``__init__``/methods) must *name* that
  parameter in its module docstring — the multi-backend dispatch is only
  discoverable if each entry layer says it participates.

It is the CI docstring gate: the tier-1 workflow runs it on every push.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Tuple

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def _iter_modules() -> Iterator[Path]:
    yield from sorted(SRC_ROOT.rglob("*.py"))


def _public_defs(
    tree: ast.Module, module: str
) -> Iterator[Tuple[str, ast.AST]]:
    """Public classes, functions and methods of a parsed module."""

    def walk(node: ast.AST, prefix: str) -> Iterator[Tuple[str, ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                name = child.name
                if name.startswith("_"):
                    continue  # private helpers and dunders are exempt
                qualified = f"{prefix}.{name}"
                yield qualified, child
                if isinstance(child, ast.ClassDef):
                    yield from walk(child, qualified)

    yield from walk(tree, module)


def _module_name(path: Path) -> str:
    relative = path.relative_to(SRC_ROOT.parent)
    parts = list(relative.with_suffix("").parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def test_every_module_has_a_docstring():
    missing: List[str] = []
    for path in _iter_modules():
        tree = ast.parse(path.read_text(encoding="utf-8"))
        if not ast.get_docstring(tree):
            missing.append(_module_name(path))
    assert not missing, "modules without a docstring: " + ", ".join(missing)


def test_every_public_object_has_a_docstring():
    missing: List[str] = []
    total = 0
    for path in _iter_modules():
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for qualified, node in _public_defs(tree, _module_name(path)):
            total += 1
            if not ast.get_docstring(node):
                missing.append(qualified)
    coverage = 100.0 * (total - len(missing)) / max(total, 1)
    assert not missing, (
        f"docstring coverage {coverage:.1f}% ({len(missing)}/{total} public "
        "objects undocumented): " + ", ".join(missing)
    )


def _module_exposes_backend_parameter(tree: ast.Module) -> bool:
    """True when a public function or public class method takes ``backend``."""

    def walk(node: ast.AST, public: bool) -> bool:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                is_public = public and (
                    not child.name.startswith("_") or child.name == "__init__"
                )
                if is_public:
                    arguments = child.args
                    names = [a.arg for a in arguments.args + arguments.kwonlyargs]
                    if "backend" in names:
                        return True
            elif isinstance(child, ast.ClassDef):
                if public and not child.name.startswith("_") and walk(child, True):
                    return True
        return False

    return walk(tree, True)


def test_backend_modules_name_the_parameter():
    """Modules with a public ``backend`` parameter must say so up front.

    The dispatch between the ``packed`` and ``reference`` implementations
    is spread over several layers (simulators, implication engines, search
    kernels); every module that participates must mention ``backend`` in
    its module docstring so the coupling stays discoverable.
    """
    offenders: List[str] = []
    participating = 0
    for path in _iter_modules():
        tree = ast.parse(path.read_text(encoding="utf-8"))
        if not _module_exposes_backend_parameter(tree):
            continue
        participating += 1
        docstring = ast.get_docstring(tree) or ""
        if "backend" not in docstring.lower():
            offenders.append(_module_name(path))
    assert participating >= 10, "backend-parameter scan looks wrong"
    assert not offenders, (
        "modules exposing a backend parameter without naming it in their "
        "module docstring: " + ", ".join(offenders)
    )


def test_gate_actually_scans_the_package():
    """Guard against the gate silently passing on an empty scan."""
    modules = list(_iter_modules())
    assert len(modules) > 30, "src/repro scan looks wrong"
    assert any(path.name == "__init__.py" for path in modules)

"""SQLite schema of the persistent campaign store.

The store is a single ``sqlite3`` file (stdlib only — no Parquet/DuckDB
dependency) holding normalized, columnar tables for everything a campaign
produces:

``campaigns``
    One row per finished (or partially journaled) campaign: circuit name,
    netlist digest, config digest, the full config payload, the canonical
    ``.bench`` text of the netlist, the Table-3 counters, the random-pattern
    prefix statistics and provenance (backend, seed, source, ingest time).

``faults``
    The enumerated fault universe of the campaign, in enumeration order.
    Stored explicitly so the config digest can be re-verified offline and so
    the incremental engine can compare universes without re-deriving them.

``results``
    Per-fault outcomes in crediting order: status, phase, backtrack/attempt
    counters, a foreign key into ``sequences`` and the TDsim detection list.

``sequences``
    Test sequences as JSON vectors — one row per generated sequence (kind
    ``fault``) or random-pattern prefix sequence (kind ``prefix``).

``costs``
    Per-fault cost records from :mod:`repro.obs` (decisions, implication
    sweeps, words simulated, ...), when the producing campaign collected
    metrics.

``timings``
    Named wall-clock measurements (always ``cpu_seconds``; callers may add
    phase timings).

Connections are opened in WAL mode with a generous busy timeout so several
writers (CLI runs, service jobs, test threads) can ingest into one store
file concurrently; every ingest is a single transaction.
"""

from __future__ import annotations

import sqlite3

#: Bumped whenever the DDL below changes incompatibly.  A store created by a
#: different schema version is rejected instead of silently misread.
SCHEMA_VERSION = 1

_DDL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS campaigns (
    id                     INTEGER PRIMARY KEY AUTOINCREMENT,
    circuit                TEXT NOT NULL,
    net_digest             TEXT,
    config_digest          TEXT NOT NULL,
    config_json            TEXT,
    bench                  TEXT,
    backend                TEXT,
    robust                 INTEGER,
    campaign_seed          INTEGER,
    rpg_prefix             INTEGER NOT NULL DEFAULT 0,
    rpg_budget             INTEGER,
    rpg_window             INTEGER,
    total_faults           INTEGER NOT NULL,
    tested                 INTEGER NOT NULL,
    untestable             INTEGER NOT NULL,
    aborted                INTEGER NOT NULL,
    pattern_count          INTEGER NOT NULL,
    cpu_seconds            REAL NOT NULL,
    untestable_local       INTEGER NOT NULL,
    untestable_sequential  INTEGER NOT NULL,
    aborted_local          INTEGER NOT NULL,
    aborted_sequential     INTEGER NOT NULL,
    targeted               INTEGER NOT NULL,
    detected_by_simulation INTEGER NOT NULL,
    prefix_applied         INTEGER NOT NULL,
    prefix_detected        INTEGER NOT NULL,
    prefix_stop_reason     TEXT,
    source                 TEXT NOT NULL,
    partial                INTEGER NOT NULL DEFAULT 0,
    created_at             REAL NOT NULL
);

CREATE TABLE IF NOT EXISTS faults (
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id) ON DELETE CASCADE,
    idx         INTEGER NOT NULL,
    fault       TEXT NOT NULL,
    fault_json  TEXT NOT NULL,
    PRIMARY KEY (campaign_id, idx)
);

CREATE TABLE IF NOT EXISTS sequences (
    id            INTEGER PRIMARY KEY AUTOINCREMENT,
    campaign_id   INTEGER NOT NULL REFERENCES campaigns(id) ON DELETE CASCADE,
    kind          TEXT NOT NULL CHECK (kind IN ('fault', 'prefix')),
    ordinal       INTEGER NOT NULL,
    fault         TEXT,
    pattern_count INTEGER NOT NULL,
    sequence_json TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS results (
    campaign_id           INTEGER NOT NULL REFERENCES campaigns(id) ON DELETE CASCADE,
    ordinal               INTEGER NOT NULL,
    fault                 TEXT NOT NULL,
    fault_json            TEXT NOT NULL,
    status                TEXT NOT NULL,
    phase                 TEXT NOT NULL,
    sequence_id           INTEGER REFERENCES sequences(id),
    attempts              INTEGER NOT NULL,
    local_backtracks      INTEGER NOT NULL,
    sequential_backtracks INTEGER NOT NULL,
    detections_json       TEXT NOT NULL,
    PRIMARY KEY (campaign_id, ordinal)
);

CREATE TABLE IF NOT EXISTS costs (
    campaign_id           INTEGER NOT NULL REFERENCES campaigns(id) ON DELETE CASCADE,
    ordinal               INTEGER NOT NULL,
    fault                 TEXT NOT NULL,
    status                TEXT NOT NULL,
    phase                 TEXT NOT NULL,
    seconds               REAL NOT NULL,
    attempts              INTEGER NOT NULL,
    local_backtracks      INTEGER NOT NULL,
    sequential_backtracks INTEGER NOT NULL,
    decisions             INTEGER NOT NULL,
    implication_sweeps    INTEGER NOT NULL,
    wavefront_skipped     INTEGER NOT NULL,
    words_simulated       INTEGER NOT NULL,
    engine                TEXT NOT NULL,
    PRIMARY KEY (campaign_id, ordinal)
);

CREATE TABLE IF NOT EXISTS timings (
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id) ON DELETE CASCADE,
    name        TEXT NOT NULL,
    seconds     REAL NOT NULL,
    PRIMARY KEY (campaign_id, name)
);

CREATE INDEX IF NOT EXISTS idx_campaigns_circuit ON campaigns(circuit);
CREATE INDEX IF NOT EXISTS idx_campaigns_config ON campaigns(config_json);
CREATE INDEX IF NOT EXISTS idx_results_fault ON results(campaign_id, fault);
CREATE INDEX IF NOT EXISTS idx_costs_seconds ON costs(seconds);
"""


def connect(path: str) -> sqlite3.Connection:
    """Open (and if necessary create) a campaign store database.

    The connection is configured for concurrent writers: WAL journal mode, a
    30-second busy timeout and foreign keys on.  ``check_same_thread`` is
    disabled because the service executes campaigns on a worker thread; the
    store itself serialises access per connection.
    """
    conn = sqlite3.connect(path, timeout=30.0, check_same_thread=False)
    conn.row_factory = sqlite3.Row
    conn.execute("PRAGMA journal_mode=WAL")
    conn.execute("PRAGMA busy_timeout=30000")
    conn.execute("PRAGMA foreign_keys=ON")
    ensure_schema(conn)
    return conn


def ensure_schema(conn: sqlite3.Connection) -> None:
    """Create the schema if absent and verify the stored schema version."""
    with conn:
        conn.executescript(_DDL)
        # OR IGNORE: two fresh connections may race to stamp the version;
        # the loser's insert is a no-op and the re-read below verifies.
        conn.execute(
            "INSERT OR IGNORE INTO meta(key, value) VALUES ('schema_version', ?)",
            (str(SCHEMA_VERSION),),
        )
        row = conn.execute("SELECT value FROM meta WHERE key='schema_version'").fetchone()
        if int(row["value"]) != SCHEMA_VERSION:
            raise ValueError(
                f"campaign store schema version {row['value']} is not supported "
                f"(expected {SCHEMA_VERSION})"
            )

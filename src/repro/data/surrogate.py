"""Deterministic surrogate generator for ISCAS'89-like sequential circuits.

The original ISCAS'89 ``.bench`` files cannot be redistributed inside this
offline environment, so every circuit except ``s27`` is replaced by a
*surrogate*: a synchronous, single-clock circuit generated deterministically
from the published interface statistics (number of primary inputs, primary
outputs and flip-flops) and a comparable gate count.

Design choices that keep the surrogates representative of the real
benchmarks for the code paths the paper exercises:

* the gate mix is dominated by NAND/NOR/AND/OR/NOT (the ISCAS'89 primitive
  profile), with two-input gates most common;
* fanin is drawn with a bias towards recently created signals, which produces
  deep cones and reconvergent fanout — the structures that make robust delay
  testing and sequential propagation hard;
* a fraction of the flip-flops gets a "gated" next-state function
  (``AND``/``NOR`` with a dedicated primary input), so that part of the state
  is synchronisable with short sequences while the rest needs longer ones or
  is genuinely hard to initialise — mirroring the mix found in the real suite
  and producing the same qualitative Table 3 shape (many tested faults, a
  large sequentially-untestable fraction, some aborts);
* generation is fully deterministic for a given (name, statistics, seed), so
  every experiment is reproducible.
"""

from __future__ import annotations

import random
import zlib
from typing import List, Optional

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.circuit.validate import validate_circuit

_GATE_CHOICES = (
    (GateType.NAND, 28),
    (GateType.NOR, 22),
    (GateType.AND, 18),
    (GateType.OR, 14),
    (GateType.NOT, 12),
    (GateType.BUF, 3),
    (GateType.XOR, 3),
)

_FANIN_CHOICES = ((2, 55), (3, 22), (4, 8), (1, 15))


def _weighted_choice(rng: random.Random, choices) -> object:
    total = sum(weight for _, weight in choices)
    pick = rng.uniform(0, total)
    accumulated = 0.0
    for value, weight in choices:
        accumulated += weight
        if pick <= accumulated:
            return value
    return choices[-1][0]


def generate_surrogate(
    name: str,
    n_inputs: int,
    n_outputs: int,
    n_flip_flops: int,
    n_gates: int,
    seed: int = 0,
    synchronizable_fraction: float = 0.6,
) -> Circuit:
    """Generate a surrogate sequential benchmark circuit.

    Args:
        name: circuit name (used in reports).
        n_inputs / n_outputs / n_flip_flops: interface statistics to match.
        n_gates: approximate combinational gate count (the gating logic added
            for synchronisable flip-flops may add a few gates).
        seed: seed of the deterministic generator.
        synchronizable_fraction: fraction of flip-flops whose next-state logic
            is gated by a dedicated primary input, making them easy to force to
            a known value.
    """
    if n_inputs < 1 or n_outputs < 1 or n_flip_flops < 0 or n_gates < 1:
        raise ValueError("surrogate statistics must be positive")

    # zlib.crc32 rather than hash(): str hashing is randomised per process
    # (PYTHONHASHSEED), which would make "deterministic" surrogates differ
    # between runs.
    rng = random.Random((zlib.crc32(name.encode("utf-8")) & 0xFFFF) ^ (seed * 0x9E3779B1) ^ 0xC0FFEE)
    circuit = Circuit(name)

    inputs = [f"I{i}" for i in range(n_inputs)]
    for pi in inputs:
        circuit.add_input(pi)
    ppis = [f"FF{i}" for i in range(n_flip_flops)]

    # Signals usable as gate fanin.  PPIs are usable immediately even though
    # their DFFs are added at the end (the netlist is name based).
    pool: List[str] = list(inputs) + list(ppis)
    gate_outputs: List[str] = []

    def pick_sources(count: int) -> List[str]:
        sources: List[str] = []
        attempts = 0
        while len(sources) < count and attempts < 50:
            attempts += 1
            if gate_outputs and rng.random() < 0.45:
                # Mild bias towards recent signals: creates depth and
                # reconvergent fanout without making every cone pathologically
                # deep (real ISCAS'89 circuits are comparatively shallow).
                window = max(1, len(gate_outputs) // 2)
                candidate = gate_outputs[-rng.randint(1, window)]
            else:
                candidate = pool[rng.randrange(len(pool))]
            if candidate not in sources:
                sources.append(candidate)
        while len(sources) < count:
            candidate = pool[rng.randrange(len(pool))]
            if candidate not in sources or len(pool) <= count:
                sources.append(candidate)
        return sources

    for index in range(n_gates):
        gate_type = _weighted_choice(rng, _GATE_CHOICES)
        if gate_type in (GateType.NOT, GateType.BUF):
            fanin_count = 1
        else:
            fanin_count = _weighted_choice(rng, _FANIN_CHOICES)
            fanin_count = max(2, fanin_count)
        signal = f"N{index}"
        circuit.add_gate(signal, gate_type, pick_sources(fanin_count))
        gate_outputs.append(signal)
        pool.append(signal)

    # Next-state functions: pick distinct-ish gate outputs, optionally gated by
    # a dedicated control input so that a subset of the state is easy to set.
    extra_index = n_gates
    for ff_index, ppi in enumerate(ppis):
        base = gate_outputs[rng.randrange(len(gate_outputs))] if gate_outputs else inputs[0]
        if rng.random() < synchronizable_fraction:
            control = inputs[ff_index % len(inputs)]
            gate_type = GateType.AND if rng.random() < 0.5 else GateType.NOR
            data_signal = f"NS{extra_index}"
            extra_index += 1
            circuit.add_gate(data_signal, gate_type, [base, control])
            gate_outputs.append(data_signal)
            pool.append(data_signal)
        else:
            data_signal = base
        circuit.add_gate(ppi, GateType.DFF, [data_signal])

    # Primary outputs: drawn from the later two thirds of the netlist so that
    # observation points sit at a realistic mix of depths.
    candidates = gate_outputs[len(gate_outputs) // 3 :] or gate_outputs or inputs
    chosen: List[str] = []
    for po_index in range(n_outputs):
        candidate = candidates[rng.randrange(len(candidates))]
        attempts = 0
        while candidate in chosen and attempts < 20:
            candidate = gate_outputs[rng.randrange(len(gate_outputs))]
            attempts += 1
        if candidate in chosen:
            candidate = gate_outputs[(po_index * 7) % len(gate_outputs)]
        if candidate in chosen:
            # Create a buffer so the output name is unique.
            unique = f"PO{po_index}"
            circuit.add_gate(unique, GateType.BUF, [candidate])
            candidate = unique
        chosen.append(candidate)
        circuit.add_output(candidate)

    validate_circuit(circuit)
    return circuit

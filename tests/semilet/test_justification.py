"""Single-frame justification (building block of reverse time processing)."""

import pytest

from repro.fausim.logic_sim import simulate_combinational
from repro.semilet.justification import FrameJustifier


def _verify(circuit, objectives, result, fixed_ppis=None):
    """Objectives must hold when re-simulating the returned assignment."""
    state = dict(fixed_ppis or {})
    state.update(result.ppi_assignment)
    values = simulate_combinational(circuit, result.pi_assignment, state)
    for signal, target in objectives.items():
        assert values[signal] == target


def test_justify_simple_and(and_chain):
    justifier = FrameJustifier(and_chain)
    result = justifier.justify({"y": 1})
    assert result.success
    _verify(and_chain, {"y": 1}, result)


def test_justify_zero_output(and_chain):
    justifier = FrameJustifier(and_chain)
    result = justifier.justify({"y": 0})
    assert result.success
    _verify(and_chain, {"y": 0}, result)


def test_justify_multiple_objectives(and_chain):
    justifier = FrameJustifier(and_chain)
    result = justifier.justify({"ab": 1, "bc": 0})
    assert result.success
    _verify(and_chain, {"ab": 1, "bc": 0}, result)


def test_justify_impossible_objective():
    from repro.circuit.builder import CircuitBuilder

    builder = CircuitBuilder("const")
    builder.input("a")
    builder.xor("tie", ["a", "a"])  # constant 0
    builder.output("tie")
    circuit = builder.build()
    justifier = FrameJustifier(circuit)
    result = justifier.justify({"tie": 1})
    assert not result.success


def test_justify_prefers_primary_inputs_on_s27(s27):
    justifier = FrameJustifier(s27)
    # G11 = NOR(G5, G9) = 0 is justifiable with primary inputs alone
    # (G0=1, G3=0 force G9=1); the state requirement should stay empty.
    result = justifier.justify({"G11": 0})
    assert result.success
    _verify(s27, {"G11": 0}, result)
    assert result.ppi_assignment == {}


def test_justify_uses_ppis_when_needed(s27):
    justifier = FrameJustifier(s27)
    # G11 = 1 needs G5 = 0 and G9 = 0 (which in turn needs state help via G12/G8).
    result = justifier.justify({"G11": 1})
    assert result.success
    _verify(s27, {"G11": 1}, result)
    assert result.ppi_assignment  # some state requirement is unavoidable


def test_justify_without_ppi_decisions(s27):
    justifier = FrameJustifier(s27, decide_ppis=False)
    result = justifier.justify({"G11": 1})
    # Without control over the state this objective is not justifiable in one frame.
    assert not result.success


def test_fixed_ppis_are_respected(s27):
    justifier = FrameJustifier(s27)
    result = justifier.justify({"G11": 0}, fixed_ppis={"G5": 1})
    assert result.success
    assert "G5" not in result.ppi_assignment
    _verify(s27, {"G11": 0}, result, fixed_ppis={"G5": 1})


def test_fixed_pis_are_respected(s27):
    justifier = FrameJustifier(s27)
    result = justifier.justify({"G14": 1}, fixed_pis={"G0": 0})
    # G14 = NOT(G0) = 1 exactly when G0 = 0, which is already fixed.
    assert result.success
    assert "G0" not in result.pi_assignment


def test_conflicting_fixed_pis_fail(s27):
    justifier = FrameJustifier(s27)
    result = justifier.justify({"G14": 1}, fixed_pis={"G0": 1})
    assert not result.success


def test_justify_xor_objective(toggle_ff):
    justifier = FrameJustifier(toggle_ff)
    result = justifier.justify({"next_q": 1})
    assert result.success
    _verify(toggle_ff, {"next_q": 1}, result)


def test_backtrack_limit_reported():
    from repro.circuit.builder import CircuitBuilder

    builder = CircuitBuilder("wide")
    names = [f"i{k}" for k in range(6)]
    builder.inputs(names)
    builder.xor("p0", names[:2])
    builder.xor("p1", ["p0", names[2]])
    builder.xor("p2", ["p1", names[3]])
    builder.and_("mask", [names[4], names[5]])
    builder.and_("y", ["p2", "mask"])
    builder.output("y")
    circuit = builder.build()
    justifier = FrameJustifier(circuit, backtrack_limit=200)
    result = justifier.justify({"y": 1})
    assert result.success
    assert result.backtracks <= 200

"""Overhead gate of the instrumentation layer: metrics on vs off.

The observability contract (``docs/OBSERVABILITY.md``) has two halves, and
this benchmark gates both on the same workload as the hybrid benchmark — a
full-universe s838@0.5 surrogate campaign on the ``bigint`` tier under the
non-robust model:

* **no perturbation** — the metrics-on campaign must be fingerprint-
  identical to the metrics-off campaign (the registry only *observes*);
* **bounded overhead** — a live registry may cost at most **5%** wall
  clock over the null-registry run (instrumentation points fire at most
  once per simulation pass, never per gate).

Both legs run ``REPS`` times interleaved and compare their per-leg minima,
which suppresses the allocator/cache noise that dominates single-shot
Python timings.  Results land in ``BENCH_observability.json``.
"""

from __future__ import annotations

import time

from benchconfig import write_bench_results
from repro.core.flow import SequentialDelayATPG
from repro.data import load_circuit
from repro.faults.model import enumerate_delay_faults
from repro.obs.metrics import MetricsRegistry

#: Same workload as ``test_bench_hybrid``: a random-testable s838 surrogate
#: at half scale, full fault universe, non-robust model, bigint tier.
CIRCUIT, SCALE, SURROGATE_SEED = "s838", 0.5, 53
BACKEND = "bigint"
ROBUST = False
#: Interleaved repetitions per leg; minima are compared.
REPS = 3
#: Maximum tolerated wall-clock overhead of a live registry.
GATE = 1.05


def _fingerprint(campaign):
    """Everything the bit-identical contract covers, minus wall time."""
    row = {key: value for key, value in campaign.as_table3_row().items() if key != "time_s"}
    per_fault = [
        (
            str(result.fault),
            result.status.value,
            result.phase.name,
            sorted(str(fault) for fault in result.additionally_detected),
            result.sequence.vectors if result.sequence is not None else None,
            str(result.sequence.clock_schedule) if result.sequence is not None else None,
        )
        for result in campaign.fault_results
    ]
    return (
        row,
        campaign.untestable_breakdown(),
        campaign.targeted,
        campaign.detected_by_simulation,
        per_fault,
    )


def _run(metrics):
    """One full campaign leg; returns (campaign, seconds, cost_log)."""
    circuit = load_circuit(CIRCUIT, scale=SCALE, seed=SURROGATE_SEED)
    faults = enumerate_delay_faults(circuit)
    atpg = SequentialDelayATPG(
        circuit, robust=ROBUST, backend=BACKEND, metrics=metrics
    )
    start = time.perf_counter()
    campaign = atpg.run(faults=faults)
    return campaign, time.perf_counter() - start, list(atpg.cost_log)


def test_bench_observability_overhead():
    """Acceptance: identical results, <= 5% overhead with metrics enabled."""
    off_seconds = []
    on_seconds = []
    off_campaign = on_campaign = None
    cost_log = []
    for _ in range(REPS):
        off_campaign, seconds, _unused = _run(None)
        off_seconds.append(seconds)
        on_campaign, seconds, cost_log = _run(MetricsRegistry())
        on_seconds.append(seconds)

    assert _fingerprint(on_campaign) == _fingerprint(off_campaign), (
        "a live metrics registry must not perturb campaign results"
    )
    assert len(cost_log) == on_campaign.targeted

    off_best = min(off_seconds)
    on_best = min(on_seconds)
    overhead = on_best / off_best
    print(
        f"\nobservability overhead ({CIRCUIT}@{SCALE} seed {SURROGATE_SEED}, "
        f"{on_campaign.total_faults} faults, non-robust, {BACKEND}): "
        f"metrics off {off_best:.2f}s -> on {on_best:.2f}s "
        f"({(overhead - 1) * 100:+.1f}%, gate {(GATE - 1) * 100:.0f}%)"
    )
    write_bench_results(
        "observability",
        {
            "workload": {
                "circuit": f"{CIRCUIT}@{SCALE}",
                "surrogate_seed": SURROGATE_SEED,
                "n_faults": on_campaign.total_faults,
                "robust": ROBUST,
                "backend": BACKEND,
                "reps": REPS,
                "description": "full-universe campaign, metrics registry on vs off",
            },
            "metrics_off_seconds": round(off_best, 6),
            "metrics_on_seconds": round(on_best, 6),
            "overhead_ratio": round(overhead, 4),
            "results_identical": True,
            "fault_costs_recorded": len(cost_log),
            "gate": GATE,
        },
    )
    assert overhead <= GATE, (
        f"metrics-enabled campaign is {(overhead - 1) * 100:.1f}% slower than "
        f"the null-registry run ({on_best:.2f}s vs {off_best:.2f}s); "
        f"gate is {(GATE - 1) * 100:.0f}%"
    )

"""Experiment E3 — regenerate Table 3 (ISCAS'89 benchmark results).

For every circuit of the paper's Table 3 the benchmark runs the full
FOGBUSTER campaign (TDgen + SEMILET + fault simulation, 100-backtrack limits)
and prints a row with the same columns the paper reports: tested faults,
untestable faults, aborted faults, number of generated patterns
(initialisation and propagation vectors included) and CPU time in seconds.

Absolute numbers differ from the paper because (a) every circuit except s27
is a surrogate netlist (see DESIGN.md section 5) and (b) by default the
harness runs down-scaled circuits with a cap on the number of targeted faults
(see ``benchmarks/conftest.py`` for the knobs).  The s27 row uses the real
netlist and is directly comparable.
"""

import pytest

from repro.core.flow import SequentialDelayATPG
from repro.core.reporting import campaign_row, format_campaign_table
from repro.data import load_circuit
from repro.faults.model import enumerate_delay_faults, sample_faults

from benchconfig import bench_circuits, bench_max_faults, bench_scale

#: Table 3 of the paper (tested, untestable, aborted, #patterns, time [s] on a
#: Sun SPARC 10).  Column values for the aborted column follow the row sums.
PAPER_TABLE3 = {
    "s27": (39, 11, 2, 40, 1),
    "s208": (112, 242, 163, 16, 452),
    "s298": (164, 260, 1148, 110, 403),
    "s344": (313, 199, 494, 100, 394),
    "s349": (312, 211, 500, 101, 80),
    "s386": (332, 335, 390, 77, 169),
    "s420": (124, 584, 166, 32, 310),
    "s641": (807, 136, 560, 211, 795),
    "s713": (427, 395, 292, 432, 522),
    "s838": (113, 1277, 152, 84, 243),
    "s1196": (2114, 69, 1533, 13, 301),
    "s1238": (2181, 136, 1524, 13, 90),
}

_RESULTS = []


def _run_campaign(name):
    circuit = load_circuit(name, scale=bench_scale())
    atpg = SequentialDelayATPG(circuit)
    # When the harness caps the fault count, a uniform-stride sample over the
    # whole fault universe keeps the tested/untestable/aborted shape
    # representative (the first-N faults would all sit at the primary inputs).
    # The real s27 netlist is always run on its complete fault universe so the
    # row stays directly comparable with the paper.
    faults = enumerate_delay_faults(circuit)
    if name != "s27":
        faults = sample_faults(faults, bench_max_faults())
    campaign = atpg.run(faults=faults)
    # Report under the paper's circuit name regardless of the scale suffix.
    campaign.circuit_name = name
    return campaign


@pytest.mark.parametrize("name", bench_circuits())
def test_bench_table3_row(benchmark, name, campaign_cache):
    campaign = benchmark.pedantic(_run_campaign, args=(name,), rounds=1, iterations=1)
    campaign_cache[name] = campaign
    _RESULTS.append(campaign)

    row = campaign_row(campaign)
    paper = PAPER_TABLE3[name]
    print()
    print(f"--- Table 3 row: {name} ---")
    print(f"{'':10} {'tested':>8} {'untstbl':>8} {'aborted':>8} {'#pat':>6} {'time[s]':>8}")
    print(
        f"{'paper':10} {paper[0]:>8} {paper[1]:>8} {paper[2]:>8} {paper[3]:>6} {paper[4]:>8}"
    )
    print(
        f"{'measured':10} {row['tested']:>8} {row['untstbl']:>8} {row['aborted']:>8} "
        f"{row['#pat']:>6} {row['time[s]']:>8}"
    )

    # Shape checks (not absolute-number checks): every fault got a verdict and
    # the generator finds tests on every circuit it targets enough faults on.
    assert campaign.tested + campaign.untestable + campaign.aborted == campaign.total_faults
    if name == "s27":
        # The real netlist: the tested count reproduces the paper (39) — the
        # extra inter-phase backtracking may add one more — and the
        # untestable+aborted total is at most the paper's 13 (the split
        # depends on the search order, see EXPERIMENTS.md).
        assert campaign.tested >= PAPER_TABLE3["s27"][0]
        assert campaign.untestable + campaign.aborted <= (
            PAPER_TABLE3["s27"][1] + PAPER_TABLE3["s27"][2]
        )


def test_bench_table3_summary(campaign_cache):
    """Print the assembled table after all per-circuit rows have run."""
    results = [campaign_cache[name] for name in bench_circuits() if name in campaign_cache]
    if not results:
        pytest.skip("no Table 3 rows were produced in this session")
    print()
    print(
        format_campaign_table(
            results,
            title=(
                "Table 3 — benchmark results "
                f"(scale={bench_scale():g}, max targeted faults={bench_max_faults()})"
            ),
        )
    )
    print()
    print("Paper reference (Sun SPARC 10 seconds):")
    print(f"{'circuit':>8} {'tested':>8} {'untstbl':>8} {'aborted':>8} {'#pat':>6} {'time[s]':>8}")
    for name, row in PAPER_TABLE3.items():
        print(f"{name:>8} {row[0]:>8} {row[1]:>8} {row[2]:>8} {row[3]:>6} {row[4]:>8}")

"""Edge-case tests of the text report renderers (:mod:`repro.core.reporting`).

The renderers run on whatever a campaign produced — including nothing at
all.  These tests pin the degenerate shapes: an empty result list, a
zero-fault universe, values much wider than their column headers, empty
shard stats, and a ``--profile`` report over an empty snapshot.
"""

from __future__ import annotations

from repro.core.reporting import (
    format_campaign_table,
    format_prefix_summary,
    format_profile,
    format_shard_summary,
    format_untestable_breakdown,
)
from repro.core.results import CampaignResult
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import FaultCost


def _cost(fault, seconds, **overrides):
    """A FaultCost with benign defaults for table tests."""
    fields = dict(
        fault=fault, status="tested", phase="fault simulation",
        seconds=seconds, attempts=1, local_backtracks=0,
        sequential_backtracks=0, decisions=1, implication_sweeps=1,
        wavefront_skipped=0, words_simulated=8, engine="packed",
    )
    fields.update(overrides)
    return FaultCost(**fields)


# --------------------------------------------------------------------- #
# campaign tables
# --------------------------------------------------------------------- #
def test_empty_campaign_list_renders_header_only():
    text = format_campaign_table([])
    lines = text.splitlines()
    assert lines[0] == "Benchmark results"
    header = lines[2].split()
    assert header == ["circuit", "tested", "untstbl", "aborted", "#pat", "time[s]"]
    # Title, blank, header, separator — and no data rows.
    assert len(lines) == 4


def test_zero_fault_universe_renders_a_zero_row():
    campaign = CampaignResult(circuit_name="void", total_faults=0)
    text = format_campaign_table([campaign], title="Empty universe")
    row = text.splitlines()[-1].split()
    assert row == ["void", "0", "0", "0", "0", "0.0"]
    assert campaign.fault_coverage == 0.0
    assert campaign.fault_efficiency == 0.0


def test_wide_values_expand_their_columns():
    campaign = CampaignResult(
        circuit_name="very-long-circuit-name-x", total_faults=10**9,
        tested=123456789, untestable=98765432, aborted=1,
        pattern_count=1000000007, cpu_seconds=98765.4321,
    )
    text = format_campaign_table([campaign])
    lines = text.splitlines()
    header, separator, row = lines[2], lines[3], lines[4]
    assert len(header) == len(separator) == len(row)
    assert "123456789" in row
    assert "1000000007" in row
    # Right-aligned: every column value ends where its header ends.
    assert row.split() == [
        "very-long-circuit-name-x", "123456789", "98765432", "1", "1000000007",
        "98765.43",
    ]


def test_untestable_and_prefix_summaries_handle_empty_input():
    assert format_untestable_breakdown([]).startswith("circuit")
    assert format_prefix_summary([]).startswith("circuit")
    campaign = CampaignResult(circuit_name="s0", total_faults=0)
    assert "s0" in format_untestable_breakdown([campaign])
    assert "-" in format_prefix_summary([campaign])  # no stop reason yet


def test_shard_summary_with_no_shards():
    text = format_shard_summary([], recomputed=0)
    assert "replay merge recomputed 0 over-dropped fault(s)" in text
    assert text.splitlines()[0].split()[0] == "shard"


def test_shard_summary_dynamic_mode_renders_dash_for_assigned():
    text = format_shard_summary(
        [{"worker": 0, "assigned": None, "targeted": 3, "seconds": 0.5}],
        recomputed=2,
    )
    row = text.splitlines()[2].split()
    assert row[0] == "0"
    assert row[1] == "-"
    assert "recomputed 2" in text


# --------------------------------------------------------------------- #
# the --profile report
# --------------------------------------------------------------------- #
def test_profile_of_empty_snapshot_is_just_the_title():
    text = format_profile(MetricsRegistry().snapshot(), title="Nothing here")
    assert text == "Nothing here"


def test_profile_renders_all_three_sections():
    registry = MetricsRegistry()
    with registry.timed("repro_phase_seconds", phase="campaign"):
        pass
    with registry.timed("repro_phase_seconds", phase="tdgen"):
        pass
    registry.inc("repro_fault_aborts_total", 3, phase="local test generation")
    costs = [
        _cost("G0 StR", 0.5),
        _cost("G1 StF", 2.0, status="aborted", local_backtracks=4,
              sequential_backtracks=6),
        _cost("G2 StR", 0.1),
    ]
    text = format_profile(registry.snapshot(), costs, top_n=2, title="Breakdown")
    assert text.startswith("Breakdown")
    assert "Time per phase" in text
    assert "Top 2 most expensive faults (of 3)" in text
    assert "Aborts by phase" in text
    assert "local test generation" in text
    # Sorted by seconds descending; the cheapest fault is cut by top_n=2.
    lines = text.splitlines()
    g1 = next(i for i, line in enumerate(lines) if "G1 StF" in line)
    g0 = next(i for i, line in enumerate(lines) if "G0 StR" in line)
    assert g1 < g0
    assert not any("G2 StR" in line for line in lines)
    # Backtracks column sums the local and sequential counts.
    assert lines[g1].split()[-3] == "10"


def test_profile_top_n_zero_hides_the_fault_table():
    text = format_profile(
        MetricsRegistry().snapshot(), [_cost("G0 StR", 0.5)], top_n=0
    )
    assert "most expensive" not in text

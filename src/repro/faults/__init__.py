"""Fault models.

The paper's fault universe is the robust **gate delay fault** model: every
gate output stem and every fanout branch can be Slow-to-Rise (StR) or
Slow-to-Fall (StF), and each such fault must be tested robustly.
"""

from repro.faults.model import (
    DelayFaultType,
    GateDelayFault,
    FaultStatus,
    FaultList,
    enumerate_delay_faults,
    sample_faults,
)

__all__ = [
    "DelayFaultType",
    "GateDelayFault",
    "FaultStatus",
    "FaultList",
    "enumerate_delay_faults",
    "sample_faults",
]

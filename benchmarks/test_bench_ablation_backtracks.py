"""Ablation A1 — sensitivity to the backtrack (abort) limit.

The paper aborts a fault after 100 backtracks in the local generator and 100
in the sequential generator.  This ablation sweeps the limit and shows the
classic trade-off: a higher limit converts aborted faults into tested or
proven-untestable ones at the cost of CPU time.
"""

import pytest

from repro.core.flow import SequentialDelayATPG
from repro.data import load_circuit

LIMITS = [10, 50, 100, 500]


def _run_with_limit(circuit, limit):
    atpg = SequentialDelayATPG(
        circuit,
        local_backtrack_limit=limit,
        sequential_backtrack_limit=limit,
    )
    return atpg.run()


@pytest.mark.parametrize("limit", LIMITS)
def test_bench_backtrack_limit_sweep(benchmark, limit, campaign_cache):
    circuit = load_circuit("s27")
    campaign = benchmark.pedantic(_run_with_limit, args=(circuit, limit), rounds=1, iterations=1)
    campaign_cache[f"s27@limit{limit}"] = campaign

    print()
    print(
        f"s27, backtrack limit {limit:>4}: tested={campaign.tested:>3} "
        f"untestable={campaign.untestable:>3} aborted={campaign.aborted:>3} "
        f"time={campaign.cpu_seconds:.2f}s"
    )
    assert campaign.tested + campaign.untestable + campaign.aborted == campaign.total_faults


def test_bench_backtrack_sweep_summary(campaign_cache):
    rows = [
        (limit, campaign_cache.get(f"s27@limit{limit}"))
        for limit in LIMITS
        if f"s27@limit{limit}" in campaign_cache
    ]
    if len(rows) < 2:
        pytest.skip("sweep rows missing")
    print()
    print("Backtrack-limit sweep on s27 (paper uses 100):")
    print(f"{'limit':>6} {'tested':>7} {'untstbl':>8} {'aborted':>8} {'time[s]':>8}")
    for limit, campaign in rows:
        print(
            f"{limit:>6} {campaign.tested:>7} {campaign.untestable:>8} "
            f"{campaign.aborted:>8} {campaign.cpu_seconds:>8.2f}"
        )
    # Aborted faults must not increase with a higher limit.
    aborted = [campaign.aborted for _, campaign in rows]
    assert all(later <= earlier for earlier, later in zip(aborted, aborted[1:]))

"""Eight-valued robust gate delay fault algebra (paper section 3).

The algebra encodes the two time frames of a two-pattern delay test in a
single value per signal:

=====  ===========================================================
value  meaning
=====  ===========================================================
``0``  steady zero in both frames, hazard free
``1``  steady one in both frames, hazard free
``R``  rising transition (zero in the first frame, one in the second)
``F``  falling transition (one in the first frame, zero in the second)
``0h`` steady zero, but a temporary hazard to one is possible
``1h`` steady one, but a temporary hazard to zero is possible
``Rc`` rising transition carrying the fault effect (the D of delay ATPG)
``Fc`` falling transition carrying the fault effect (the D̄ of delay ATPG)
=====  ===========================================================

``Rc``/``Fc`` only ever originate at the fault site (an ``R``/``F`` is
converted there); the gate truth tables guarantee that they never appear at a
gate output unless present at an input, and that they only survive when the
robustness criterion of the paper holds (Table 1 / Table 2).
"""

from repro.algebra.values import (
    DelayValue,
    V0,
    V1,
    R,
    F,
    H0,
    H1,
    RC,
    FC,
    ALL_VALUES,
    TRANSITION_VALUES,
    FAULT_VALUES,
    PI_VALUES,
    value_from_pair,
    value_from_name,
)
from repro.algebra.tables import (
    evaluate_delay_gate,
    and2,
    or2,
    xor2,
    not1,
    table_for_gate,
    format_truth_table,
)
from repro.algebra.sets import (
    ValueSet,
    EMPTY_SET,
    FULL_SET,
    set_of,
    evaluate_gate_sets,
    backward_input_sets,
)
from repro.algebra.packed import (
    evaluate_packed_delay_gate,
    pack_delay_values,
    unpack_delay_values,
)
from repro.algebra.packed_sets import (
    PackedSetSimulator,
    pack_value_sets,
    unpack_value_sets,
)

__all__ = [
    "DelayValue",
    "V0",
    "V1",
    "R",
    "F",
    "H0",
    "H1",
    "RC",
    "FC",
    "ALL_VALUES",
    "TRANSITION_VALUES",
    "FAULT_VALUES",
    "PI_VALUES",
    "value_from_pair",
    "value_from_name",
    "evaluate_delay_gate",
    "and2",
    "or2",
    "xor2",
    "not1",
    "table_for_gate",
    "format_truth_table",
    "ValueSet",
    "EMPTY_SET",
    "FULL_SET",
    "set_of",
    "evaluate_gate_sets",
    "backward_input_sets",
    "evaluate_packed_delay_gate",
    "pack_delay_values",
    "unpack_delay_values",
    "PackedSetSimulator",
    "pack_value_sets",
    "unpack_value_sets",
]

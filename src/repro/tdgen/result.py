"""Result objects of the local (TDgen) test generation step."""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional

from repro.algebra.values import DelayValue
from repro.faults.model import GateDelayFault


class LocalTestStatus(enum.Enum):
    """Outcome of one TDgen invocation."""

    SUCCESS = "success"
    UNTESTABLE = "untestable"
    ABORTED = "aborted"


@dataclasses.dataclass
class LocalTest:
    """A two-pattern local test produced by TDgen.

    Attributes:
        fault: the targeted gate delay fault.
        status: success / untestable / aborted.
        pi_values: pair value per primary input; ``None`` entries are don't
            cares (any value keeps the test valid, because the observation was
            proven for every completion).
        ppi_initial: required initial-frame value per pseudo primary input;
            unmentioned PPIs are don't cares for the local test.
        observation_points: primary outputs and/or pseudo primary output
            signals where the fault effect is guaranteed to appear.
        observed_at_po: True if at least one observation point is a PO (no
            sequential propagation needed).
        ppo_final_values: final (test frame) value of every PPO that TDgen is
            allowed to specify to SEMILET: only PPOs with an equal, hazard-free
            initial and final value may be handed over (paper section 6); the
            rest map to ``None`` — the "unjustifiable don't care".
        ppo_fault_effects: per PPO signal, the fault-carrying value captured in
            the state register (``Rc``/``Fc``), for observation points that are
            pseudo primary outputs.
        backtracks: number of backtracks spent.
        decisions: number of decisions taken.
    """

    fault: GateDelayFault
    status: LocalTestStatus
    pi_values: Dict[str, Optional[DelayValue]] = dataclasses.field(default_factory=dict)
    ppi_initial: Dict[str, int] = dataclasses.field(default_factory=dict)
    observation_points: List[str] = dataclasses.field(default_factory=list)
    observed_at_po: bool = False
    ppo_final_values: Dict[str, Optional[int]] = dataclasses.field(default_factory=dict)
    ppo_fault_effects: Dict[str, DelayValue] = dataclasses.field(default_factory=dict)
    backtracks: int = 0
    decisions: int = 0

    @property
    def succeeded(self) -> bool:
        """True when local test generation found a two-pattern test."""
        return self.status is LocalTestStatus.SUCCESS

    def required_state(self) -> Dict[str, int]:
        """The partial state required at the start of the initial frame.

        This is what the synchronisation (initialisation) phase must
        establish.
        """
        return dict(self.ppi_initial)

    def vector_pair(self, fill: int = 0) -> "TestVectorPair":
        """Concrete two-pattern test with don't cares filled deterministically."""
        v1: Dict[str, int] = {}
        v2: Dict[str, int] = {}
        for pi, value in self.pi_values.items():
            if value is None:
                v1[pi] = fill
                v2[pi] = fill
            else:
                v1[pi] = value.initial
                v2[pi] = value.final
        return TestVectorPair(initial=v1, final=v2)

    def __str__(self) -> str:
        points = ", ".join(self.observation_points) or "-"
        return (
            f"LocalTest({self.fault}, {self.status.value}, observe@[{points}], "
            f"backtracks={self.backtracks})"
        )


@dataclasses.dataclass
class TestVectorPair:
    """A fully specified two-pattern test at the primary inputs."""

    initial: Dict[str, int]
    final: Dict[str, int]

    def as_tuple(self, inputs: List[str]) -> tuple:
        """Render as two bit tuples in the given input order (for reporting)."""
        return (
            tuple(self.initial.get(pi, 0) for pi in inputs),
            tuple(self.final.get(pi, 0) for pi in inputs),
        )

"""Levelisation of the combinational block.

The combinational block of the finite state machine model has the primary
inputs and the pseudo primary inputs (flip-flop outputs) as sources.  All
engines (logic simulation, the eight-valued delay algebra simulation, fault
simulation and critical path tracing) evaluate gates in topological order of
this block; this module computes that order once per circuit.
"""

from __future__ import annotations

from typing import Dict, List

from repro.circuit.netlist import Circuit


class CombinationalLoopError(ValueError):
    """Raised when the combinational block contains a cycle not broken by a DFF."""


def levelize(circuit: Circuit) -> Dict[str, int]:
    """Assign a level to every signal of the combinational block.

    Primary inputs and PPIs are level 0; every combinational gate is one more
    than the maximum level of its fanin.  DFFs themselves are not levelled
    (their outputs are sources, their inputs are ordinary combinational
    signals).
    """
    levels: Dict[str, int] = {}
    for signal in circuit.primary_inputs:
        levels[signal] = 0
    for ppi in circuit.pseudo_primary_inputs:
        levels[ppi] = 0

    order = combinational_order(circuit)
    for name in order:
        gate = circuit.gate(name)
        levels[name] = 1 + max(levels[source] for source in gate.fanin)
    return levels


def combinational_order(circuit: Circuit) -> List[str]:
    """Return the combinational gates in topological evaluation order.

    Raises :class:`CombinationalLoopError` if a purely combinational cycle is
    found (feedback must always go through a flip-flop).
    """
    in_degree: Dict[str, int] = {}
    dependants: Dict[str, List[str]] = {name: [] for name in circuit.gates}
    sources = set(circuit.primary_inputs) | set(circuit.pseudo_primary_inputs)

    combinational = [gate.name for gate in circuit.combinational_gates]
    for name in combinational:
        gate = circuit.gate(name)
        degree = 0
        for source in gate.fanin:
            if source in sources:
                continue
            degree += 1
            dependants[source].append(name)
        in_degree[name] = degree

    ready = [name for name in combinational if in_degree[name] == 0]
    order: List[str] = []
    while ready:
        name = ready.pop()
        order.append(name)
        for dependant in dependants[name]:
            in_degree[dependant] -= 1
            if in_degree[dependant] == 0:
                ready.append(dependant)

    if len(order) != len(combinational):
        unresolved = sorted(set(combinational) - set(order))
        raise CombinationalLoopError(
            f"combinational loop involving signals: {', '.join(unresolved[:10])}"
        )
    return order


def max_level(circuit: Circuit) -> int:
    """Return the depth of the combinational block (0 for a wire-only circuit)."""
    levels = levelize(circuit)
    return max(levels.values()) if levels else 0

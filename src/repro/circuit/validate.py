"""Structural validation of circuits.

The engines assume well-formed circuits: every referenced signal is defined,
combinational feedback is broken by flip-flops, single-input gate types have
one input, and every primary output is driven.  :func:`validate_circuit`
checks all of these and raises :class:`CircuitValidationError` listing every
violation found.
"""

from __future__ import annotations

from typing import List

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit


class CircuitValidationError(ValueError):
    """Raised when a circuit fails structural validation.

    The ``problems`` attribute lists every violation found.
    """

    def __init__(self, problems: List[str]) -> None:
        super().__init__("; ".join(problems))
        self.problems = problems


def validate_circuit(circuit: Circuit) -> None:
    """Validate the structural integrity of a circuit.

    Raises:
        CircuitValidationError: if any problem is found.
    """
    problems: List[str] = []

    defined = set(circuit.gates)
    for gate in circuit.gates.values():
        for source in gate.fanin:
            if source not in defined:
                problems.append(f"gate {gate.name!r} references undefined signal {source!r}")
        if gate.gate_type in (GateType.NOT, GateType.BUF, GateType.DFF) and len(gate.fanin) != 1:
            problems.append(
                f"{gate.gate_type.value} gate {gate.name!r} must have exactly one input, "
                f"has {len(gate.fanin)}"
            )
        if gate.gate_type not in (GateType.NOT, GateType.BUF, GateType.DFF, GateType.INPUT):
            if len(gate.fanin) < 1:
                problems.append(f"gate {gate.name!r} has no inputs")

    for po in circuit.primary_outputs:
        if po not in defined:
            problems.append(f"primary output {po!r} is never driven")

    seen_outputs = set()
    for po in circuit.primary_outputs:
        if po in seen_outputs:
            problems.append(f"primary output {po!r} declared twice")
        seen_outputs.add(po)

    if not problems:
        # Combinational loop detection only makes sense on a reference-complete
        # netlist, so it runs after the undefined-signal checks passed.
        from repro.circuit.levelize import CombinationalLoopError, combinational_order

        try:
            combinational_order(circuit)
        except CombinationalLoopError as exc:
            problems.append(str(exc))
        except KeyError as exc:
            problems.append(f"dangling reference: {exc}")

    if problems:
        raise CircuitValidationError(problems)

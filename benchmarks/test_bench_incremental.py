"""Store-backed incremental re-run vs from-scratch after a small ECO.

The persistent campaign store (:mod:`repro.store`) turns a finished
campaign into a memo the incremental engine can resume from: after a
netlist edit, only faults inside the edit's influence cone are re-targeted
while every other stored outcome is replayed, and the combined result is
**fingerprint-identical** to running the edited netlist from scratch.

``test_bench_incremental_speedup`` is the acceptance gate of that engine:
on a full s838@0.5 campaign with a one-gate ECO observer edit (a new AND
of two primary inputs, observed at a new primary output) the incremental
re-run must finish at least **3x** faster than the from-scratch run with
the same settings, while producing the bit-identical campaign.  The
workload reuses the hybrid benchmark's pinned settings (surrogate
``seed=53``, non-robust, the ``bigint`` backend, backtrack limits 20/20 —
see ``test_bench_hybrid.py`` for why this instance) because the gate
measures *reuse*, not search strength: the ECO's influence cone is the new
gate plus its two PI fanin cones, a few signals out of ~450, so nearly
the whole stored campaign replays without search.

The incremental leg runs *first*, so the global search/implication memo
caches are cold for it and warm for the from-scratch leg — the bias runs
against the gate.  Results land in ``BENCH_incremental.json`` at the
repository root.
"""

from __future__ import annotations

import tempfile
import time

from benchconfig import write_bench_results
from repro.circuit.gates import GateType
from repro.core.flow import SequentialDelayATPG
from repro.data import load_circuit
from repro.orchestrate import OrchestratorConfig
from repro.store import CampaignStore, run_incremental

#: Benchmark workload: a random-testable s838 surrogate at half scale under
#: the non-robust model (same instance the hybrid benchmark pins).
CIRCUIT, SCALE, SURROGATE_SEED = "s838", 0.5, 53
BACKEND = "bigint"
ROBUST = False
BACKTRACK_LIMIT = 20
GATE = 3.0


def _config() -> OrchestratorConfig:
    return OrchestratorConfig(
        jobs=1,
        robust=ROBUST,
        backend=BACKEND,
        local_backtrack_limit=BACKTRACK_LIMIT,
        sequential_backtrack_limit=BACKTRACK_LIMIT,
    )


def _base_circuit():
    """A fresh base-netlist instance (circuits cache analysis state)."""
    return load_circuit(CIRCUIT, scale=SCALE, seed=SURROGATE_SEED)


def _edited_circuit():
    """The base netlist plus the ECO observer gate."""
    circuit = _base_circuit()
    circuit.add_gate("eco_obs", GateType.AND, list(circuit.primary_inputs[:2]))
    circuit.add_output("eco_obs")
    return circuit


def test_bench_incremental_speedup():
    """Acceptance: incremental >= 3x faster, bit-identical to from-scratch."""
    config = _config()
    base_result = SequentialDelayATPG(_base_circuit(), **config.atpg_kwargs()).run()

    with tempfile.TemporaryDirectory() as tmp:
        with CampaignStore(f"{tmp}/base.sqlite") as store:
            store.ingest_result(base_result, circuit=_base_circuit(), config=config)

            start = time.perf_counter()
            outcome = run_incremental(_edited_circuit(), store, config)
            incremental_seconds = time.perf_counter() - start

    start = time.perf_counter()
    scratch = SequentialDelayATPG(_edited_circuit(), **config.atpg_kwargs()).run()
    scratch_seconds = time.perf_counter() - start

    assert outcome.result.fingerprint() == scratch.fingerprint()
    assert outcome.reused > 0
    assert outcome.kept + outcome.invalidated == outcome.result.total_faults
    assert outcome.invalidated < outcome.result.total_faults // 10, (
        "the ECO cone must stay small for this gate to measure reuse"
    )

    speedup = scratch_seconds / incremental_seconds
    print(
        f"\nincremental re-run ({CIRCUIT}@{SCALE} seed {SURROGATE_SEED}, "
        f"{outcome.result.total_faults} faults, non-robust, {BACKEND}): "
        f"scratch {scratch_seconds:.1f}s -> incremental "
        f"{incremental_seconds:.1f}s ({speedup:.2f}x); cone "
        f"{outcome.cone_size} signal(s), kept {outcome.kept}, "
        f"invalidated {outcome.invalidated}, reused {outcome.reused}, "
        f"retargeted {outcome.retargeted}"
    )
    write_bench_results(
        "incremental",
        {
            "workload": {
                "circuit": f"{CIRCUIT}@{SCALE}",
                "surrogate_seed": SURROGATE_SEED,
                "n_faults": outcome.result.total_faults,
                "robust": ROBUST,
                "backend": BACKEND,
                "backtrack_limit": BACKTRACK_LIMIT,
                "edit": "ECO observer: AND(pi0, pi1) at a new PO",
                "description": (
                    "store-backed incremental re-run vs from-scratch on the "
                    "edited netlist"
                ),
            },
            "scratch_seconds": round(scratch_seconds, 6),
            "incremental_seconds": round(incremental_seconds, 6),
            "speedup": round(speedup, 2),
            "cone_size": outcome.cone_size,
            "kept": outcome.kept,
            "invalidated": outcome.invalidated,
            "reused": outcome.reused,
            "retargeted": outcome.retargeted,
            "gate": GATE,
        },
    )
    assert speedup >= GATE, (
        f"incremental re-run only {speedup:.2f}x faster than from-scratch "
        f"({scratch_seconds:.1f}s vs {incremental_seconds:.1f}s)"
    )

"""TDgen — local (combinational, two-frame) robust gate delay fault ATPG.

TDgen handles the *test time frame* and the *initial time frame* of the time
frame model (paper Figure 2, section 3): it generates the two-pattern test
``(v1, v2)`` that provokes the targeted gate delay fault and propagates the
fault effect robustly to a primary output or to a pseudo primary output,
using the eight-valued algebra of :mod:`repro.algebra`.

The decision procedure is a PODEM-style branch-and-bound over the primary
input pairs and the initial-frame values of the pseudo primary inputs, with
the state-register coupling rule (the final value of a PPI equals the initial
frame value of the corresponding PPO) built into the forward implication.

The package also hosts the two backend-dispatched layers shared with SEMILET
and TDsim: the implication engines (:mod:`repro.tdgen.implication`) and the
search kernels (:mod:`repro.tdgen.search` — objective selection, multiple
backtrace, potential-difference scan).  Both registries mirror the
simulation backend names, so one ``backend`` choice governs the whole flow.
"""

from repro.tdgen.context import TDgenContext
from repro.tdgen.simulation import TwoFrameState, simulate_two_frame
from repro.tdgen.implication import (
    ImplicationEngine,
    PackedImplicationEngine,
    ReferenceImplicationEngine,
    available_implication_engines,
    create_implication_engine,
    register_implication_engine,
    resolve_implication_backend,
)
from repro.tdgen.search import (
    PackedSearchKernels,
    ReferenceSearchKernels,
    SearchKernels,
    available_search_kernels,
    create_search_kernels,
    register_search_kernels,
    set_default_search_kernels,
)
from repro.tdgen.result import LocalTest, LocalTestStatus
from repro.tdgen.engine import TDgen

__all__ = [
    "SearchKernels",
    "ReferenceSearchKernels",
    "PackedSearchKernels",
    "available_search_kernels",
    "create_search_kernels",
    "register_search_kernels",
    "set_default_search_kernels",
    "TDgenContext",
    "TwoFrameState",
    "simulate_two_frame",
    "ImplicationEngine",
    "ReferenceImplicationEngine",
    "PackedImplicationEngine",
    "available_implication_engines",
    "create_implication_engine",
    "register_implication_engine",
    "resolve_implication_backend",
    "LocalTest",
    "LocalTestStatus",
    "TDgen",
]

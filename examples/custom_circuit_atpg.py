#!/usr/bin/env python3
"""Delay-fault ATPG on a hand-built circuit (a small sequence detector).

This example shows the workflow a user with their own design follows:

1. describe the circuit with :class:`repro.CircuitBuilder` (or load a
   ``.bench`` file),
2. enumerate the gate delay fault universe,
3. run the non-scan FOGBUSTER flow,
4. inspect and independently verify the generated sequences,
5. export the circuit as ``.bench`` for other tools.

The design is a Mealy-style "11 sequence detector" with a synchronous reset:
it raises ``detect`` after two consecutive ones on ``din``.  It is fully
synchronisable (the reset makes initialisation easy), so most faults that are
robustly testable end up with a complete test sequence.

Run with::

    python examples/custom_circuit_atpg.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import (
    CircuitBuilder,
    SequentialDelayATPG,
    enumerate_delay_faults,
    verify_test_sequence,
    write_bench,
)


def build_sequence_detector():
    """A two-state '11' detector: detect = din AND seen_one (registered input)."""
    builder = CircuitBuilder("seq11")
    builder.inputs(["din", "reset"])
    # State bit: did we see a one in the previous cycle (and no reset)?
    builder.dff("seen_one", "next_seen")
    builder.not_("nreset", "reset")
    builder.and_("next_seen", ["din", "nreset"])
    # Output: current one AND remembered one.
    builder.and_("detect", ["din", "seen_one"])
    builder.output("detect")
    return builder.build()


def main() -> None:
    circuit = build_sequence_detector()
    print("Circuit under test:")
    print(write_bench(circuit))

    faults = enumerate_delay_faults(circuit)
    print(f"Gate delay fault universe: {len(faults)} faults "
          f"({circuit.line_count()} lines x StR/StF)")
    print()

    atpg = SequentialDelayATPG(circuit)
    campaign = atpg.run()
    print(f"tested     : {campaign.tested}")
    print(f"untestable : {campaign.untestable}")
    print(f"aborted    : {campaign.aborted}")
    print(f"patterns   : {campaign.pattern_count}")
    print(f"coverage   : {campaign.fault_coverage:.1%}")
    print()

    print("Generated test sequences (all verified against the gross delay fault):")
    inputs = circuit.primary_inputs
    for sequence in campaign.sequences:
        report = verify_test_sequence(circuit, sequence)
        status = "ok" if report.detected else "FAILED VERIFICATION"
        vectors = " -> ".join(
            "".join(str(vector.get(pi, 0)) for pi in inputs) for vector in sequence.vectors
        )
        print(f"  {str(sequence.fault):<22} clocks[{sequence.clock_schedule}]  "
              f"({', '.join(inputs)}) {vectors}   [{status}]")

    untested = [
        str(result.fault)
        for result in campaign.fault_results
        if not result.tested
    ]
    if untested:
        print()
        print("Faults without a test (untestable or aborted):")
        for name in untested:
            print(f"  {name}")


if __name__ == "__main__":
    main()

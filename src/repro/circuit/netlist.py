"""Structural netlist model for synchronous sequential circuits.

The model is signal-name centric, matching the ISCAS'89 ``.bench`` format:
every gate produces exactly one output signal whose name identifies the gate,
primary inputs are signals without a driver, and D flip-flops connect a
pseudo primary output (their data input signal) to a pseudo primary input
(their output signal).

Fault sites follow the paper's gate delay fault model: every signal *stem*
(gate output or primary input) and every *fanout branch* (a stem feeding a
particular input pin of a particular gate, when the stem drives more than one
sink) is a distinct :class:`Line` that can carry a slow-to-rise and a
slow-to-fall fault.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.circuit.gates import GateType


class LineKind(enum.Enum):
    """Kind of a fault-site line."""

    STEM = "stem"
    BRANCH = "branch"


@dataclasses.dataclass(frozen=True)
class Line:
    """A fault-site line: either a signal stem or a fanout branch.

    Attributes:
        signal: name of the driving signal (gate output or primary input).
        kind: stem or branch.
        sink: for branches, the name of the receiving gate; ``None`` for stems.
        pin: for branches, the input-pin index at the receiving gate.
    """

    signal: str
    kind: LineKind = LineKind.STEM
    sink: Optional[str] = None
    pin: Optional[int] = None

    def __str__(self) -> str:
        if self.kind is LineKind.STEM:
            return self.signal
        return f"{self.signal}->{self.sink}[{self.pin}]"

    @property
    def is_stem(self) -> bool:
        """True for signal-stem lines."""
        return self.kind is LineKind.STEM

    @property
    def is_branch(self) -> bool:
        """True for fanout-branch lines."""
        return self.kind is LineKind.BRANCH

    def to_json(self) -> Dict[str, object]:
        """JSON-serialisable representation (see :meth:`from_json`)."""
        payload: Dict[str, object] = {"signal": self.signal, "kind": self.kind.value}
        if self.kind is LineKind.BRANCH:
            payload["sink"] = self.sink
            payload["pin"] = self.pin
        return payload

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "Line":
        """Rebuild a :class:`Line` from its :meth:`to_json` representation."""
        kind = LineKind(payload["kind"])
        return cls(
            signal=str(payload["signal"]),
            kind=kind,
            sink=payload.get("sink") if kind is LineKind.BRANCH else None,
            pin=payload.get("pin") if kind is LineKind.BRANCH else None,
        )


@dataclasses.dataclass
class Gate:
    """A single cell: combinational gate, primary input marker, or DFF.

    The gate's output signal carries the gate's ``name``.  ``fanin`` lists the
    names of the driving signals in pin order.
    """

    name: str
    gate_type: GateType
    fanin: List[str] = dataclasses.field(default_factory=list)

    @property
    def output(self) -> str:
        """Name of the signal driven by this gate (same as the gate name)."""
        return self.name

    @property
    def is_dff(self) -> bool:
        """True for D flip-flops."""
        return self.gate_type is GateType.DFF

    @property
    def is_input(self) -> bool:
        """True for primary-input marker cells."""
        return self.gate_type is GateType.INPUT

    def __repr__(self) -> str:
        args = ", ".join(self.fanin)
        return f"{self.name} = {self.gate_type.value}({args})"


class Circuit:
    """A synchronous sequential gate-level circuit.

    The circuit is the finite state machine of the paper's Figure 1: a
    combinational block between (PIs + PPIs) and (POs + PPOs), plus the state
    register built from D flip-flops.

    Construction is normally done through :class:`repro.circuit.builder.CircuitBuilder`
    or :func:`repro.circuit.bench.parse_bench`.
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self.gates: Dict[str, Gate] = {}
        self.primary_inputs: List[str] = []
        self.primary_outputs: List[str] = []
        self._fanout_cache: Optional[Dict[str, List[Tuple[str, int]]]] = None
        self._order_cache: Optional[List[str]] = None
        self._dff_cache: Optional[List[Gate]] = None
        # Lowered form used by the packed simulator; owned by
        # repro.fausim.compile but invalidated with the structural caches.
        self._compiled_cache = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_input(self, name: str) -> None:
        """Declare a primary input signal."""
        if name in self.gates:
            raise ValueError(f"signal {name!r} already defined")
        self.gates[name] = Gate(name, GateType.INPUT, [])
        self.primary_inputs.append(name)
        self._invalidate()

    def add_output(self, name: str) -> None:
        """Declare a primary output signal (driver may be added later)."""
        if name in self.primary_outputs:
            raise ValueError(f"output {name!r} already declared")
        self.primary_outputs.append(name)
        self._invalidate()

    def add_gate(self, name: str, gate_type: GateType, fanin: Sequence[str]) -> Gate:
        """Add a combinational gate or a DFF driving signal ``name``."""
        if name in self.gates:
            raise ValueError(f"signal {name!r} already defined")
        if gate_type is GateType.INPUT:
            raise ValueError("use add_input() for primary inputs")
        gate = Gate(name, gate_type, list(fanin))
        self.gates[name] = gate
        self._invalidate()
        return gate

    def _invalidate(self) -> None:
        self._fanout_cache = None
        self._order_cache = None
        self._dff_cache = None
        self._compiled_cache = None

    # ------------------------------------------------------------------ #
    # structural views
    # ------------------------------------------------------------------ #
    @property
    def flip_flops(self) -> List[Gate]:
        """The state register, in insertion order (cached between edits).

        The list itself is cached — the state register is read once per
        simulated frame all over the flow — but callers get a copy so the
        cache cannot be mutated from outside.
        """
        if self._dff_cache is None:
            self._dff_cache = [gate for gate in self.gates.values() if gate.is_dff]
        return list(self._dff_cache)

    @property
    def pseudo_primary_inputs(self) -> List[str]:
        """Flip-flop output signals (present state bits)."""
        return [gate.name for gate in self.flip_flops]

    @property
    def pseudo_primary_outputs(self) -> List[str]:
        """Flip-flop data input signals (next state bits)."""
        return [gate.fanin[0] for gate in self.flip_flops]

    @property
    def signals(self) -> List[str]:
        """All signal names (primary inputs and gate outputs)."""
        return list(self.gates.keys())

    @property
    def combinational_gates(self) -> List[Gate]:
        """All gates that are part of the combinational block."""
        return [gate for gate in self.gates.values() if gate.gate_type.is_combinational]

    def gate(self, name: str) -> Gate:
        """Return the gate driving signal ``name``."""
        return self.gates[name]

    def is_primary_input(self, signal: str) -> bool:
        """True if ``signal`` is a primary input."""
        return self.gates[signal].is_input

    def is_pseudo_primary_input(self, signal: str) -> bool:
        """True if ``signal`` is a flip-flop output (PPI)."""
        return self.gates[signal].is_dff

    def is_primary_output(self, signal: str) -> bool:
        """True if ``signal`` is declared a primary output."""
        return signal in self.primary_outputs

    def is_pseudo_primary_output(self, signal: str) -> bool:
        """True if ``signal`` feeds a flip-flop data input (PPO)."""
        return signal in set(self.pseudo_primary_outputs)

    def is_combinational_source(self, signal: str) -> bool:
        """True if the signal is an input of the combinational block (PI or PPI)."""
        gate = self.gates[signal]
        return gate.is_input or gate.is_dff

    def ppi_of_ppo(self, ppo: str) -> str:
        """Return the PPI (flip-flop output) that latches the given PPO signal."""
        for gate in self.flip_flops:
            if gate.fanin[0] == ppo:
                return gate.name
        raise KeyError(f"{ppo!r} is not a pseudo primary output")

    def ppo_of_ppi(self, ppi: str) -> str:
        """Return the PPO (flip-flop data input) of the given PPI signal."""
        gate = self.gates[ppi]
        if not gate.is_dff:
            raise KeyError(f"{ppi!r} is not a pseudo primary input")
        return gate.fanin[0]

    # ------------------------------------------------------------------ #
    # connectivity
    # ------------------------------------------------------------------ #
    def fanout(self, signal: str) -> List[Tuple[str, int]]:
        """Return the sinks of ``signal`` as ``(gate_name, pin_index)`` pairs.

        Flip-flops count as sinks (the PPO feeding a DFF is a branch endpoint),
        primary outputs do not add an extra sink entry.
        """
        return self._fanout_map().get(signal, [])

    def _fanout_map(self) -> Dict[str, List[Tuple[str, int]]]:
        if self._fanout_cache is None:
            fanout: Dict[str, List[Tuple[str, int]]] = {name: [] for name in self.gates}
            for gate in self.gates.values():
                for pin, source in enumerate(gate.fanin):
                    if source not in fanout:
                        raise KeyError(
                            f"gate {gate.name!r} references undefined signal {source!r}"
                        )
                    fanout[source].append((gate.name, pin))
            self._fanout_cache = fanout
        return self._fanout_cache

    def observability_sinks(self, signal: str) -> int:
        """Number of structural sinks plus one if the signal is a primary output."""
        return len(self.fanout(signal)) + (1 if self.is_primary_output(signal) else 0)

    # ------------------------------------------------------------------ #
    # fault-site lines
    # ------------------------------------------------------------------ #
    def lines(self, include_dff_outputs: bool = True) -> Iterator[Line]:
        """Enumerate every fault-site line of the circuit.

        Stems are enumerated for every signal that is relevant to the
        combinational block (primary inputs, PPIs and combinational gate
        outputs).  When a stem drives more than one sink, each sink connection
        is additionally enumerated as a branch line.
        """
        for signal, gate in self.gates.items():
            if gate.is_dff and not include_dff_outputs:
                continue
            yield Line(signal)
            sinks = self.fanout(signal)
            if len(sinks) + (1 if self.is_primary_output(signal) else 0) > 1:
                for sink, pin in sinks:
                    yield Line(signal, LineKind.BRANCH, sink, pin)

    def line_count(self) -> int:
        """Number of fault-site lines (stems + branches)."""
        return sum(1 for _ in self.lines())

    # ------------------------------------------------------------------ #
    # statistics & dunder helpers
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, int]:
        """Return a summary of the circuit size."""
        return {
            "primary_inputs": len(self.primary_inputs),
            "primary_outputs": len(self.primary_outputs),
            "flip_flops": len(self.flip_flops),
            "gates": len(self.combinational_gates),
            "signals": len(self.gates),
            "lines": self.line_count(),
        }

    def __contains__(self, signal: str) -> bool:
        return signal in self.gates

    def __len__(self) -> int:
        return len(self.gates)

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"Circuit({self.name!r}, pi={stats['primary_inputs']}, "
            f"po={stats['primary_outputs']}, ff={stats['flip_flops']}, "
            f"gates={stats['gates']})"
        )

    def copy(self, name: Optional[str] = None) -> "Circuit":
        """Return a structural deep copy of the circuit."""
        clone = Circuit(name or self.name)
        for pi in self.primary_inputs:
            clone.add_input(pi)
        for gate in self.gates.values():
            if gate.is_input:
                continue
            clone.add_gate(gate.name, gate.gate_type, list(gate.fanin))
        for po in self.primary_outputs:
            clone.add_output(po)
        return clone

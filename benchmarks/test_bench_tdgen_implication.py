"""Search-side implication: packed engine vs the interpreted reference.

PRs 1–2 made fault *simulation* bit-parallel; the dominant remaining loop
was the search side — TDgen's eight-valued set propagation replayed once per
decision alternative, SEMILET's per-frame pair simulation replayed once per
frame decision.  The unified implication engine
(:mod:`repro.tdgen.implication`) batches those alternatives into word slots
on the compiled netlist and evaluates decision sweeps incrementally over the
decision variable's influence cone.

``test_bench_tdgen_implication_speedup`` is the acceptance gate of that
refactor: a full TDgen+SEMILET campaign (local generation, propagation,
justification, synchronisation, verification and TDsim crediting) on the
s838 surrogate must run at least 3x faster with ``backend="packed"`` than
with ``backend="reference"`` — while producing an *identical*
:class:`~repro.core.results.CampaignResult` (same fault statuses, same
sequences, same coverage), which the assertion checks before timing is even
considered.
"""

from __future__ import annotations

import time

import pytest

from benchconfig import write_bench_results
from repro.core.flow import SequentialDelayATPG
from repro.data import load_circuit
from repro.faults.model import enumerate_delay_faults, sample_faults

#: Benchmark workload: a stride-sampled slice of the fault universe, large
#: enough that TDgen's heavily-backtracking faults dominate the runtime.
N_FAULTS = 40
SCALE = 0.5


def _fresh_workload():
    """A fresh circuit + fault sample (circuits cache compiled state)."""
    circuit = load_circuit("s838", scale=SCALE, seed=0)
    faults = sample_faults(enumerate_delay_faults(circuit), N_FAULTS)
    return circuit, faults


def _fingerprint(campaign):
    """Everything the campaign decided, in a comparable shape."""
    rows = []
    for result in campaign.fault_results:
        sequence = None
        if result.sequence is not None:
            s = result.sequence
            sequence = (
                tuple(tuple(sorted(v.items())) for v in s.initialization_vectors),
                tuple(sorted(s.v1.items())),
                tuple(sorted(s.v2.items())),
                tuple(tuple(sorted(v.items())) for v in s.propagation_vectors),
                s.observation_point,
            )
        rows.append(
            (
                str(result.fault),
                result.status.value,
                result.phase.value,
                result.local_backtracks,
                result.sequential_backtracks,
                tuple(str(f) for f in result.additionally_detected),
                sequence,
            )
        )
    return rows


def _run(backend):
    circuit, faults = _fresh_workload()
    atpg = SequentialDelayATPG(circuit, backend=backend)
    start = time.perf_counter()
    campaign = atpg.run(faults)
    return campaign, time.perf_counter() - start


def test_bench_tdgen_implication_speedup():
    """Acceptance: packed campaign >= 3x faster than reference, identical."""
    # Packed first: the global pairwise-image and backward-implication memo
    # caches are then warm for the reference run, which only biases the
    # measurement *against* the packed backend.  Each side is timed twice
    # and the best run is kept, so a scheduler hiccup on either side cannot
    # decide the gate.
    packed_campaign, packed_seconds = _run("packed")
    _, packed_again = _run("packed")
    packed_seconds = min(packed_seconds, packed_again)
    reference_campaign, reference_seconds = _run("reference")
    _, reference_again = _run("reference")
    reference_seconds = min(reference_seconds, reference_again)

    assert _fingerprint(packed_campaign) == _fingerprint(reference_campaign), (
        "packed and reference campaigns diverged"
    )

    speedup = reference_seconds / packed_seconds
    print(
        f"\nTDgen+SEMILET campaign (s838 surrogate, scale {SCALE}, "
        f"{N_FAULTS} faults): reference {reference_seconds:.2f}s -> "
        f"packed {packed_seconds:.2f}s ({speedup:.2f}x); "
        f"tested={packed_campaign.tested} untestable={packed_campaign.untestable} "
        f"aborted={packed_campaign.aborted}"
    )
    write_bench_results(
        "tdgen_implication",
        {
            "workload": {
                "circuit": f"s838@{SCALE}",
                "n_faults": N_FAULTS,
                "description": "full TDgen+SEMILET campaign, packed vs reference implication",
            },
            "reference_seconds": round(reference_seconds, 6),
            "packed_seconds": round(packed_seconds, 6),
            "speedup": round(speedup, 2),
            "gate": 3.0,
        },
    )
    assert speedup >= 3.0, (
        f"packed implication campaign only {speedup:.2f}x faster than reference "
        f"({reference_seconds:.2f}s vs {packed_seconds:.2f}s)"
    )

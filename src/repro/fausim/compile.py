"""One-time lowering of a levelised netlist to flat integer arrays.

The reference simulator interprets the netlist directly: every gate
evaluation goes through a dict lookup by signal name, an enum dispatch and a
freshly built input list.  For the inner loops of the paper's flow (good and
faulty machine simulation, executed once per fault per frame) that
interpretation overhead dominates the runtime.

:func:`compile_circuit` removes it: every signal of the combinational block
gets a dense integer slot, the evaluation order is frozen into an opcode
table, and the fanin lists are flattened into one shared index array.  The
compiled form is all the packed evaluator (:mod:`repro.fausim.packed_sim`)
touches in its hot loop — no strings, no dicts, no enum comparisons.

The compiled circuit is cached on the :class:`~repro.circuit.netlist.Circuit`
instance and invalidated together with the circuit's other structural caches,
so repeated simulator construction (one per targeted fault in the flow) pays
the lowering cost only once.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.circuit.gates import GateType
from repro.circuit.levelize import combinational_order
from repro.circuit.netlist import Circuit

# Opcodes of the compiled gate table.  Kept as plain ints so the evaluator
# dispatches on integer comparison instead of enum identity.
OP_AND = 0
OP_NAND = 1
OP_OR = 2
OP_NOR = 3
OP_NOT = 4
OP_BUF = 5
OP_XOR = 6
OP_XNOR = 7

_OPCODES: Dict[GateType, int] = {
    GateType.AND: OP_AND,
    GateType.NAND: OP_NAND,
    GateType.OR: OP_OR,
    GateType.NOR: OP_NOR,
    GateType.NOT: OP_NOT,
    GateType.BUF: OP_BUF,
    GateType.XOR: OP_XOR,
    GateType.XNOR: OP_XNOR,
}


@dataclasses.dataclass(frozen=True)
class CompiledCircuit:
    """Flat-array form of one circuit's combinational block.

    Slot layout: primary inputs first, then pseudo primary inputs, then the
    combinational gates in levelised evaluation order.  ``ops[i]``,
    ``outputs[i]`` and ``fanin_flat[fanin_offsets[i]:fanin_offsets[i + 1]]``
    describe the ``i``-th gate evaluation: its opcode, its output slot and
    the slots of its inputs in pin order.

    Attributes:
        circuit: the source netlist (kept for name lookups only).
        signal_names: slot index -> signal name.
        slot_of: signal name -> slot index.
        pi_slots: slots of the primary inputs, in declaration order.
        ppi_slots: slots of the pseudo primary inputs, in flip-flop order.
        po_slots: slots of the primary outputs, in declaration order.
        dff_data_slots: slot of each flip-flop's data input (PPO), aligned
            with ``ppi_slots``.
        ops / outputs / fanin_offsets / fanin_flat: the gate program.
        gate_index_of: output slot -> index into the gate program (used by
            the fault-injecting evaluators to locate a faulted gate).
    """

    circuit: Circuit
    signal_names: Tuple[str, ...]
    slot_of: Dict[str, int]
    pi_slots: Tuple[int, ...]
    ppi_slots: Tuple[int, ...]
    po_slots: Tuple[int, ...]
    dff_data_slots: Tuple[int, ...]
    ops: Tuple[int, ...]
    outputs: Tuple[int, ...]
    fanin_offsets: Tuple[int, ...]
    fanin_flat: Tuple[int, ...]
    gate_index_of: Dict[int, int]

    @property
    def num_signals(self) -> int:
        """Number of slots (primary inputs + PPIs + combinational gates)."""
        return len(self.signal_names)

    @property
    def num_gates(self) -> int:
        """Number of compiled gate evaluations."""
        return len(self.ops)


#: Process-wide count of actual (cache-missing) netlist lowerings.  The
#: service layer's cache tests read it to prove that a same-netlist
#: resubmission was served from the warmed circuit without recompiling.
_compile_count = 0


def compile_count() -> int:
    """How many real netlist lowerings this process has performed."""
    return _compile_count


def compile_circuit(circuit: Circuit) -> CompiledCircuit:
    """Lower ``circuit`` to its flat-array form (cached per circuit).

    The result is memoised on the circuit instance and recomputed when the
    circuit is structurally modified.
    """
    cached = getattr(circuit, "_compiled_cache", None)
    if cached is not None:
        return cached
    global _compile_count
    _compile_count += 1

    order = combinational_order(circuit)
    signal_names: List[str] = []
    slot_of: Dict[str, int] = {}

    for name in circuit.primary_inputs:
        slot_of[name] = len(signal_names)
        signal_names.append(name)
    for name in circuit.pseudo_primary_inputs:
        slot_of[name] = len(signal_names)
        signal_names.append(name)
    for name in order:
        slot_of[name] = len(signal_names)
        signal_names.append(name)

    ops: List[int] = []
    outputs: List[int] = []
    fanin_offsets: List[int] = [0]
    fanin_flat: List[int] = []
    for name in order:
        gate = circuit.gate(name)
        opcode = _OPCODES.get(gate.gate_type)
        if opcode is None:
            raise ValueError(f"gate type {gate.gate_type} is not combinationally evaluable")
        if not gate.fanin:
            raise ValueError(f"gate {name!r} has no inputs")
        if opcode in (OP_NOT, OP_BUF) and len(gate.fanin) != 1:
            raise ValueError(
                f"{gate.gate_type.value} expects 1 input(s), got {len(gate.fanin)}"
            )
        ops.append(opcode)
        outputs.append(slot_of[name])
        fanin_flat.extend(slot_of[source] for source in gate.fanin)
        fanin_offsets.append(len(fanin_flat))

    compiled = CompiledCircuit(
        circuit=circuit,
        signal_names=tuple(signal_names),
        slot_of=slot_of,
        pi_slots=tuple(slot_of[pi] for pi in circuit.primary_inputs),
        ppi_slots=tuple(slot_of[ppi] for ppi in circuit.pseudo_primary_inputs),
        po_slots=tuple(slot_of[po] for po in circuit.primary_outputs),
        dff_data_slots=tuple(slot_of[dff.fanin[0]] for dff in circuit.flip_flops),
        ops=tuple(ops),
        outputs=tuple(outputs),
        fanin_offsets=tuple(fanin_offsets),
        fanin_flat=tuple(fanin_flat),
        gate_index_of={slot: index for index, slot in enumerate(outputs)},
    )
    circuit._compiled_cache = compiled
    return compiled


@dataclasses.dataclass(frozen=True)
class NetlistDelta:
    """Structural difference between two compiled netlists.

    The changed-gate set is split by what a difference can affect:

    ``changed``
        Signals of the *new* circuit whose driving function differs — they
        did not exist before, or their gate type or fanin list changed.
        Their simulated *values* can differ between the two circuits, so the
        effect propagates forward through their sequential fanout cone.

    ``observability``
        Signals whose driver is identical but whose fanout sink set or
        primary-output membership changed.  Their values are the same under
        every input sequence; only how (and whether) transitions on them are
        *observed* differs, which affects exactly the faults that propagate
        through them — their sequential fanin cone, not their fanout cone.

    ``removed``
        Signals that exist only in the old circuit.  Their surviving
        neighbours always land in one of the two sets above: a rewired sink
        has a different fanin (``changed``), a source that lost the sink has
        a different fanout (``observability``).

    The incremental engine (:mod:`repro.store.incremental`) grows these sets
    into a sequential influence cone to decide which stored fault results
    survive a netlist edit.
    """

    changed: Tuple[str, ...]
    observability: Tuple[str, ...]
    removed: Tuple[str, ...]

    @property
    def is_empty(self) -> bool:
        """True when the two netlists are structurally identical."""
        return not self.changed and not self.observability and not self.removed


def diff_compiled(old: CompiledCircuit, new: CompiledCircuit) -> NetlistDelta:
    """Compute the changed-gate set between two compiled netlists.

    Signals are matched by name, so the diff is meaningful exactly when the
    new netlist is an *edit* of the old one (the incremental-ATPG contract).
    The comparison is purely structural — gate type, fanin list, fanout sink
    set and primary-output membership — and deliberately conservative: any
    local difference puts the signal into the changed or observability set,
    and the influence cone built on top of them does the rest.
    """
    old_circuit = old.circuit
    new_circuit = new.circuit
    old_outputs = set(old_circuit.primary_outputs)
    new_outputs = set(new_circuit.primary_outputs)
    changed: List[str] = []
    observability: List[str] = []
    for name, gate in new_circuit.gates.items():
        other = old_circuit.gates.get(name)
        if (
            other is None
            or gate.gate_type is not other.gate_type
            or list(gate.fanin) != list(other.fanin)
        ):
            changed.append(name)
        elif (name in new_outputs) != (name in old_outputs) or sorted(
            new_circuit.fanout(name)
        ) != sorted(old_circuit.fanout(name)):
            observability.append(name)
    removed = [name for name in old_circuit.gates if name not in new_circuit.gates]
    return NetlistDelta(
        changed=tuple(sorted(changed)),
        observability=tuple(sorted(observability)),
        removed=tuple(sorted(removed)),
    )

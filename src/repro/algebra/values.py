"""The eight values of the robust delay test algebra.

Each value is characterised by four semantic attributes:

* ``initial`` — the settled logic value in the first (initialisation) frame,
* ``final`` — the settled logic value in the second (test) frame,
* ``hazard`` — whether a temporary excursion from the steady value is possible,
* ``fault`` — whether the signal carries the targeted delay fault effect.

Transitions (``R``, ``F``, ``Rc``, ``Fc``) have no separate hazard attribute:
the algebra does not distinguish hazard-free from hazardous transitions; the
robustness of fault propagation is enforced solely through the ``Rc``/``Fc``
truth-table rules (paper Table 1).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple


@dataclasses.dataclass(frozen=True)
class DelayValue:
    """A single value of the eight-valued algebra.

    Instances are interned; use the module level constants (``V0``, ``V1``,
    ``R``, ``F``, ``H0``, ``H1``, ``RC``, ``FC``) or the lookup helpers, never
    construct new instances.
    """

    index: int
    name: str
    initial: int
    final: int
    hazard: bool
    fault: bool

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"<{self.name}>"

    @property
    def mask(self) -> int:
        """Bit mask of this value, for use in :class:`repro.algebra.sets.ValueSet`."""
        return 1 << self.index

    @property
    def is_steady(self) -> bool:
        """True for values whose initial and final frame values are equal."""
        return self.initial == self.final

    @property
    def is_transition(self) -> bool:
        """True for rising/falling values (fault carrying or not)."""
        return self.initial != self.final

    @property
    def is_rising(self) -> bool:
        """True for the rising transitions ``R`` and ``Rc``."""
        return self.initial == 0 and self.final == 1

    @property
    def is_falling(self) -> bool:
        """True for the falling transitions ``F`` and ``Fc``."""
        return self.initial == 1 and self.final == 0

    @property
    def is_hazard_free_steady(self) -> bool:
        """True for the clean steady values ``0`` and ``1``."""
        return self.is_steady and not self.hazard

    def strip_fault(self) -> "DelayValue":
        """Return the same waveform without the fault-effect marker."""
        if not self.fault:
            return self
        return R if self.is_rising else F

    def with_fault(self) -> "DelayValue":
        """Return the fault-carrying variant (only defined for transitions)."""
        if self.fault:
            return self
        if self is R:
            return RC
        if self is F:
            return FC
        raise ValueError(f"{self.name} cannot carry a fault effect (not a transition)")


V0 = DelayValue(0, "0", 0, 0, False, False)
V1 = DelayValue(1, "1", 1, 1, False, False)
R = DelayValue(2, "R", 0, 1, False, False)
F = DelayValue(3, "F", 1, 0, False, False)
H0 = DelayValue(4, "0h", 0, 0, True, False)
H1 = DelayValue(5, "1h", 1, 1, True, False)
RC = DelayValue(6, "Rc", 0, 1, False, True)
FC = DelayValue(7, "Fc", 1, 0, False, True)

ALL_VALUES: Tuple[DelayValue, ...] = (V0, V1, R, F, H0, H1, RC, FC)
TRANSITION_VALUES: Tuple[DelayValue, ...] = (R, F, RC, FC)
FAULT_VALUES: Tuple[DelayValue, ...] = (RC, FC)
STEADY_VALUES: Tuple[DelayValue, ...] = (V0, V1, H0, H1)
#: Values a primary input may take: PIs are hazard free and never originate
#: the fault effect (the fault effect is injected at the fault site only).
PI_VALUES: Tuple[DelayValue, ...] = (V0, V1, R, F)

_BY_NAME: Dict[str, DelayValue] = {value.name: value for value in ALL_VALUES}
_BY_NAME.update({"0H": H0, "1H": H1, "RC": RC, "FC": FC, "r": R, "f": F})


def value_from_name(name: str) -> DelayValue:
    """Look up a value by its printable name (``"0"``, ``"Rc"``, ``"1h"``, ...)."""
    key = name.strip()
    if key in _BY_NAME:
        return _BY_NAME[key]
    if key.lower() in ("0h", "1h"):
        return H0 if key.lower() == "0h" else H1
    raise KeyError(f"unknown delay algebra value {name!r}")


def value_from_pair(initial: Optional[int], final: Optional[int], hazard: bool = False) -> DelayValue:
    """Build a (non fault-carrying) value from its per-frame logic values.

    Both ``initial`` and ``final`` must be 0 or 1.  Transitions ignore the
    ``hazard`` flag (the algebra has no hazardous-transition values).
    """
    if initial not in (0, 1) or final not in (0, 1):
        raise ValueError(f"frame values must be 0 or 1, got ({initial!r}, {final!r})")
    if initial == final:
        if initial == 0:
            return H0 if hazard else V0
        return H1 if hazard else V1
    return R if final == 1 else F


def pi_value(initial: int, final: int) -> DelayValue:
    """Value of a primary input given the two test vectors (always hazard free)."""
    return value_from_pair(initial, final, hazard=False)

"""Deterministic tests of the incremental re-run engine on s27.

The contract under test: an incremental campaign (stored outcomes reused
for faults outside the edit's influence cone, the residue re-targeted) is
**fingerprint-identical** to a from-scratch serial campaign on the edited
netlist, for every ``backend`` and for every supported edit shape.  The
property-based companion (``tests/fuzz/test_incremental_fuzz.py``) fuzzes
the same contract over random circuits and perturbations; this module pins
the named cases and the failure modes.
"""

from __future__ import annotations

import pytest

from repro.circuit.gates import GateType
from repro.core.flow import SequentialDelayATPG
from repro.data import load_circuit
from repro.faults.model import enumerate_delay_faults
from repro.fausim.compile import compile_circuit, diff_compiled
from repro.obs.metrics import MetricsRegistry
from repro.orchestrate import OrchestratorConfig
from repro.store import CampaignStore, influence_cone, invalidate, run_incremental


def _config(**overrides) -> OrchestratorConfig:
    """A small serial config; overrides map onto OrchestratorConfig fields."""
    settings = {"jobs": 1, "local_backtrack_limit": 20, "sequential_backtrack_limit": 20}
    settings.update(overrides)
    return OrchestratorConfig(**settings)


def _scratch(circuit, config, metrics=None):
    """From-scratch serial campaign on ``circuit`` under ``config``."""
    return SequentialDelayATPG(circuit, metrics=metrics, **config.atpg_kwargs()).run()


def _store_with_base(tmp_path, circuit, config, **ingest_kwargs):
    """A store holding one finished base campaign for ``circuit``."""
    store = CampaignStore(str(tmp_path / "base.sqlite"))
    result = _scratch(circuit, config)
    store.ingest_result(result, circuit=circuit, config=config, **ingest_kwargs)
    return store, result


def _with_observer(circuit):
    """An ECO-style edit: observe the AND of the first two PIs at a new PO."""
    edited = circuit.copy()
    edited.add_gate("eco_obs", GateType.AND, list(edited.primary_inputs[:2]))
    edited.add_output("eco_obs")
    return edited


def _with_type_flip(circuit):
    """Flip the type of one multi-input combinational gate."""
    edited = circuit.copy()
    for name, gate in edited.gates.items():
        if gate.gate_type is GateType.NAND and len(gate.fanin) > 1:
            gate.gate_type = GateType.NOR
            edited._invalidate()
            return edited
    raise AssertionError("s27 has no NAND gate to flip")


def test_unchanged_circuit_reuses_everything(tmp_path):
    """An empty delta re-targets nothing and reproduces the base exactly."""
    circuit = load_circuit("s27")
    config = _config()
    store, base_result = _store_with_base(tmp_path, circuit, config)
    with store:
        outcome = run_incremental(load_circuit("s27"), store, config)
    assert outcome.delta.is_empty
    assert outcome.cone_size == 0
    assert outcome.invalidated == 0
    assert outcome.retargeted == 0
    assert outcome.result.fingerprint() == base_result.fingerprint()


@pytest.mark.parametrize("edit", [_with_observer, _with_type_flip])
@pytest.mark.parametrize("backend", [None, "bigint"])
def test_incremental_matches_scratch(tmp_path, edit, backend):
    """Fingerprint identity with from-scratch for both edit shapes."""
    circuit = load_circuit("s27")
    config = _config(backend=backend)
    store, _ = _store_with_base(tmp_path, circuit, config)
    edited = edit(load_circuit("s27"))
    with store:
        outcome = run_incremental(edited, store, config)
    scratch = _scratch(edit(load_circuit("s27")), config)
    assert outcome.result.fingerprint() == scratch.fingerprint()
    assert outcome.kept + outcome.invalidated == outcome.result.total_faults
    if edit is _with_observer:
        # The observer edit's cone is tiny, so most outcomes are reused; a
        # type flip near the PIs legitimately cones all of little s27.
        assert outcome.reused > 0
        assert outcome.invalidated < outcome.result.total_faults


def test_residue_is_exactly_the_cone_intersection(tmp_path):
    """invalidate() partitions the universe precisely along the cone."""
    circuit = load_circuit("s27")
    edited = _with_observer(load_circuit("s27"))
    delta = diff_compiled(compile_circuit(circuit), compile_circuit(edited))
    # The new gate's value differs (it did not exist); its PI fanins only
    # gained a sink, so they are observability-only.
    assert "eco_obs" in delta.changed
    assert set(delta.observability) == set(edited.primary_inputs[:2])
    cone = influence_cone(edited, delta)
    universe = enumerate_delay_faults(edited)
    kept, residue = invalidate(universe, cone)
    assert len(kept) + len(residue) == len(universe)
    assert all(fault.line.signal in cone for fault in residue)
    assert all(fault.line.signal not in cone for fault in kept)
    assert residue, "the edit must invalidate at least the new gate's faults"


def test_capped_base_retargets_missing_records(tmp_path):
    """Faults the capped base never recorded are targeted fresh."""
    circuit = load_circuit("s27")
    config = _config()
    store, base_result = _store_with_base(tmp_path, circuit, config)
    # Re-ingest a capped variant as the *latest* base: find_base picks it.
    capped = SequentialDelayATPG(circuit, **config.atpg_kwargs()).run(
        max_target_faults=5
    )
    with store:
        store.ingest_result(capped, circuit=circuit, config=config)
        outcome = run_incremental(load_circuit("s27"), store, config)
    assert outcome.retargeted > 0
    assert outcome.result.fingerprint() == base_result.fingerprint()


def test_incremental_rejects_rpg_prefix(tmp_path):
    """Random-prefix campaigns have no cone argument and are refused."""
    circuit = load_circuit("s27")
    config = _config(rpg_prefix=True)
    with CampaignStore(str(tmp_path / "base.sqlite")) as store:
        with pytest.raises(ValueError, match="rpg-prefix"):
            run_incremental(circuit, store, config)


def test_incremental_requires_matching_base(tmp_path):
    """An empty or mismatched store raises instead of running from scratch."""
    circuit = load_circuit("s27")
    config = _config()
    store, _ = _store_with_base(tmp_path, circuit, config)
    with store:
        with pytest.raises(LookupError, match="no campaign"):
            run_incremental(circuit, store, _config(robust=False))


def test_incremental_metrics_fold_stored_costs(tmp_path):
    """With metrics on, reused faults replay their stored search costs."""
    circuit = load_circuit("s27")
    config = _config()
    registry = MetricsRegistry()
    base = SequentialDelayATPG(circuit, metrics=registry, **config.atpg_kwargs())
    base_result = base.run()
    store = CampaignStore(str(tmp_path / "base.sqlite"))
    with store:
        store.ingest_result(
            base_result, circuit=circuit, config=config, costs=base.cost_log
        )
        incremental_registry = MetricsRegistry()
        outcome = run_incremental(
            load_circuit("s27"), store, config, metrics=incremental_registry
        )
    assert len(outcome.costs) == len(base.cost_log)
    assert [cost.fault for cost in outcome.costs] == [
        cost.fault for cost in base.cost_log
    ]
    decisions = sum(cost.decisions for cost in base.cost_log)
    assert sum(cost.decisions for cost in outcome.costs) == decisions


def test_observability_only_edit_keeps_disjoint_cones_intact(tmp_path):
    """The ECO edit's cone stays tiny: only the PI fanin cone is re-targeted."""
    circuit = load_circuit("s27")
    config = _config()
    store, _ = _store_with_base(tmp_path, circuit, config)
    edited = _with_observer(load_circuit("s27"))
    with store:
        outcome = run_incremental(edited, store, config)
    # Cone = the new gate plus its two PI fanins; nothing propagates forward
    # from an observability-only change.
    assert outcome.cone_size == 3
    assert outcome.reused > outcome.retargeted

"""The seeded incremental-equivalence fuzz loop.

Each seed deterministically generates one
:class:`tests.fuzz.harness.IncrementalFuzzCase` — a random synchronous
circuit, a random single-edit perturbation (gate type flip, fanin rewire,
added or removed gate) and random campaign settings (robustness mode,
simulation backend, optional base-campaign cap) — and asserts the
store-backed incremental re-run is fingerprint-identical to a from-scratch
campaign on the perturbed circuit, with the residue exactly the
influence-cone intersection.

The default budget keeps the suite inside tier-1 time (each case runs three
small campaigns); CI pushes and the nightly cron extend it via
``REPRO_FUZZ_INCR_CASES``.  A failing seed is shrunk to a minimal
reproduction and persisted into ``tests/fuzz/corpus/`` before the test
fails, so the discovery is pinned even if the seed budget later changes.
"""

from __future__ import annotations

import os

import pytest

from tests.fuzz.harness import (
    IncrementalFuzzCase,
    check_incremental_case,
    generate_incremental_case,
    persist_incremental_case,
    shrink_incremental_case,
)

#: Default bounded budget; ``REPRO_FUZZ_INCR_CASES`` extends it (CI cron: 400).
FUZZ_BUDGET = int(os.environ.get("REPRO_FUZZ_INCR_CASES", "12"))


@pytest.mark.parametrize("seed", range(FUZZ_BUDGET))
def test_incremental_matches_scratch_on_fuzzed_edit(seed):
    """Incremental re-run is bit-identical to from-scratch on one fuzzed edit."""
    case = generate_incremental_case(seed)
    failures = check_incremental_case(case)
    if failures:
        minimised = shrink_incremental_case(case)
        path = persist_incremental_case(
            minimised,
            check_incremental_case(minimised) or failures,
            note=f"shrunk from generate_incremental_case({seed})",
        )
        pytest.fail(
            f"seed {seed}: incremental equivalence violated ({failures[0]}); "
            f"minimised reproduction persisted to {path}"
        )


def test_incremental_case_serialisation_round_trips():
    """A case rebuilt from its JSON form replays identically."""
    case = generate_incremental_case(1)
    clone = IncrementalFuzzCase.from_json(case.to_json())
    assert clone.to_json() == case.to_json()
    assert check_incremental_case(clone) == check_incremental_case(case)


def test_incremental_shrinker_preserves_validity():
    """Shrink variants still build both circuits or are skipped."""
    from tests.fuzz.harness import (
        _is_valid_incremental,
        _shrink_incremental_candidates,
    )

    case = generate_incremental_case(2)
    variants = _shrink_incremental_candidates(case)
    assert variants, "generator produced an unshrinkable case"
    assert any(_is_valid_incremental(variant) for variant in variants)


def test_perturbation_kinds_all_reachable():
    """The generator exercises every perturbation kind within a seed window."""
    kinds = {generate_incremental_case(seed).perturb.kind for seed in range(80)}
    assert kinds == set(
        ("type_flip", "rewire", "add_gate", "remove_gate")
    ), f"unreachable perturbation kinds: {kinds}"

"""Enhanced-scan baseline: delay ATPG with full state access.

The prior work the paper positions itself against assumes a (partial or
enhanced) scan path: both vectors of the two-pattern test can be loaded into
the state register directly and the captured response can be scanned out.
Under that assumption the sequential problem disappears and TDgen alone
suffices.

This baseline models exactly that: the circuit is transformed into its *scan
model* — every flip-flop output becomes a primary input, every flip-flop data
input becomes a primary output — and TDgen is run on the now purely
combinational circuit.  Comparing its fault counts against the non-scan flow
quantifies how much testability the missing scan path costs (the large
sequentially-untestable fraction discussed in section 6 of the paper).

Expected-response computation and TDgen's search both dispatch through the
``backend`` parameter (:mod:`repro.fausim.backends` names, ``packed`` by
default).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.faults.model import FaultList, FaultStatus, GateDelayFault, enumerate_delay_faults
from repro.fausim.backends import create_simulator, resolve_backend
from repro.tdgen.engine import TDgen
from repro.tdgen.result import LocalTestStatus


def scan_model(circuit: Circuit) -> Circuit:
    """Combinational scan model of a sequential circuit.

    Flip-flop outputs become primary inputs (keeping their names so fault
    sites stay comparable), flip-flop data inputs become additional primary
    outputs.
    """
    model = Circuit(f"{circuit.name}-scan")
    for pi in circuit.primary_inputs:
        model.add_input(pi)
    for dff in circuit.flip_flops:
        model.add_input(dff.name)
    for gate in circuit.gates.values():
        if gate.is_input or gate.is_dff:
            continue
        model.add_gate(gate.name, gate.gate_type, list(gate.fanin))
    for po in circuit.primary_outputs:
        model.add_output(po)
    for ppo in circuit.pseudo_primary_outputs:
        if ppo not in model.primary_outputs:
            model.add_output(ppo)
    return model


@dataclasses.dataclass
class ScanTestPattern:
    """One scan-applied two-pattern test with its expected good response.

    ``initial`` / ``final`` are the fully specified vectors at the scan
    model's inputs (PIs plus scan-loaded state bits); ``expected_response``
    is the good-machine value of every PO and PPO under ``final`` — the
    response a tester compares the scanned-out capture against.
    """

    fault: GateDelayFault
    initial: Dict[str, int]
    final: Dict[str, int]
    expected_response: Dict[str, Optional[int]]


@dataclasses.dataclass
class ScanCampaignResult:
    """Fault counts achieved by the enhanced-scan baseline."""

    circuit_name: str
    total_faults: int
    tested: int
    untestable: int
    aborted: int
    pattern_count: int
    cpu_seconds: float
    patterns: List[ScanTestPattern] = dataclasses.field(default_factory=list)

    @property
    def fault_coverage(self) -> float:
        """Fraction of the fault universe the scan tests detected."""
        return self.tested / self.total_faults if self.total_faults else 0.0

    @property
    def fault_efficiency(self) -> float:
        """Fraction of faults with a definite verdict (tested or untestable)."""
        if self.total_faults == 0:
            return 0.0
        return (self.tested + self.untestable) / self.total_faults


class EnhancedScanATPG:
    """Run TDgen on the scan model of a sequential circuit.

    Args:
        circuit: the (sequential) circuit under test.
        robust: robust or non-robust delay fault model.
        backtrack_limit: TDgen abort limit.
        backend: simulation backend used to compute the expected good
            responses of the generated patterns (see
            :mod:`repro.fausim.backends`); the packed backend computes all
            responses in one bit-parallel pass.
    """

    def __init__(
        self,
        circuit: Circuit,
        robust: bool = True,
        backtrack_limit: int = 100,
        backend: Optional[str] = None,
    ) -> None:
        self.circuit = circuit
        self.model = scan_model(circuit)
        self.tdgen = TDgen(self.model, robust=robust, backtrack_limit=backtrack_limit)
        self.backend = resolve_backend(backend)

    def _expected_responses(
        self, tests: List[tuple]
    ) -> List[ScanTestPattern]:
        """Good-machine PO/PPO response of every successful two-pattern test."""
        if not tests:
            return []
        simulator = create_simulator(self.model, self.backend)
        finals = [final for _, _, final in tests]
        if hasattr(simulator, "combinational_batch"):
            frames = simulator.combinational_batch(finals, [{}] * len(finals))
        else:
            frames = [simulator.combinational(final, {}) for final in finals]
        observed = self.model.primary_outputs
        return [
            ScanTestPattern(
                fault=fault,
                initial=initial,
                final=final,
                expected_response={po: values[po] for po in observed},
            )
            for (fault, initial, final), values in zip(tests, frames)
        ]

    def run(
        self,
        faults: Optional[Sequence[GateDelayFault]] = None,
        max_target_faults: Optional[int] = None,
    ) -> ScanCampaignResult:
        """Target every fault of the (original) fault universe on the scan model."""
        fault_universe = (
            list(faults) if faults is not None else enumerate_delay_faults(self.circuit)
        )
        usable = [fault for fault in fault_universe if fault.line.signal in self.model]
        fault_list = FaultList(usable) if usable else None
        start = time.perf_counter()
        pattern_count = 0
        targeted = 0
        successful_tests: List[tuple] = []

        if fault_list is not None:
            for fault in usable:
                if fault_list.status(fault) is not FaultStatus.UNTARGETED:
                    continue
                if max_target_faults is not None and targeted >= max_target_faults:
                    break
                targeted += 1
                result = self.tdgen.generate(fault, allow_ppo_observation=True)
                if result.status is LocalTestStatus.SUCCESS:
                    fault_list.mark_tested([fault])
                    pattern_count += 2
                    pair = result.vector_pair()
                    successful_tests.append(
                        (
                            fault,
                            {pi: pair.initial.get(pi, 0) for pi in self.model.primary_inputs},
                            {pi: pair.final.get(pi, 0) for pi in self.model.primary_inputs},
                        )
                    )
                elif result.status is LocalTestStatus.UNTESTABLE:
                    fault_list.mark(fault, FaultStatus.UNTESTABLE)
                else:
                    fault_list.mark(fault, FaultStatus.ABORTED)

        counts = fault_list.counts() if fault_list is not None else {
            "total": 0, "tested": 0, "untestable": 0, "aborted": 0, "untargeted": 0,
        }
        return ScanCampaignResult(
            circuit_name=self.circuit.name,
            total_faults=counts["total"],
            tested=counts["tested"],
            untestable=counts["untestable"],
            aborted=counts["aborted"] + counts["untargeted"],
            pattern_count=pattern_count,
            cpu_seconds=time.perf_counter() - start,
            patterns=self._expected_responses(successful_tests),
        )

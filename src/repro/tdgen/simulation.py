"""Two-frame eight-valued forward implication with fault injection.

Given a (partial) assignment of primary input pairs and initial-frame values
of the pseudo primary inputs, :func:`simulate_two_frame` computes for every
signal the set of still-possible algebra values.  The simulation proceeds in
two passes:

1. a three-valued pass over the *initial* frame (slow clock, fault free) that
   determines the values the pseudo primary outputs settle to, and therefore
   the *final*-frame values the state register presents at the pseudo primary
   inputs during the test frame (the state-register coupling rule of the
   paper);
2. an eight-valued set pass over the combinational block with the fault
   injected at the fault site (``R``/``F`` converted to ``Rc``/``Fc`` at the
   fault line, and nowhere else).

Because the pass only ever propagates *sets of possible values* forward, a
singleton set at an observation point means the observation is guaranteed for
every completion of the unassigned inputs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Optional, Tuple

from repro.algebra.sets import (
    EMPTY_SET,
    ValueSet,
    contains,
    evaluate_gate_sets,
    has_fault_value,
    is_singleton,
    members,
    set_of,
    single_value,
)
from repro.algebra.values import (
    ALL_VALUES,
    DelayValue,
    F,
    FC,
    PI_VALUES,
    R,
    RC,
    V0,
    V1,
)
from repro.circuit.gates import evaluate_gate
from repro.circuit.netlist import Circuit, LineKind
from repro.faults.model import DelayFaultType, GateDelayFault
from repro.tdgen.context import TDgenContext

PI_SET_MASK: ValueSet = set_of(*PI_VALUES)
FAULT_MASK: ValueSet = set_of(RC, FC)


@dataclasses.dataclass
class TwoFrameState:
    """Result of one forward implication pass.

    Attributes:
        signal_sets: per-signal set of possible algebra values.  For a fault on
            a signal *stem* the stored set is the post-injection set (all sinks
            and observation points see it); for a *branch* fault the stem keeps
            its fault-free set and only the faulted gate input sees the
            injected set.
        frame1: three-valued settled value of every signal in the initial frame.
        fault_line_set: set of possible values on the fault line itself,
            after injection.
        ppi_pair_sets: the source sets used for the pseudo primary inputs.
        conflict_signal: first signal (in evaluation order) whose possibility
            set became empty during the propagation pass, or ``None``.  The
            pass records it so :meth:`has_conflict` — invoked once per
            decision by :class:`repro.tdgen.engine.TDgen` — does not have to
            re-scan every signal set.
        packed_handle: opaque backref set by the packed implication engine
            (:mod:`repro.tdgen.implication`) so a follow-up candidate sweep
            can start from this state's planes and re-evaluate only the
            decision variable's influence cone.  Never compared and always
            ``None`` for reference states.
    """

    signal_sets: Dict[str, ValueSet]
    frame1: Dict[str, Optional[int]]
    fault_line_set: ValueSet
    ppi_pair_sets: Dict[str, ValueSet]
    conflict_signal: Optional[str] = None
    packed_handle: Optional[object] = dataclasses.field(
        default=None, compare=False, repr=False
    )

    def observation_set(self, signal: str) -> ValueSet:
        """Value set visible at an observation point (PO or PPO signal)."""
        return self.signal_sets[signal]

    def definite_value(self, signal: str) -> Optional[DelayValue]:
        """The value of a signal if it is fully determined, else ``None``."""
        value_set = self.signal_sets[signal]
        if is_singleton(value_set):
            return single_value(value_set)
        return None

    def has_conflict(self) -> bool:
        """True if any signal has an empty possibility set.

        Answered from the ``conflict_signal`` recorded during the propagation
        pass — O(1) instead of a scan over every signal set.
        """
        return self.conflict_signal is not None


def _inject(value_set: ValueSet, fault_type: DelayFaultType) -> ValueSet:
    """Convert the activating transition into its fault-carrying variant."""
    activation = fault_type.activation_value
    if not contains(value_set, activation):
        return value_set
    injected = value_set & ~activation.mask
    injected |= fault_type.fault_value.mask
    return injected


def branch_fault_key(fault: Optional[GateDelayFault]) -> Optional[Tuple[str, int]]:
    """The ``(sink gate, pin)`` a branch fault injects at, or ``None``.

    Stem faults (and the fault-free case) have no branch key: their injection
    happens at the driving signal itself.
    """
    if fault is not None and fault.line.kind is LineKind.BRANCH:
        return (fault.line.sink, fault.line.pin)
    return None


def branch_injected_input_sets(
    gate,
    signal_sets: Mapping[str, ValueSet],
    fault: Optional[GateDelayFault],
    key: Optional[Tuple[str, int]],
) -> list:
    """The value sets a gate actually sees on its inputs, in pin order.

    Re-applies the branch-fault injection on the single faulted pin.  This is
    the one shared definition of branch injection: the forward pass of
    :func:`simulate_two_frame` and the engine-facing :func:`gate_input_sets`
    (D-frontier, backtrace) both call it, so the two views cannot drift.

    Args:
        gate: the gate whose inputs are read (``repro.circuit`` gate object).
        signal_sets: current per-signal possibility sets.
        fault: the targeted fault (``None`` for the fault-free pass).
        key: precomputed :func:`branch_fault_key` of ``fault``.
    """
    input_sets = [signal_sets[source] for source in gate.fanin]
    if key is not None and key[0] == gate.name:
        pin = key[1]
        if (
            fault is not None
            and pin is not None
            and 0 <= pin < len(gate.fanin)
            and gate.fanin[pin] == fault.line.signal
        ):
            input_sets[pin] = _inject(input_sets[pin], fault.fault_type)
    return input_sets


def _ppi_pair_set(initial: Optional[int], final: Optional[int]) -> ValueSet:
    """Possible values of a pseudo primary input given its two frame values.

    Flip-flop outputs change only at the clock edge, so they are hazard free
    and never fault-originating: the candidates are ``0``, ``1``, ``R``, ``F``.
    """
    mask = 0
    for value in PI_VALUES:
        if initial is not None and value.initial != initial:
            continue
        if final is not None and value.final != final:
            continue
        mask |= value.mask
    return mask


def simulate_two_frame(
    context: TDgenContext,
    pi_values: Mapping[str, Optional[DelayValue]],
    ppi_initial: Mapping[str, Optional[int]],
    fault: Optional[GateDelayFault] = None,
    robust: bool = True,
) -> TwoFrameState:
    """Forward implication of the two local time frames.

    Args:
        context: precomputed circuit data.
        pi_values: assigned pair value per primary input (``None`` / missing
            means unassigned).
        ppi_initial: assigned initial-frame value per pseudo primary input.
        fault: the targeted gate delay fault; ``None`` simulates the fault-free
            pair (used by the delay fault simulator for the good machine).
        robust: use the robust (paper Table 1) or the relaxed non-robust tables.
    """
    circuit = context.circuit

    # ---- pass 1: three-valued initial (slow clock) frame ------------------- #
    frame1: Dict[str, Optional[int]] = {}
    for pi in circuit.primary_inputs:
        value = pi_values.get(pi)
        frame1[pi] = value.initial if value is not None else None
    for ppi in circuit.pseudo_primary_inputs:
        frame1[ppi] = ppi_initial.get(ppi)
    for name in context.order:
        gate = circuit.gate(name)
        frame1[name] = evaluate_gate(gate.gate_type, [frame1[s] for s in gate.fanin])

    # ---- source sets -------------------------------------------------------- #
    signal_sets: Dict[str, ValueSet] = {}
    ppi_pair_sets: Dict[str, ValueSet] = {}
    for pi in circuit.primary_inputs:
        value = pi_values.get(pi)
        signal_sets[pi] = value.mask if value is not None else PI_SET_MASK
    for dff in circuit.flip_flops:
        ppi = dff.name
        ppo = dff.fanin[0]
        pair_set = _ppi_pair_set(ppi_initial.get(ppi), frame1[ppo])
        ppi_pair_sets[ppi] = pair_set
        signal_sets[ppi] = pair_set

    # ---- fault injection bookkeeping ---------------------------------------- #
    stem_fault_signal: Optional[str] = None
    if fault is not None and fault.line.kind is LineKind.STEM:
        stem_fault_signal = fault.line.signal
    branch_key = branch_fault_key(fault)

    # Source signals may themselves be the fault stem (a PI or PPI stem fault).
    if stem_fault_signal is not None and stem_fault_signal in signal_sets:
        signal_sets[stem_fault_signal] = _inject(signal_sets[stem_fault_signal], fault.fault_type)

    # ---- pass 2: eight-valued set propagation ------------------------------- #
    conflict_signal: Optional[str] = None
    for name in context.order:
        gate = circuit.gate(name)
        input_sets = branch_injected_input_sets(gate, signal_sets, fault, branch_key)
        output_set = evaluate_gate_sets(gate.gate_type, input_sets, robust)
        if stem_fault_signal == name:
            output_set = _inject(output_set, fault.fault_type)
        signal_sets[name] = output_set
        if output_set == EMPTY_SET and conflict_signal is None:
            conflict_signal = name

    # ---- fault line view ----------------------------------------------------- #
    if fault is None:
        fault_line_set = 0
    elif fault.line.kind is LineKind.STEM:
        fault_line_set = signal_sets[fault.line.signal]
    else:
        fault_line_set = _inject(signal_sets[fault.line.signal], fault.fault_type)

    return TwoFrameState(
        signal_sets=signal_sets,
        frame1=frame1,
        fault_line_set=fault_line_set,
        ppi_pair_sets=ppi_pair_sets,
        conflict_signal=conflict_signal,
    )


def gate_input_sets(
    state: TwoFrameState,
    context: TDgenContext,
    gate_name: str,
    fault: Optional[GateDelayFault] = None,
) -> Dict[int, ValueSet]:
    """The value sets a gate actually sees on its input pins.

    Delegates to :func:`branch_injected_input_sets` — the same helper the
    forward pass uses — so the engine's D-frontier and backtrace reason about
    exactly the sets the forward pass propagated.
    """
    gate = context.circuit.gate(gate_name)
    input_sets = branch_injected_input_sets(
        gate, state.signal_sets, fault, branch_fault_key(fault)
    )
    return dict(enumerate(input_sets))


def good_machine_values(
    context: TDgenContext,
    pi_values: Mapping[str, DelayValue],
    ppi_initial: Mapping[str, int],
    robust: bool = True,
) -> Dict[str, DelayValue]:
    """Fully-specified fault-free two-frame simulation.

    All primary inputs and all pseudo primary input initial values must be
    assigned; the result maps every signal to its single algebra value.  Used
    by the delay fault simulator (TDsim) and by the flow's final validation.
    """
    state = simulate_two_frame(context, pi_values, ppi_initial, fault=None, robust=robust)
    values: Dict[str, DelayValue] = {}
    for signal, value_set in state.signal_sets.items():
        if not is_singleton(value_set):
            raise ValueError(
                f"signal {signal!r} is not fully determined; "
                "good_machine_values requires a complete assignment"
            )
        values[signal] = single_value(value_set)
    return values

"""Unit tests of the metric primitives (:mod:`repro.obs.metrics`).

Covers the registry API (counters, timers, histograms, gauges, the ``timed``
context manager), the null registry's no-op contract, thread safety under
concurrent writers, snapshot JSON round-trips, and — the property the
orchestrator's shard merge leans on — merge commutativity and associativity
across arbitrary shard orderings.
"""

from __future__ import annotations

import itertools
import json
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRIC_HELP,
    NULL_REGISTRY,
    MetricsRegistry,
    MetricsSnapshot,
    NullRegistry,
    metric_key,
    resolve_metrics,
    split_metric_key,
)


# --------------------------------------------------------------------- #
# keys
# --------------------------------------------------------------------- #
def test_metric_key_without_labels_is_the_name():
    assert metric_key("repro_faults_total") == "repro_faults_total"
    assert metric_key("repro_faults_total", {}) == "repro_faults_total"


def test_metric_key_sorts_labels():
    key = metric_key("m", {"b": 2, "a": "x"})
    assert key == 'm{a="x",b="2"}'
    assert key == metric_key("m", {"a": "x", "b": 2})


def test_split_metric_key_round_trips():
    for labels in ({}, {"status": "tested"}, {"phase": "local test generation", "z": "1"}):
        key = metric_key("repro_faults_total", labels)
        name, parsed = split_metric_key(key)
        assert name == "repro_faults_total"
        assert dict(parsed) == {k: str(v) for k, v in labels.items()}


# --------------------------------------------------------------------- #
# registry API
# --------------------------------------------------------------------- #
def test_counters_accumulate_per_label_set():
    registry = MetricsRegistry()
    registry.inc("repro_faults_total", status="tested")
    registry.inc("repro_faults_total", 2, status="tested")
    registry.inc("repro_faults_total", status="aborted")
    registry.inc("repro_decisions_total", 10)
    assert registry.counter_value("repro_faults_total", status="tested") == 3
    assert registry.counter_value("repro_faults_total", status="aborted") == 1
    assert registry.counter_value("repro_faults_total", status="untestable") == 0
    assert registry.counter_sum("repro_faults_total") == 4
    assert registry.counter_sum("repro_decisions_total") == 10


def test_counter_sum_ignores_prefix_siblings():
    registry = MetricsRegistry()
    registry.inc("repro_faults_total", 5)
    registry.inc("repro_faults_total_extra", 100)
    assert registry.counter_sum("repro_faults_total") == 5


def test_timers_record_count_and_sum():
    registry = MetricsRegistry()
    registry.observe("repro_phase_seconds", 0.5, phase="tdgen")
    registry.observe("repro_phase_seconds", 0.25, phase="tdgen")
    snapshot = registry.snapshot()
    timer = snapshot.timers['repro_phase_seconds{phase="tdgen"}']
    assert timer["count"] == 2
    assert timer["sum"] == pytest.approx(0.75)


def test_timed_context_manager_observes_once():
    registry = MetricsRegistry()
    with registry.timed("repro_phase_seconds", phase="verify"):
        pass
    timer = registry.snapshot().timers['repro_phase_seconds{phase="verify"}']
    assert timer["count"] == 1
    assert timer["sum"] >= 0


def test_histogram_buckets_and_totals():
    registry = MetricsRegistry()
    registry.observe_value("repro_fault_seconds", 0.0004)  # first bucket
    registry.observe_value("repro_fault_seconds", 0.02)    # <= 0.05
    registry.observe_value("repro_fault_seconds", 99.0)    # above every bound
    hist = registry.snapshot().histograms["repro_fault_seconds"]
    assert hist["buckets"] == list(DEFAULT_BUCKETS)
    assert sum(hist["counts"]) == 2  # the overflow sample is count-only
    assert hist["count"] == 3
    assert hist["sum"] == pytest.approx(0.0004 + 0.02 + 99.0)
    assert hist["counts"][0] == 1
    assert hist["counts"][DEFAULT_BUCKETS.index(0.05)] == 1


def test_gauges_keep_the_last_value():
    registry = MetricsRegistry()
    registry.set_gauge("repro_queue_depth", 3)
    registry.set_gauge("repro_queue_depth", 1)
    assert registry.snapshot().gauges["repro_queue_depth"] == 1


def test_thread_safety_under_concurrent_writers():
    registry = MetricsRegistry()

    def hammer():
        for _ in range(2000):
            registry.inc("repro_decisions_total")
            registry.observe("repro_phase_seconds", 0.001, phase="tdgen")
            registry.observe_value("repro_fault_seconds", 0.01)

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    snapshot = registry.snapshot()
    assert snapshot.counters["repro_decisions_total"] == 16000
    assert snapshot.timers['repro_phase_seconds{phase="tdgen"}']["count"] == 16000
    assert snapshot.histograms["repro_fault_seconds"]["count"] == 16000


# --------------------------------------------------------------------- #
# null registry
# --------------------------------------------------------------------- #
def test_null_registry_is_disabled_and_inert():
    assert NULL_REGISTRY.enabled is False
    assert MetricsRegistry.enabled is True
    NULL_REGISTRY.inc("repro_faults_total", status="tested")
    NULL_REGISTRY.observe("repro_phase_seconds", 1.0)
    NULL_REGISTRY.observe_value("repro_fault_seconds", 1.0)
    NULL_REGISTRY.set_gauge("repro_queue_depth", 5)
    NULL_REGISTRY.absorb(MetricsSnapshot(counters={"x": 1}))
    with NULL_REGISTRY.timed("repro_phase_seconds", phase="campaign"):
        pass
    assert NULL_REGISTRY.counter_value("repro_faults_total", status="tested") == 0
    assert NULL_REGISTRY.counter_sum("repro_faults_total") == 0
    empty = NULL_REGISTRY.snapshot()
    assert not empty.counters and not empty.timers
    assert not empty.histograms and not empty.gauges


def test_null_timed_returns_the_shared_instance():
    assert NULL_REGISTRY.timed("a") is NULL_REGISTRY.timed("b")


def test_resolve_metrics():
    assert resolve_metrics(None) is NULL_REGISTRY
    registry = MetricsRegistry()
    assert resolve_metrics(registry) is registry
    null = NullRegistry()
    assert resolve_metrics(null) is null


# --------------------------------------------------------------------- #
# snapshots: round-trip, merge, absorb
# --------------------------------------------------------------------- #
def _sample_registry(seed):
    """A registry whose contents depend deterministically on ``seed``."""
    registry = MetricsRegistry()
    registry.inc("repro_faults_total", seed + 1, status="tested")
    registry.inc("repro_decisions_total", seed * 10)
    # Dyadic values: float sums of these are exact, so merge order cannot
    # introduce rounding differences into the order-independence check.
    registry.observe("repro_phase_seconds", 0.125 * (seed + 1), phase="tdgen")
    registry.observe_value("repro_fault_seconds", 0.03125 * (seed + 1))
    return registry


def test_snapshot_json_round_trip():
    snapshot = _sample_registry(3).snapshot()
    snapshot.gauges["repro_queue_depth"] = 2
    payload = json.loads(json.dumps(snapshot.to_json()))
    rebuilt = MetricsSnapshot.from_json(payload)
    assert rebuilt.to_json() == snapshot.to_json()


def test_merge_is_commutative_and_associative():
    snapshots = [_sample_registry(seed).snapshot() for seed in range(4)]
    reference = MetricsSnapshot.merge_all(snapshots).to_json()
    for ordering in itertools.permutations(range(4)):
        merged = MetricsSnapshot.merge_all(snapshots[i] for i in ordering)
        assert merged.to_json() == reference, ordering
    # Explicit associativity: (a + b) + c == a + (b + c).
    a, b, c = snapshots[:3]
    assert a.merge(b).merge(c).to_json() == a.merge(b.merge(c)).to_json()


def test_merge_does_not_mutate_its_inputs():
    a = _sample_registry(1).snapshot()
    b = _sample_registry(2).snapshot()
    before = (a.to_json(), b.to_json())
    a.merge(b)
    assert (a.to_json(), b.to_json()) == before


def test_merge_rejects_mismatched_histogram_buckets():
    a = MetricsRegistry()
    a.observe_value("h", 1.0, buckets=(1.0, 2.0))
    b = MetricsRegistry()
    b.observe_value("h", 1.0, buckets=(1.0, 5.0))
    with pytest.raises(ValueError, match="mismatched bucket bounds"):
        a.snapshot().merge(b.snapshot())


def test_absorb_equals_merge():
    registry = _sample_registry(0)
    incoming = _sample_registry(5).snapshot()
    expected = registry.snapshot().merge(incoming).to_json()
    registry.absorb(incoming)
    assert registry.snapshot().to_json() == expected


def test_metric_help_names_follow_prometheus_conventions():
    for name in METRIC_HELP:
        assert name.startswith("repro_"), name
        assert " " not in name

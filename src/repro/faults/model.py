"""Gate delay fault model and fault-list bookkeeping.

A :class:`GateDelayFault` is a (line, transition) pair: the line is a signal
stem or a fanout branch (:class:`repro.circuit.Line`), the transition is
Slow-to-Rise or Slow-to-Fall.  The fault is *provoked* by the corresponding
transition at the line (``R`` for StR, ``F`` for StF) and, once provoked,
behaves like the D / D̄ of static ATPG: the late transition means the faulty
circuit still shows the initial value when the fast clock samples.

:class:`FaultList` tracks the per-fault status used in the paper's Table 3:
*tested*, *untestable* or *aborted* (plus *untargeted* for faults not yet
processed).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Iterable, Iterator, List, Optional

from repro.algebra.values import DelayValue, F, FC, R, RC
from repro.circuit.netlist import Circuit, Line


class DelayFaultType(enum.Enum):
    """Transition direction that is slow."""

    SLOW_TO_RISE = "StR"
    SLOW_TO_FALL = "StF"

    @property
    def activation_value(self) -> DelayValue:
        """The transition that provokes the fault (``R`` for StR, ``F`` for StF)."""
        return R if self is DelayFaultType.SLOW_TO_RISE else F

    @property
    def fault_value(self) -> DelayValue:
        """The fault-carrying value at the provoked fault site (``Rc`` / ``Fc``)."""
        return RC if self is DelayFaultType.SLOW_TO_RISE else FC

    @property
    def faulty_final_value(self) -> int:
        """Settled value the *faulty* circuit shows at the fast sample time."""
        return 0 if self is DelayFaultType.SLOW_TO_RISE else 1

    @property
    def good_final_value(self) -> int:
        """Settled value the *good* circuit shows at the fast sample time."""
        return 1 if self is DelayFaultType.SLOW_TO_RISE else 0


@dataclasses.dataclass(frozen=True)
class GateDelayFault:
    """A single robust gate delay fault."""

    line: Line
    fault_type: DelayFaultType

    def __str__(self) -> str:
        return f"{self.line} {self.fault_type.value}"

    @property
    def signal(self) -> str:
        """The driving signal of the fault line."""
        return self.line.signal

    @property
    def activation_value(self) -> DelayValue:
        """The transition that provokes this fault (``R`` or ``F``)."""
        return self.fault_type.activation_value

    @property
    def fault_value(self) -> DelayValue:
        """The fault-carrying value at the provoked site (``Rc`` or ``Fc``)."""
        return self.fault_type.fault_value

    def to_json(self) -> Dict[str, object]:
        """JSON-serialisable representation (see :meth:`from_json`)."""
        return {"line": self.line.to_json(), "type": self.fault_type.value}

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "GateDelayFault":
        """Rebuild a fault from its :meth:`to_json` representation.

        Faults are value types (frozen dataclasses), so a deserialised fault
        compares and hashes equal to the original — it can be used directly as
        a :class:`FaultList` key, which is what the campaign journal relies on.
        """
        return cls(
            line=Line.from_json(payload["line"]),
            fault_type=DelayFaultType(payload["type"]),
        )


class FaultStatus(enum.Enum):
    """Status of a fault during/after the ATPG campaign (Table 3 columns)."""

    UNTARGETED = "untargeted"
    TESTED = "tested"
    UNTESTABLE = "untestable"
    ABORTED = "aborted"


def enumerate_delay_faults(
    circuit: Circuit,
    include_branches: bool = True,
    include_dff_outputs: bool = True,
) -> List[GateDelayFault]:
    """Enumerate the complete gate delay fault universe of a circuit.

    Every line (stem and, optionally, fanout branch) gets both an StR and an
    StF fault, matching the paper: "each gate output and each fan out branch
    can contain a Slow-to-Rise and a Slow-to-Fall fault".
    """
    faults: List[GateDelayFault] = []
    for line in circuit.lines(include_dff_outputs=include_dff_outputs):
        if not include_branches and line.is_branch:
            continue
        faults.append(GateDelayFault(line, DelayFaultType.SLOW_TO_RISE))
        faults.append(GateDelayFault(line, DelayFaultType.SLOW_TO_FALL))
    return faults


def sample_faults(faults: List[GateDelayFault], max_count: Optional[int]) -> List[GateDelayFault]:
    """Take a representative sample of a fault list.

    When a campaign has to be capped (for example in the benchmark harness),
    taking the *first* ``max_count`` faults would bias the sample towards the
    primary inputs, which are the hardest lines to test robustly in deep
    circuits.  This helper instead samples with a uniform stride across the
    enumeration order, which spreads the targets over the whole circuit.
    """
    if max_count is None or max_count <= 0 or max_count >= len(faults):
        return list(faults)
    stride = len(faults) / max_count
    return [faults[int(index * stride)] for index in range(max_count)]


class FaultList:
    """Mutable fault-status table for an ATPG campaign."""

    def __init__(self, faults: Iterable[GateDelayFault]) -> None:
        self._status: Dict[GateDelayFault, FaultStatus] = {
            fault: FaultStatus.UNTARGETED for fault in faults
        }
        if not self._status:
            raise ValueError("fault list is empty")

    # -- iteration -------------------------------------------------------
    def __iter__(self) -> Iterator[GateDelayFault]:
        return iter(self._status)

    def __len__(self) -> int:
        return len(self._status)

    def __contains__(self, fault: GateDelayFault) -> bool:
        return fault in self._status

    def faults(self) -> List[GateDelayFault]:
        """All faults in enumeration order."""
        return list(self._status)

    def untargeted(self) -> List[GateDelayFault]:
        """Faults that still need to be targeted by the generator."""
        return [fault for fault, status in self._status.items() if status is FaultStatus.UNTARGETED]

    def with_status(self, status: FaultStatus) -> List[GateDelayFault]:
        """All faults currently carrying ``status``, in enumeration order."""
        return [fault for fault, current in self._status.items() if current is status]

    # -- updates ---------------------------------------------------------
    def status(self, fault: GateDelayFault) -> FaultStatus:
        """Current status of one fault."""
        return self._status[fault]

    def mark(self, fault: GateDelayFault, status: FaultStatus) -> None:
        """Set the status of a fault.

        A fault already marked *tested* is never downgraded (a later failed
        targeting attempt does not matter once a pattern covers it).
        """
        if fault not in self._status:
            raise KeyError(f"unknown fault {fault}")
        if self._status[fault] is FaultStatus.TESTED and status is not FaultStatus.TESTED:
            return
        self._status[fault] = status

    def mark_tested(self, faults: Iterable[GateDelayFault]) -> int:
        """Mark several faults tested; returns how many were newly marked."""
        newly = 0
        for fault in faults:
            if fault in self._status and self._status[fault] is not FaultStatus.TESTED:
                self._status[fault] = FaultStatus.TESTED
                newly += 1
        return newly

    # -- statistics ------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        """Return the Table 3 style counters."""
        summary = {status.value: 0 for status in FaultStatus}
        for status in self._status.values():
            summary[status.value] += 1
        summary["total"] = len(self._status)
        return summary

    def coverage(self) -> float:
        """Fraction of faults marked tested."""
        counts = self.counts()
        return counts["tested"] / counts["total"]

    def __repr__(self) -> str:
        counts = self.counts()
        return (
            f"FaultList(total={counts['total']}, tested={counts['tested']}, "
            f"untestable={counts['untestable']}, aborted={counts['aborted']}, "
            f"untargeted={counts['untargeted']})"
        )

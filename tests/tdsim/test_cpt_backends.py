"""Differential harness: TDsim with the packed backend vs the reference.

:class:`repro.tdsim.cpt.DelayFaultSimulator` routes its exact injection
simulations through the fault-parallel packed evaluator when
``backend="packed"``; the set of detections (including observation points and
the through-PPO flag) must be identical to the interpreted reference path on
any circuit and pattern.
"""

from __future__ import annotations

import random

import pytest

from repro.algebra.values import PI_VALUES
from repro.tdsim.cpt import DelayFaultSimulator

from tests.fausim.test_packed_differential import random_circuit


def _full_pattern(rng, circuit):
    pi_values = {pi: rng.choice(PI_VALUES) for pi in circuit.primary_inputs}
    ppi_initial = {ppi: rng.randint(0, 1) for ppi in circuit.pseudo_primary_inputs}
    return pi_values, ppi_initial


def _as_comparable(detections):
    return {
        detection.fault: (detection.observation_point, detection.through_ppo)
        for detection in detections
    }


@pytest.mark.parametrize("seed", range(0, 30, 2))
@pytest.mark.parametrize("robust", [True, False])
def test_simulate_identical_across_backends(seed, robust):
    circuit = random_circuit(seed)
    rng = random.Random(9000 + seed)
    reference = DelayFaultSimulator(circuit, robust=robust, backend="reference")
    packed = DelayFaultSimulator(circuit, robust=robust, backend="packed")

    for _ in range(3):
        pi_values, ppi_initial = _full_pattern(rng, circuit)
        # Declare every state bit propagation-observable so phase B (the
        # batched PPO confirmation) is exercised, with required values taken
        # from the good machine's initial frame.
        observable = list(circuit.pseudo_primary_inputs)
        want = reference.simulate(pi_values, ppi_initial, observable_ppos=observable)
        got = packed.simulate(pi_values, ppi_initial, observable_ppos=observable)
        assert _as_comparable(got) == _as_comparable(want), f"seed {seed}"


@pytest.mark.parametrize("seed", range(1, 20, 3))
def test_simulate_with_required_ppos_identical(seed):
    circuit = random_circuit(seed)
    if not circuit.flip_flops:
        pytest.skip("combinational sample")
    rng = random.Random(9500 + seed)
    reference = DelayFaultSimulator(circuit, backend="reference")
    packed = DelayFaultSimulator(circuit, backend="packed")

    for _ in range(3):
        pi_values, ppi_initial = _full_pattern(rng, circuit)
        ppos = [dff.fanin[0] for dff in circuit.flip_flops]
        required = {ppo: rng.randint(0, 1) for ppo in ppos}
        want = reference.simulate(
            pi_values,
            ppi_initial,
            observable_ppos=ppos,
            required_ppo_values=required,
        )
        got = packed.simulate(
            pi_values,
            ppi_initial,
            observable_ppos=ppos,
            required_ppo_values=required,
        )
        assert _as_comparable(got) == _as_comparable(want), f"seed {seed}"


def test_partial_pattern_rejected_by_both_backends(s27):
    for backend in ("reference", "packed"):
        simulator = DelayFaultSimulator(s27, backend=backend)
        with pytest.raises(ValueError, match="fully specified"):
            simulator.simulate({"G0": PI_VALUES[0]}, {})

"""End-to-end coverage of the ``python -m repro`` command line interface.

Each subcommand is exercised the way a user would run it, on the embedded
s27 benchmark so the tests stay fast.  One test goes through a real
subprocess to cover the ``python -m repro`` entry point itself; the rest
call :func:`repro.__main__.main` in-process and inspect stdout.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.data import list_circuits
from repro.data.s27 import S27_BENCH


def run_cli(capsys, *argv):
    """Run the CLI in-process and return (exit_code, stdout)."""
    code = main(list(argv))
    return code, capsys.readouterr().out


def test_circuits_lists_registry(capsys):
    code, out = run_cli(capsys, "circuits")
    assert code == 0
    assert "s27" in out and "s1238" in out
    assert "embedded" in out and "surrogate" in out
    # One header plus one row per registered circuit.
    assert len(out.strip().splitlines()) == 1 + len(list_circuits())


def test_tables_prints_algebra(capsys):
    code, out = run_cli(capsys, "tables")
    assert code == 0
    assert "Table 1" in out and "Table 2" in out
    # The eight-valued algebra symbols appear in the rendered tables.
    for symbol in ("R", "F", "0h", "1h", "Rc", "Fc"):
        assert symbol in out


def test_campaign_on_s27(capsys):
    code, out = run_cli(capsys, "campaign", "--circuits", "s27")
    assert code == 0
    assert "s27" in out
    assert "tested" in out and "untstbl" in out
    assert "comb.untestable" in out


def _without_timings(report: str) -> str:
    """Drop the wall-clock column, the only backend-dependent output."""
    lines = []
    for line in report.splitlines():
        fields = line.split()
        if fields and "." in fields[-1] and fields[-1].replace(".", "").isdigit():
            fields = fields[:-1]
        lines.append(" ".join(fields))
    return "\n".join(lines)


def test_campaign_packed_backend_matches_reference(capsys):
    code, reference_out = run_cli(
        capsys, "campaign", "--circuits", "s27", "--backend", "reference"
    )
    assert code == 0
    # No --backend: the process default must be the packed backend.
    code, packed_out = run_cli(capsys, "campaign", "--circuits", "s27")
    assert code == 0
    assert _without_timings(packed_out) == _without_timings(reference_out)


def test_campaign_with_max_faults_and_options(capsys):
    code, out = run_cli(
        capsys,
        "campaign",
        "--circuits",
        "s27",
        "--max-faults",
        "5",
        "--non-robust",
        "--backtrack-limit",
        "50",
    )
    assert code == 0
    assert "s27" in out


def test_campaign_from_bench_file(tmp_path, capsys):
    bench = tmp_path / "mini.bench"
    bench.write_text(S27_BENCH)
    code, out = run_cli(capsys, "campaign", "--circuits", str(bench))
    assert code == 0
    assert "mini" in out


def test_campaign_jobs4_row_matches_serial(capsys):
    """The acceptance check: ``--jobs 4`` must print the serial Table 3 rows.

    Uses the literal ``s27,s838-surrogate`` circuit pairing (down-scaled so
    the test stays fast); everything except the wall-clock column must be
    identical, untestable breakdown included.
    """
    code, parallel_out = run_cli(
        capsys,
        "campaign",
        "--circuits", "s27,s838-surrogate",
        "--scale", "0.12",
        "--jobs", "4",
    )
    assert code == 0
    assert "Shard summary" in parallel_out
    code, serial_out = run_cli(
        capsys,
        "campaign",
        "--circuits", "s27,s838-surrogate",
        "--scale", "0.12",
        "--jobs", "1",
    )
    assert code == 0
    parallel_tables = parallel_out.split("Shard summary")[0].strip()
    assert _without_timings(parallel_tables) == _without_timings(serial_out.strip())


def test_campaign_journal_and_resume(tmp_path, capsys):
    journal = str(tmp_path / "campaign.jsonl")
    code, first_out = run_cli(
        capsys, "campaign", "--circuits", "s27", "--jobs", "2", "--journal", journal
    )
    assert code == 0
    # Resuming the finished journal reuses the stored result.
    code, resumed_out = run_cli(
        capsys, "campaign", "--circuits", "s27", "--resume", journal
    )
    assert code == 0
    first_table = first_out.split("Shard summary")[0].strip()
    assert _without_timings(resumed_out.strip()) == _without_timings(first_table)


def test_campaign_rejects_time_limit_with_jobs(capsys):
    code = main(["campaign", "--circuits", "s27", "--jobs", "2", "--time-limit", "1"])
    assert code == 2


def test_campaign_rejects_conflicting_journal_paths(capsys):
    code = main(
        ["campaign", "--circuits", "s27", "--journal", "a.jsonl", "--resume", "b.jsonl"]
    )
    assert code == 2


def test_unknown_circuit_raises():
    with pytest.raises(KeyError):
        main(["campaign", "--circuits", "s9999"])


def test_rejects_unknown_backend(capsys):
    with pytest.raises(SystemExit):
        main(["campaign", "--circuits", "s27", "--backend", "warp-drive"])


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_module_entry_point_subprocess():
    repo_root = Path(__file__).resolve().parents[1]
    result = subprocess.run(
        [sys.executable, "-m", "repro", "circuits"],
        capture_output=True,
        text=True,
        cwd=repo_root,
        env={"PYTHONPATH": str(repo_root / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0
    assert "s27" in result.stdout

"""Deterministic replay of the checked-in fuzz regression corpus.

Every JSON file in ``tests/fuzz/corpus/`` is a minimised
:class:`tests.fuzz.harness.FuzzCase` — either a shrunk disagreement the fuzz
loop once found, or a curated anchor pinning a tricky shape (X propagation
through XOR trees, flip-flop feedback, fanout-branch fault sites).  Replaying
them is tier-1: the corpus must stay green on every push, so past fuzz
discoveries can never regress silently.
"""

from __future__ import annotations

import pytest

from tests.fuzz.harness import (
    CORPUS_DIR,
    check_case,
    check_incremental_case,
    load_corpus,
    load_incremental_corpus,
)

_CORPUS = load_corpus()
_INCR_CORPUS = load_incremental_corpus()


def test_corpus_is_checked_in():
    """The regression corpus exists and is non-empty."""
    assert CORPUS_DIR.is_dir()
    assert _CORPUS, "tests/fuzz/corpus/ must contain at least one case"


def test_incremental_corpus_is_checked_in():
    """The incremental-equivalence anchor corpus exists and is non-empty."""
    assert _INCR_CORPUS, "tests/fuzz/corpus/ must contain incremental anchors"


@pytest.mark.parametrize(
    "path,case", _CORPUS, ids=[path.name for path, _ in _CORPUS]
)
def test_corpus_case_replays_clean(path, case):
    """All backends agree on every persisted regression case."""
    failures = check_case(case)
    assert not failures, f"{path.name}: {failures}"


@pytest.mark.parametrize(
    "path,case", _INCR_CORPUS, ids=[path.name for path, _ in _INCR_CORPUS]
)
def test_incremental_corpus_case_replays_clean(path, case):
    """Incremental equivalence holds on every persisted anchor case."""
    failures = check_incremental_case(case)
    assert not failures, f"{path.name}: {failures}"

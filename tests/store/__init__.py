"""Unit and end-to-end tests of the persistent campaign store
(:mod:`repro.store`): schema round-trips, journal ingest, staleness
rejection, concurrent writers, and the incremental re-run engine."""

"""Experiment E1 — regenerate Table 1 (AND gate truth table of the algebra).

The benchmark measures the cost of building the full 8x8 table (the operation
TDgen performs implicitly on every implication) and prints the table in the
paper's layout so the rows can be compared side by side.
"""

from repro.algebra.tables import and2, format_truth_table, paper_table1_and
from repro.algebra.values import ALL_VALUES
from repro.circuit.gates import GateType

#: The two rows printed explicitly in the paper (Table 1): the test-carrying
#: values Rc and Fc against every off-path value, in the column order
#: 0, 1, R, F, 0h, 1h, Rc, Fc.
PAPER_TABLE1_RC_ROW = ["0", "Rc", "Rc", "0h", "0h", "Rc", "Rc", "0h"]
PAPER_TABLE1_FC_ROW = ["0", "Fc", "0h", "F", "0h", "F", "0h", "Fc"]


def _build_table():
    return paper_table1_and()


def test_bench_table1_and_truth_table(benchmark):
    table = benchmark(_build_table)
    assert len(table) == 64

    rc_row = [table[("Rc", value.name)] for value in ALL_VALUES]
    fc_row = [table[("Fc", value.name)] for value in ALL_VALUES]
    assert rc_row == PAPER_TABLE1_RC_ROW
    assert fc_row == PAPER_TABLE1_FC_ROW

    print()
    print("Table 1 — truth table for the AND gate (eight-valued robust algebra)")
    print(format_truth_table(GateType.AND))
    print()
    print("paper Rc row:", " ".join(PAPER_TABLE1_RC_ROW))
    print("ours  Rc row:", " ".join(rc_row))
    print("paper Fc row:", " ".join(PAPER_TABLE1_FC_ROW))
    print("ours  Fc row:", " ".join(fc_row))


def test_bench_table1_full_gate_evaluation(benchmark):
    """Throughput of the two-input AND evaluation (the innermost ATPG kernel)."""

    def evaluate_all_pairs():
        total = 0
        for a in ALL_VALUES:
            for b in ALL_VALUES:
                total += and2(a, b).index
        return total

    checksum = benchmark(evaluate_all_pairs)
    assert checksum > 0

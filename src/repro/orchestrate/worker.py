"""Worker process entry for sharded ATPG campaigns.

Each worker builds its own :class:`~repro.core.flow.SequentialDelayATPG`
(compiling the packed netlist once per process) and streams one record per
fault back to the coordinator over a ``multiprocessing`` queue.  Cross-shard
fault dropping works through the detection broadcast: whenever any worker
generates a test, the coordinator fans the sequence's TDsim detection set —
the exact list :func:`~repro.core.flow.credit_fault_result` will credit
during the replay merge — out to every other worker, which drops the listed
faults before ever targeting them.  (Earlier revisions broadcast the raw
sequence and re-graded it with the gross-delay
:func:`~repro.core.verify.grade_test_sequence` pre-filter, whose detections
are a superset of TDsim's; every extra drop forced the merge to recompute
the fault serially.)

The drop rule is *earlier sequences only*: fault ``i`` may be dropped by the
detections of a sequence generated for fault ``j`` only if ``j < i`` in the
global enumeration order.  A serial campaign can only ever drop ``i`` that
way, so the rule keeps the optimistic parallel execution within what the
coordinator's replay merge can reproduce exactly (anything over-dropped is
recomputed serially during the merge; anything under-dropped is merely
wasted work that the merge discards).
"""

from __future__ import annotations

import os
import queue as queue_module
import random
import signal
import time
import traceback
from typing import Dict, List, Optional, Sequence, Set

from repro.circuit.netlist import Circuit
from repro.core.flow import SequentialDelayATPG
from repro.core.results import FaultResultStatus
from repro.faults.model import GateDelayFault
from repro.obs.metrics import MetricsRegistry


class _ShardState:
    """Book-keeping of one worker's view of the campaign."""

    def __init__(
        self,
        worker_id: int,
        circuit: Circuit,
        faults: Sequence[GateDelayFault],
        scope: Set[int],
        backend: Optional[str],
    ) -> None:
        self.worker_id = worker_id
        self.circuit = circuit
        self.faults = list(faults)
        self.index_of: Dict[GateDelayFault, int] = {
            fault: index for index, fault in enumerate(self.faults)
        }
        #: Indices this worker may still target (its shard in static modes,
        #: the whole universe in dynamic mode); shrinks as faults complete.
        self.scope = set(scope)
        #: fault index -> index of the earlier fault whose sequence covers it.
        self.covered: Dict[int, int] = {}
        self.backend = backend
        self.absorbed_broadcasts = 0

    def absorb_broadcast(
        self, source_index: int, detections: Sequence[Dict[str, object]]
    ) -> None:
        """Apply one broadcast TDsim detection set to this shard's faults."""
        self.absorbed_broadcasts += 1
        self.absorb_detections(
            source_index,
            [GateDelayFault.from_json(payload) for payload in detections],
        )

    def absorb_detections(
        self, source_index: int, detections: Sequence[GateDelayFault]
    ) -> None:
        """Drop shard faults covered by this worker's own new sequence."""
        for fault in detections:
            index = self.index_of.get(fault)
            if index is not None and index > source_index and index in self.scope:
                self.covered.setdefault(index, source_index)


def _drain_broadcasts(state: _ShardState, broadcast_queue) -> None:
    """Apply every pending broadcast before deciding the next fault."""
    while True:
        try:
            message = broadcast_queue.get_nowait()
        except queue_module.Empty:
            return
        for index in message.get("completed", ()):
            # Faults another worker already recorded can never be targeted
            # here, so absorbing detections for them would be wasted work.
            state.scope.discard(index)
        state.absorb_broadcast(int(message["index"]), message["detections"])


def _process_fault(
    state: _ShardState,
    atpg: SequentialDelayATPG,
    index: int,
    result_queue,
    stats: Dict[str, int],
) -> None:
    """Target one fault (or record its drop) and stream the record back."""
    state.scope.discard(index)
    if index in state.covered:
        stats["dropped"] += 1
        result_queue.put(
            {
                "type": "drop",
                "index": index,
                "worker": state.worker_id,
                "by": state.covered[index],
            }
        )
        return

    result = atpg.target_fault(state.faults[index])
    detections = result.additionally_detected
    result.additionally_detected = []
    stats["targeted"] += 1
    if result.status is FaultResultStatus.TESTED:
        stats["tested"] += 1
        state.absorb_detections(index, detections)
    elif result.status is FaultResultStatus.UNTESTABLE:
        stats["untestable"] += 1
    else:
        stats["aborted"] += 1
    record = {
        "type": "fault",
        "index": index,
        "worker": state.worker_id,
        "result": result.to_json(),
        "detections": [fault.to_json() for fault in detections],
    }
    if atpg.cost_log:
        # One FaultCost per targeted fault when instrumentation is on; ship
        # it as a sibling key so FaultResult.from_json stays strict and the
        # replayed results remain bit-identical to a serial campaign.
        record["cost"] = atpg.cost_log.pop().to_json()
    result_queue.put(record)


def _reset_inherited_signals() -> None:
    """Detach a fork-started worker from the parent's signal machinery.

    When the coordinator lives inside an asyncio process (the ATPG daemon),
    fork-started workers inherit ``loop.add_signal_handler``'s state: a
    no-op Python handler for SIGTERM/SIGINT *and* the wakeup fd that pipes
    every received signal number back into the parent's event loop.  Left
    in place, a ``terminate()`` aimed at the worker (a) does not kill it
    (the handler is a no-op) and (b) echoes a spurious SIGTERM into the
    parent's loop — which the daemon would read as a second shutdown
    request.  Workers therefore restore the default SIGTERM disposition,
    ignore SIGINT (the coordinator drives graceful stops; a terminal
    Ctrl-C must not shred the shards mid-fault) and drop the wakeup fd.
    """
    try:
        signal.set_wakeup_fd(-1)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread/platform
        pass


def worker_main(
    worker_id: int,
    seed: int,
    circuit: Circuit,
    faults: Sequence[GateDelayFault],
    assigned: Optional[Sequence[int]],
    task_queue,
    result_queue,
    broadcast_queue,
    atpg_kwargs: Dict[str, object],
    collect_metrics: bool = False,
) -> None:
    """Process entry: run one shard of an ATPG campaign.

    Args:
        worker_id: shard id, ``0 .. jobs-1``.
        seed: per-shard RNG seed (see
            :func:`repro.orchestrate.partition.derive_shard_seed`); seeds the
            :mod:`random` module so any stochastic component inside the
            worker is reproducible run-to-run.
        circuit: circuit under test (pickled into the process).
        faults: the full campaign fault universe in enumeration order.
        assigned: the fault indices this worker may end up targeting — its
            shard in the static modes, every still-untargeted index in the
            dynamic mode (where the actual assignment happens via
            ``task_queue``).
        task_queue: shared index queue for dynamic mode (``None`` selects the
            static loop over ``assigned``); a ``None`` entry is the shutdown
            sentinel.
        result_queue: stream of fault / drop / done / error records back to
            the coordinator.
        broadcast_queue: this worker's inbox of TDsim detection sets from
            sequences generated by other shards (and, on resume, of
            journaled detection sets).
        atpg_kwargs: keyword arguments for
            :class:`~repro.core.flow.SequentialDelayATPG`.
        collect_metrics: give the shard its own
            :class:`~repro.obs.metrics.MetricsRegistry`; per-fault cost
            records ride on the fault records and the shard's snapshot is
            attached to the final ``done`` stats.
    """
    _reset_inherited_signals()
    random.seed(seed)
    parent = os.getppid()
    start = time.perf_counter()
    stats: Dict[str, int] = {
        "targeted": 0,
        "tested": 0,
        "untestable": 0,
        "aborted": 0,
        "dropped": 0,
    }
    try:
        registry = MetricsRegistry() if collect_metrics else None
        atpg = SequentialDelayATPG(circuit, metrics=registry, **atpg_kwargs)
        backend = atpg.backend
        scope = set(assigned) if assigned is not None else set(range(len(faults)))
        state = _ShardState(worker_id, circuit, faults, scope, backend)

        if task_queue is None:
            for index in sorted(assigned):
                if os.getppid() != parent:
                    return  # orphaned by a killed coordinator: stop promptly
                _drain_broadcasts(state, broadcast_queue)
                _process_fault(state, atpg, index, result_queue, stats)
        else:
            while True:
                if os.getppid() != parent:
                    return  # orphaned by a killed coordinator: stop promptly
                try:
                    # A timeout (rather than a blocking get) keeps the orphan
                    # check live even when the queue's feeder died with the
                    # coordinator and no sentinel will ever arrive.
                    index = task_queue.get(timeout=1.0)
                except queue_module.Empty:
                    continue
                if index is None:
                    break
                _drain_broadcasts(state, broadcast_queue)
                _process_fault(state, atpg, index, result_queue, stats)

        shard_stats = {
            "worker": worker_id,
            "seed": seed,
            "assigned": len(assigned) if task_queue is None else None,
            "absorbed_broadcasts": state.absorbed_broadcasts,
            "seconds": round(time.perf_counter() - start, 3),
            **stats,
        }
        if registry is not None:
            shard_stats["metrics"] = registry.snapshot().to_json()
        result_queue.put(
            {
                "type": "done",
                "worker": worker_id,
                "stats": shard_stats,
            }
        )
    except BaseException:  # noqa: BLE001 - the coordinator must hear about any death
        result_queue.put(
            {
                "type": "error",
                "worker": worker_id,
                "error": traceback.format_exc(),
            }
        )
        raise

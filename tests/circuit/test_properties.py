"""Property-based tests over randomly generated (surrogate) circuits."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.bench import parse_bench, write_bench
from repro.circuit.levelize import combinational_order, levelize
from repro.circuit.validate import validate_circuit
from repro.data.surrogate import generate_surrogate
from repro.fausim.logic_sim import LogicSimulator

circuit_params = st.tuples(
    st.integers(min_value=3, max_value=8),   # inputs
    st.integers(min_value=1, max_value=4),   # outputs
    st.integers(min_value=1, max_value=5),   # flip flops
    st.integers(min_value=10, max_value=60),  # gates
    st.integers(min_value=0, max_value=1000),  # seed
)


@given(params=circuit_params)
@settings(max_examples=25, deadline=None)
def test_generated_circuits_are_valid_and_levelizable(params):
    inputs, outputs, flip_flops, gates, seed = params
    circuit = generate_surrogate("prop", inputs, outputs, flip_flops, gates, seed=seed)
    validate_circuit(circuit)
    levels = levelize(circuit)
    order = combinational_order(circuit)
    assert len(order) == len(circuit.combinational_gates)
    # Levels respect the evaluation order.
    for name in order:
        gate = circuit.gate(name)
        assert levels[name] == 1 + max(levels[source] for source in gate.fanin)


@given(params=circuit_params)
@settings(max_examples=20, deadline=None)
def test_bench_roundtrip_preserves_structure(params):
    inputs, outputs, flip_flops, gates, seed = params
    circuit = generate_surrogate("roundtrip", inputs, outputs, flip_flops, gates, seed=seed)
    reparsed = parse_bench(write_bench(circuit), name=circuit.name)
    assert reparsed.stats() == circuit.stats()
    assert reparsed.primary_inputs == circuit.primary_inputs
    assert reparsed.primary_outputs == circuit.primary_outputs
    for name, gate in circuit.gates.items():
        assert reparsed.gate(name).gate_type is gate.gate_type
        assert reparsed.gate(name).fanin == gate.fanin


@given(params=circuit_params, bits=st.integers(min_value=0, max_value=2**16 - 1))
@settings(max_examples=20, deadline=None)
def test_simulation_is_deterministic_and_complete(params, bits):
    inputs, outputs, flip_flops, gates, seed = params
    circuit = generate_surrogate("sim", inputs, outputs, flip_flops, gates, seed=seed)
    simulator = LogicSimulator(circuit)
    vector = {
        pi: (bits >> position) & 1 for position, pi in enumerate(circuit.primary_inputs)
    }
    state = {
        ppi: (bits >> (position + 8)) & 1
        for position, ppi in enumerate(circuit.pseudo_primary_inputs)
    }
    first = simulator.clock(vector, state)
    second = simulator.clock(vector, state)
    assert first.values == second.values
    # A fully specified input leaves no unknowns anywhere.
    assert all(value in (0, 1) for value in first.values.values())
    assert all(value in (0, 1) for value in first.next_state.values())


@given(params=circuit_params)
@settings(max_examples=15, deadline=None)
def test_fault_universe_counts_match_line_counts(params):
    from repro.faults.model import enumerate_delay_faults

    inputs, outputs, flip_flops, gates, seed = params
    circuit = generate_surrogate("faults", inputs, outputs, flip_flops, gates, seed=seed)
    faults = enumerate_delay_faults(circuit)
    assert len(faults) == 2 * circuit.line_count()
    assert len(set(faults)) == len(faults)

"""Differential harness: packed backend vs reference simulator.

The packed bit-parallel backend must be *bit-exact* against the reference
per-gate interpreter — including X propagation and flip-flop clocking — on
arbitrary circuits.  These tests generate seeded random circuits with
:class:`~repro.circuit.builder.CircuitBuilder` (all eight gate types, random
fanin, random flip-flops) plus random three-valued input vectors, and compare
the two backends signal for signal.

Any mismatch prints the failing seed, so a reproduction is one
``random_circuit(seed)`` call away.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List, Optional, Tuple

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.fausim.fault_sim import PropagationFaultSimulator
from repro.fausim.logic_sim import LogicSimulator, simulate_sequence
from repro.fausim.packed_sim import PackedLogicSimulator

#: Seeds of the random-circuit population; the acceptance bar is >= 50.
SEEDS = list(range(60))

_MULTI_INPUT = (
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
)
_SINGLE_INPUT = (GateType.NOT, GateType.BUF)


def random_circuit(seed: int) -> Circuit:
    """Build a seeded random synchronous circuit via the public builder API."""
    rng = random.Random(0xD1FF ^ seed)
    builder = CircuitBuilder(f"rand{seed}")
    n_inputs = rng.randint(2, 6)
    n_ffs = rng.randint(0, 4)
    n_gates = rng.randint(5, 40)

    inputs = builder.inputs([f"i{index}" for index in range(n_inputs)])
    ffs = [f"q{index}" for index in range(n_ffs)]
    pool: List[str] = list(inputs) + list(ffs)

    gates: List[str] = []
    for index in range(n_gates):
        name = f"g{index}"
        if rng.random() < 0.2:
            gate_type = rng.choice(_SINGLE_INPUT)
            builder.gate(gate_type, name, [rng.choice(pool)])
        else:
            gate_type = rng.choice(_MULTI_INPUT)
            arity = rng.randint(2, min(4, len(pool)))
            builder.gate(gate_type, name, rng.sample(pool, arity))
        gates.append(name)
        pool.append(name)

    # Flip-flop data inputs come from anywhere in the netlist, so state
    # feedback (q -> logic -> q) is common.
    for ff in ffs:
        builder.dff(ff, rng.choice(gates))

    for po in rng.sample(gates, rng.randint(1, min(3, len(gates)))):
        builder.output(po)
    return builder.build()


def random_vector(rng: random.Random, names: List[str]) -> Dict[str, Optional[int]]:
    """A three-valued assignment; X appears both as ``None`` and as absence."""
    vector: Dict[str, Optional[int]] = {}
    for name in names:
        roll = rng.random()
        if roll < 0.4:
            vector[name] = 1
        elif roll < 0.8:
            vector[name] = 0
        elif roll < 0.9:
            vector[name] = None
        # else: leave the entry out entirely (implicit X)
    return vector


def random_state(rng: random.Random, circuit: Circuit) -> Dict[str, Optional[int]]:
    return random_vector(rng, circuit.pseudo_primary_inputs)


@pytest.mark.parametrize("seed", SEEDS)
def test_combinational_bit_exact(seed):
    """Packed frame evaluation equals the reference for every signal."""
    circuit = random_circuit(seed)
    rng = random.Random(1000 + seed)
    reference = LogicSimulator(circuit)
    packed = PackedLogicSimulator(circuit)

    vectors = [random_vector(rng, circuit.primary_inputs) for _ in range(24)]
    states = [random_state(rng, circuit) for _ in range(24)]
    results = packed.combinational_batch(vectors, states)
    for vector, state, got in zip(vectors, states, results):
        want = reference.combinational(vector, state)
        assert got == want, f"seed {seed}: mismatch for {vector} / {state}"


@pytest.mark.parametrize("seed", SEEDS)
def test_sequence_bit_exact(seed):
    """Packed lockstep clocking equals reference frame-by-frame simulation."""
    circuit = random_circuit(seed)
    rng = random.Random(2000 + seed)
    packed = PackedLogicSimulator(circuit)

    n_sequences, n_frames = 8, 6
    sequences = [
        [random_vector(rng, circuit.primary_inputs) for _ in range(n_frames)]
        for _ in range(n_sequences)
    ]
    initial_states = [random_state(rng, circuit) for _ in range(n_sequences)]

    batch = packed.sequence_batch(sequences, initial_states)
    for sequence, initial, got in zip(sequences, initial_states, batch):
        want = simulate_sequence(circuit, sequence, initial)
        assert got.final_state == want.final_state, f"seed {seed}"
        assert got.frame_count == want.frame_count
        for got_frame, want_frame in zip(got.frames, want.frames):
            assert got_frame.values == want_frame.values, f"seed {seed}"
            assert got_frame.next_state == want_frame.next_state, f"seed {seed}"


@pytest.mark.parametrize("seed", SEEDS[::5])
def test_scalar_adapter_bit_exact(seed):
    """The packed backend's scalar LogicSimulator interface is a drop-in."""
    circuit = random_circuit(seed)
    rng = random.Random(3000 + seed)
    reference = LogicSimulator(circuit)
    packed = PackedLogicSimulator(circuit)

    for _ in range(10):
        vector = random_vector(rng, circuit.primary_inputs)
        state = random_state(rng, circuit)
        want = reference.clock(vector, state)
        got = packed.clock(vector, state)
        assert got.values == want.values
        assert got.next_state == want.next_state
        assert packed.outputs(got.values) == reference.outputs(want.values)
        assert packed.next_state(got.values) == reference.next_state(want.values)


@pytest.mark.parametrize("seed", SEEDS[::3])
def test_observability_map_bit_exact(seed):
    """Bit-parallel multi-candidate fault simulation equals per-candidate runs."""
    circuit = random_circuit(seed)
    if not circuit.flip_flops:
        pytest.skip("combinational sample")
    rng = random.Random(4000 + seed)
    vectors = [random_vector(rng, circuit.primary_inputs) for _ in range(4)]
    state = random_state(rng, circuit)
    candidates = circuit.pseudo_primary_inputs

    reference = PropagationFaultSimulator(circuit, vectors, backend="reference")
    packed = PropagationFaultSimulator(circuit, vectors, backend="packed")
    want = reference.observability_map(state, candidates)
    got = packed.observability_map(state, candidates)

    assert set(got) == set(want)
    for ppi in candidates:
        assert got[ppi].observable == want[ppi].observable, f"seed {seed}: {ppi}"
        assert got[ppi].frame == want[ppi].frame, f"seed {seed}: {ppi}"
        assert got[ppi].primary_output == want[ppi].primary_output, f"seed {seed}: {ppi}"


def test_exhaustive_three_valued_s27(s27):
    """All 3^4 input combinations x sample states on the real s27 netlist."""
    reference = LogicSimulator(s27)
    packed = PackedLogicSimulator(s27)
    states = [{}, {"G5": 0, "G6": 1, "G7": 0}, {"G5": None, "G6": 0, "G7": 1}]
    vectors, state_list = [], []
    for combo in itertools.product((0, 1, None), repeat=len(s27.primary_inputs)):
        for state in states:
            vectors.append(dict(zip(s27.primary_inputs, combo)))
            state_list.append(state)
    results = packed.combinational_batch(vectors, state_list)
    for vector, state, got in zip(vectors, state_list, results):
        assert got == reference.combinational(vector, state)


def test_word_boundary_chunking(s27):
    """Batches straddling the word width split and reassemble correctly."""
    rng = random.Random(99)
    reference = LogicSimulator(s27)
    narrow = PackedLogicSimulator(s27, word_bits=8)
    for batch_size in (7, 8, 9, 17):
        vectors = [random_vector(rng, s27.primary_inputs) for _ in range(batch_size)]
        states = [random_state(rng, s27) for _ in range(batch_size)]
        results = narrow.combinational_batch(vectors, states)
        assert len(results) == batch_size
        for vector, state, got in zip(vectors, states, results):
            assert got == reference.combinational(vector, state)


def test_sequence_batch_rejects_ragged_input(s27):
    packed = PackedLogicSimulator(s27)
    with pytest.raises(ValueError):
        packed.sequence_batch([[{}], [{}, {}]])
    with pytest.raises(ValueError):
        packed.sequence_batch([[{}], [{}]], initial_states=[{}])


def test_empty_sequences_match_reference(s27):
    """Zero-frame sequences keep the initial state, like the reference."""
    packed = PackedLogicSimulator(s27)
    states = [{"G5": 1}, {"G5": 0, "G6": None}]
    results = packed.sequence_batch([[], []], states)
    for state, got in zip(states, results):
        want = simulate_sequence(s27, [], state)
        assert got.frames == [] == want.frames
        assert got.final_state == want.final_state


def test_observed_subset_matches_full_unpack(small_surrogate):
    """Restricting observation changes reporting, never the simulation."""
    rng = random.Random(5)
    packed = PackedLogicSimulator(small_surrogate)
    sequences = [
        [random_vector(rng, small_surrogate.primary_inputs) for _ in range(5)]
        for _ in range(6)
    ]
    full = packed.sequence_batch(sequences)
    observed = packed.sequence_batch(sequences, observe=small_surrogate.primary_outputs)
    for full_result, observed_result in zip(full, observed):
        assert observed_result.final_state == full_result.final_state
        for full_frame, observed_frame in zip(full_result.frames, observed_result.frames):
            assert set(observed_frame.values) == set(small_surrogate.primary_outputs)
            for po in small_surrogate.primary_outputs:
                assert observed_frame.values[po] == full_frame.values[po]
            assert observed_frame.next_state == full_frame.next_state
